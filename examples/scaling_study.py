"""Scalability study: the paper's result (6) — scaling in p AND in D.

Sorts a fixed dataset while sweeping the number of real processors p and
the number of disks per processor D, printing per-processor parallel I/O
counts and modeled times.  Theorem 3 predicts I/O time ~ (v/p) * G *
lambda*mu/(DB): doubling either p or D should roughly halve it.

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

import numpy as np

from repro import MachineConfig, em_sort
from repro.pdm.io_stats import DiskServiceModel
from repro.util.rng import make_rng


def main() -> None:
    n = 1 << 16
    v = 8
    data = make_rng(3).integers(0, 2**48, n)
    expect = np.sort(data)
    model = DiskServiceModel()

    print(f"EM-CGM sort, N={n}, v={v}; per-processor parallel I/Os\n")
    print(f"{'':>6}" + "".join(f"D={d:<10}" for d in (1, 2, 4)))
    for p in (1, 2, 4, 8):
        cells = []
        for D in (1, 2, 4):
            cfg = MachineConfig(N=n, v=v, p=p, D=D, B=256)
            res = em_sort(data, cfg, engine="par" if p > 1 else "seq")
            assert np.array_equal(res.values, expect)
            per_proc = res.report.io_max.parallel_ios
            t = per_proc * model.parallel_io_time(256)
            cells.append(f"{per_proc:>5} {t:>4.1f}s")
        print(f"p={p:<4}" + "  ".join(cells))

    print("\nrows: real processors; columns: disks per processor")
    print("each cell: parallel I/Os on the busiest processor + modeled I/O time")
    print("halving along both axes = the paper's scalability claim (result 6)")


if __name__ == "__main__":
    main()
