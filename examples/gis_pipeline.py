"""GIS pipeline: the workload class the paper's introduction motivates.

A synthetic territory of sites (cities) and non-crossing linear features
(pipelines) is analysed out-of-core with the Group B algorithms:

1. Delaunay triangulation of the sites (terrain model / natural
   neighbours) — randomized CGM, exact output;
2. all-nearest-neighbours (closest facility per site);
3. convex hull (service-area boundary);
4. batched planar point location: for each query incident, the pipeline
   segment directly below it;
5. area of the union of development footprints (rectangles).

Every stage runs through the sequential EM engine, so the printout shows
the blocked, fully parallel I/O the simulation produces for each.

Run:  python examples/gis_pipeline.py
"""

from __future__ import annotations

import numpy as np

import repro.algorithms.geometry as geo
from repro.cgm.config import MachineConfig
from repro.util.rng import make_rng


def make_territory(rng: np.random.Generator, n_sites: int):
    sites = rng.uniform(0, 100, (n_sites, 2))
    n_seg = n_sites // 10
    levels = np.linspace(0, 100, n_seg) + rng.uniform(-0.05, 0.05, n_seg)
    segs = []
    for k in range(n_seg):
        x1 = rng.uniform(0, 90)
        segs.append((x1, levels[k], x1 + rng.uniform(2, 10), levels[k] + rng.uniform(-0.04, 0.04)))
    rects = []
    for _ in range(n_sites // 5):
        x1, y1 = rng.uniform(0, 95, 2)
        rects.append((x1, y1, x1 + rng.uniform(0.5, 5), y1 + rng.uniform(0.5, 5)))
    return sites, np.array(segs), np.array(rects)


def main() -> None:
    rng = make_rng(7)
    n_sites = 3000
    sites, segs, rects = make_territory(rng, n_sites)
    cfg = MachineConfig(N=3 * n_sites, v=8, D=2, B=128)
    print(f"territory: {n_sites} sites, {len(segs)} pipeline segments, "
          f"{len(rects)} footprints")
    print(f"machine  : {cfg.describe()}\n")

    tri = geo.delaunay_2d(sites, cfg, engine="seq")
    print(
        f"Delaunay triangulation : {len(tri.values)} triangles, "
        f"{tri.total_parallel_ios} parallel I/Os"
        f"{' (fallback fired)' if tri.extra['fallback'] else ''}"
    )

    nn = geo.all_nearest_neighbors(sites, cfg, engine="seq")
    print(
        f"all nearest neighbours : mean NN distance "
        f"{nn.values['dist'].mean():.3f}, {nn.total_parallel_ios} parallel I/Os"
    )

    hull = geo.convex_hull_2d(sites, cfg, engine="seq")
    print(
        f"service-area hull      : {len(hull.values)} vertices, "
        f"{hull.total_parallel_ios} parallel I/Os"
    )

    incidents = rng.uniform(0, 100, (500, 2))
    loc = geo.point_location(segs, incidents, cfg, engine="seq")
    located = int((loc.values >= 0).sum())
    print(
        f"incident point location: {located}/500 above a pipeline, "
        f"{loc.total_parallel_ios} parallel I/Os"
    )

    area = geo.union_area(rects, cfg, engine="seq")
    print(
        f"development footprint  : {area.values:.1f} km^2 union area, "
        f"{area.total_parallel_ios} parallel I/Os"
    )


if __name__ == "__main__":
    main()
