"""Section 5's cache extension: tune virtual processors to the cache.

The same theory one level up: programs structured as coarse grained
parallel algorithms whose per-virtual-processor working sets fit the
cache control their cache-miss volume.  This demo sweeps the
virtual-processor context size around a simulated 64 KB / 64 B-line
cache and prints line fills for the CGM-tuned vs the naive interleaved
schedule, plus the cache-level log-term table.

Run:  python examples/cache_tuning.py
"""

from __future__ import annotations

from repro.cache.cache_sim import CacheSim, cache_log_term, tuned_vs_naive_traversal


def main() -> None:
    M_I = 1 << 13   # 8k items = 64 KB
    B_I = 8         # 64-byte lines
    print(f"simulated cache: {M_I * 8 // 1024} KB, {B_I * 8}-byte lines\n")

    print("log_{M_I/B_I}(N/B_I) — the factor CGM tuning removes:")
    for N in (1 << 16, 1 << 20, 1 << 24, 1 << 28):
        print(f"  N = {N:>11,d} items: {cache_log_term(N, M_I, B_I):5.2f}")

    print("\nline fills, tuned (mu = M_I/2 regions) vs naive interleaving:")
    print(f"{'N':>10} {'compulsory':>11} {'tuned':>8} {'naive':>8} {'ratio':>6}")
    for N in (1 << 14, 1 << 16, 1 << 18):
        out = tuned_vs_naive_traversal(N=N, M_I=M_I, B_I=B_I)
        print(
            f"{N:>10} {out['compulsory']:>11} {out['tuned']:>8} "
            f"{out['naive']:>8} {out['naive'] / max(out['tuned'], 1):>5.1f}x"
        )

    print("\nassociativity robustness (same tuned schedule):")
    for n_sets, label in ((1, "fully assoc."), (M_I // (B_I * 8), "8-way"), (M_I // B_I, "direct-mapped")):
        sim = CacheSim(M_I, B_I, n_sets=n_sets)
        region = M_I // 2
        for r in range(6):
            for _ in range(3):
                sim.access_range(r * region, region)
        print(f"  {label:>14}: {sim.misses} fills ({sim.miss_rate:.1%} miss rate)")


if __name__ == "__main__":
    main()
