"""Quickstart: sort out-of-core data by simulating a CGM algorithm.

Runs the same CGM sample-sort program on four backends:

* ``memory`` — the plain CGM reference machine;
* ``vm``     — naive execution over simulated OS paging (Figure 3's baseline);
* ``seq``    — Algorithm 2: single processor + D parallel disks;
* ``par``    — Algorithm 3: p processors, each with D disks.

and prints the cost accounting the paper's theorems are stated in:
parallel I/O operations, h-relation history, supersteps, page faults.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import MachineConfig, em_sort
from repro.core.theory import em_cgm_sort_ios, sort_lower_bound_ios
from repro.pdm.io_stats import DiskServiceModel
from repro.util.rng import make_rng


def main() -> None:
    n = 1 << 16
    rng = make_rng(42)
    data = rng.integers(0, 2**48, n)

    cfg = MachineConfig(N=n, v=8, D=2, B=512, M=1 << 15)
    print(f"machine: {cfg.describe()}")
    violations = cfg.validate(kappa=3.0)
    print(f"paper-constraint check: {'OK' if not violations else violations}\n")

    model = DiskServiceModel()
    expect = np.sort(data)

    for engine in ("memory", "vm", "seq", "par"):
        run_cfg = cfg.with_(p=4) if engine == "par" else cfg
        result = em_sort(data, run_cfg, engine=engine)
        assert np.array_equal(result.values, expect), engine
        r = result.report
        line = (
            f"[{engine:>6}] rounds={r.rounds}  supersteps={r.supersteps}  "
            f"comm={r.comm_items} items"
        )
        if engine == "vm":
            line += (
                f"  page-faults={r.page_faults}"
                f"  sim-I/O-time={r.page_faults * model.access_time(4096):.2f}s"
            )
        elif engine in ("seq", "par"):
            line += (
                f"  parallel-I/Os={r.io.parallel_ios}"
                f" (max/proc {r.io_max.parallel_ios})"
                f"  sim-I/O-time={r.io_max.parallel_ios * model.parallel_io_time(cfg.B):.2f}s"
            )
        print(line)

    print()
    print("theory at this configuration (M = N/v):")
    M = n // cfg.v
    print(
        f"  classical PDM sort bound : {sort_lower_bound_ios(n, M, cfg.B, cfg.D):8.0f} I/Os"
    )
    print(f"  coarse-grained target    : {em_cgm_sort_ios(n, 1, cfg.D, cfg.B):8.0f} I/Os")
    print("(the measured count above sits a constant factor over the target,")
    print(" with no log_{M/B}(N/B) growth — the paper's headline)")


if __name__ == "__main__":
    main()
