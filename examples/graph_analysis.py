"""Graph analysis out-of-core: the Group C pipelines on a road network.

A synthetic road network (random geometric-ish graph) is analysed with
the paper's graph algorithms, all executed as external-memory CGM
simulations:

1. connected components + spanning forest (network connectivity);
2. biconnected components -> articulation points (critical junctions
   whose failure disconnects traffic) and bridges (critical roads);
3. tree measures on the spanning tree (depths, subtree sizes);
4. batched lowest common ancestors (routing through the tree backbone);
5. expression-tree evaluation as a bonus: aggregating a cost expression
   over a hierarchy.

Run:  python examples/graph_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.graphs import (
    biconnected_components,
    connected_components,
    expression_eval,
    lowest_common_ancestors,
    tree_measures,
)
from repro.algorithms.graphs.tree_contraction import OP_ADD, OP_MUL
from repro.cgm.config import MachineConfig
from repro.util.rng import make_rng


def make_network(rng: np.random.Generator, n: int):
    """Union of a random spanning tree and random shortcut edges."""
    order = rng.permutation(n)
    tree_edges = [(order[i], order[rng.integers(0, i)]) for i in range(1, n)]
    shortcuts = set()
    while len(shortcuts) < n // 2:
        a, b = map(int, rng.integers(0, n, 2))
        if a != b:
            shortcuts.add((min(a, b), max(a, b)))
    edges = np.array(sorted(set(map(lambda e: (min(e), max(e)), tree_edges)) | shortcuts))
    return edges


def main() -> None:
    rng = make_rng(11)
    n = 1200
    edges = make_network(rng, n)
    cfg = MachineConfig(N=n, v=8, D=2, B=64)
    print(f"road network: {n} junctions, {len(edges)} roads")
    print(f"machine     : {cfg.describe()}\n")

    cc = connected_components(edges, n, cfg, engine="seq")
    n_comp = len(set(cc.values.tolist()))
    print(
        f"connectivity      : {n_comp} component(s), spanning forest of "
        f"{len(cc.extra['forest'])} roads; {cc.total_parallel_ios} parallel I/Os"
    )

    bi = biconnected_components(edges, n, cfg, engine="seq")
    print(
        f"resilience        : {len(set(bi.values.tolist()))} biconnected blocks, "
        f"{len(bi.extra['articulation_points'])} critical junctions, "
        f"{len(bi.extra['bridges'])} critical roads; "
        f"{bi.total_parallel_ios} parallel I/Os"
    )

    tree = edges[cc.extra["forest"]]
    tm = tree_measures(tree, n, cfg, engine="seq")
    print(
        f"tree backbone     : depth max {tm.values['depth'].max()}, "
        f"mean {tm.values['depth'].mean():.1f}; {tm.total_parallel_ios} parallel I/Os"
    )

    queries = rng.integers(0, n, (300, 2))
    lca = lowest_common_ancestors(tree, queries, n, cfg, engine="seq")
    depths = tm.values["depth"][lca.values]
    print(
        f"batched LCA       : 300 queries, meeting depth mean {depths.mean():.1f}; "
        f"{lca.total_parallel_ios} parallel I/Os"
    )

    # cost roll-up over a hierarchy: random +/* expression tree
    parent = np.full(n, -1, dtype=np.int64)
    op = rng.integers(0, 2, n)
    val = rng.uniform(0.9, 1.1, n)
    child_count = np.zeros(n, dtype=int)
    avail = [0]
    for u in range(1, n):
        k = int(rng.integers(0, len(avail)))
        p = avail[k]
        parent[u] = p
        child_count[p] += 1
        if child_count[p] == 2:
            avail.pop(k)
        avail.append(u)
    ee = expression_eval(parent, op, val, cfg, engine="seq")
    print(
        f"cost roll-up      : expression value {ee.values:.4f}; "
        f"{ee.total_parallel_ios} parallel I/Os"
    )


if __name__ == "__main__":
    main()
