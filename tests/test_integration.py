"""Cross-cutting integration tests: whole pipelines on the parallel
engine, balanced mode end-to-end, BSP-conversion vs engine agreement,
and example-script smoke runs."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import networkx as nx
import numpy as np
import pytest
from scipy.spatial import Delaunay

import repro.algorithms.geometry as geo
from repro.algorithms.graphs import (
    biconnected_components,
    connected_components,
)
from repro.bsp.conversion import to_em_bsp
from repro.bsp.model import BSPCost, Superstep
from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort

REPO = Path(__file__).resolve().parents[1]


@pytest.mark.slow
class TestParallelEnginePipelines:
    def test_graphs_on_par_engine(self):
        n = 400
        G = nx.gnm_random_graph(n, 700, seed=3)
        comps = list(nx.connected_components(G))
        for a, b in zip(comps, comps[1:]):
            G.add_edge(min(a), min(b))
        edges = np.array(G.edges())
        cfg = MachineConfig(N=n, v=8, p=4, D=2, B=32)
        res = connected_components(edges, n, cfg, engine="par")
        for cc in nx.connected_components(G):
            assert {res.values[u] for u in cc} == {min(cc)}
        bi = biconnected_components(edges, n, cfg, engine="par")
        assert set(bi.extra["articulation_points"]) == set(nx.articulation_points(G))

    def test_geometry_on_par_engine(self, rng):
        pts = rng.random((600, 2))
        cfg = MachineConfig(N=3 * 600, v=8, p=4, D=2, B=32)
        res = geo.delaunay_2d(pts, cfg, engine="par")
        ref = {tuple(sorted(map(int, t))) for t in Delaunay(pts).simplices}
        assert {tuple(t) for t in res.values} == ref

    def test_list_ranking_balanced_on_par(self):
        n = 400
        order = np.random.default_rng(4).permutation(n)
        succ = np.full(n, -1, dtype=np.int64)
        for a, b in zip(order[:-1], order[1:]):
            succ[a] = b
        cfg = MachineConfig(N=n, v=8, p=2, D=2, B=16)
        from repro.algorithms.collectives import partition_array
        from repro.algorithms.graphs.list_ranking import ListRanking
        from repro.em.runner import em_run

        weights = (succ >= 0).astype(np.float64)
        inputs = list(zip(partition_array(succ, 8), partition_array(weights, 8)))
        res = em_run(ListRanking(), inputs, cfg, engine="par", balanced=True)
        ranks = np.concatenate(res.outputs)
        expect = np.empty(n)
        for i, node in enumerate(order):
            expect[node] = n - 1 - i
        assert np.array_equal(ranks, expect)


class TestBSPConversionAgreesWithEngine:
    def test_predicted_io_brackets_measured(self, rng):
        """The Section 5 analytic conversion and the executable engine
        must tell the same story about the sort's I/O."""
        n = 1 << 14
        v, p, D, B = 8, 2, 2, 64
        data = rng.integers(0, 2**50, n)
        cfg = MachineConfig(N=n, v=v, p=p, D=D, B=B)
        run = em_sort(data, cfg, engine="par")

        profile = BSPCost(
            v=v,
            supersteps=tuple(
                Superstep(w_comp=n / v, h=h) for h in run.report.h_history
            ),
        )
        em = to_em_bsp(profile, p=p, D=D, B=B, mu_items=cfg.mu)
        predicted = em.total_ios / p  # per real processor
        measured = run.report.io_max.parallel_ios
        assert predicted / 6 <= measured <= 6 * predicted

    def test_superstep_counts_match(self, rng):
        n = 1 << 13
        v, p = 8, 4
        cfg = MachineConfig(N=n, v=v, p=p, D=1, B=64)
        run = em_sort(rng.integers(0, 2**40, n), cfg, engine="par")
        profile = BSPCost(
            v=v, supersteps=tuple(Superstep(1.0, h) for h in run.report.h_history)
        )
        em = to_em_bsp(profile, p=p, D=1, B=64, mu_items=cfg.mu)
        assert len(em.supersteps) == run.report.supersteps


@pytest.mark.slow
@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "gis_pipeline.py", "scaling_study.py", "cache_tuning.py", "graph_analysis.py"],
)
def test_examples_run(script):
    out = subprocess.run(
        [sys.executable, str(REPO / "examples" / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert out.returncode == 0, out.stderr[-2000:]
    assert out.stdout.strip()
