"""The repro-top dashboard aggregator and its event sources."""

from __future__ import annotations

import json
import threading
import time

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort
from repro.obs.bus import EventBus
from repro.obs.live import TopView, iter_jsonl
from repro.util.rng import make_rng


def _events():
    return [
        {"seq": 0, "ts": 0.0, "kind": "run_begin", "engine": "par-em",
         "program": "sample-sort", "N": 1 << 14, "v": 8, "p": 2, "D": 2,
         "B": 64, "workers": 2},
        {"seq": 1, "ts": 0.1, "kind": "prefetch", "submitted": 4, "hits": 3,
         "misses": 1},
        {"seq": 2, "ts": 0.2, "kind": "arena_grow", "resident_nbytes": 4096,
         "spill_nbytes": 512},
        {"seq": 3, "ts": 0.3, "kind": "superstep_end", "round": 0,
         "superstep": 4, "parallel_ios": 100, "wall_s": 0.01},
        {"seq": 4, "ts": 0.4, "kind": "model_drift", "round": 0,
         "parallel_ios": 100, "budget": 50.0},
        {"seq": 5, "ts": 0.5, "kind": "superstep_end", "round": 1,
         "superstep": 8, "parallel_ios": 40, "wall_s": 0.02},
        {"seq": 6, "ts": 0.6, "kind": "run_end", "engine": "par-em",
         "parallel_ios": 180},
    ]


class TestTopView:
    def test_aggregates_the_run(self):
        view = TopView()
        for ev in _events():
            view.feed(ev)
        assert view.machine == {"N": 1 << 14, "v": 8, "p": 2, "D": 2, "B": 64}
        assert view.supersteps == 2 and view.total_ios == 140
        assert view.run_total_ios == 180
        assert view.prefetch_hits == 3 and view.prefetch_misses == 1
        assert view.arena_resident_peak == 4096 and view.arena_spill_peak == 512
        assert len(view.drifts) == 1 and view.finished

    def test_render_surfaces_everything(self):
        view = TopView()
        for ev in _events():
            view.feed(ev)
        out = view.render()
        assert "sample-sort on par-em (2 workers)" in out
        assert "supersteps: 2" in out and "140 / 180 total" in out
        assert "DRIFT" in out
        assert "3 hits, 1 misses" in out
        assert "spill peak 512 B" in out
        assert "status: finished" in out

    def test_window_bounds_memory(self):
        view = TopView(window=3)
        for r in range(100):
            view.feed({"kind": "superstep_end", "round": r, "superstep": r,
                       "parallel_ios": 1, "wall_s": 0.0})
        assert len(view.rounds) == 3
        assert [row["round"] for row in view.rounds] == [97, 98, 99]
        assert view.supersteps == 100 and view.total_ios == 100

    def test_running_status_before_run_end(self):
        view = TopView()
        view.feed({"kind": "run_begin", "engine": "seq-em"})
        assert "status: running" in view.render()

    def test_real_engine_feed(self):
        bus = EventBus()
        data = make_rng(0).integers(0, 2**50, 1 << 13)
        cfg = MachineConfig(N=1 << 13, v=8, p=2, D=2, B=64)
        res = em_sort(data, cfg, engine="par", tracer=bus)
        view = TopView()
        for ev in bus.events:
            view.feed(ev)
        assert view.finished
        assert view.run_total_ios == res.report.io.parallel_ios
        assert view.total_ios == sum(
            e["parallel_ios"] for e in bus.events if e["kind"] == "superstep_end"
        )


class TestIterJsonl:
    def test_reads_whole_file(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text("".join(json.dumps(e) + "\n" for e in _events()))
        got = list(iter_jsonl(str(p)))
        assert [e["kind"] for e in got] == [e["kind"] for e in _events()]

    def test_follow_tails_a_live_writer_and_stops_at_run_end(self, tmp_path):
        p = tmp_path / "live.jsonl"
        p.write_text("")
        evs = _events()

        def writer():
            with open(p, "a", encoding="utf-8") as fh:
                for ev in evs:
                    fh.write(json.dumps(ev) + "\n")
                    fh.flush()
                    time.sleep(0.02)

        t = threading.Thread(target=writer)
        t.start()
        got = list(iter_jsonl(str(p), follow=True, poll_s=0.01))
        t.join()
        assert [e["seq"] for e in got] == [e["seq"] for e in evs]

    def test_follow_idle_timeout(self, tmp_path):
        p = tmp_path / "stalled.jsonl"
        p.write_text(json.dumps(_events()[0]) + "\n")
        t0 = time.monotonic()
        got = list(
            iter_jsonl(str(p), follow=True, poll_s=0.01, idle_timeout_s=0.2)
        )
        assert len(got) == 1
        assert time.monotonic() - t0 < 5.0

    def test_partial_trailing_line_not_dropped(self, tmp_path):
        p = tmp_path / "partial.jsonl"
        full = json.dumps(_events()[0])
        p.write_text(full + "\n" + '{"seq": 1, "kind"')  # writer mid-flush
        got = []

        def reader():
            got.extend(
                iter_jsonl(str(p), follow=True, poll_s=0.01, idle_timeout_s=2.0)
            )

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.1)
        with open(p, "a", encoding="utf-8") as fh:
            fh.write(': "run_end"}\n')
        t.join(timeout=10.0)
        assert not t.is_alive()
        assert [e["seq"] for e in got] == [0, 1]
        assert got[1]["kind"] == "run_end"
