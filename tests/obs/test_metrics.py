"""The metrics registry: series kinds, exporters, and the null default."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)


class TestSeriesKinds:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total").labels(engine="seq-em")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match=">= 0"):
            reg.counter("c_total").labels().inc(-1)

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("g").labels(x=1)
        g.set(10)
        g.set(3)
        assert g.value == 3

    def test_highwater_keeps_max(self):
        hw = MetricsRegistry().highwater("hw").labels()
        hw.update(5)
        hw.update(2)
        hw.update(9)
        assert hw.value == 9

    def test_timer_sum_and_count(self):
        t = MetricsRegistry().timer("t_seconds").labels()
        t.observe(0.25)
        t.observe(0.5)
        assert t.value == pytest.approx(0.75)
        assert t.count == 2
        assert t.as_dict() == {"labels": {}, "sum": 0.75, "count": 2}


class TestRegistry:
    def test_same_labels_same_series(self):
        reg = MetricsRegistry()
        a = reg.counter("c").labels(engine="seq-em", p=1)
        b = reg.counter("c").labels(p=1, engine="seq-em")  # order-insensitive
        assert a is b
        a.inc()
        assert b.value == 1

    def test_distinct_labels_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("c").labels(p=1).inc()
        reg.counter("c").labels(p=2).inc(2)
        values = {tuple(s.labels.items()): s.value for s in reg["c"].series}
        assert values == {(("p", "1"),): 1, (("p", "2"),): 2}

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "9lead", "has-dash", "sp ace"):
            with pytest.raises(ValueError, match="invalid metric name"):
                reg.counter(bad)

    def test_contains_and_metrics_listing(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        assert "a" in reg and "b" in reg and "c" not in reg
        assert [m.name for m in reg.metrics] == ["a", "b"]


class TestExport:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("repro_ios_total", "parallel I/Os").labels(
            engine="seq-em", D=2
        ).inc(312)
        reg.timer("repro_compute_seconds").labels(engine="seq-em").observe(0.5)
        return reg

    def test_prometheus_text(self):
        text = self._populated().render_prometheus()
        assert "# HELP repro_ios_total parallel I/Os" in text
        assert "# TYPE repro_ios_total counter" in text
        assert 'repro_ios_total{D="2",engine="seq-em"} 312' in text
        # timers export as summary _sum/_count pairs
        assert "# TYPE repro_compute_seconds summary" in text
        assert 'repro_compute_seconds_sum{engine="seq-em"} 0.5' in text
        assert 'repro_compute_seconds_count{engine="seq-em"} 1' in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("c").labels(name='with "quotes" \\ and\nnewline').inc()
        text = reg.render_prometheus()
        assert '\\"quotes\\"' in text
        assert "\\n" in text and "\n and" not in text

    def test_snapshot_is_json_able(self):
        snap = self._populated().snapshot()
        round_trip = json.loads(json.dumps(snap))
        assert round_trip["repro_ios_total"]["kind"] == "counter"
        assert round_trip["repro_ios_total"]["series"][0]["value"] == 312
        assert round_trip["repro_compute_seconds"]["series"][0]["count"] == 1

    def test_write_json_vs_prometheus(self, tmp_path):
        reg = self._populated()
        jpath = tmp_path / "m.json"
        ppath = tmp_path / "m.prom"
        reg.write(str(jpath))
        reg.write(str(ppath))
        assert json.loads(jpath.read_text())["repro_ios_total"]["kind"] == "counter"
        assert "# TYPE repro_ios_total counter" in ppath.read_text()

    def test_write_file_object(self):
        buf = io.StringIO()
        self._populated().write(buf)
        assert "repro_ios_total" in buf.getvalue()


class TestNullRegistry:
    def test_disabled_and_silent(self):
        assert NULL_REGISTRY.enabled is False
        assert isinstance(NULL_REGISTRY, NullRegistry)
        # every kind/mutation is accepted and recorded nowhere
        NULL_REGISTRY.counter("c").labels(a=1).inc(5)
        NULL_REGISTRY.gauge("g").labels().set(3)
        NULL_REGISTRY.timer("t").labels().observe(0.1)
        NULL_REGISTRY.highwater("h").labels().update(9)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.render_prometheus() == ""


class ExplodingRegistry(MetricsRegistry):
    """Fails on any family access: proves call sites guard on .enabled."""

    enabled = False

    def _get(self, name, cls, help):  # pragma: no cover - should never run
        raise AssertionError("metrics accessed while disabled")


class TestEngineIntegration:
    def _sort(self, metrics):
        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=64)
        data = np.random.default_rng(5).integers(0, 2**50, cfg.N)
        return cfg, em_sort(data, cfg, metrics=metrics)

    def test_engine_populates_registry(self):
        reg = MetricsRegistry()
        cfg, res = self._sort(reg)
        series = reg["repro_parallel_ios_total"].series
        assert len(series) == 1
        s = series[0]
        # per-round counter: excludes the setup/finalize context I/O that
        # happens outside superstep groups, so bounded by the run total
        assert 0 < s.value <= res.report.io.parallel_ios
        assert s.labels["engine"] == "seq-em"
        assert s.labels["algorithm"] == "sample-sort"
        assert s.labels == {
            "engine": "seq-em",
            "algorithm": "sample-sort",
            "v": "4",
            "p": "1",
            "D": "2",
            "B": "64",
        }
        assert reg["repro_runs_total"].series[0].value == 1
        assert reg["repro_supersteps"].series[0].value == res.report.supersteps
        assert (
            reg["repro_context_blocks_total"].series[0].value
            == res.report.context_blocks_io
        )

    def test_registry_accumulates_across_runs(self):
        reg = MetricsRegistry()
        self._sort(reg)
        self._sort(reg)
        assert reg["repro_runs_total"].series[0].value == 2

    def test_disabled_metrics_never_touched(self):
        # default engines run with NULL_REGISTRY; an ExplodingRegistry with
        # enabled=False proves no family is created on the guarded paths.
        _, res = self._sort(ExplodingRegistry())
        assert res.report.io.parallel_ios > 0
