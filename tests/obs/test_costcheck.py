"""Cost-model cross-checks (Theorems 2/3) and the disk histograms.

The pinned envelope constant here (c = 8) is the acceptance bar: balanced
and direct EM sorting must land measured parallel I/Os inside
``[predicted/8, predicted*8]`` of the Theorem 3 count
``(v/p) * lambda * O((mu + h)/(D*B))``.  If an engine regression inflates
I/O by an order of magnitude — or an accounting bug deflates it — these
tests fail even though outputs stay correct.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort
from repro.obs.costcheck import (
    DEFAULT_ENVELOPE,
    crosscheck_report,
    predicted_supersteps,
    theorem3_io_envelope,
    theorem3_predicted_ios,
)
from repro.obs.histograms import DiskHistograms

PINNED_C = 8.0


def _sorted_run(engine="seq", balanced=False, p=1, n=1 << 14):
    cfg = MachineConfig(N=n, v=8, p=p, D=2, B=64)
    data = np.random.default_rng(21).integers(0, 2**50, n)
    return em_sort(data, cfg, engine=engine, balanced=balanced), cfg


class TestPredictions:
    def test_predicted_supersteps_exact(self):
        cfg = MachineConfig(N=1 << 12, v=8, p=2)
        assert predicted_supersteps(cfg, rounds=3, engine="seq-em") == 3
        assert predicted_supersteps(cfg, rounds=3, engine="par-em") == 12
        assert predicted_supersteps(cfg, 3, "par-em", balanced=True) == 24
        assert predicted_supersteps(cfg, 3, "in-memory") == 3

    def test_theorem3_io_scales(self):
        cfg = MachineConfig(N=1 << 14, v=8, D=2, B=64)
        one = theorem3_predicted_ios(cfg, rounds=1)
        four = theorem3_predicted_ios(cfg, rounds=4)
        assert four == pytest.approx(4 * one)
        # doubling D halves the predicted count
        cfg2 = MachineConfig(N=1 << 14, v=8, D=4, B=64)
        assert theorem3_predicted_ios(cfg2, 1) == pytest.approx(one / 2)
        # balanced routes messages twice: strictly more predicted I/O
        assert theorem3_predicted_ios(cfg, 2, balanced=True) > theorem3_predicted_ios(
            cfg, 2
        )

    def test_envelope_brackets_prediction(self):
        cfg = MachineConfig(N=1 << 14, v=8, D=2, B=64)
        lo, hi = theorem3_io_envelope(cfg, rounds=4, c=PINNED_C)
        pred = theorem3_predicted_ios(cfg, 4)
        assert lo == pytest.approx(pred / PINNED_C)
        assert hi == pytest.approx(pred * PINNED_C)
        assert DEFAULT_ENVELOPE == PINNED_C


class TestMeasuredWithinEnvelope:
    @pytest.mark.parametrize("balanced", [False, True], ids=["direct", "balanced"])
    def test_seq_sort_within_theorem3(self, balanced):
        out, cfg = _sorted_run(balanced=balanced)
        cc = crosscheck_report(out.report, cfg, balanced=balanced, c=PINNED_C)
        assert cc.ok, cc.render()
        io = cc["io_per_proc"]
        assert io.lo <= io.measured <= io.hi
        net = cc["network_items"]
        assert net.measured == 0 and net.hi == 0.0  # p=1: nothing on the net

    def test_par_sort_within_theorem3(self):
        out, cfg = _sorted_run(engine="par", p=2)
        cc = crosscheck_report(out.report, cfg, c=PINNED_C)
        assert cc.ok, cc.render()
        assert cc["network_items"].measured > 0

    def test_supersteps_check_is_exact(self):
        out, cfg = _sorted_run()
        cc = crosscheck_report(out.report, cfg)
        ss = cc["supersteps"]
        assert ss.lo == ss.hi == ss.measured

    def test_memory_engine_skips_io_checks(self):
        out, cfg = _sorted_run(engine="memory")
        cc = crosscheck_report(out.report, cfg)
        with pytest.raises(KeyError):
            cc["io_per_proc"]
        assert cc.ok


class TestViolationDetected:
    def test_inflated_io_fails_the_envelope(self):
        """A run whose I/O blows past c times the Theorem 3 count must be
        flagged — this is the regression the cross-check exists to catch."""
        out, cfg = _sorted_run()
        report = out.report
        factor = int(
            (PINNED_C * 2) * theorem3_predicted_ios(cfg, report.rounds)
            // max(report.io.parallel_ios, 1)
            + 1
        )
        report.io.parallel_ios *= factor
        if report.io_max.parallel_ios:
            report.io_max.parallel_ios *= factor
        cc = crosscheck_report(report, cfg, c=PINNED_C)
        assert not cc.ok
        names = {c.name for c in cc.failures()}
        assert "io_per_proc" in names or "io_total" in names
        assert "VIOLATED" in cc.render()

    def test_phantom_network_traffic_on_p1_fails(self):
        out, cfg = _sorted_run()
        out.report.cross_items = 10
        cc = crosscheck_report(out.report, cfg)
        assert not cc.ok
        assert cc["network_items"] in cc.failures()


class TestDiskHistograms:
    def test_staggered_writes_touch_all_disks(self):
        """Acceptance: the staggered message matrix keeps writes D-parallel
        — an EM sort's histogram shows most ops at width D and every disk
        servicing blocks."""
        cfg = MachineConfig(N=1 << 14, v=8, D=4, B=64)
        data = np.random.default_rng(21).integers(0, 2**50, cfg.N)
        out = em_sort(data, cfg)
        hist = DiskHistograms.from_stats(out.report.io, cfg.D)
        assert hist.full_width_fraction > 0.5
        assert hist.mean_width > 0.6 * cfg.D
        lo, hi = hist.min_max_blocks
        assert lo > 0  # no idle disk
        assert hist.imbalance < 1.5

    def test_width_accounting(self):
        h = DiskHistograms(D=3, per_disk_blocks=[5, 5, 2], width_counts=[0, 1, 1, 2])
        assert h.total_ops == 4
        assert h.full_width_ops == 2
        assert h.full_width_fraction == 0.5
        assert h.mean_width == pytest.approx((1 + 2 + 3 * 2) / 4)
        assert h.min_max_blocks == (2, 5)
        assert h.imbalance == pytest.approx(5 / 4)

    def test_from_stats_empty(self):
        from repro.pdm.io_stats import IOStats

        h = DiskHistograms.from_stats(IOStats(), D=2)
        assert h.total_ops == 0
        assert h.full_width_fraction == 1.0
        assert h.mean_width == 2.0

    def test_render_mentions_every_disk_and_width(self):
        h = DiskHistograms(D=2, per_disk_blocks=[3, 4], width_counts=[0, 1, 6])
        text = h.render()
        for needle in ("width  1", "width  2", "disk   0", "disk   1", "full-width"):
            assert needle in text, text
