"""The benchmark result store, its schema, and the regression gate."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort
from repro.obs.bench_store import (
    SCHEMA_VERSION,
    BenchStore,
    compare,
    load,
    validate_document,
)


def _store_with_run():
    cfg = MachineConfig(N=1 << 12, v=4, D=2, B=64)
    data = np.random.default_rng(7).integers(0, 2**50, cfg.N)
    res = em_sort(data, cfg)
    store = BenchStore("unit")
    store.record("sort/base", cfg=cfg, report=res.report, timings={"wall_s": 0.1})
    return store, cfg, res


class TestRecord:
    def test_report_fills_measured_and_predicted(self):
        store, cfg, res = _store_with_run()
        (pt,) = store.points
        assert pt["measured"]["parallel_ios"] == res.report.io.parallel_ios
        assert pt["measured"]["supersteps"] == res.report.supersteps
        assert pt["machine"]["N"] == cfg.N
        pred = pt["predicted"]
        assert pred["io_lo"] <= pred["parallel_ios_per_proc"] <= pred["io_hi"]
        # measured per-proc I/O lands inside the Theorem 2/3 envelope
        assert pred["io_lo"] <= res.report.io_max.parallel_ios <= pred["io_hi"]

    def test_explicit_dicts_merge_and_extra_kept(self):
        store = BenchStore("unit")
        pt = store.record(
            "x", measured={"a": 1}, predicted={"b": 2.0}, note="hello", k=3
        )
        assert pt["measured"] == {"a": 1}
        assert pt["predicted"] == {"b": 2.0}
        assert pt["extra"] == {"note": "hello", "k": 3}

    def test_document_schema_valid(self):
        store, _, _ = _store_with_run()
        doc = store.document()
        assert doc["schema_version"] == SCHEMA_VERSION
        assert validate_document(doc) == []

    def test_write_load_roundtrip(self, tmp_path):
        store, _, _ = _store_with_run()
        path = store.write(str(tmp_path))
        assert path.endswith("BENCH_unit.json")
        doc = load(path)
        assert doc["suite"] == "unit"
        assert doc["points"] == json.loads(json.dumps(store.points))

    def test_numpy_scalars_serialize(self, tmp_path):
        store = BenchStore("np")
        store.record("x", measured={"ios": np.int64(5), "t": np.float64(0.5)})
        doc = load(store.write(str(tmp_path)))
        assert doc["points"][0]["measured"] == {"ios": 5, "t": 0.5}


class TestValidation:
    def test_rejects_non_dict(self):
        assert validate_document([]) != []

    def test_missing_keys_reported(self):
        errs = validate_document({"suite": "s"})
        assert any("schema_version" in e for e in errs)
        assert any("points" in e for e in errs)

    def test_wrong_schema_version(self):
        store = BenchStore("s")
        store.record("x", measured={"a": 1})
        doc = store.document()
        doc["schema_version"] = 99
        assert any("schema_version" in e for e in validate_document(doc))

    def test_duplicate_point_names(self):
        store = BenchStore("s")
        store.record("x", measured={"a": 1})
        store.record("x", measured={"a": 2})
        assert any("duplicate" in e for e in validate_document(store.document()))

    def test_load_raises_on_invalid(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"suite": "bad"}))
        with pytest.raises(ValueError, match="invalid benchmark document"):
            load(str(path))


class TestCompare:
    def _doc(self, ios=100, wall=1.0, extra_point=False, name="sort"):
        store = BenchStore("cmp")
        store.record(name, measured={"parallel_ios": ios}, timings={"wall_s": wall})
        if extra_point:
            store.record("bonus", measured={"parallel_ios": 1})
        return store.document()

    def test_identical_runs_pass(self):
        res = compare(self._doc(), self._doc())
        assert res.ok
        assert res.compared_points == 1
        assert "OK" in res.render()

    def test_io_perturbation_fails_exact_gate(self):
        res = compare(self._doc(ios=100), self._doc(ios=110))
        assert not res.ok
        (m,) = res.regressions
        assert m.key == "parallel_ios" and m.kind == "measured"
        assert "REGRESSION" in res.render()

    def test_io_rtol_loosens_gate(self):
        assert compare(self._doc(ios=100), self._doc(ios=110), io_rtol=0.15).ok

    def test_timings_fuzzy_by_default(self):
        assert compare(self._doc(wall=1.0), self._doc(wall=1.4)).ok
        assert not compare(self._doc(wall=1.0), self._doc(wall=2.0)).ok

    def test_timings_skipped_when_none(self):
        assert compare(self._doc(wall=1.0), self._doc(wall=50.0), time_rtol=None).ok

    def test_missing_baseline_point_is_regression(self):
        res = compare(self._doc(extra_point=True), self._doc())
        assert not res.ok
        assert res.regressions[0].kind == "missing"

    def test_new_extra_points_are_fine(self):
        assert compare(self._doc(), self._doc(extra_point=True)).ok

    def test_missing_measured_key_is_regression(self):
        old = self._doc()
        new = self._doc()
        del new["points"][0]["measured"]["parallel_ios"]
        assert not compare(old, new).ok

    def test_non_numeric_measured_not_gated(self):
        old = self._doc()
        new = self._doc()
        old["points"][0]["measured"]["engine"] = "seq-em"
        new["points"][0]["measured"]["engine"] = "par-em"
        assert compare(old, new).ok

    def test_env_change_noted_not_gated(self):
        old = self._doc()
        new = self._doc()
        new["env"] = dict(new["env"], python="9.9.9")
        res = compare(old, new)
        assert res.ok
        assert "python" in res.env_changed
        assert "environment changed" in res.render()

    def test_invalid_document_raises(self):
        with pytest.raises(ValueError):
            compare({"nope": 1}, self._doc())
