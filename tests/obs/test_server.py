"""The live HTTP endpoint: /metrics content, SSE /events replay +
streaming, /healthz, and clean shutdown."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.bus import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import ObsServer


@pytest.fixture()
def served():
    bus = EventBus(monitor=False)
    reg = MetricsRegistry()
    srv = ObsServer(bus=bus, registry=reg).start()
    yield srv, bus, reg
    srv.close()
    bus.close()


def _get(url: str, timeout: float = 5.0) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()


class TestEndpoints:
    def test_port_zero_picks_a_free_port(self, served):
        srv, _, _ = served
        assert srv.port > 0
        assert srv.url == f"http://127.0.0.1:{srv.port}"

    def test_metrics_prometheus_text(self, served):
        srv, _, reg = served
        reg.counter("repro_parallel_ios_total", "PDM I/Os").labels(
            engine="seq-em"
        ).inc(42)
        status, ctype, body = _get(srv.url + "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain") and "version=0.0.4" in ctype
        assert '# TYPE repro_parallel_ios_total counter' in body
        assert 'repro_parallel_ios_total{engine="seq-em"} 42' in body

    def test_healthz_reports_counts(self, served):
        srv, bus, _ = served
        bus.emit("k")
        status, _, body = _get(srv.url + "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok", "events": 1, "subscribers": 0}

    def test_unknown_path_404(self, served):
        srv, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(srv.url + "/nope")
        assert exc.value.code == 404

    def test_metrics_503_without_registry(self):
        srv = ObsServer(bus=None, registry=None).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(srv.url + "/metrics")
            assert exc.value.code == 503
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(srv.url + "/events")
            assert exc.value.code == 503
        finally:
            srv.close()


def _read_frames(resp, want: int) -> list[dict]:
    """Parse SSE frames off a live response; returns *want* event dicts."""
    out: list[dict] = []
    data: list[str] = []
    for raw in resp:
        line = raw.decode().rstrip("\r\n")
        if line.startswith("data:"):
            data.append(line[len("data:"):].strip())
        elif line == "" and data:
            out.append(json.loads("\n".join(data)))
            data = []
            if len(out) >= want:
                return out
    return out


class TestSSE:
    def test_replays_buffer_then_streams_live(self, served):
        srv, bus, _ = served
        bus.emit("run_begin", engine="seq-em")
        bus.emit("superstep_end", superstep=4)
        req = urllib.request.Request(
            srv.url + "/events", headers={"Accept": "text/event-stream"}
        )
        with urllib.request.urlopen(req, timeout=5.0) as resp:
            assert resp.headers["Content-Type"] == "text/event-stream"
            replayed = _read_frames(resp, 2)
            assert [e["kind"] for e in replayed] == ["run_begin", "superstep_end"]
            # live phase: an event emitted after connect arrives next,
            # not duplicated by the replay
            t = threading.Timer(0.1, lambda: bus.emit("run_end"))
            t.start()
            (live,) = _read_frames(resp, 1)
            t.join()
            assert live["kind"] == "run_end"
            assert live["seq"] == 2

    def test_replay_opt_out(self, served):
        srv, bus, _ = served
        bus.emit("run_begin")
        req = urllib.request.Request(srv.url + "/events?replay=0")
        with urllib.request.urlopen(req, timeout=5.0) as resp:
            t = threading.Timer(0.1, lambda: bus.emit("superstep_end"))
            t.start()
            (first,) = _read_frames(resp, 1)
            t.join()
            assert first["kind"] == "superstep_end"

    def test_frames_carry_seq_ids(self, served):
        srv, bus, _ = served
        bus.emit("a")
        bus.emit("b")
        req = urllib.request.Request(srv.url + "/events")
        with urllib.request.urlopen(req, timeout=5.0) as resp:
            ids = []
            for raw in resp:
                line = raw.decode().rstrip("\r\n")
                if line.startswith("id:"):
                    ids.append(int(line[3:].strip()))
                    if len(ids) == 2:
                        break
            assert ids == [0, 1]


class TestShutdown:
    def test_close_is_idempotent_and_releases_port(self, served):
        srv, _, _ = served
        srv.close()
        srv.close()  # no error
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            _get(srv.url + "/healthz", timeout=1.0)

    def test_close_unblocks_streaming_client(self, served):
        srv, bus, _ = served
        done = threading.Event()

        def stream():
            try:
                req = urllib.request.Request(srv.url + "/events")
                with urllib.request.urlopen(req, timeout=30.0) as resp:
                    for _ in resp:
                        pass
            except Exception:
                pass
            done.set()

        t = threading.Thread(target=stream)
        t.start()
        # let the handler enter its poll loop, then shut down
        import time

        time.sleep(0.3)
        srv.close()
        bus.close()
        assert done.wait(timeout=10.0)
        t.join(timeout=5.0)
        assert not t.is_alive()

    def test_subscription_detached_after_client_disconnects(self, served):
        srv, bus, _ = served
        req = urllib.request.Request(srv.url + "/events")
        resp = urllib.request.urlopen(req, timeout=5.0)
        import time

        time.sleep(0.2)
        assert bus.subscriptions == 1
        resp.close()
        deadline = time.monotonic() + 5.0
        while bus.subscriptions and time.monotonic() < deadline:
            bus.emit("poke")  # a write to the dead socket surfaces the close
            time.sleep(0.1)
        assert bus.subscriptions == 0
