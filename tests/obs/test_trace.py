"""The trace recorder, its exporters, and the engines' event emission."""

from __future__ import annotations

import io
import json

import numpy as np

from repro.cgm.config import MachineConfig
from repro.em.runner import em_run, em_sort
from repro.obs.chrome import to_chrome_events
from repro.obs.trace import (
    NULL_RECORDER,
    JsonlRecorder,
    NullRecorder,
    read_jsonl,
)


def _traced_sort(cfg=None, **kw):
    cfg = cfg or MachineConfig(N=1 << 12, v=4, D=2, B=64)
    data = np.random.default_rng(5).integers(0, 2**50, cfg.N)
    tr = JsonlRecorder()
    out = em_sort(data, cfg, tracer=tr, **kw)
    return tr, out


class TestRecorderSemantics:
    def test_null_recorder_is_disabled_and_silent(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.emit("anything", x=1)  # no-op, no error

    def test_jsonl_recorder_orders_events(self):
        tr = JsonlRecorder()
        tr.emit("a", x=1)
        tr.emit("b", y=None)
        assert [e["seq"] for e in tr.events] == [0, 1]
        assert tr.events[0]["ts"] <= tr.events[1]["ts"]
        assert tr.counts() == {"a": 1, "b": 1}

    def test_numpy_tags_serialize(self, tmp_path):
        tr = JsonlRecorder()
        tr.emit("k", n=np.int64(7), f=np.float64(0.5))
        p = tmp_path / "t.jsonl"
        assert tr.write_jsonl(str(p)) == 1
        (ev,) = read_jsonl(str(p))
        assert ev["n"] == 7 and ev["f"] == 0.5


class TestEngineEmission:
    EXPECTED_KINDS = {
        "run_begin",
        "superstep_begin",
        "compute_round",
        "context_read",
        "context_write",
        "message_write",
        "message_read",
        "superstep_end",
        "run_end",
    }

    def test_seq_sort_emits_every_kind(self):
        tr, _ = _traced_sort()
        kinds = set(tr.counts())
        assert self.EXPECTED_KINDS <= kinds
        # single real processor: nothing crosses the network
        assert "network_transfer" not in kinds

    def test_events_tagged_with_processor_and_superstep(self):
        tr, out = _traced_sort()
        begin = [e for e in tr.events if e["kind"] == "superstep_begin"]
        end = [e for e in tr.events if e["kind"] == "superstep_end"]
        assert len(begin) == len(end) == out.report.supersteps
        assert [e["superstep"] for e in begin] == list(range(len(begin)))
        computes = [e for e in tr.events if e["kind"] == "compute_round"]
        assert {e["pid"] for e in computes} == set(range(4))
        assert all(e["real"] == 0 for e in computes)

    def test_superstep_end_io_deltas_match_per_round_metrics(self):
        """Each superstep_end carries the same I/O delta the cost report
        records for that round (setup/teardown I/O — initial context stores,
        final output loads — happens outside any superstep, so the deltas
        sum to less than the run total)."""
        tr, out = _traced_sort()
        ends = [e for e in tr.events if e["kind"] == "superstep_end"]
        per_round = [rm.io.parallel_ios for rm in out.report.per_round if rm.io]
        assert [e["parallel_ios"] for e in ends] == per_round
        assert 0 < sum(per_round) <= out.report.io.parallel_ios

    def test_layout_tags(self):
        tr, _ = _traced_sort()
        ctx_layouts = {
            e["layout"] for e in tr.events if e["kind"].startswith("context_")
        }
        assert ctx_layouts == {"consecutive"}
        msg_layouts = {
            e["layout"] for e in tr.events if e["kind"] == "message_write"
        }
        assert "staggered" in msg_layouts

    def test_message_writes_alternate_parity(self):
        tr, _ = _traced_sort()
        by_round: dict[int, set[int]] = {}
        for e in tr.events:
            if e["kind"] == "superstep_begin":
                current = e["round"]
            elif e["kind"] == "message_write" and e.get("layout") == "staggered":
                by_round.setdefault(current, set()).add(e["parity"])
        parities = [p for r, ps in sorted(by_round.items()) for p in sorted(ps)]
        assert all(p in (0, 1) for p in parities)
        assert len(set(parities)) == 2  # both copies of the matrix used

    def test_vm_engine_uses_paged_layout(self):
        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=64)
        data = np.random.default_rng(5).integers(0, 2**50, cfg.N)
        tr = JsonlRecorder()
        em_sort(data, cfg, engine="vm", tracer=tr)
        layouts = {e.get("layout") for e in tr.events if "layout" in e}
        assert layouts == {"paged"}

    def test_par_engine_emits_network_transfers(self):
        cfg = MachineConfig(N=1 << 12, v=4, p=2, D=2, B=64)
        data = np.random.default_rng(5).integers(0, 2**50, cfg.N)
        tr = JsonlRecorder()
        out = em_sort(data, cfg, engine="par", tracer=tr)
        net = [e for e in tr.events if e["kind"] == "network_transfer"]
        assert net, "p=2 sort sent no cross-processor messages?"
        assert all(e["src_real"] != e["dest_real"] for e in net)
        assert sum(e["items"] for e in net) == out.report.cross_items

    def test_memory_engine_traces_without_io_events(self):
        from repro.algorithms.collectives import PrefixSum

        cfg = MachineConfig(N=4, v=4)
        tr = JsonlRecorder()
        em_run(PrefixSum(), [1.0, 2.0, 3.0, 4.0], cfg, engine="memory", tracer=tr)
        kinds = set(tr.counts())
        assert {"run_begin", "superstep_begin", "compute_round", "run_end"} <= kinds
        assert not kinds & {"context_read", "context_write", "message_write"}


class TestDisabledPathIsInert:
    def test_emit_never_called_when_disabled(self):
        class Exploding(NullRecorder):
            def emit(self, kind, **tags):  # pragma: no cover - must not run
                raise AssertionError("guarded call site invoked a disabled recorder")

        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=64)
        data = np.random.default_rng(5).integers(0, 2**50, cfg.N)
        for kind in ("memory", "vm", "seq"):
            out = em_sort(data, cfg, engine=kind, tracer=Exploding())
            assert np.array_equal(out.values, np.sort(data))

    def test_traced_and_untraced_runs_identical(self):
        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=64)
        data = np.random.default_rng(5).integers(0, 2**50, cfg.N)
        plain = em_sort(data, cfg)
        traced = em_sort(data, cfg, tracer=JsonlRecorder())
        assert np.array_equal(plain.values, traced.values)
        assert plain.report.io.parallel_ios == traced.report.io.parallel_ios
        assert plain.report.supersteps == traced.report.supersteps


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        tr, _ = _traced_sort()
        p = tmp_path / "trace.jsonl"
        n = tr.write_jsonl(str(p))
        loaded = read_jsonl(str(p))
        assert len(loaded) == n == len(tr.events)
        assert loaded[0]["kind"] == "run_begin"
        assert loaded[-1]["kind"] == "run_end"

    def test_chrome_export_is_valid_json_array(self, tmp_path):
        tr, _ = _traced_sort()
        p = tmp_path / "trace.json"
        n = tr.write_chrome(str(p))
        with open(p, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert isinstance(doc, list) and len(doc) == n
        phases = {e["ph"] for e in doc}
        assert {"B", "E", "X", "i"} <= phases
        for e in doc:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(e)

    def test_chrome_begin_end_pairs_balance(self):
        tr, out = _traced_sort()
        chrome = to_chrome_events(tr.events)
        b = sum(1 for e in chrome if e["ph"] == "B")
        e_ = sum(1 for e in chrome if e["ph"] == "E")
        assert b == e_ == out.report.supersteps

    def test_chrome_drops_unknown_kinds(self):
        tr = JsonlRecorder()
        tr.emit("mystery_kind", x=1)
        assert to_chrome_events(tr.events) == []

    def test_write_to_file_object(self):
        tr, _ = _traced_sort()
        buf = io.StringIO()
        tr.write_chrome(buf)
        json.loads(buf.getvalue())  # parses
        buf2 = io.StringIO()
        tr.write_jsonl(buf2)
        lines = [ln for ln in buf2.getvalue().splitlines() if ln]
        assert len(lines) == len(tr.events)
