"""The cross-worker critical-path profiler: per-superstep attribution,
per-worker lanes, straggler detection, and the IOStats tie-out."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort
from repro.obs.analyze import analyze_events
from repro.obs.bus import EventBus
from repro.util.rng import make_rng


def _traced_sort(cfg: MachineConfig, seed: int = 0):
    data = make_rng(seed).integers(0, 2**50, cfg.N)
    bus = EventBus()
    res = em_sort(data, cfg, engine="par" if cfg.p > 1 else "seq", tracer=bus)
    assert np.array_equal(res.values, np.sort(data))
    return bus, res


class TestWorkerLanes:
    """Acceptance scenario: fig5 group-A shape under ProcessParEngine."""

    CFG = MachineConfig(N=1 << 14, v=8, p=2, D=2, B=64, workers=2)

    def test_per_worker_lanes_and_bit_identical_totals(self):
        bus, res = _traced_sort(self.CFG)
        a = analyze_events(bus.events)
        cp = a.critical_path()
        # one lane per real processor, each labeled with its OS worker
        assert set(cp["lanes"]) == {"r0/w0", "r1/w1"}
        for row in cp["rows"]:
            assert set(row["lanes"]) == {"r0/w0", "r1/w1"}
            assert row["critical_lane"] in ("r0/w0", "r1/w1")
            assert row["straggler"] >= 1.0
            assert row["wall_s"] > 0.0
        # totals tie out bit-identically to the run's IOStats counters
        t = cp["totals"]
        assert t["run_parallel_ios"] == res.report.io.parallel_ios
        assert (
            t["superstep_parallel_ios"] + t["setup_parallel_ios"]
            == res.report.io.parallel_ios
        )
        assert t["superstep_parallel_ios"] == sum(
            e["parallel_ios"] for e in bus.events if e["kind"] == "superstep_end"
        )

    def test_attribution_columns_present_per_superstep(self):
        bus, res = _traced_sort(self.CFG, seed=1)
        a = analyze_events(bus.events)
        cp = a.critical_path()
        assert len(cp["rows"]) == len(a.rows) > 0
        for row in cp["rows"]:
            for key in ("comp_s", "io_s", "comm_s", "wall_s", "parallel_ios"):
                assert row[key] >= 0
        # io attribution covers real block traffic
        assert any(row["io_s"] > 0 for row in cp["rows"])
        assert any(row["comm_s"] > 0 for row in cp["rows"])

    def test_render_mentions_lanes_and_tieout(self):
        bus, res = _traced_sort(self.CFG, seed=2)
        a = analyze_events(bus.events)
        out = a.render_critical_path()
        assert "r0/w0" in out and "r1/w1" in out
        assert f"= {res.report.io.parallel_ios} (IOStats run total)" in out
        assert "top-" in out and "slowest rounds" in out


class TestSingleProcessLanes:
    @pytest.fixture(autouse=True)
    def _single_process(self, monkeypatch):
        """These pin the in-process backend; the REPRO_WORKERS env lane
        would otherwise force OS workers and relabel the lanes."""
        monkeypatch.delenv("REPRO_WORKERS", raising=False)

    def test_inprocess_par_lanes_have_no_worker_suffix(self):
        cfg = MachineConfig(N=1 << 13, v=8, p=2, D=2, B=64)
        bus, _ = _traced_sort(cfg)
        cp = analyze_events(bus.events).critical_path()
        assert set(cp["lanes"]) == {"r0", "r1"}

    def test_seq_engine_single_lane(self):
        cfg = MachineConfig(N=1 << 13, v=8, p=1, D=2, B=64)
        bus, _ = _traced_sort(cfg)
        cp = analyze_events(bus.events).critical_path()
        assert set(cp["lanes"]) == {"r0"}

    def test_counters_match_across_backends(self):
        """The profiler input is deterministic: same attribution counters
        whether workers ran in-process or as OS processes."""
        cfg = MachineConfig(N=1 << 13, v=8, p=2, D=2, B=64)
        rows = []
        for workers in (0, 2):
            bus, _ = _traced_sort(cfg.with_(workers=workers), seed=3)
            cp = analyze_events(bus.events).critical_path()
            rows.append(
                [
                    (r["round"], r["parallel_ios"])
                    for r in cp["rows"]
                ]
            )
        assert rows[0] == rows[1]


class TestTopK:
    def test_top_k_limits_slowest_list(self):
        cfg = MachineConfig(N=1 << 14, v=8, p=2, D=2, B=64)
        bus, _ = _traced_sort(cfg, seed=4)
        a = analyze_events(bus.events)
        assert len(a.critical_path(top=2)["slowest"]) == 2
        assert len(a.critical_path(top=0)["slowest"]) == 0
        full = a.critical_path(top=100)["slowest"]
        assert len(full) == len(a.rows)
        walls = {r["round"]: r["wall_s"] for r in a.critical_path()["rows"]}
        assert walls[full[0]] == max(walls.values())

    def test_drift_rows_flagged(self):
        cfg = MachineConfig(N=1 << 13, v=8, p=2, D=2, B=64)
        data = make_rng(5).integers(0, 2**50, cfg.N)
        bus = EventBus(envelope_c=0.01)  # squeeze so every round drifts
        em_sort(data, cfg, engine="par", tracer=bus)
        a = analyze_events(bus.events)
        cp = a.critical_path()
        assert cp["drift_count"] > 0
        assert any(r["drift"] for r in cp["rows"])
        assert "DRIFT" in a.render_critical_path()
