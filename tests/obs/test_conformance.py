"""The streaming model-conformance monitor: budget derivation from the
run header, synthetic drift, and live drift during a real engine run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort
from repro.obs.bus import EventBus
from repro.obs.conformance import ConformanceMonitor
from repro.obs.costcheck import DEFAULT_ENVELOPE, theorem3_predicted_ios
from repro.util.rng import make_rng

_HEADER = dict(
    engine="seq-em", program="x", N=1 << 14, v=8, p=1, D=2, B=64, M=None,
    workers=0, balanced=False,
)


class TestBudgetConfiguration:
    def test_budget_from_run_header(self):
        bus = EventBus(monitor=False)
        mon = ConformanceMonitor(bus)
        mon.on_event({"kind": "run_begin", **_HEADER})
        cfg = MachineConfig(N=1 << 14, v=8, p=1, D=2, B=64)
        want = theorem3_predicted_ios(cfg, 1, False)
        assert mon.predicted_ios == pytest.approx(want)
        assert mon.budget == pytest.approx(want * DEFAULT_ENVELOPE)

    def test_p_scales_the_budget(self):
        mon = ConformanceMonitor(EventBus(monitor=False))
        mon.on_event({"kind": "run_begin", **{**_HEADER, "engine": "par-em", "p": 2}})
        cfg = MachineConfig(N=1 << 14, v=8, p=2, D=2, B=64)
        assert mon.predicted_ios == pytest.approx(
            theorem3_predicted_ios(cfg, 1, False) * 2
        )

    def test_custom_envelope(self):
        mon = ConformanceMonitor(EventBus(monitor=False), envelope_c=2.0)
        mon.on_event({"kind": "run_begin", **_HEADER})
        assert mon.budget == pytest.approx(mon.predicted_ios * 2.0)

    @pytest.mark.parametrize("engine", ["memory", "vm", "weird"])
    def test_non_em_engines_disarm(self, engine):
        mon = ConformanceMonitor(EventBus(monitor=False))
        mon.on_event({"kind": "run_begin", **{**_HEADER, "engine": engine}})
        assert mon.budget is None
        mon.on_event({"kind": "superstep_end", "parallel_ios": 10**9})
        assert mon.drift_events == 0

    def test_malformed_header_disarms(self):
        mon = ConformanceMonitor(EventBus(monitor=False))
        mon.on_event({"kind": "run_begin", "engine": "seq-em", "N": "big"})
        assert mon.budget is None


class TestSyntheticDrift:
    def _armed(self, envelope_c=None):
        bus = EventBus(monitor=False)
        mon = ConformanceMonitor(bus, envelope_c=envelope_c)
        bus.add_listener(mon.on_event)
        bus.emit("run_begin", **_HEADER)
        return bus, mon

    def test_within_budget_stays_silent(self):
        bus, mon = self._armed()
        bus.emit("superstep_end", round=0, superstep=1, parallel_ios=1)
        assert mon.supersteps_checked == 1 and mon.drift_events == 0
        assert all(e["kind"] != "model_drift" for e in bus.events)

    def test_over_budget_emits_model_drift_immediately(self):
        bus, mon = self._armed()
        heavy = int(mon.budget) + 1
        bus.emit("superstep_end", round=3, superstep=12, parallel_ios=heavy)
        bus.emit("run_end", engine="seq-em")
        kinds = [e["kind"] for e in bus.events]
        # the drift event lands right after its superstep, before run_end
        assert kinds.index("model_drift") == kinds.index("superstep_end") + 1
        drift = next(e for e in bus.events if e["kind"] == "model_drift")
        assert drift["round"] == 3 and drift["superstep"] == 12
        assert drift["parallel_ios"] == heavy
        assert drift["budget"] == pytest.approx(mon.budget)
        assert drift["envelope_c"] == DEFAULT_ENVELOPE

    def test_drift_visible_to_subscribers_before_run_end(self):
        bus, mon = self._armed()
        sub = bus.subscribe(kinds={"model_drift", "run_end"})
        bus.emit("superstep_end", round=0, superstep=4,
                 parallel_ios=int(mon.budget) + 1)
        bus.emit("run_end", engine="seq-em")
        assert sub.get(timeout=0)["kind"] == "model_drift"
        assert sub.get(timeout=0)["kind"] == "run_end"

    def test_every_heavy_superstep_drifts(self):
        bus, mon = self._armed(envelope_c=1.0)
        heavy = int(mon.budget) + 1
        for r in range(3):
            bus.emit("superstep_end", round=r, superstep=4 * (r + 1),
                     parallel_ios=heavy)
        assert mon.drift_events == 3
        assert sum(e["kind"] == "model_drift" for e in bus.events) == 3


class TestLiveRuns:
    def test_default_bus_attaches_monitor_and_real_run_conforms(self):
        bus = EventBus()
        assert bus.monitor is not None
        data = make_rng(0).integers(0, 2**50, 1 << 13)
        cfg = MachineConfig(N=1 << 13, v=8, p=2, D=2, B=64)
        em_sort(data, cfg, engine="par", tracer=bus)
        assert bus.monitor.supersteps_checked > 0
        # a healthy sort stays inside the Theorem 3 envelope
        assert bus.monitor.drift_events == 0
        assert all(e["kind"] != "model_drift" for e in bus.events)

    def test_injected_heavy_superstep_drifts_before_run_end(self):
        """Acceptance: squeeze the envelope so a real superstep exceeds its
        budget; model_drift must appear in-stream before run_end."""
        bus = EventBus(envelope_c=0.01)
        data = make_rng(1).integers(0, 2**50, 1 << 13)
        cfg = MachineConfig(N=1 << 13, v=8, p=2, D=2, B=64)
        res = em_sort(data, cfg, engine="par", tracer=bus)
        assert np.array_equal(res.values, np.sort(data))
        kinds = [e["kind"] for e in bus.events]
        assert "model_drift" in kinds
        assert kinds.index("model_drift") < kinds.index("run_end")
        drift = next(e for e in bus.events if e["kind"] == "model_drift")
        ss = next(
            e for e in bus.events
            if e["kind"] == "superstep_end" and e["round"] == drift["round"]
        )
        assert drift["parallel_ios"] == ss["parallel_ios"]

    def test_drift_is_deterministic_across_backends(self):
        data = make_rng(2).integers(0, 2**50, 1 << 12)
        cfg = MachineConfig(N=1 << 12, v=4, p=2, D=2, B=64)
        drifts = []
        for workers in (0, 2):
            bus = EventBus(envelope_c=0.01)
            em_sort(data, cfg.with_(workers=workers), engine="par", tracer=bus)
            drifts.append([
                (e["round"], e["parallel_ios"])
                for e in bus.events
                if e["kind"] == "model_drift"
            ])
        assert drifts[0] and drifts[0] == drifts[1]
