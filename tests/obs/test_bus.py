"""The telemetry bus: span threading, subscriptions, backpressure, the
disabled path's no-op guarantee, and the REPRO_TRACE knob."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort, make_engine
from repro.obs.bus import NULL_BUS, EventBus, NullBus, Subscription, bus_from_env
from repro.obs.trace import NULL_RECORDER, JsonlRecorder, NullRecorder
from repro.util.rng import make_rng


def _bus(**kw) -> EventBus:
    kw.setdefault("monitor", False)
    return EventBus(**kw)


class TestSpanThreading:
    def test_openers_nest_and_closers_pop(self):
        bus = _bus()
        bus.emit("run_begin")
        bus.emit("superstep_begin", superstep=0)
        bus.emit("compute_round", pid=0)
        bus.emit("superstep_end", superstep=0)
        bus.emit("run_end")
        run_b, ss_b, comp, ss_e, run_e = bus.events
        assert run_b["span"] == 0 and "parent" not in run_b
        assert ss_b["span"] == 1 and ss_b["parent"] == 0
        assert comp["span"] == 1  # tagged with the enclosing superstep
        assert ss_e["span"] == 1 and ss_e["parent"] == 0
        assert run_e["span"] == 0

    def test_explicit_span_contextmanager(self):
        bus = _bus()
        bus.emit("run_begin")
        with bus.span("shuffle", round=2):
            bus.emit("message_write", pid=0)
        kinds = [e["kind"] for e in bus.events]
        assert kinds == ["run_begin", "span_begin", "message_write", "span_end"]
        sb, mw, se = bus.events[1:]
        assert sb["name"] == "shuffle" and sb["round"] == 2
        assert sb["parent"] == 0 and mw["span"] == sb["span"] == se["span"]

    def test_span_ids_are_deterministic(self):
        a, b = _bus(), _bus()
        for bus in (a, b):
            bus.emit("run_begin")
            bus.emit("superstep_begin", superstep=0)
            bus.emit("superstep_end", superstep=0)
        assert [e["span"] for e in a.events] == [e["span"] for e in b.events]

    def test_drop_in_recorder_compat(self, tmp_path):
        """EventBus must behave as a JsonlRecorder for every export path."""
        bus = _bus()
        assert isinstance(bus, JsonlRecorder)
        bus.emit("run_begin")
        bus.emit("run_end")
        p = tmp_path / "t.jsonl"
        assert bus.write_jsonl(str(p)) == 2
        assert bus.counts() == {"run_begin": 1, "run_end": 1}


class TestSubscriptions:
    def test_delivery_in_order(self):
        bus = _bus()
        sub = bus.subscribe()
        for i in range(5):
            bus.emit("k", i=i)
        got = [sub.get(timeout=0) for _ in range(5)]
        assert [e["i"] for e in got] == list(range(5))
        assert sub.get(timeout=0) is None

    def test_kind_filter(self):
        bus = _bus()
        sub = bus.subscribe(kinds={"superstep_end"})
        bus.emit("compute_round")
        bus.emit("superstep_end", superstep=0)
        ev = sub.get(timeout=0)
        assert ev["kind"] == "superstep_end"
        assert sub.get(timeout=0) is None

    def test_bounded_queue_drops_oldest(self):
        bus = _bus()
        sub = bus.subscribe(maxlen=3)
        for i in range(10):
            bus.emit("k", i=i)
        assert sub.dropped == 7
        got = list(iter(lambda: sub.get(timeout=0), None))
        assert [e["i"] for e in got] == [7, 8, 9]

    def test_slow_consumer_never_blocks_emit(self):
        bus = _bus()
        bus.subscribe(maxlen=1)  # never drained
        for i in range(1000):
            bus.emit("k", i=i)  # must not deadlock
        assert len(bus.events) == 1000

    def test_close_detaches_and_wakes_blocked_get(self):
        bus = _bus()
        sub = bus.subscribe()
        got = []
        t = threading.Thread(target=lambda: got.append(sub.get(timeout=30)))
        t.start()
        sub.close()
        t.join(timeout=5)
        assert not t.is_alive() and got == [None]
        assert bus.subscriptions == 0
        sub.close()  # idempotent

    def test_iter_drains_then_stops_on_close(self):
        bus = _bus()
        sub = bus.subscribe()
        bus.emit("a")
        bus.emit("b")
        sub.close()
        assert [e["kind"] for e in sub] == ["a", "b"]

    def test_bus_close_closes_subscriptions(self):
        bus = _bus()
        sub = bus.subscribe()
        bus.close()
        assert sub.closed

    def test_bad_maxlen_rejected(self):
        with pytest.raises(ValueError):
            Subscription(None, maxlen=0)


class TestListeners:
    def test_listener_emission_is_sequenced_after_trigger(self):
        bus = _bus()

        def react(ev):
            if ev["kind"] == "superstep_end":
                bus.emit("model_drift", round=ev.get("round"))

        bus.add_listener(react)
        sub = bus.subscribe()
        bus.emit("superstep_end", round=0)
        kinds = [e["kind"] for e in bus.events]
        assert kinds == ["superstep_end", "model_drift"]
        # subscribers observe the same order
        assert [sub.get(timeout=0)["kind"] for _ in range(2)] == kinds

    def test_listener_errors_counted_not_raised(self):
        bus = _bus()
        bus.add_listener(lambda ev: 1 / 0)
        bus.emit("k")
        assert bus.listener_errors == 1 and len(bus.events) == 1

    def test_remove_listener(self):
        bus = _bus()
        seen = []
        cb = seen.append
        bus.add_listener(cb)
        bus.emit("a")
        bus.remove_listener(cb)
        bus.emit("b")
        assert [e["kind"] for e in seen] == ["a"]


class TestSink:
    def test_path_sink_streams_and_flushes_per_event(self, tmp_path):
        p = tmp_path / "live.jsonl"
        bus = _bus(sink=str(p))
        bus.emit("run_begin")
        # visible immediately, before close — that's what --follow tails
        lines = p.read_text().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["kind"] == "run_begin"
        bus.close()

    def test_record_off_keeps_nothing(self):
        bus = _bus(record=False)
        bus.emit("k")
        assert bus.events == []


class TestDisabledPath:
    """Tentpole guarantee: bus off == pre-bus NULL_RECORDER, exactly."""

    def test_null_bus_is_a_null_recorder(self):
        assert isinstance(NULL_BUS, NullRecorder)
        assert NULL_BUS.enabled is False
        NULL_BUS.emit("anything", x=1)  # silent no-op
        with NULL_BUS.span("region"):  # no events, no stack
            pass

    def test_null_bus_allocates_no_queues_or_spans(self):
        assert not hasattr(NULL_BUS, "_subs")
        assert not hasattr(NULL_BUS, "_span_stack")
        assert not hasattr(NULL_BUS, "events")

    def test_subscribe_on_disabled_bus_is_a_caller_bug(self):
        with pytest.raises(RuntimeError):
            NULL_BUS.subscribe()
        with pytest.raises(RuntimeError):
            NULL_BUS.add_listener(lambda ev: None)

    def test_engines_default_to_disabled_recorder(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=64)
        eng = make_engine(cfg, "seq")
        assert eng.tracer.enabled is False

    def test_untraced_run_emits_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        data = make_rng(0).integers(0, 2**40, 1 << 12)
        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=64)
        res = em_sort(data, cfg)
        assert np.array_equal(res.values, np.sort(data))


class TestEnvKnob:
    @pytest.mark.parametrize("val", ["", "0", "false", "off", "no"])
    def test_false_tokens_stay_off(self, monkeypatch, val):
        monkeypatch.setenv("REPRO_TRACE", val)
        assert bus_from_env() is None

    def test_unset_stays_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert bus_from_env() is None

    @pytest.mark.parametrize("val", ["1", "true", "on"])
    def test_true_tokens_record_in_memory(self, monkeypatch, val):
        monkeypatch.setenv("REPRO_TRACE", val)
        bus = bus_from_env()
        assert isinstance(bus, EventBus) and bus._sink is None
        bus.close()

    def test_other_value_is_a_sink_path(self, monkeypatch, tmp_path):
        p = tmp_path / "stream.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(p))
        bus = bus_from_env()
        bus.emit("k")
        bus.close()
        assert json.loads(p.read_text())["kind"] == "k"

    def test_make_engine_installs_bus_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=64)
        eng = make_engine(cfg, "seq")
        assert isinstance(eng.tracer, EventBus)

    def test_env_traced_run_records_events(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        data = make_rng(1).integers(0, 2**40, 1 << 12)
        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=64)
        eng = make_engine(cfg, "seq")
        assert isinstance(eng.tracer, EventBus)

    def test_explicit_tracer_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        tr = JsonlRecorder()
        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=64)
        eng = make_engine(cfg, "seq", tracer=tr)
        assert eng.tracer is tr


class TestEngineIntegration:
    def test_subscriber_sees_live_superstep_stream(self):
        bus = EventBus()
        sub = bus.subscribe(kinds={"superstep_end"}, maxlen=64)
        data = make_rng(2).integers(0, 2**50, 1 << 13)
        cfg = MachineConfig(N=1 << 13, v=8, p=2, D=2, B=64)
        res = em_sort(data, cfg, engine="par", tracer=bus)
        ends = list(iter(lambda: sub.get(timeout=0), None))
        assert len(ends) == len(
            [e for e in bus.events if e["kind"] == "superstep_end"]
        )
        assert sum(e["parallel_ios"] for e in ends) <= res.report.io.parallel_ios

    def test_worker_events_are_parented_into_round_spans(self):
        data = make_rng(3).integers(0, 2**50, 1 << 12)
        cfg = MachineConfig(N=1 << 12, v=4, p=2, D=2, B=64, workers=2)
        bus = EventBus()
        em_sort(data, cfg, engine="par", tracer=bus)
        by_kind: dict = {}
        for ev in bus.events:
            by_kind.setdefault(ev["kind"], []).append(ev)
        run_span = by_kind["run_begin"][0]["span"]
        ss_spans = {e["span"] for e in by_kind["superstep_begin"]}
        for ev in by_kind["compute_round"]:
            assert "worker" in ev and ev["span"] in ss_spans
        for e in by_kind["superstep_begin"]:
            assert e["parent"] == run_span

    def test_null_bus_run_matches_null_recorder_run(self):
        """Same engine, NULL_BUS vs NULL_RECORDER: identical results."""
        data = make_rng(4).integers(0, 2**50, 1 << 12)
        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=64)
        a = em_sort(data, cfg, tracer=NULL_BUS)
        b = em_sort(data, cfg, tracer=NULL_RECORDER)
        assert np.array_equal(a.values, b.values)
        assert a.report.io.as_dict() == b.report.io.as_dict()

    def test_null_bus_type_sanity(self):
        assert isinstance(NULL_BUS, NullBus)
