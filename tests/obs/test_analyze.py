"""Per-superstep trace analysis against the Theorem 2/3 envelopes."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort
from repro.obs.analyze import analyze_events, analyze_file
from repro.obs.trace import JsonlRecorder


def _traced_sort(p=1, **kw):
    cfg = MachineConfig(N=1 << 12, v=4, p=p, D=2, B=64)
    data = np.random.default_rng(11).integers(0, 2**50, cfg.N)
    tr = JsonlRecorder()
    res = em_sort(data, cfg, engine="par" if p > 1 else "seq", tracer=tr, **kw)
    return tr, res, cfg


class TestAggregation:
    def test_one_row_per_cgm_round_with_io_split(self):
        tr, res, cfg = _traced_sort()
        out = analyze_events(tr.events)
        assert out.engine == "seq-em"
        assert out.program == "sample-sort"
        assert out.machine["N"] == cfg.N and out.machine["p"] == 1
        assert len(out.rows) == res.report.rounds
        # per-round counts exclude the setup/finalize context I/O issued
        # outside superstep groups: positive and bounded by the run totals
        assert 0 < sum(r.parallel_ios for r in out.rows) <= res.report.io.parallel_ios
        assert 0 < sum(r.ctx_blocks for r in out.rows) <= res.report.context_blocks_io
        assert 0 < sum(r.msg_blocks for r in out.rows) <= res.report.message_blocks_io
        assert out.setup_events > 0
        # width distribution came through superstep_end
        assert all(r.width_hist for r in out.rows)
        assert all(0 < r.mean_width <= cfg.D for r in out.rows)

    def test_within_theorem_envelope(self):
        tr, _, _ = _traced_sort()
        out = analyze_events(tr.events)
        assert all(r.predicted_ios is not None for r in out.rows)
        assert all(r.io_ok for r in out.rows)
        assert out.ok and out.violations() == []

    def test_envelope_scales_with_p(self):
        tr, res, cfg = _traced_sort(p=2)
        out = analyze_events(tr.events)
        assert out.engine == "par-em"
        # one analysis group per CGM round; the superstep column counts the
        # cumulative v/p real supersteps of Lemma 4's blow-up
        assert len(out.rows) == res.report.rounds
        assert out.rows[-1].superstep == res.report.supersteps
        assert out.ok

    def test_violation_flagged_when_envelope_tight(self):
        tr, _, _ = _traced_sort()
        out = analyze_events(tr.events, envelope_c=1.0001)
        assert not out.ok
        assert len(out.violations()) >= 1
        assert "VIOLATED" in out.render()

    def test_compute_and_critical_path(self):
        tr, _, _ = _traced_sort(p=2)
        out = analyze_events(tr.events)
        for r in out.rows:
            assert r.compute_sum_s >= r.compute_s >= 0
            assert r.critical_real in r.per_real_wall or not r.per_real_wall

    def test_network_items_counted_for_par(self):
        tr, res, _ = _traced_sort(p=4)
        out = analyze_events(tr.events)
        assert sum(r.net_items for r in out.rows) == res.report.cross_items


class TestRobustness:
    def test_empty_event_list(self):
        out = analyze_events([])
        assert out.rows == [] and out.ok and out.total_events == 0

    def test_end_without_begin_synthesized(self):
        out = analyze_events(
            [{"kind": "superstep_end", "superstep": 1, "round": 0,
              "parallel_ios": 3, "blocks": 5}]
        )
        assert len(out.rows) == 1
        assert out.rows[0].parallel_ios == 3

    def test_unclosed_superstep_dropped_not_crashed(self):
        out = analyze_events([{"kind": "superstep_begin", "superstep": 1, "round": 0}])
        assert out.rows == []

    def test_non_em_engine_skips_envelope(self):
        tr = JsonlRecorder()
        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=64)
        data = np.random.default_rng(1).integers(0, 2**50, cfg.N)
        em_sort(data, cfg, engine="memory", tracer=tr)
        out = analyze_events(tr.events)
        assert not out.is_em
        assert all(r.predicted_ios is None for r in out.rows)
        assert "envelope check skipped" in out.render()

    def test_malformed_machine_header_still_reports(self):
        out = analyze_events(
            [
                {"kind": "run_begin", "engine": "seq-em", "program": "x",
                 "N": "not-an-int", "v": 4, "p": 1, "D": 2, "B": 64},
                {"kind": "superstep_begin", "superstep": 1, "round": 0},
                {"kind": "superstep_end", "superstep": 1, "round": 0,
                 "parallel_ios": 7, "blocks": 7},
            ]
        )
        assert out.rows[0].predicted_ios is None
        assert out.ok  # vacuous without an envelope


class TestExportAndFiles:
    def test_to_dict_json_able(self):
        tr, _, _ = _traced_sort()
        d = analyze_events(tr.events).to_dict()
        round_trip = json.loads(json.dumps(d))
        assert round_trip["ok"] is True
        assert round_trip["supersteps"][0]["io_ok"] is True

    def test_analyze_file_roundtrip(self, tmp_path):
        tr, res, _ = _traced_sort()
        path = tmp_path / "trace.jsonl"
        tr.write_jsonl(str(path))
        out = analyze_file(str(path))
        in_memory = analyze_events(tr.events)
        assert sum(r.parallel_ios for r in out.rows) == sum(
            r.parallel_ios for r in in_memory.rows
        )
        assert 0 < sum(r.parallel_ios for r in out.rows) <= res.report.io.parallel_ios

    def test_analyze_file_rejects_chrome_format(self, tmp_path):
        path = tmp_path / "chrome.json"
        path.write_text(json.dumps([{"ph": "B", "ts": 0, "name": "superstep 1"}]))
        with pytest.raises(ValueError, match="chrome-format"):
            analyze_file(str(path))

    def test_analyze_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("this is { not json\n")
        with pytest.raises(ValueError, match="not a readable"):
            analyze_file(str(path))
