"""Chrome export edge cases: empty, truncated, and out-of-order traces."""

from __future__ import annotations

import json

from repro.obs.chrome import to_chrome_events, write_chrome_trace


def _begin(superstep, ts, real=0):
    return {"kind": "superstep_begin", "superstep": superstep, "ts": ts, "real": real}


def _end(superstep, ts, real=0):
    return {"kind": "superstep_end", "superstep": superstep, "ts": ts, "real": real}


class TestEdgeCases:
    def test_empty_trace(self, tmp_path):
        assert to_chrome_events([]) == []
        path = tmp_path / "empty.json"
        assert write_chrome_trace([], str(path)) == 0
        assert json.loads(path.read_text()) == []

    def test_unclosed_superstep_auto_closed(self):
        out = to_chrome_events(
            [
                _begin(1, 0.0),
                _end(1, 1.0),
                _begin(2, 2.0),  # crashed/truncated run: no end
                {"kind": "compute_round", "pid": 0, "real": 0, "ts": 3.0,
                 "wall_s": 0.5},
            ]
        )
        phases = [e["ph"] for e in out]
        assert phases.count("B") == phases.count("E") == 2
        closer = out[-1]
        assert closer["ph"] == "E"
        assert closer["args"] == {"auto_closed": True}
        assert closer["ts"] == 3.0 * 1e6  # closed at the trace's last timestamp

    def test_nested_unclosed_close_lifo(self):
        out = to_chrome_events([_begin(1, 0.0, real=0), _begin(2, 1.0, real=1)])
        closers = [e for e in out if e["ph"] == "E"]
        assert [c["name"] for c in closers] == ["superstep 2", "superstep 1"]
        assert [c["pid"] for c in closers] == [1, 0]

    def test_out_of_order_timestamps_sorted(self):
        out = to_chrome_events([_end(1, 5.0), _begin(1, 1.0)])
        assert [e["ph"] for e in out] == ["B", "E"]
        ts = [e["ts"] for e in out]
        assert ts == sorted(ts)

    def test_only_end_events_still_emit(self):
        out = to_chrome_events([_end(1, 1.0)])
        assert [e["ph"] for e in out] == ["E"]

    def test_unknown_kinds_dropped(self):
        assert to_chrome_events([{"kind": "mystery", "ts": 0.0}]) == []

    def test_none_valued_tags_stripped_from_args(self):
        out = to_chrome_events(
            [{"kind": "context_read", "pid": 0, "real": 0, "ts": 0.0,
              "blocks": 2, "fmt": None}]
        )
        assert out[0]["args"] == {"pid": 0, "real": 0, "blocks": 2}
