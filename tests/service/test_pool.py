"""execute_spec: correctness, verification, preemption, resume."""

import pytest

from repro.service.pool import execute_spec, reference_output
from repro.service.spec import JobSpec
from repro.util.validation import PreemptedError

MACHINE = {"v": 8, "D": 2, "B": 64}


def spec_for(op, n=4096, **kw):
    return JobSpec.from_dict({"op": op, "n": n, "machine": MACHINE, **kw})


class TestExecuteSpec:
    @pytest.mark.parametrize("op", ["sort", "permute", "transpose"])
    def test_runs_and_verifies(self, op):
        doc = execute_spec(spec_for(op))
        assert doc["ok"] is True
        assert doc["counters"]["io"]["parallel_ios"] > 0
        assert len(doc["output_sha256"]) == 64
        assert doc["engine"] == "seq-em"

    def test_deterministic_document(self):
        spec = spec_for("sort")
        a, b = execute_spec(spec), execute_spec(spec)
        a.pop("elapsed_s"), b.pop("elapsed_s")
        assert a == b

    def test_matches_direct_em_run(self):
        """The result counters are the engine's own, untranslated."""
        import numpy as np

        from repro.em.runner import em_sort
        from repro.util.rng import make_rng

        spec = spec_for("sort")
        doc = execute_spec(spec)
        data = make_rng(spec.seed).integers(0, 2**50, spec.n)
        res = em_sort(data, spec.machine_config())
        assert doc["counters"]["io"]["parallel_ios"] == res.report.io.parallel_ios
        assert doc["counters"]["rounds"] == res.report.rounds
        assert np.array_equal(res.values, reference_output(spec))

    def test_fault_plan_keeps_logical_counters(self):
        clean = execute_spec(spec_for("sort"))
        faulty = execute_spec(
            spec_for("sort", faults={"p_transient_read": 0.02, "seed": 5})
        )
        assert faulty["ok"] is True
        assert "fault_stats" in faulty["counters"]
        stripped = dict(faulty["counters"])
        stripped.pop("fault_stats")
        base = dict(clean["counters"])
        base.pop("fault_stats", None)  # ambient REPRO_FAULTS (CI faults lane)
        assert stripped == base
        assert faulty["output_sha256"] == clean["output_sha256"]


class TestPreemption:
    def test_preempt_without_checkpoint_mentions_lost_progress(self, tmp_path):
        with pytest.raises(PreemptedError, match="progress lost"):
            execute_spec(spec_for("sort"), preempt=lambda: True)

    def test_preempt_then_resume_bit_identical(self, tmp_path):
        spec = spec_for("sort", n=1 << 13)
        clean = execute_spec(spec)
        ck = str(tmp_path / "ck")
        with pytest.raises(PreemptedError, match="resume to continue"):
            execute_spec(spec, checkpoint=ck, preempt=lambda: True)
        resumed = execute_spec(spec, checkpoint=ck, resume=True)
        clean.pop("elapsed_s"), resumed.pop("elapsed_s")
        assert resumed == clean

    def test_preempt_fires_at_every_boundary(self, tmp_path):
        """Preempting after each round still converges to the clean result."""
        spec = spec_for("sort", n=1 << 13)
        clean = execute_spec(spec)
        ck = str(tmp_path / "ck")
        rounds = 0
        resume = False
        while True:
            try:
                final = execute_spec(
                    spec, checkpoint=ck, resume=resume, preempt=lambda: True
                )
                break
            except PreemptedError:
                rounds += 1
                resume = True
                assert rounds < 50, "preemption never converged"
        # every non-final round preempts once; the final round completes
        # before the boundary check, so no preemption fires there
        assert final["ok"] is True
        assert final["output_sha256"] == clean["output_sha256"]
        assert final["counters"] == clean["counters"]
        assert rounds == clean["counters"]["rounds"] - 1
