"""JobQueue admission, ordering, quotas, persistence; ResultCache."""

import pytest

from repro.service.cache import ResultCache
from repro.service.jobs import Job
from repro.service.queue import BackpressureError, JobQueue
from repro.service.spec import JobSpec


def make_job(tmp_path, i, tenant="t", priority=0, n=64):
    spec = JobSpec.from_dict(
        {"op": "sort", "n": n, "tenant": tenant, "priority": priority}
    )
    return Job(f"j{i:03d}", spec, str(tmp_path / f"ck{i}"), fingerprint=f"fp{i}")


class TestQueueOrdering:
    def test_fifo_within_priority(self, tmp_path):
        q = JobQueue()
        jobs = [make_job(tmp_path, i) for i in range(3)]
        for j in jobs:
            q.submit(j)
        assert [q.pop(0).id for _ in range(3)] == [j.id for j in jobs]

    def test_priority_wins_over_arrival(self, tmp_path):
        q = JobQueue()
        low = make_job(tmp_path, 0, priority=0)
        high = make_job(tmp_path, 1, priority=5)
        q.submit(low)
        q.submit(high)
        assert q.pop(0) is high
        assert q.pop(0) is low

    def test_requeued_preempted_job_keeps_position(self, tmp_path):
        q = JobQueue()
        victim = make_job(tmp_path, 0)
        q.submit(victim)
        assert q.pop(0) is victim  # dispatched
        later = make_job(tmp_path, 1)
        q.submit(later)
        q.requeue(victim)  # preempted: original seq -> ahead of `later`
        assert q.pop(0) is victim
        assert q.pop(0) is later

    def test_pop_empty_times_out(self):
        assert JobQueue().pop(timeout=0.01) is None

    def test_remove_withdraws_pending(self, tmp_path):
        q = JobQueue()
        job = make_job(tmp_path, 0)
        q.submit(job)
        assert q.remove(job) is True
        assert q.remove(job) is False
        assert q.depth == 0


class TestBackpressure:
    def test_capacity(self, tmp_path):
        q = JobQueue(capacity=2)
        q.submit(make_job(tmp_path, 0))
        q.submit(make_job(tmp_path, 1))
        with pytest.raises(BackpressureError) as exc:
            q.submit(make_job(tmp_path, 2))
        assert "queue full" in str(exc.value)
        assert exc.value.retry_after_s >= 1

    def test_tenant_quota_spans_queued_and_running(self, tmp_path):
        q = JobQueue(tenant_quota=2)
        a = make_job(tmp_path, 0, tenant="a")
        q.submit(a)
        q.submit(make_job(tmp_path, 1, tenant="a"))
        assert q.pop(0) is a  # running now, still counted
        with pytest.raises(BackpressureError, match="quota"):
            q.submit(make_job(tmp_path, 2, tenant="a"))
        # another tenant is unaffected
        q.submit(make_job(tmp_path, 3, tenant="b"))
        # terminal release frees the slot
        q.release(a)
        q.submit(make_job(tmp_path, 4, tenant="a"))

    def test_requeue_bypasses_capacity(self, tmp_path):
        q = JobQueue(capacity=1)
        job = make_job(tmp_path, 0)
        q.submit(job)
        assert q.pop(0) is job
        q.submit(make_job(tmp_path, 1))  # fills the queue
        q.requeue(job)  # already admitted: must not raise
        assert q.depth == 2


class TestPersistence:
    def test_round_trip(self, tmp_path):
        q = JobQueue()
        jobs = [make_job(tmp_path, i, priority=i) for i in range(2)]
        for j in jobs:
            q.submit(j)
        extra = make_job(tmp_path, 9)
        extra.attempts = 1  # preempted in-flight job
        path = str(tmp_path / "queue.json")
        assert q.persist(path, extra=[extra]) == 3
        docs = JobQueue.load_persisted(path)
        assert {d["id"] for d in docs} == {"j000", "j001", "j009"}
        by_id = {d["id"]: d for d in docs}
        assert by_id["j009"]["resume"] is True
        assert by_id["j000"]["resume"] is False
        # documents reconstruct valid specs
        for doc in docs:
            JobSpec.from_dict(doc["spec"])

    def test_load_missing_file_is_empty(self, tmp_path):
        assert JobQueue.load_persisted(str(tmp_path / "nope.json")) == []


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("fp") is None
        cache.put("fp", {"ok": True})
        assert cache.get("fp") == {"ok": True}
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_eviction_keeps_recent(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") is not None  # refresh a
        cache.put("c", {"v": 3})  # evicts b (least recent)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
