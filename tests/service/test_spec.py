"""JobSpec validation and cache-fingerprint identity."""

import pytest

from repro.service.spec import (
    CONFIG_KNOBS,
    MAX_N,
    MAX_WORKERS,
    JobSpec,
    validate_spec,
)
from repro.util.validation import ConfigurationError

GOOD = {"op": "sort", "n": 4096, "seed": 1, "machine": {"v": 8, "D": 2, "B": 64}}


class TestValidation:
    def test_minimal_valid(self):
        assert validate_spec({"op": "sort", "n": 16}) == []

    def test_not_a_dict(self):
        assert validate_spec([1, 2]) != []

    def test_unknown_top_level_field(self):
        errs = validate_spec({**GOOD, "bogus": 1})
        assert any("bogus" in e for e in errs)

    @pytest.mark.parametrize("op", ["merge", None, 3])
    def test_bad_op(self, op):
        assert any("op" in e for e in validate_spec({"op": op, "n": 16}))

    @pytest.mark.parametrize("n", [0, -1, MAX_N + 1, "16", True])
    def test_bad_n(self, n):
        assert validate_spec({"op": "sort", "n": n}) != []

    def test_missing_n(self):
        assert any("n is required" in e for e in validate_spec({"op": "sort"}))

    def test_bad_machine_field(self):
        errs = validate_spec({**GOOD, "machine": {"v": 8, "q": 1}})
        assert any("machine" in e for e in errs)

    def test_bad_engine(self):
        errs = validate_spec({**GOOD, "engine": "vm"})
        assert any("engine" in e for e in errs)

    def test_workers_capped(self):
        errs = validate_spec({**GOOD, "workers": MAX_WORKERS + 1})
        assert any("workers" in e for e in errs)

    def test_config_unknown_knob_rejected(self):
        errs = validate_spec({**GOOD, "config": {"nope": 1}})
        assert any("config.nope" in e for e in errs)

    def test_config_disallowed_knob_rejected(self):
        # a real registry knob that tenants must not set
        errs = validate_spec({**GOOD, "config": {"spill_dir": "/tmp/x"}})
        assert any("config.spill_dir" in e for e in errs)

    def test_config_malformed_value_named(self):
        errs = validate_spec({**GOOD, "config": {"prefetch": "maybe"}})
        assert any("config.prefetch" in e for e in errs)

    def test_config_allowlist_accepted(self):
        config = {"fastpath": "off", "prefetch": "0"}
        assert set(config) <= CONFIG_KNOBS
        assert validate_spec({**GOOD, "config": config}) == []

    def test_bad_faults_section(self):
        errs = validate_spec({**GOOD, "faults": {"p_transient_read": 2.0}})
        assert any("faults" in e for e in errs)

    @pytest.mark.parametrize("tenant", ["", "-lead", "a b", "x" * 65, 7])
    def test_bad_tenant(self, tenant):
        assert any("tenant" in e for e in validate_spec({**GOOD, "tenant": tenant}))

    @pytest.mark.parametrize("prio", [-1, 10, "high"])
    def test_bad_priority(self, prio):
        assert validate_spec({**GOOD, "priority": prio}) != []

    def test_from_dict_reports_every_problem_at_once(self):
        with pytest.raises(ConfigurationError) as exc:
            JobSpec.from_dict({"op": "merge", "n": 0, "priority": 99})
        msg = str(exc.value)
        assert "op" in msg and "n" in msg and "priority" in msg

    def test_from_dict_surfaces_machine_config_invariants(self):
        # p must divide v — MachineConfig's own check, spec-level message
        with pytest.raises(ConfigurationError, match="machine"):
            JobSpec.from_dict({"op": "sort", "n": 64, "machine": {"v": 8, "p": 3}})

    def test_round_trip(self):
        spec = JobSpec.from_dict(
            {**GOOD, "engine": "seq", "config": {"fastpath": "off"},
             "tenant": "t1", "priority": 3}
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestFingerprint:
    def test_deterministic(self):
        a = JobSpec.from_dict(GOOD)
        assert a.fingerprint() == JobSpec.from_dict(dict(GOOD)).fingerprint()

    def test_workload_fields_change_it(self):
        base = JobSpec.from_dict(GOOD).fingerprint()
        assert JobSpec.from_dict({**GOOD, "n": 8192}).fingerprint() != base
        assert JobSpec.from_dict({**GOOD, "seed": 9}).fingerprint() != base
        assert JobSpec.from_dict({**GOOD, "balanced": True}).fingerprint() != base
        assert (
            JobSpec.from_dict({**GOOD, "machine": {"v": 8, "D": 2, "B": 128}})
            .fingerprint() != base
        )

    def test_scheduling_identity_excluded(self):
        base = JobSpec.from_dict(GOOD).fingerprint()
        assert JobSpec.from_dict({**GOOD, "tenant": "other"}).fingerprint() == base
        assert JobSpec.from_dict({**GOOD, "priority": 9}).fingerprint() == base

    def test_physical_knobs_excluded(self):
        # bit-identity-preserving knobs must share the cache entry
        base = JobSpec.from_dict(GOOD).fingerprint()
        tuned = JobSpec.from_dict(
            {**GOOD, "config": {"fastpath": "off", "prefetch": "0"}}
        )
        assert tuned.fingerprint() == base

    def test_workers_excluded_like_checkpoint_meta(self):
        par = {**GOOD, "machine": {"v": 8, "p": 2, "D": 2, "B": 64},
               "engine": "par"}
        w0 = JobSpec.from_dict(par).fingerprint()
        w2 = JobSpec.from_dict({**par, "workers": 2}).fingerprint()
        assert w0 == w2

    def test_resolved_engine_included(self):
        # explicit "seq" on p=1 equals the default resolution...
        assert (
            JobSpec.from_dict({**GOOD, "engine": "seq"}).fingerprint()
            == JobSpec.from_dict(GOOD).fingerprint()
        )
        # ...but a genuinely different backend has different counters
        par = JobSpec.from_dict(
            {**GOOD, "machine": {"v": 8, "p": 2, "D": 2, "B": 64}}
        )
        assert par.fingerprint() != JobSpec.from_dict(GOOD).fingerprint()

    def test_fault_plan_included(self):
        faulty = JobSpec.from_dict({**GOOD, "faults": {"p_transient_read": 0.01}})
        assert faulty.fingerprint() != JobSpec.from_dict(GOOD).fingerprint()
