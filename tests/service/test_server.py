"""HTTP integration: the full submit/cache/stream/preempt/drain surface."""

import json
import threading
import time
import urllib.request

import pytest

from repro.service.client import (
    get_job,
    run_spec_local,
    stream_job,
    submit_job,
    wait_job,
)
from repro.service.server import JobServer, ServiceCore

MACHINE = {"v": 8, "D": 2, "B": 64}
SPEC = {"op": "sort", "n": 4096, "seed": 1, "machine": MACHINE, "tenant": "alice"}

WAIT_S = 60.0


@pytest.fixture
def served(tmp_path):
    core = ServiceCore(state_dir=str(tmp_path / "state"), pool_size=2)
    server = JobServer(core).start()
    try:
        yield server
    finally:
        core.drain(timeout=WAIT_S)
        server.close()


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode())


class TestSubmitAndResult:
    def test_submit_wait_verify(self, served):
        status, headers, doc = submit_job(served.url, SPEC)
        assert status == 202
        assert headers["X-Repro-Cache"] == "miss"
        assert headers["Location"] == f"/jobs/{doc['id']}"
        final = wait_job(served.url, doc["id"], timeout_s=WAIT_S)
        assert final["state"] == "done"
        assert final["result"]["ok"] is True

    def test_served_result_bit_identical_to_local_run(self, served):
        status, _, doc = submit_job(served.url, SPEC)
        assert status == 202
        final = wait_job(served.url, doc["id"], timeout_s=WAIT_S)
        local = run_spec_local(SPEC)
        assert final["result"]["counters"] == local["result"]["counters"]
        assert final["result"]["output_sha256"] == local["result"]["output_sha256"]
        assert final["fingerprint"] == local["fingerprint"]

    def test_duplicate_served_from_cache(self, served):
        _, _, doc = submit_job(served.url, SPEC)
        first = wait_job(served.url, doc["id"], timeout_s=WAIT_S)
        status, headers, dup = submit_job(served.url, SPEC)
        assert status == 200
        assert headers["X-Repro-Cache"] == "hit"
        assert dup["state"] == "done"
        assert dup["cache"] == "hit"
        assert dup["result"] == first["result"]
        # a *different* tenant shares the entry (fingerprint excludes tenant)
        status, headers, other = submit_job(
            served.url, {**SPEC, "tenant": "bob"}
        )
        assert status == 200 and headers["X-Repro-Cache"] == "hit"

    def test_invalid_spec_400_with_error_list(self, served):
        status, _, body = submit_job(served.url, {"op": "merge", "n": 0})
        assert status == 400
        assert "op" in body["error"] and "n" in body["error"]

    def test_non_json_body_400(self, served):
        req = urllib.request.Request(
            served.url + "/jobs", data=b"not json", method="POST"
        )
        try:
            urllib.request.urlopen(req, timeout=10)
            raised = None
        except urllib.error.HTTPError as exc:
            raised = exc.code
        assert raised == 400

    def test_unknown_job_404(self, served):
        for path in ("/jobs/nope", "/jobs/nope/events"):
            try:
                urllib.request.urlopen(served.url + path, timeout=10)
                raised = None
            except urllib.error.HTTPError as exc:
                raised = exc.code
            assert raised == 404

    def test_listing_and_health(self, served):
        _, _, doc = submit_job(served.url, SPEC)
        wait_job(served.url, doc["id"], timeout_s=WAIT_S)
        status, listing = _get(served.url + "/jobs")
        assert status == 200
        assert any(j["id"] == doc["id"] for j in listing["jobs"])
        assert listing["draining"] is False
        status, health = _get(served.url + "/healthz")
        assert health["status"] == "ok"


class TestSSE:
    def test_stream_carries_engine_trace_and_lifecycle(self, served):
        _, _, doc = submit_job(served.url, SPEC)
        kinds = [ev.get("kind") for ev in
                 stream_job(served.url, doc["id"], timeout_s=WAIT_S)]
        assert "job_state" in kinds
        assert "run_begin" in kinds and "run_end" in kinds
        assert "superstep_end" in kinds

    def test_finished_job_stream_replays_then_ends(self, served):
        _, _, doc = submit_job(served.url, SPEC)
        wait_job(served.url, doc["id"], timeout_s=WAIT_S)
        events = list(stream_job(served.url, doc["id"], timeout_s=10))
        assert any(ev.get("kind") == "run_end" for ev in events)


class TestBackpressure:
    def test_queue_full_429_retry_after(self, tmp_path):
        # pool never started: jobs stay queued and the bound is exact
        core = ServiceCore(
            state_dir=str(tmp_path / "s"), pool_size=1,
            queue_capacity=2, start=False,
        )
        server = JobServer(core).start()
        try:
            for i in range(2):
                status, _, _ = submit_job(server.url, {**SPEC, "seed": i})
                assert status == 202
            status, headers, body = submit_job(server.url, {**SPEC, "seed": 99})
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "queue full" in body["error"]
        finally:
            server.close()

    def test_tenant_quota_429_other_tenant_admitted(self, tmp_path):
        core = ServiceCore(
            state_dir=str(tmp_path / "s"), pool_size=1,
            tenant_quota=1, start=False,
        )
        server = JobServer(core).start()
        try:
            assert submit_job(server.url, SPEC)[0] == 202
            status, headers, body = submit_job(server.url, {**SPEC, "seed": 2})
            assert status == 429 and "quota" in body["error"]
            assert "Retry-After" in headers
            assert submit_job(server.url, {**SPEC, "tenant": "bob"})[0] == 202
        finally:
            server.close()


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        core = ServiceCore(state_dir=str(tmp_path / "s"), start=False)
        server = JobServer(core).start()
        try:
            _, _, doc = submit_job(server.url, SPEC)
            cancelled = json.loads(
                urllib.request.urlopen(
                    urllib.request.Request(
                        f"{server.url}/jobs/{doc['id']}/cancel", method="POST"
                    ),
                    timeout=10,
                ).read()
            )
            assert cancelled["state"] == "cancelled"
            # idempotent
            assert get_job(server.url, doc["id"])["state"] == "cancelled"
        finally:
            server.close()


class TestPreemptionThroughService:
    def test_high_priority_tenant_preempts_and_victim_resumes(self, tmp_path):
        """The tentpole acceptance path, deterministically sequenced:
        a single worker runs the low-priority job; a synchronous bus
        listener submits the high-priority job from the engine thread at
        the first superstep_end, so the preempt flag is guaranteed to be
        observed at the next checkpointed round boundary."""
        core = ServiceCore(
            state_dir=str(tmp_path / "s"), pool_size=1, start=False
        )
        low = {"op": "sort", "n": 1 << 13, "machine": MACHINE,
               "tenant": "slow", "priority": 0}
        high = {"op": "permute", "n": 4096, "machine": MACHINE,
                "tenant": "vip", "priority": 5}
        victim, cached = core.submit(low)
        assert not cached
        submitted = []

        def on_event(ev):
            if ev.get("kind") == "superstep_end" and not submitted:
                submitted.append(core.submit(high)[0])

        victim.bus.add_listener(on_event)
        core.start()
        try:
            deadline = time.monotonic() + WAIT_S
            while time.monotonic() < deadline and not (
                victim.terminal and submitted and submitted[0].terminal
            ):
                time.sleep(0.02)
            vip = submitted[0]
            assert victim.state == "done" and vip.state == "done"
            assert victim.preemptions >= 1
            assert victim.attempts == victim.preemptions + 1
            # the preempting tenant finished before the victim
            assert vip.finished_s < victim.finished_s
            # the victim's resumed result is bit-identical to a clean run
            clean = run_spec_local(low)
            assert victim.result["counters"] == clean["result"]["counters"]
            assert (
                victim.result["output_sha256"]
                == clean["result"]["output_sha256"]
            )
            assert victim.result["ok"] is True
        finally:
            core.drain(timeout=WAIT_S)

    def test_equal_priority_does_not_preempt(self, tmp_path):
        core = ServiceCore(
            state_dir=str(tmp_path / "s"), pool_size=1, start=False
        )
        first, _ = core.submit({**SPEC, "priority": 3})
        second, _ = core.submit({**SPEC, "seed": 2, "priority": 3})
        core.start()
        try:
            assert first.finished.wait(WAIT_S)
            assert second.finished.wait(WAIT_S)
            assert first.preemptions == 0 and second.preemptions == 0
        finally:
            core.drain(timeout=WAIT_S)


class TestDrain:
    def test_drain_persists_inflight_and_restart_resumes(self, tmp_path):
        state = str(tmp_path / "state")
        core = ServiceCore(state_dir=state, pool_size=1, start=False)
        spec = {"op": "sort", "n": 1 << 13, "machine": MACHINE}
        job, _ = core.submit(spec)
        started = threading.Event()
        job.bus.add_listener(
            lambda ev: started.set() if ev.get("kind") == "superstep_end" else None
        )
        core.start()
        assert started.wait(WAIT_S)
        saved = core.drain(timeout=WAIT_S)
        assert saved == 1
        assert job.state == "preempted"
        assert job.attempts == 1

        restarted = ServiceCore(state_dir=state, pool_size=1)
        try:
            resumed = restarted.get(job.id)
            assert resumed.finished.wait(WAIT_S)
            assert resumed.state == "done"
            clean = run_spec_local(spec)
            assert resumed.result["counters"] == clean["result"]["counters"]
            assert (
                resumed.result["output_sha256"]
                == clean["result"]["output_sha256"]
            )
        finally:
            restarted.drain(timeout=WAIT_S)

    def test_drain_persists_result_cache(self, tmp_path):
        """Regression: the result cache used to die with the process —
        ``queue.json`` survived a SIGTERM drain but every cached result
        was lost, so identical resubmissions after a restart re-ran."""
        import os

        from repro.service.server import CACHE_STATE_FILE

        state = str(tmp_path / "state")
        core = ServiceCore(state_dir=state, pool_size=1)
        job, from_cache = core.submit(SPEC)
        assert not from_cache
        assert job.finished.wait(WAIT_S)
        assert core.drain(timeout=WAIT_S) == 0  # nothing in flight...
        assert os.path.exists(os.path.join(state, CACHE_STATE_FILE))

        restarted = ServiceCore(state_dir=state, pool_size=1)
        try:
            # ...but the finished result is served straight from the
            # reloaded cache, bit-identical to the first run
            again, hit = restarted.submit(SPEC)
            assert hit and again.cache == "hit"
            assert again.result == job.result
            # the state file is consumed on restore, not replayed forever
            assert not os.path.exists(os.path.join(state, CACHE_STATE_FILE))
        finally:
            restarted.drain(timeout=WAIT_S)

    def test_cache_reload_respects_capacity(self, tmp_path):
        from repro.service.cache import ResultCache

        cache = ResultCache(capacity=8)
        for i in range(8):
            cache.put(f"fp{i}", {"i": i})
        small = ResultCache(capacity=3)
        assert small.load(cache.to_docs()) == 8
        assert len(small) == 3
        assert "fp7" in small and "fp0" not in small  # oldest evicted

    def test_draining_refuses_submissions_503(self, tmp_path):
        core = ServiceCore(state_dir=str(tmp_path / "s"), pool_size=1)
        server = JobServer(core).start()
        try:
            core.drain(timeout=WAIT_S)
            status, headers, body = submit_job(server.url, SPEC)
            assert status == 503
            assert "Retry-After" in headers
            assert "draining" in body["error"]
        finally:
            server.close()


class TestMetrics:
    def test_per_tenant_labels_on_engine_and_service_series(self, served):
        _, _, doc = submit_job(served.url, SPEC)
        wait_job(served.url, doc["id"], timeout_s=WAIT_S)
        submit_job(served.url, SPEC)  # cache hit
        with urllib.request.urlopen(served.url + "/metrics", timeout=10) as resp:
            text = resp.read().decode()
        # two terminal "done" outcomes: the computed job and the cache hit
        assert 'repro_service_jobs_total{state="done",tenant="alice"} 2' in text
        assert 'repro_service_cache_hits_total{tenant="alice"} 1' in text
        assert "repro_service_queue_depth 0" in text
        # the engine's own counters carry the tenant + job scope
        assert f'job="{doc["id"]}"' in text
        assert 'tenant="alice"' in text
