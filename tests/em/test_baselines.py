"""Tests for the classical PDM baselines: correctness and the presence of
the log-factor / per-item I/O behaviour the paper's technique removes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.em.baselines import DirectPlacementPermute, MergeSortBaseline
from repro.em.runner import em_sort
from repro.util.validation import ConfigurationError


class TestMergeSortBaseline:
    def test_sorts_correctly(self, rng):
        data = rng.integers(-(2**40), 2**40, 5000)
        res = MergeSortBaseline(D=2, B=32, M=512).sort(data)
        assert np.array_equal(res.values, np.sort(data))

    def test_fits_in_memory_single_pass(self, rng):
        data = rng.integers(0, 100, 300)
        res = MergeSortBaseline(D=1, B=32, M=1024).sort(data)
        assert np.array_equal(res.values, np.sort(data))
        assert res.passes == 0

    def test_empty_input(self):
        res = MergeSortBaseline(D=1, B=8, M=64).sort(np.array([], dtype=np.int64))
        assert res.values.size == 0

    def test_merge_passes_match_prediction(self, rng):
        n = 8192
        ms = MergeSortBaseline(D=1, B=16, M=128)
        res = ms.sort(rng.integers(0, 2**40, n))
        assert res.passes == ms.predicted_passes(n)
        assert res.passes >= 2  # small memory forces multiple passes

    def test_duplicates(self, rng):
        data = rng.integers(0, 4, 2000)
        res = MergeSortBaseline(D=2, B=16, M=256).sort(data)
        assert np.array_equal(res.values, np.sort(data))

    def test_io_grows_with_smaller_memory(self, rng):
        """Smaller M -> more merge passes -> more I/O: the log_{M/B} factor."""
        data = rng.integers(0, 2**40, 1 << 13)
        big = MergeSortBaseline(D=1, B=32, M=1 << 12).sort(data.copy())
        small = MergeSortBaseline(D=1, B=32, M=64).sort(data.copy())  # fan-in 2
        assert small.passes > big.passes
        assert small.io.parallel_ios > 2 * big.io.parallel_ios

    def test_memory_requirement(self):
        with pytest.raises(ConfigurationError):
            MergeSortBaseline(D=4, B=64, M=100)


class TestBaselineVsEMCGM:
    def test_emcgm_beats_baseline_when_memory_small(self, rng):
        """The headline claim: with M = N/v (coarse grained regime) the
        simulated CGM sort's I/O count is below the multi-pass merge sort."""
        n = 1 << 14
        data = rng.integers(0, 2**40, n)
        D, B = 2, 32
        M = n // 8  # the CGM regime: memory = one context
        baseline = MergeSortBaseline(D=D, B=B, M=M // 4).sort(data.copy())
        cgm = em_sort(data, MachineConfig(N=n, v=8, D=D, B=B, M=M), engine="seq")
        assert baseline.passes >= 2
        # shapes, not constants: the EM-CGM run must not exceed the
        # multi-pass baseline by more than its constant-round factor
        assert cgm.report.io.parallel_ios < 2.5 * baseline.io.parallel_ios


class TestDirectPlacementPermute:
    def test_correct_random(self, rng):
        n = 3000
        values = rng.integers(0, 2**40, n)
        perm = rng.permutation(n)
        res = DirectPlacementPermute(D=1, B=16, M=256).permute(values, perm)
        expect = np.zeros(n, dtype=np.int64)
        expect[perm] = values
        assert np.array_equal(res.values, expect)

    def test_correct_identity(self, rng):
        n = 1000
        values = rng.integers(0, 100, n)
        res = DirectPlacementPermute(D=1, B=16, M=256).permute(values, np.arange(n))
        assert np.array_equal(res.values, values)

    def test_random_permutation_near_item_cost(self, rng):
        """With M << N a random permutation costs ~1 I/O per item; a
        sequential (identity) permutation stays near N/B."""
        n = 4096
        values = rng.integers(0, 2**40, n)
        pp = DirectPlacementPermute(D=1, B=32, M=256)
        random_cost = pp.permute(values, rng.permutation(n)).io.parallel_ios
        seq_cost = DirectPlacementPermute(D=1, B=32, M=256).permute(
            values, np.arange(n)
        ).io.parallel_ios
        assert random_cost > 5 * seq_cost

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            DirectPlacementPermute(D=1, B=16, M=256).permute(
                np.arange(5), np.arange(6)
            )
