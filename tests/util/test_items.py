"""Unit tests for item accounting and serialization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.util.items import (
    ITEM_BYTES,
    blocks_needed,
    bytes_to_items,
    deserialize,
    item_count,
    serialize,
)


class TestSerializeRoundTrip:
    def test_int64_array(self):
        arr = np.arange(1000, dtype=np.int64)
        out = deserialize(serialize(arr))
        assert np.array_equal(out, arr)
        assert out.dtype == arr.dtype

    def test_float_array(self):
        arr = np.linspace(-1e9, 1e9, 317)
        assert np.array_equal(deserialize(serialize(arr)), arr)

    def test_2d_array_shape_preserved(self):
        arr = np.arange(60).reshape(5, 12)
        out = deserialize(serialize(arr))
        assert out.shape == (5, 12)
        assert np.array_equal(out, arr)

    def test_empty_array(self):
        arr = np.array([], dtype=np.float64)
        out = deserialize(serialize(arr))
        assert out.size == 0
        assert out.dtype == np.float64

    def test_zero_d_array(self):
        arr = np.array(42.5)
        out = deserialize(serialize(arr))
        assert out.shape == ()
        assert out == 42.5

    def test_non_contiguous_array(self):
        arr = np.arange(100).reshape(10, 10)[::2, ::3]
        assert np.array_equal(deserialize(serialize(arr)), arr)

    def test_dict_payload(self):
        obj = {"a": [1, 2, 3], "b": "text", "c": (4.5, None)}
        assert deserialize(serialize(obj)) == obj

    def test_nested_with_arrays_uses_pickle_path(self):
        obj = {"x": np.arange(5), "y": "meta"}
        out = deserialize(serialize(obj))
        assert np.array_equal(out["x"], np.arange(5))
        assert out["y"] == "meta"

    def test_padding_is_harmless(self):
        # engines store objects in whole blocks: trailing zeros must be ignored
        data = serialize({"k": 1}) + b"\x00" * 37
        assert deserialize(data) == {"k": 1}

    def test_structured_dtype(self):
        dt = np.dtype([("a", np.int32), ("b", np.float64)])
        arr = np.zeros(4, dtype=dt)
        arr["a"] = [1, 2, 3, 4]
        out = deserialize(serialize(arr))
        assert np.array_equal(out["a"], arr["a"])

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown serialization tag"):
            deserialize(b"Z" + b"\x00" * 16)

    @given(
        hnp.arrays(
            dtype=st.sampled_from([np.int64, np.float64, np.uint32]),
            shape=hnp.array_shapes(max_dims=2, max_side=50),
        )
    )
    def test_roundtrip_property(self, arr):
        out = deserialize(serialize(arr))
        assert out.shape == arr.shape
        assert np.array_equal(out, arr, equal_nan=True)


class TestItemCount:
    def test_array_by_buffer_size(self):
        assert item_count(np.zeros(100, dtype=np.int64)) == 100
        assert item_count(np.zeros(100, dtype=np.int32)) == 50

    def test_scalar_is_one(self):
        assert item_count(7) == 1
        assert item_count(3.14) == 1

    def test_numeric_list_by_length(self):
        assert item_count([1, 2, 3, 4]) == 4

    def test_bytes(self):
        assert item_count(b"x" * 16) == 2
        assert item_count(b"x") == 1

    def test_generic_object_positive(self):
        assert item_count({"some": "dict"}) >= 1

    def test_empty_array_still_charged_one(self):
        assert item_count(np.array([])) == 1


class TestBlockArithmetic:
    def test_bytes_to_items_rounds_up(self):
        assert bytes_to_items(1) == 1
        assert bytes_to_items(8) == 1
        assert bytes_to_items(9) == 2

    def test_blocks_needed(self):
        assert blocks_needed(0, 64) == 0
        assert blocks_needed(1, 64) == 1
        assert blocks_needed(64, 64) == 1
        assert blocks_needed(65, 64) == 2

    def test_item_is_eight_bytes(self):
        assert ITEM_BYTES == 8
