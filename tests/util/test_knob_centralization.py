"""Lint: every ``REPRO_*`` environment read goes through the knob registry.

The tentpole's centralization contract — ad-hoc ``os.environ`` reads of
runtime knobs are how the inconsistent-caching bug happened, so outside
``repro.tune`` none may exist.  (CI runs the same grep as a workflow
step; this test keeps the guarantee enforced locally too.)
"""

from __future__ import annotations

import re
from pathlib import Path

import repro

#: an os.environ read or subscript whose key literal is a REPRO_ variable
_PATTERN = re.compile(r"os\.environ(\.get)?\s*[(\[]\s*[\"']REPRO_")


def test_no_raw_repro_environ_access_outside_tune():
    src_root = Path(repro.__file__).resolve().parent
    offenders = []
    for path in sorted(src_root.rglob("*.py")):
        if src_root / "tune" in path.parents:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if _PATTERN.search(line):
                offenders.append(f"{path.relative_to(src_root)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "raw REPRO_* environment access outside repro.tune (use "
        "repro.tune.runtime.current()/RuntimeConfig or knobs.set_env):\n"
        + "\n".join(offenders)
    )
