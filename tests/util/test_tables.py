"""The shared table formatter (benchmarks' `_fmt` bug class: NaN/negatives)."""

from __future__ import annotations

import math

from repro.util.tables import fmt_cell, format_table, print_table


class TestFmtCell:
    def test_plain_values_pass_through(self):
        assert fmt_cell(42) == "42"
        assert fmt_cell("text") == "text"
        assert fmt_cell(True) == "True"

    def test_float_magnitude_branches(self):
        assert fmt_cell(3.14159) == "3.142"
        assert fmt_cell(12345.6) == "1.23e+04"
        assert fmt_cell(0.001234) == "0.00123"

    def test_negative_floats(self):
        # the old benchmarks `_fmt` compared magnitudes without abs(),
        # sending every negative float down the wrong branch
        assert fmt_cell(-3.14159) == "-3.142"
        assert fmt_cell(-12345.6) == "-1.23e+04"
        assert fmt_cell(-0.001234) == "-0.00123"

    def test_nan_and_inf_render_literally(self):
        assert fmt_cell(float("nan")) == "nan"
        assert fmt_cell(math.inf) == "inf"
        assert fmt_cell(-math.inf) == "-inf"

    def test_negative_zero_collapses(self):
        assert fmt_cell(-0.0) == "0"
        assert fmt_cell(0.0) == "0"


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table("t", ["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0] == "=== t ==="
        assert lines[1].split() == ["a", "bb"]
        assert lines[3].split() == ["1", "2"]
        assert lines[4].split() == ["333", "4"]
        # right-aligned: the 1 lines up under the 3 of 333
        assert lines[3].index("1") == lines[4].index("3") + 2

    def test_short_rows_padded_not_raising(self):
        out = format_table("t", ["a", "b", "c"], [[1], [1, 2, 3]])
        assert "1" in out.splitlines()[3]

    def test_empty_rows(self):
        out = format_table("t", ["a", "b"], [])
        assert out.splitlines()[1].split() == ["a", "b"]

    def test_numeric_headers_formatted(self):
        out = format_table("t", [1.5, "x"], [[2.5, "y"]])
        assert "1.500" in out

    def test_print_table_writes_stdout(self, capsys):
        print_table("title", ["h"], [[float("nan")], [-1.5]])
        got = capsys.readouterr().out
        assert got.startswith("\n=== title ===")
        assert "nan" in got and "-1.500" in got
