"""The double-buffered prefetch pipeline: ordering, buffer discipline,
drain semantics, error parity, and engine-level bit-identity with the
synchronous path (including under fault injection, which pins the
reference path and must bypass the pipeline entirely)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.collectives import partition_array
from repro.algorithms.sorting import SampleSort
from repro.cgm.config import MachineConfig
from repro.em.runner import em_run
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.pdm import fastpath
from repro.pdm.disk_array import DiskArray
from repro.pdm.fastpath import BlockRun
from repro.pdm.pipeline import DoubleBufferedReader
from repro.util.validation import SimulationError

BB_ITEMS = 2


def make_array(ntracks: int = 16, D: int = 2) -> DiskArray:
    arr = DiskArray(D=D, B=BB_ITEMS)
    bb = arr.block_bytes
    n = D * ntracks
    payload = bytes(range(256)) * (n * bb // 256 + 1)
    disks = np.arange(n, dtype=np.int64) % D
    tracks = np.arange(n, dtype=np.int64) // D
    arr.write_run(disks, tracks, BlockRun(payload[: n * bb], n, bb))
    return arr, disks, tracks


class TestReader:
    def test_fifo_order_and_accounting_identity(self):
        """Prefetched reads return the same bytes and leave the same
        IOStats as the synchronous read_run sequence."""
        arr, disks, tracks = make_array()
        ref, _, _ = make_array()
        chunks = [slice(0, 8), slice(8, 20), slice(20, 32)]

        reader = DoubleBufferedReader()
        for i, c in enumerate(chunks):
            reader.submit(arr, disks[c], tracks[c], key=i)
        got = []
        for i, c in enumerate(chunks):
            flat, buf = reader.get(i)
            got.append(bytes(flat))
            reader.release(buf)
        reader.close()

        expect = [bytes(ref.read_run(disks[c], tracks[c])) for c in chunks]
        assert got == expect
        assert arr.stats.as_dict() == ref.stats.as_dict()
        assert [d.blocks_read for d in arr.disks] == [
            d.blocks_read for d in ref.disks
        ]

    def test_out_of_order_get_is_refused(self):
        arr, disks, tracks = make_array()
        reader = DoubleBufferedReader()
        reader.submit(arr, disks[:2], tracks[:2], key="a")
        reader.submit(arr, disks[2:4], tracks[2:4], key="b")
        with pytest.raises(RuntimeError, match="out-of-order"):
            reader.get("b")
        reader.close()

    def test_no_buffer_reuse_before_release(self):
        """With depth=2 the worker must not fill a third buffer until the
        consumer releases one; released buffers then re-enter the pool."""
        arr, disks, tracks = make_array()
        reader = DoubleBufferedReader(depth=2)
        for i in range(3):
            s = slice(i * 4, (i + 1) * 4)
            reader.submit(arr, disks[s], tracks[s], key=i)
        third = reader._pending[2]

        flat0, buf0 = reader.get(0)
        data0 = bytes(flat0)
        flat1, buf1 = reader.get(1)
        assert buf0 is not buf1
        # both buffers still held by the consumer -> no free slot
        assert not third.ready.wait(0.3)
        assert bytes(flat0) == data0, "unreleased buffer was overwritten"

        reader.release(buf0)
        assert third.ready.wait(5.0), "release did not unblock the prefetcher"
        flat2, buf2 = reader.get(2)
        assert buf2 is buf0, "released buffer should be recycled"
        assert buf2 is not buf1
        reader.release(buf1)
        reader.release(buf2)
        reader.close()

    def test_graceful_drain_on_early_termination(self):
        """close() with unconsumed submissions returns promptly, kills the
        worker thread, and leaves the array re-readable with clean stats."""
        arr, disks, tracks = make_array()
        reader = DoubleBufferedReader(depth=2)
        for i in range(6):
            s = slice(i * 4, (i + 1) * 4)
            reader.submit(arr, disks[s], tracks[s], key=i)
        flat, buf = reader.get(0)
        reader.release(buf)
        reader.close()
        reader.close()  # idempotent
        assert not reader._thread.is_alive()
        with pytest.raises(RuntimeError, match="closed"):
            reader.get(1)
        with pytest.raises(RuntimeError, match="closed"):
            reader.submit(arr, disks[:1], tracks[:1], key="x")
        # only the consumed read was accounted; the rest is re-readable
        ref, _, _ = make_array()
        ref.read_run(disks[:4], tracks[:4])
        assert arr.stats.as_dict() == ref.stats.as_dict()
        arr.read_run(disks[4:8], tracks[4:8])  # dropped prefetch re-reads fine

    def test_canonical_error_raised_at_get(self):
        """An unwritten track degrades to a miss in the worker and raises
        the reference error message on the consuming thread."""
        arr, disks, tracks = make_array()
        reader = DoubleBufferedReader()
        reader.submit(
            arr,
            np.asarray([0], dtype=np.int64),
            np.asarray([999], dtype=np.int64),
            key="bad",
        )
        with pytest.raises(
            SimulationError, match="read of unwritten track 999 on disk 0"
        ):
            reader.get("bad")
        reader.close()

    def test_reference_mode_degrades_to_synchronous(self, monkeypatch):
        """With REPRO_FASTPATH=0 there is no arena: every prefetch is a
        miss and get() serves the read through the reference loop with
        identical results and counters."""
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        arr, disks, tracks = make_array()
        assert arr._arena is None
        ref, _, _ = make_array()
        reader = DoubleBufferedReader()
        reader.submit(arr, disks[:6], tracks[:6], key=0)
        flat, buf = reader.get(0)
        assert bytes(flat) == bytes(ref.read_run(disks[:6], tracks[:6]))
        assert arr.stats.as_dict() == ref.stats.as_dict()
        reader.release(buf)
        reader.close()

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError, match="depth"):
            DoubleBufferedReader(depth=0)


# ------------------------------------------------------------ engine level

N = 1 << 13
CFG = MachineConfig(N=N, v=8, p=2, D=2, B=64)


def _sort(**kw):
    data = np.random.default_rng(11).integers(0, 1 << 30, N, dtype=np.int64)
    res = em_run(SampleSort(), partition_array(data, CFG.v), CFG, "par", **kw)
    return (
        [o.tobytes() for o in res.outputs],
        res.report.io.as_dict(),
        res.report.context_blocks_io,
        res.report.message_blocks_io,
    )


class TestEnginePrefetch:
    def test_prefetch_env_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        monkeypatch.setenv("REPRO_PREFETCH", "0")
        assert not fastpath.prefetch_enabled()
        monkeypatch.setenv("REPRO_PREFETCH", "1")
        assert fastpath.prefetch_enabled()
        monkeypatch.delenv("REPRO_PREFETCH")
        assert fastpath.prefetch_enabled()  # default on
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        assert not fastpath.prefetch_enabled()  # requires the fast path

    def test_prefetch_bit_identity(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREFETCH", "1")
        on = _sort()
        monkeypatch.setenv("REPRO_PREFETCH", "0")
        off = _sort()
        assert on == off

    def test_prefetch_engages(self, monkeypatch):
        """The pipeline really runs: the reader sees every local pid once
        per round on the fast path, and is torn down between rounds."""
        import repro.core.par_engine as pe

        created = []
        orig = pe.DoubleBufferedReader

        class Spy(orig):
            def __init__(self, *a, **kw):
                super().__init__(*a, **kw)
                created.append(self)

        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        monkeypatch.delenv("REPRO_FAULTS", raising=False)  # plans pin the reference path
        monkeypatch.delenv("REPRO_WORKERS", raising=False)  # Spy can't see into workers
        monkeypatch.setenv("REPRO_PREFETCH", "1")
        monkeypatch.setattr(pe, "DoubleBufferedReader", Spy)
        _sort()
        assert created, "prefetcher never engaged on the fast path"
        assert all(r._closed for r in created)
        assert all(not r._pending for r in created)

    def test_fault_plans_bypass_the_pipeline(self, monkeypatch):
        """Fault injection pins the reference path; with prefetch enabled
        the run must stay green, bit-identical, and pipeline-free."""
        import repro.core.par_engine as pe

        created = []
        orig = pe.DoubleBufferedReader

        class Spy(orig):
            def __init__(self, *a, **kw):
                super().__init__(*a, **kw)
                created.append(self)

        monkeypatch.setattr(pe, "DoubleBufferedReader", Spy)
        plan = FaultPlan(
            seed=13, p_transient_read=0.02, p_transient_write=0.02,
            retry=RetryPolicy(max_retries=6),
        )
        monkeypatch.setenv("REPRO_PREFETCH", "1")
        faulty_on = _sort(faults=plan)
        assert not created, "fault-injected run must not start a prefetcher"
        monkeypatch.setenv("REPRO_PREFETCH", "0")
        faulty_off = _sort(faults=plan)
        assert faulty_on == faulty_off
