"""Tests for internal-memory accounting, the LRU pager, and the disk
service-time model."""

from __future__ import annotations

import pytest

from repro.pdm.io_stats import DiskServiceModel, IOStats
from repro.pdm.memory import InternalMemory
from repro.pdm.vm import LRUPager
from repro.util.validation import SimulationError


class TestInternalMemory:
    def test_charge_release_and_peak(self):
        m = InternalMemory(100)
        m.charge(60)
        m.charge(30)
        m.release(50)
        assert m.used == 40
        assert m.peak == 90
        assert not m.overflowed

    def test_strict_overflow_raises(self):
        m = InternalMemory(10, strict=True)
        with pytest.raises(SimulationError, match="memory overflow"):
            m.charge(11)

    def test_nonstrict_overflow_recorded(self):
        m = InternalMemory(10)
        m.charge(25)
        assert m.overflowed
        assert m.peak == 25

    def test_release_never_negative(self):
        m = InternalMemory(10)
        m.charge(5)
        m.release(50)
        assert m.used == 0

    def test_negative_amounts_rejected(self):
        m = InternalMemory(10)
        with pytest.raises(ValueError):
            m.charge(-1)
        with pytest.raises(ValueError):
            m.release(-1)


class TestLRUPager:
    def test_working_set_fits_only_compulsory_faults(self):
        pager = LRUPager(memory_items=10 * 512, page_items=512)
        for _ in range(5):
            pager.touch_range(0, 8 * 512)  # 8 pages, 10 frames
        assert pager.faults == 8  # compulsory only

    def test_cyclic_sweep_beyond_memory_thrashes(self):
        """LRU's pathological case: cyclic scan of M+1 pages faults on
        every access — the Figure 3 mechanism."""
        pager = LRUPager(memory_items=4 * 512, page_items=512)
        for _ in range(3):
            pager.touch_range(0, 8 * 512)  # 8 pages into 4 frames
        assert pager.faults == 3 * 8
        assert pager.hit_rate == 0.0

    def test_partial_page_access_touches_whole_page(self):
        pager = LRUPager(memory_items=16 * 512)
        pager.touch_range(100, 10)  # inside page 0
        assert pager.faults == 1
        pager.touch_range(500, 50)  # spans pages 0 and 1
        assert pager.faults == 2

    def test_recency_updates(self):
        pager = LRUPager(memory_items=2 * 512, page_items=512)
        pager.touch_range(0 * 512, 1)      # page 0
        pager.touch_range(1 * 512, 1)      # page 1
        pager.touch_range(0 * 512, 1)      # refresh page 0
        pager.touch_range(2 * 512, 1)      # evicts page 1 (LRU)
        pager.touch_range(0 * 512, 1)      # page 0 still resident
        assert pager.faults == 3

    def test_empty_touch_free(self):
        pager = LRUPager(memory_items=512)
        assert pager.touch_range(0, 0) == 0

    def test_io_time_scales_with_faults(self):
        pager = LRUPager(memory_items=512, page_items=512)
        pager.touch_range(0, 512 * 5)
        assert pager.io_time(0.01) == pytest.approx(0.05)

    def test_bad_page_size(self):
        with pytest.raises(ValueError):
            LRUPager(1024, page_items=0)


class TestDiskServiceModel:
    def test_throughput_monotone_in_block_size(self):
        m = DiskServiceModel()
        sizes = [2**k for k in range(9, 24)]
        th = [m.throughput(s) for s in sizes]
        assert all(b > a for a, b in zip(th, th[1:]))

    def test_throughput_saturates_at_transfer_rate(self):
        m = DiskServiceModel()
        assert m.throughput(1 << 30) == pytest.approx(
            m.transfer_rate_bytes_per_s, rel=0.02
        )

    def test_small_block_dominated_by_positioning(self):
        m = DiskServiceModel()
        # 512-byte blocks: < 1% of the raw rate
        assert m.throughput(512) < 0.01 * m.transfer_rate_bytes_per_s

    def test_suggest_G_positive_and_increasing_in_B(self):
        m = DiskServiceModel()
        assert 0 < m.suggest_G(64) < m.suggest_G(4096)


class TestIOStats:
    def test_merge_and_delta(self):
        a = IOStats()
        a.record(2, 0, [0, 1], D=2)
        snap = a.snapshot()
        a.record(0, 2, [0, 1], D=2)
        d = a.delta_since(snap)
        assert d.parallel_ios == 1
        assert d.blocks_written == 2
        b = IOStats()
        b.record(1, 0, [0], D=2)
        a.merge(b)
        assert a.parallel_ios == 3
        assert a.blocks_total == 5

    def test_utilization(self):
        s = IOStats()
        s.record(2, 0, [0, 1], D=2)
        assert s.utilization(2) == 1.0
        s.record(1, 0, [0], D=2)
        assert s.utilization(2) == pytest.approx(3 / 4)

    def test_io_time(self):
        s = IOStats()
        s.record(1, 0, [0], D=1)
        s.record(0, 1, [0], D=1)
        assert s.io_time(G=2.5) == 5.0
