"""The mmap arena's own machinery: spill-directory lifecycle, growth by
ftruncate, quota enforcement, resident-memory accounting, and the
``REPRO_ARENA`` selection knob end to end through :class:`DiskArray`."""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.pdm import fastpath
from repro.pdm.arena import TrackArena
from repro.pdm.disk_array import DiskArray
from repro.pdm.fastpath import BlockRun
from repro.pdm.mmap_arena import MmapTrackArena, make_arena
from repro.util.items import ITEM_BYTES
from repro.util.validation import ConfigurationError, SimulationError


class TestSpillLifecycle:
    def test_one_file_per_disk_under_run_scoped_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path / "spill"))
        a = MmapTrackArena(3, 8)
        assert os.path.dirname(a.spill_dir) == str(tmp_path / "spill")
        assert sorted(os.listdir(a.spill_dir)) == [
            "disk0.bin", "disk1.bin", "disk2.bin"
        ]
        a.close()
        assert not os.path.exists(a.spill_dir)

    def test_two_arenas_never_collide(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        a, b = MmapTrackArena(1, 8), MmapTrackArena(1, 8)
        assert a.spill_dir != b.spill_dir
        a.put(0, 0, b"AAAAAAAA")
        b.put(0, 0, b"BBBBBBBB")
        assert a.get(0, 0) == b"AAAAAAAA"
        assert b.get(0, 0) == b"BBBBBBBB"
        a.close()
        b.close()

    def test_close_is_idempotent_and_use_after_close_fails(self):
        a = MmapTrackArena(1, 8)
        a.close()
        a.close()
        with pytest.raises(SimulationError, match="after close"):
            a.put(0, 0, b"x")

    def test_gc_reclaims_abandoned_spill_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        a = MmapTrackArena(1, 8)
        a.put(0, 4, b"payload!")
        spill = a.spill_dir
        del a
        gc.collect()
        assert not os.path.exists(spill)


class TestGrowth:
    def test_growth_preserves_data_and_zero_fills(self):
        a = MmapTrackArena(1, 8)
        try:
            a.put(0, 0, b"AAAAAAAA")
            a.put(0, 2000, b"BBBBBBBB")  # forces several doublings
            assert a.get(0, 0) == b"AAAAAAAA"
            assert a.get(0, 2000) == b"BBBBBBBB"
            assert a.get(0, 1000) is None  # sparse hole: unoccupied
            # file size matches the doubled capacity
            fsize = os.path.getsize(os.path.join(a.spill_dir, "disk0.bin"))
            assert fsize == a._data[0].shape[0] * 8 == a.spill_nbytes()
        finally:
            a.close()

    def test_resident_stays_bookkeeping_sized(self):
        """The mmap arena's resident accounting excludes track data —
        the O(buffers)-not-O(N) property the scale bench gates on."""
        a = MmapTrackArena(1, 1024)
        try:
            for t in range(512):
                a.put(0, t, b"\x01" * 1024)
            assert a.spill_nbytes() >= 512 * 1024
            assert a.resident_nbytes() < 64 * 1024  # masks + lengths only
            ram = TrackArena(1, 1024)
            ram.restore(0, a.snapshot(0))
            assert ram.resident_nbytes() > 512 * 1024  # RAM arena counts data
        finally:
            a.close()

    def test_quota_blocks_growth_not_existing_data(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_QUOTA", str(64 * 8))
        a = MmapTrackArena(1, 8)
        try:
            a.put(0, 10, b"x" * 8)  # first 64-row mapping: exactly at quota
            assert a.get(0, 10) == b"x" * 8
            with pytest.raises(SimulationError, match="spill quota exceeded"):
                a.put(0, 100, b"y" * 8)
            assert a.get(0, 10) == b"x" * 8  # refused growth left data intact
        finally:
            a.close()

    def test_quota_counts_all_disks(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_QUOTA", str(96 * 8))
        a = MmapTrackArena(2, 8)
        try:
            a.put(0, 0, b"x" * 8)  # disk 0 maps 64 rows
            with pytest.raises(SimulationError, match="spill quota"):
                a.put(1, 0, b"y" * 8)  # disk 1's 64 rows would exceed
        finally:
            a.close()


class TestSelection:
    def test_factory_honors_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARENA", "mmap")
        a = make_arena(1, 8)
        assert isinstance(a, MmapTrackArena)
        a.close()
        monkeypatch.setenv("REPRO_ARENA", "ram")
        assert type(make_arena(1, 8)) is TrackArena
        monkeypatch.delenv("REPRO_ARENA")
        assert type(make_arena(1, 8)) is TrackArena  # default

    def test_unknown_kind_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARENA", "tape")
        with pytest.raises(ConfigurationError, match="REPRO_ARENA"):
            fastpath.arena_kind()
        with pytest.raises(ConfigurationError, match="arena kind"):
            fastpath.set_arena_kind("tape")

    def test_set_arena_kind_writes_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARENA", "ram")
        fastpath.set_arena_kind("mmap")
        assert os.environ["REPRO_ARENA"] == "mmap"
        assert fastpath.arena_kind() == "mmap"

    def test_disk_array_bit_identity_across_arenas(self, monkeypatch):
        """The same write/read stream produces identical IOStats, counters
        and stored bytes on a RAM-arena and an mmap-arena DiskArray."""
        def run(kind: str):
            monkeypatch.setenv("REPRO_ARENA", kind)
            arr = DiskArray(D=3, B=2)
            bb = arr.block_bytes
            n = 40
            rng = np.random.default_rng(42)
            disks = rng.integers(0, 3, n).astype(np.int64)
            tracks = rng.integers(0, 12, n).astype(np.int64)
            raw = rng.integers(0, 256, n * bb, dtype=np.uint8).tobytes()
            arr.write_run(disks, tracks, BlockRun(raw, n, bb))
            uniq = sorted(set(zip(disks.tolist(), tracks.tolist())))
            rd = np.asarray([d for d, _ in uniq], dtype=np.int64)
            rt = np.asarray([t for _, t in uniq], dtype=np.int64)
            got = bytes(arr.read_run(rd, rt))
            state = (
                got,
                arr.stats.as_dict(),
                [d.snapshot_tracks() for d in arr.disks],
                [(d.blocks_read, d.blocks_written) for d in arr.disks],
            )
            arr.close()
            return state

        ram, mm = run("ram"), run("mmap")
        assert ram == mm


@pytest.mark.slow
def test_scale_smoke_under_spill_quota(monkeypatch):
    """An out-of-core sort completes under a small spill quota while the
    arena stays bookkeeping-resident (the CI arena-mmap lane's smoke)."""
    from repro.em.runner import em_sort, make_engine  # noqa: F401

    monkeypatch.setenv("REPRO_ARENA", "mmap")
    monkeypatch.setenv("REPRO_SPILL_QUOTA", str(256 << 20))
    n = 1 << 16
    data = np.random.default_rng(3).integers(0, 1 << 30, n, dtype=np.int64)
    cfg = MachineConfig(N=n, v=8, p=2, D=4, B=256)
    res = em_sort(data, cfg)
    assert np.array_equal(res.values, np.sort(data))
    assert res.report.io.parallel_ios > 0
    # a same-shape probe array confirms the storage the run used
    probe = DiskArray(cfg.D, cfg.B)
    assert isinstance(probe._arena, MmapTrackArena)
    probe._arena.put(0, 0, b"\x00" * cfg.B * ITEM_BYTES)
    assert probe._arena.resident_nbytes() < (1 << 20)
    probe.close()
