"""The vectorized fast path's building blocks, proved against the
reference machinery.

The fast path (:mod:`repro.pdm.fastpath`, :mod:`repro.pdm.arena`, the
``write_stream``/``read_run`` bulk APIs) is an *implementation* of the
same PDM, not a looser variant: every observable — batch widths, IOStats,
per-disk counters, stored bytes, raised errors — must be bit-identical to
the per-block reference loop.  The hypothesis suites here drive both
implementations with the same arbitrary placement streams and compare
everything observable.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdm import fastpath
from repro.pdm.arena import MAX_DIRECT_TRACK, TrackArena
from repro.pdm.block import blocks_for_bytes
from repro.pdm.disk_array import DiskArray, greedy_batch_widths
from repro.pdm.fastpath import BlockRun, BufferPool
from repro.tune.knobs import KnobError
from repro.util.items import ITEM_BYTES
from repro.util.validation import SimulationError


@pytest.fixture(autouse=True)
def _restore_fastpath_env():
    was = fastpath.enabled()
    yield
    fastpath.set_enabled(was)


def _make_array(D: int, B: int, fast: bool) -> DiskArray:
    fastpath.set_enabled(fast)
    arr = DiskArray(D=D, B=B)
    assert (arr._arena is not None) == fast
    return arr


# ------------------------------------------------------------------ BlockRun


class TestBlockRun:
    def test_to_blocks_pads_the_tail(self):
        run = BlockRun(b"abcdefgh" + b"xy", nblocks=2, block_bytes=8)
        assert run.to_blocks() == [b"abcdefgh", b"xy" + b"\x00" * 6]

    def test_rejects_overlong_buffer(self):
        with pytest.raises(ValueError):
            BlockRun(b"x" * 17, nblocks=2, block_bytes=8)

    def test_pickle_roundtrip_materializes_views(self):
        base = np.frombuffer(b"A" * 16, dtype=np.uint8)
        run = BlockRun(memoryview(base)[4:12], nblocks=1, block_bytes=8)
        back = pickle.loads(pickle.dumps(run))
        assert bytes(back.buf) == b"A" * 8
        assert (back.nblocks, back.block_bytes) == (1, 8)

    def test_nbytes(self):
        assert BlockRun(b"x" * 10, 2, 8).nbytes == 10


class TestBufferPool:
    def test_reuses_returned_buffers(self):
        pool = BufferPool()
        buf = pool.take(100)
        assert buf.nbytes >= 100
        pool.give(buf)
        assert pool.take(50) is buf

    def test_rejects_views(self):
        pool = BufferPool()
        buf = pool.take(64)
        pool.give(buf[:16])  # a view must not enter the pool
        assert pool.take(16) is not buf


def test_blocks_for_bytes():
    bb = 4 * ITEM_BYTES
    assert blocks_for_bytes(0, 4) == 0
    assert blocks_for_bytes(1, 4) == 1
    assert blocks_for_bytes(bb, 4) == 1
    assert blocks_for_bytes(bb + 1, 4) == 2
    with pytest.raises(ValueError):
        blocks_for_bytes(8, 0)


# ------------------------------------------------- greedy batching equivalence


def _fifo_reference_widths(disks: list[int]) -> list[int]:
    """The write_blocks/read_blocks FIFO rule, stated directly."""
    widths: list[int] = []
    seen: set[int] = set()
    w = 0
    for d in disks:
        if d in seen:
            widths.append(w)
            seen, w = set(), 0
        seen.add(d)
        w += 1
    if w:
        widths.append(w)
    return widths


@given(
    disks=st.lists(st.integers(min_value=0, max_value=4), max_size=200),
    D=st.integers(min_value=5, max_value=8),
)
def test_greedy_batch_widths_matches_fifo_reference(disks, D):
    arr = np.asarray(disks, dtype=np.int64)
    nops, widths = greedy_batch_widths(arr, D)
    assert nops == len(widths)
    assert widths.tolist() == _fifo_reference_widths(disks)
    assert int(widths.sum()) == len(disks)
    assert all(w <= D for w in widths.tolist())


@given(n=st.integers(min_value=0, max_value=64), D=st.integers(min_value=1, max_value=7), start=st.integers(min_value=0, max_value=6))
def test_greedy_batch_widths_striped_case(n, D, start):
    disks = (start + np.arange(n, dtype=np.int64)) % D
    nops, widths = greedy_batch_widths(disks, D)
    assert widths.tolist() == _fifo_reference_widths(disks.tolist())


# ------------------------------------------------------------------ TrackArena


class TestTrackArena:
    def test_put_get_roundtrip_and_growth(self):
        a = TrackArena(D=2, block_bytes=8)
        a.put(0, 500, b"abcdefgh")  # beyond initial rows: must grow
        assert a.get(0, 500) == b"abcdefgh"
        assert a.get(0, 1) is None

    def test_short_block_kept_exact(self):
        a = TrackArena(D=1, block_bytes=8)
        a.put(0, 0, b"xy")
        assert a.get(0, 0) == b"xy"

    def test_huge_track_goes_to_side_dict(self):
        a = TrackArena(D=1, block_bytes=8)
        a.put(0, MAX_DIRECT_TRACK + 7, b"deadbeef")
        assert a.get(0, MAX_DIRECT_TRACK + 7) == b"deadbeef"
        assert a.max_track(0) == MAX_DIRECT_TRACK + 7
        out = np.empty((1, 8), dtype=np.uint8)
        assert not a.gather(
            np.zeros(1, dtype=np.int64),
            np.asarray([MAX_DIRECT_TRACK + 7], dtype=np.int64),
            out,
        )

    def test_scatter_last_wins_on_duplicates(self):
        a = TrackArena(D=1, block_bytes=4)
        rows = np.frombuffer(b"AAAABBBB", dtype=np.uint8).reshape(2, 4)
        a.scatter(np.zeros(2, dtype=np.int64), np.zeros(2, dtype=np.int64), rows)
        assert a.get(0, 0) == b"BBBB"

    def test_snapshot_restore(self):
        a = TrackArena(D=2, block_bytes=4)
        a.put(0, 3, b"ab")
        a.put(1, 0, b"cdef")
        snap = a.snapshot(0)
        b = TrackArena(D=2, block_bytes=4)
        b.restore(0, snap)
        assert b.get(0, 3) == b"ab"
        assert b.tracks_in_use(0) == 1


# ------------------------------------------- DiskArray fast/reference identity


def _segment_stream(draw):
    """A write stream plus a read plan over the addresses it defines."""
    D = draw(st.integers(min_value=1, max_value=4))
    B = draw(st.integers(min_value=1, max_value=3))
    bb = B * ITEM_BYTES
    n_addr = draw(st.integers(min_value=1, max_value=24))
    addrs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=D - 1),
                st.integers(min_value=0, max_value=12),
            ),
            min_size=n_addr,
            max_size=n_addr,
        )
    )
    payload = draw(st.binary(min_size=0, max_size=n_addr * bb))
    return D, B, addrs, payload


@st.composite
def streams(draw):
    return _segment_stream(draw)


@settings(max_examples=40)
@given(streams())
def test_write_stream_matches_write_blocks(stream):
    D, B, addrs, payload = stream
    bb = B * ITEM_BYTES
    nblocks = len(addrs)
    payload = payload.ljust(0)  # may be shorter than the run: zero-padded tail
    run = BlockRun(payload[: nblocks * bb], nblocks=nblocks, block_bytes=bb)
    disks = np.asarray([d for d, _ in addrs], dtype=np.int64)
    tracks = np.asarray([t for _, t in addrs], dtype=np.int64)

    fast = _make_array(D, B, fast=True)
    ref = _make_array(D, B, fast=False)
    ops_fast = fast.write_run(disks, tracks, run)
    ops_ref = ref.write_blocks(list(zip(disks.tolist(), tracks.tolist(), run.to_blocks())))

    assert ops_fast == ops_ref
    assert fast.stats.as_dict() == ref.stats.as_dict()
    for d in range(D):
        assert fast.disks[d].snapshot_tracks() == ref.disks[d].snapshot_tracks()
        assert fast.disks[d].blocks_written == ref.disks[d].blocks_written

    # read everything back through both paths (dedup keeps batching valid)
    uniq = sorted(set(addrs))
    rd = np.asarray([d for d, _ in uniq], dtype=np.int64)
    rt = np.asarray([t for _, t in uniq], dtype=np.int64)
    got_fast = fast.read_run(rd, rt)
    got_ref = b"".join(
        blk.ljust(bb, b"\x00") for blk in ref.read_blocks(uniq)
    )
    assert bytes(got_fast) == got_ref
    assert fast.stats.as_dict() == ref.stats.as_dict()
    for d in range(D):
        assert fast.disks[d].blocks_read == ref.disks[d].blocks_read


def test_read_run_unwritten_track_raises_canonical_error():
    fast = _make_array(2, 1, fast=True)
    ref = _make_array(2, 1, fast=False)
    with pytest.raises(SimulationError) as e_fast:
        fast.read_run(np.asarray([0]), np.asarray([3]))
    with pytest.raises(SimulationError) as e_ref:
        ref.read_blocks([(0, 3)])
    assert str(e_fast.value) == str(e_ref.value)


def test_write_stream_rejects_bad_addresses_both_paths():
    run = BlockRun(b"\x00" * ITEM_BYTES, 1, ITEM_BYTES)
    for fast in (True, False):
        arr = _make_array(2, 1, fast=fast)
        with pytest.raises(SimulationError):
            arr.write_run(np.asarray([5]), np.asarray([0]), run)
        with pytest.raises(SimulationError):
            arr.write_run(np.asarray([0]), np.asarray([-1]), run)


def test_snapshot_restore_portable_across_storage_modes():
    """A checkpoint taken in one storage mode restores into the other."""
    fast = _make_array(2, 1, fast=True)
    run = BlockRun(b"12345678" * 3, 3, ITEM_BYTES)
    fast.write_run(np.asarray([0, 1, 0]), np.asarray([0, 0, 1]), run)
    snap = {d: fast.disks[d].snapshot_tracks() for d in range(2)}

    ref = _make_array(2, 1, fast=False)
    for d in range(2):
        ref.disks[d].restore_tracks(snap[d])
    assert ref.read_blocks([(0, 0), (1, 0), (0, 1)]) == [b"12345678"] * 3


# ------------------------------------------------------------------ env knobs


def test_fastpath_env_flag(monkeypatch):
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    assert not fastpath.enabled()
    monkeypatch.setenv("REPRO_FASTPATH", "off")
    assert not fastpath.enabled()
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    assert fastpath.enabled()
    monkeypatch.delenv("REPRO_FASTPATH")
    assert fastpath.enabled()  # default on


def test_shm_threshold_knob(monkeypatch):
    monkeypatch.delenv("REPRO_SHM_BYTES", raising=False)
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    assert fastpath.shm_threshold() == fastpath.DEFAULT_SHM_THRESHOLD
    monkeypatch.setenv("REPRO_SHM_BYTES", "4096")
    assert fastpath.shm_threshold() == 4096
    monkeypatch.setenv("REPRO_SHM_BYTES", "0")
    assert fastpath.shm_threshold() is None
    # malformed values are a hard, named error now (not a silent default)
    monkeypatch.setenv("REPRO_SHM_BYTES", "nonsense")
    with pytest.raises(KnobError, match="REPRO_SHM_BYTES"):
        fastpath.shm_threshold()
    monkeypatch.setenv("REPRO_SHM_BYTES", "4096")
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    assert fastpath.shm_threshold() is None
