"""Tests for the PDM disk-array substrate: the one-track-per-disk rule,
FIFO batching, counters, and data integrity."""

from __future__ import annotations

import pytest

from repro.pdm.block import pack_blocks, unpack_blocks
from repro.pdm.disk import Disk
from repro.pdm.disk_array import DiskArray, IOOp
from repro.util.validation import SimulationError


def blk(byte: int, B: int = 4) -> bytes:
    return bytes([byte]) * (B * 8)


class TestDisk:
    def test_write_read_roundtrip(self):
        d = Disk(0)
        d.write(3, b"abc")
        assert d.read(3) == b"abc"

    def test_read_unwritten_track_is_error(self):
        d = Disk(0)
        with pytest.raises(SimulationError, match="unwritten track"):
            d.read(7)

    def test_negative_track_rejected(self):
        with pytest.raises(SimulationError):
            Disk(0).write(-1, b"x")

    def test_counters(self):
        d = Disk(0)
        d.write(0, b"a")
        d.write(1, b"b")
        d.read(0)
        assert d.blocks_written == 2
        assert d.blocks_read == 1
        assert d.tracks_in_use == 2

    def test_free_releases_track(self):
        d = Disk(0)
        d.write(0, b"a")
        d.free(0)
        assert d.tracks_in_use == 0
        with pytest.raises(SimulationError):
            d.read(0)

    def test_max_track(self):
        d = Disk(0)
        assert d.max_track() == -1
        d.write(9, b"x")
        assert d.max_track() == 9


class TestParallelIORule:
    def test_one_op_many_disks_counts_once(self):
        arr = DiskArray(D=4, B=4)
        ops = [IOOp(d, 0, blk(d)) for d in range(4)]
        arr.parallel_io(ops)
        assert arr.stats.parallel_ios == 1
        assert arr.stats.blocks_written == 4

    def test_two_tracks_same_disk_rejected(self):
        arr = DiskArray(D=4, B=4)
        with pytest.raises(SimulationError, match="touches disk 1 twice"):
            arr.parallel_io([IOOp(1, 0, blk(0)), IOOp(1, 1, blk(1))])

    def test_disk_out_of_range_rejected(self):
        arr = DiskArray(D=2, B=4)
        with pytest.raises(SimulationError, match="out of range"):
            arr.parallel_io([IOOp(5, 0, blk(0))])

    def test_mixed_read_write_in_one_op(self):
        arr = DiskArray(D=2, B=4)
        arr.parallel_io([IOOp(0, 0, blk(1))])
        out = arr.parallel_io([IOOp(0, 0), IOOp(1, 0, blk(2))])
        assert out == [blk(1)]
        assert arr.stats.read_ops == 1
        # the second op both read and wrote
        assert arr.stats.write_ops == 2

    def test_partial_op_costs_same(self):
        """PDM: an op touching 1 of D disks still costs one parallel I/O."""
        arr = DiskArray(D=8, B=4)
        arr.parallel_io([IOOp(3, 0, blk(0))])
        assert arr.stats.parallel_ios == 1
        assert arr.stats.utilization(8) == pytest.approx(1 / 8)

    def test_empty_op_is_free(self):
        arr = DiskArray(D=2, B=4)
        assert arr.parallel_io([]) == []
        assert arr.stats.parallel_ios == 0


class TestFIFOBatching:
    def test_conflict_free_run_is_one_io(self):
        arr = DiskArray(D=4, B=4)
        placements = [(d, 0, blk(d)) for d in range(4)]
        assert arr.write_blocks(placements) == 1

    def test_conflict_starts_new_cycle(self):
        """The paper's DiskWrite: strictly FIFO, cut at first disk conflict."""
        arr = DiskArray(D=4, B=4)
        placements = [
            (0, 0, blk(0)),
            (1, 0, blk(1)),
            (0, 1, blk(2)),  # conflicts with first
            (2, 0, blk(3)),
        ]
        assert arr.write_blocks(placements) == 2
        assert arr.stats.parallel_ios == 2

    def test_fifo_order_preserved(self):
        """A later non-conflicting block must NOT jump the queue ahead of a
        conflicting one (strict FIFO, per the paper)."""
        arr = DiskArray(D=2, B=4)
        placements = [
            (0, 0, blk(0)),
            (0, 1, blk(1)),  # conflict -> cycle break
            (1, 0, blk(2)),
        ]
        # cycles: [disk0], [disk0, disk1] -> 2 ops, not 1
        assert arr.write_blocks(placements) == 2

    def test_round_trip_with_read_batching(self):
        arr = DiskArray(D=3, B=4)
        data = {(d, t): bytes([d * 16 + t]) * 32 for d in range(3) for t in range(4)}
        arr.write_blocks([(d, t, v) for (d, t), v in sorted(data.items())])
        addrs = sorted(data)
        out = arr.read_blocks([(d, t) for d, t in addrs])
        assert out == [data[a] for a in addrs]

    def test_full_stripe_write_read_costs(self):
        """n blocks striped over D disks: ceil(n/D) I/Os each way."""
        D, n = 4, 13
        arr = DiskArray(D=D, B=4)
        placements = [(i % D, i // D, blk(i % 251)) for i in range(n)]
        w = arr.write_blocks(placements)
        assert w == -(-n // D)
        arr.read_blocks([(i % D, i // D) for i in range(n)])
        assert arr.stats.parallel_ios == 2 * -(-n // D)


class TestPackBlocks:
    def test_pack_unpack_roundtrip(self):
        data = bytes(range(256)) * 3
        blocks = pack_blocks(data, B=8)
        assert all(len(b) == 64 for b in blocks)
        assert unpack_blocks(blocks)[: len(data)] == data

    def test_empty_input_no_blocks(self):
        assert pack_blocks(b"", 8) == []

    def test_single_byte_pads_to_one_block(self):
        blocks = pack_blocks(b"x", B=4)
        assert len(blocks) == 1
        assert blocks[0] == b"x" + b"\x00" * 31

    def test_exact_multiple_no_extra_block(self):
        assert len(pack_blocks(b"a" * 64, B=4)) == 2

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            pack_blocks(b"abc", 0)


class TestLoadBalance:
    def test_striped_writes_balanced(self):
        D = 4
        arr = DiskArray(D=D, B=4)
        arr.write_blocks([(i % D, i // D, blk(0)) for i in range(40)])
        lo, hi = arr.load_balance()
        assert hi - lo <= 1
