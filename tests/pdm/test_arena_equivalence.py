"""Three-way storage-backend equivalence: dict Disk, RAM arena, mmap arena.

One logical track store, three implementations.  The hypothesis suites
drive the *same* randomized operation sequence through all three and
assert that every observable — returned bytes, ``SimulationError`` parity
on free-track reads, occupancy, snapshots, side-dict fallbacks for
odd-sized and shadow-region tracks — is identical.  The boundary classes
pin the exact ``MAX_DIRECT_TRACK`` edge, where a track one below must stay
dense and a track at the constant must divert to the side dict (the
scatter path historically skipped that check and allocated rows for the
whole gap).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdm.arena import MAX_DIRECT_TRACK, TrackArena
from repro.pdm.disk import Disk
from repro.pdm.mmap_arena import MmapTrackArena
from repro.util.validation import SimulationError

D = 2
BB = 8  # block bytes


@pytest.fixture
def trio():
    """One dict-backed disk bank plus RAM- and mmap-arena banks."""
    ram = TrackArena(D, BB)
    mm = MmapTrackArena(D, BB)
    banks = (
        [Disk(d) for d in range(D)],
        [Disk(d, arena=ram) for d in range(D)],
        [Disk(d, arena=mm) for d in range(D)],
    )
    yield banks
    mm.close()


def _read_all(banks, disk: int, track: int):
    """Read one address through every backend; returns the common result.

    Either all three return the same bytes or all three raise the same
    canonical error — anything else is an equivalence bug.
    """
    results = []
    for bank in banks:
        try:
            results.append(bank[disk].read(track))
        except SimulationError as exc:
            results.append(str(exc))
    assert results[0] == results[1] == results[2], (disk, track, results)
    return results[0]


# ------------------------------------------------------------- op sequences

# Track values exercise the dense range, the side-dict shadow region
# (>= MAX_DIRECT_TRACK, as the fault injector's remaps use), and payload
# sizes exercise full-stride, short (padded) and oversized (side dict).
_tracks = st.one_of(
    st.integers(min_value=0, max_value=24),
    st.sampled_from([MAX_DIRECT_TRACK, MAX_DIRECT_TRACK + 5, (1 << 40) + 3]),
)
_payloads = st.binary(min_size=0, max_size=BB + 4)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, D - 1), _tracks, _payloads),
        st.tuples(st.just("read"), st.integers(0, D - 1), _tracks),
        st.tuples(st.just("free"), st.integers(0, D - 1), _tracks),
    ),
    max_size=30,
)


@given(ops=_ops)
def test_randomized_sequences_are_equivalent(ops):
    ram = TrackArena(D, BB)
    mm = MmapTrackArena(D, BB)
    try:
        banks = (
            [Disk(d) for d in range(D)],
            [Disk(d, arena=ram) for d in range(D)],
            [Disk(d, arena=mm) for d in range(D)],
        )
        for op in ops:
            if op[0] == "write":
                _, d, t, payload = op
                for bank in banks:
                    bank[d].write(t, payload)
            elif op[0] == "read":
                _, d, t = op
                _read_all(banks, d, t)
            else:
                _, d, t = op
                for bank in banks:
                    bank[d].free(t)
        for d in range(D):
            ref = banks[0][d]
            for bank in banks[1:]:
                assert bank[d].snapshot_tracks() == ref.snapshot_tracks()
                assert bank[d].tracks_in_use == ref.tracks_in_use
                assert bank[d].max_track() == ref.max_track()
                assert bank[d].blocks_read == ref.blocks_read
                assert bank[d].blocks_written == ref.blocks_written
    finally:
        mm.close()


@settings(max_examples=25)
@given(
    addrs=st.lists(
        st.tuples(st.integers(0, D - 1), st.integers(0, 15)),
        min_size=1,
        max_size=16,
    ),
    payload=st.binary(min_size=0, max_size=16 * BB),
)
def test_batch_scatter_gather_matches_dict_writes(addrs, payload):
    """A full-stride batch scatter equals per-track dict writes, and both
    arenas gather back the identical bytes."""
    n = len(addrs)
    raw = payload.ljust(n * BB, b"\x00")[: n * BB]
    rows = np.frombuffer(raw, dtype=np.uint8).reshape(n, BB)
    disks = np.asarray([a for a, _ in addrs], dtype=np.int64)
    tracks = np.asarray([t for _, t in addrs], dtype=np.int64)

    ref = [Disk(d) for d in range(D)]
    for (d, t), i in zip(addrs, range(n)):
        ref[d].write(t, rows[i].tobytes())

    ram = TrackArena(D, BB)
    mm = MmapTrackArena(D, BB)
    try:
        for arena in (ram, mm):
            arena.scatter(disks, tracks, rows)
            for d in range(D):
                assert arena.snapshot(d) == ref[d].snapshot_tracks()
            uniq = sorted(set(addrs))
            ud = np.asarray([a for a, _ in uniq], dtype=np.int64)
            ut = np.asarray([t for _, t in uniq], dtype=np.int64)
            out = np.empty((len(uniq), BB), dtype=np.uint8)
            assert arena.gather(ud, ut, out)
            expect = b"".join(ref[d].read(t) for d, t in uniq)
            assert out.tobytes() == expect
    finally:
        mm.close()


def test_occupancy_mask_parity_after_frees(trio):
    banks = trio
    for bank in banks:
        bank[0].write(0, b"A" * BB)
        bank[0].write(1, b"B" * BB)
        bank[1].write(2, b"C" * BB)
        bank[0].free(1)
        bank[1].free(9)  # freeing an unwritten track is a no-op everywhere
    for d in range(D):
        assert (
            banks[0][d].snapshot_tracks()
            == banks[1][d].snapshot_tracks()
            == banks[2][d].snapshot_tracks()
        )
    assert _read_all(banks, 0, 0) == b"A" * BB
    assert "unwritten track 1" in _read_all(banks, 0, 1)


def test_snapshots_port_across_all_backends(trio):
    """A snapshot taken on any backend restores into any other."""
    src_bank = trio[2]  # mmap
    src_bank[0].write(3, b"x" * BB)
    src_bank[0].write(MAX_DIRECT_TRACK + 1, b"far")
    src_bank[0].write(5, b"odd-size-payload")  # > BB: side dict
    snap = src_bank[0].snapshot_tracks()
    for dest_bank in trio[:2]:
        dest_bank[0].restore_tracks(snap)
        assert dest_bank[0].snapshot_tracks() == snap
        assert dest_bank[0].read(MAX_DIRECT_TRACK + 1) == b"far"
        assert dest_bank[0].read(5) == b"odd-size-payload"


# --------------------------------------------- MAX_DIRECT_TRACK boundary


class _Boundary:
    """Shared boundary regressions, run against both arena backends.

    Uses ``block_bytes=1`` so dense growth to the real constant's edge
    costs ~1 MiB, keeping the true-boundary coverage cheap enough for
    tier-1.
    """

    def make(self) -> TrackArena:
        raise NotImplementedError

    def teardown_arena(self, arena: TrackArena) -> None:
        arena.close()

    def test_put_one_below_stays_dense(self):
        a = self.make()
        try:
            a.put(0, MAX_DIRECT_TRACK - 1, b"z")
            assert a.get(0, MAX_DIRECT_TRACK - 1) == b"z"
            assert not a._side[0], "track MAX-1 must not spill to the side dict"
            assert a._data[0].shape[0] >= MAX_DIRECT_TRACK
        finally:
            self.teardown_arena(a)

    def test_put_at_boundary_goes_to_side_dict(self):
        a = self.make()
        try:
            a.put(0, MAX_DIRECT_TRACK, b"w")
            assert a.get(0, MAX_DIRECT_TRACK) == b"w"
            assert a._side[0] == {MAX_DIRECT_TRACK: b"w"}
            assert a._data[0].shape[0] == 0, "boundary put must not grow rows"
        finally:
            self.teardown_arena(a)

    def test_scatter_straddling_the_boundary(self):
        """Regression: scatter used to ignore MAX_DIRECT_TRACK entirely,
        growing dense rows for the whole gap and breaking the side-dict
        invariant.  A straddling batch must split: below-dense, at/above-
        side, with last-wins semantics preserved across the split."""
        a = self.make()
        try:
            disks = np.zeros(3, dtype=np.int64)
            tracks = np.asarray(
                [MAX_DIRECT_TRACK - 1, MAX_DIRECT_TRACK, MAX_DIRECT_TRACK + 2],
                dtype=np.int64,
            )
            rows = np.frombuffer(b"abc", dtype=np.uint8).reshape(3, 1)
            a.scatter(disks, tracks, rows)
            assert a.get(0, MAX_DIRECT_TRACK - 1) == b"a"
            assert a.get(0, MAX_DIRECT_TRACK) == b"b"
            assert a.get(0, MAX_DIRECT_TRACK + 2) == b"c"
            assert set(a._side[0]) == {MAX_DIRECT_TRACK, MAX_DIRECT_TRACK + 2}
            assert a._data[0].shape[0] <= MAX_DIRECT_TRACK
            assert a.max_track(0) == MAX_DIRECT_TRACK + 2
            # a dict round-trip carries all three across backends
            snap = a.snapshot(0)
            b = TrackArena(1, 1)
            b.restore(0, snap)
            assert b.snapshot(0) == snap
        finally:
            self.teardown_arena(a)

    def test_scatter_overwrites_boundary_side_entries(self):
        a = self.make()
        try:
            a.put(0, MAX_DIRECT_TRACK, b"old")
            a.scatter(
                np.zeros(1, dtype=np.int64),
                np.asarray([MAX_DIRECT_TRACK], dtype=np.int64),
                np.frombuffer(b"n", dtype=np.uint8).reshape(1, 1),
            )
            assert a.get(0, MAX_DIRECT_TRACK) == b"n"
            assert a._side[0] == {MAX_DIRECT_TRACK: b"n"}
        finally:
            self.teardown_arena(a)

    def test_gather_refuses_boundary_tracks(self):
        a = self.make()
        try:
            a.put(0, MAX_DIRECT_TRACK, b"w")
            out = np.empty((1, 1), dtype=np.uint8)
            assert not a.gather(
                np.zeros(1, dtype=np.int64),
                np.asarray([MAX_DIRECT_TRACK], dtype=np.int64),
                out,
            )
        finally:
            self.teardown_arena(a)


class TestBoundaryRam(_Boundary):
    def make(self) -> TrackArena:
        return TrackArena(1, 1)


class TestBoundaryMmap(_Boundary):
    def make(self) -> TrackArena:
        return MmapTrackArena(1, 1)
