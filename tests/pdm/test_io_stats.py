"""IOStats counter semantics: eager per-disk sizing, D validation (the
lazy-sizing mis-indexing regression), the width histogram, and the
merge/snapshot/delta algebra the engines rely on."""

from __future__ import annotations

import pytest

from repro.pdm.disk_array import DiskArray, IOOp
from repro.pdm.io_stats import IOStats


class TestEagerSizing:
    def test_constructed_with_D_is_sized(self):
        s = IOStats(D=4)
        assert s.per_disk_blocks == [0, 0, 0, 0]
        assert s.width_histogram == [0] * 5

    def test_per_disk_blocks_implies_D(self):
        s = IOStats(per_disk_blocks=[0, 0, 0])
        assert s.D == 3
        assert len(s.width_histogram) == 4

    def test_bad_D_rejected(self):
        with pytest.raises(ValueError):
            IOStats(D=0)

    def test_mismatched_presized_lists_rejected(self):
        with pytest.raises(ValueError):
            IOStats(per_disk_blocks=[0, 0], D=3)


class TestRecordValidation:
    def test_regression_later_call_with_different_D(self):
        """The old lazy sizing adopted the first call's D and silently
        mis-indexed (or IndexError'd) when a later call passed another D —
        now it raises a clear error immediately."""
        s = IOStats(D=2)
        s.record(1, 0, [0], 2)
        with pytest.raises(ValueError, match="sized for"):
            s.record(1, 0, [0], 3)
        with pytest.raises(ValueError, match="sized for"):
            s.record(0, 1, [0], 1)
        # counters unchanged by the rejected calls
        assert s.parallel_ios == 1

    def test_lazy_accumulator_adopts_first_D_then_validates(self):
        s = IOStats()
        s.record(1, 1, [0, 2], 3)
        assert s.D == 3
        assert s.per_disk_blocks == [1, 0, 1]
        with pytest.raises(ValueError):
            s.record(1, 0, [0], 4)

    def test_counts(self):
        s = IOStats(D=2)
        s.record(2, 0, [0, 1], 2)
        s.record(0, 1, [1], 2)
        assert s.parallel_ios == 2
        assert s.blocks_read == 2 and s.blocks_written == 1
        assert s.read_ops == 1 and s.write_ops == 1
        assert s.per_disk_blocks == [1, 2]


class TestWidthHistogram:
    def test_widths_recorded(self):
        s = IOStats(D=3)
        s.record(3, 0, [0, 1, 2], 3)
        s.record(1, 0, [1], 3)
        s.record(0, 2, [0, 2], 3)
        assert s.width_histogram == [0, 1, 1, 1]

    def test_disk_array_populates_widths(self):
        arr = DiskArray(D=3, B=4)
        blk = bytes(4 * 8)
        arr.parallel_io([IOOp(0, 0, blk), IOOp(1, 0, blk), IOOp(2, 0, blk)])
        arr.parallel_io([IOOp(1, 1, blk)])
        assert arr.stats.width_histogram == [0, 1, 0, 1]
        assert arr.stats.per_disk_blocks == [1, 2, 1]


class TestAlgebra:
    def _sample(self) -> IOStats:
        s = IOStats(D=2)
        s.record(2, 0, [0, 1], 2)
        s.record(0, 1, [0], 2)
        return s

    def test_snapshot_is_independent(self):
        s = self._sample()
        snap = s.snapshot()
        s.record(1, 0, [1], 2)
        assert snap.parallel_ios == 2
        assert snap.per_disk_blocks == [2, 1]
        assert snap.width_histogram == [0, 1, 1]
        assert s.per_disk_blocks == [2, 2]

    def test_delta_since(self):
        s = self._sample()
        snap = s.snapshot()
        s.record(1, 0, [1], 2)
        s.record(0, 2, [0, 1], 2)
        d = s.delta_since(snap)
        assert d.parallel_ios == 2
        assert d.blocks_read == 1 and d.blocks_written == 2
        assert d.per_disk_blocks == [1, 2]
        assert d.width_histogram == [0, 1, 1]

    def test_delta_since_empty_baseline(self):
        s = self._sample()
        d = s.delta_since(IOStats())
        assert d.parallel_ios == s.parallel_ios
        assert d.per_disk_blocks == s.per_disk_blocks

    def test_merge_accumulator_adopts_and_sums(self):
        total = IOStats()
        a, b = self._sample(), self._sample()
        total.merge(a)
        total.merge(b)
        assert total.D == 2
        assert total.parallel_ios == 4
        assert total.per_disk_blocks == [4, 2]
        assert total.width_histogram == [0, 2, 2]

    def test_merge_wider_array_keeps_tail(self):
        total = IOStats(D=2)
        total.record(1, 0, [0], 2)
        wide = IOStats(D=4)
        wide.record(4, 0, [0, 1, 2, 3], 4)
        total.merge(wide)
        assert total.per_disk_blocks == [2, 1, 1, 1]
        assert total.width_histogram == [0, 1, 0, 0, 1]
        assert total.D == 4
