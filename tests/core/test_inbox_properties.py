"""Property tests: every engine delivers the same inbox.

The satellite edge cases of the balanced-routing fixes — empty payloads,
pid-0 senders (whose chunks used to fall through ``me or 0``), duplicate
tags to one destination (slot bundling), and messages exactly filling a
staggered slot — are pinned with explicit examples, and hypothesis
explores arbitrary outbox shapes around them.  The delivered inboxes
(source, tag, h-relation charge, exact payload bytes) must agree between
the in-memory reference, Algorithm 2 (seq), and Algorithm 3 (par), with
and without Algorithm 1's balanced routing.
"""

from __future__ import annotations

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram
from repro.em.runner import em_run

V = 4
SLOT_ITEMS = 16  # what the program advertises: one staggered slot's worth

# one send: (src, dest, payload kind, tag)
_send = st.tuples(
    st.integers(0, V - 1),
    st.integers(0, V - 1),
    st.sampled_from(["empty", "tiny", "slotfill", "oversize"]),
    st.sampled_from([None, "a", "b"]),
)
_outbox = st.lists(_send, max_size=12)


def _payload(kind: str, src: int, dest: int) -> np.ndarray:
    if kind == "empty":
        return np.array([], dtype=np.int64)
    if kind == "tiny":
        return np.array([src * V + dest], dtype=np.int64)
    if kind == "slotfill":
        # exactly the advertised slot capacity, in items
        return np.arange(SLOT_ITEMS, dtype=np.int64) + src
    return np.arange(4 * SLOT_ITEMS, dtype=np.int64) * (src + 1)  # overflow


class _Exchange(CGMProgram):
    name = "exchange-property"
    kappa = 1.0

    def __init__(self, sends):
        self.sends = sends

    def max_message_items(self, cfg):
        return SLOT_ITEMS

    def setup(self, ctx, pid, cfg, local_input):
        ctx["pid"] = pid

    def round(self, r, ctx, env):
        if r == 0:
            for src, dest, kind, tag in self.sends:
                if src == ctx["pid"]:
                    env.send(dest, _payload(kind, src, dest), tag=tag)
            return False
        ctx["inbox"] = sorted(
            (m.src, m.tag or "", m.size_items, m.payload.tobytes())
            for m in env.messages()
        )
        return True

    def finish(self, ctx):
        return ctx["inbox"]


def _deliver(sends, kind: str, balanced: bool):
    cfg = MachineConfig(N=1 << 12, v=V, p=2 if kind == "par" else 1, D=2, B=32)
    res = em_run(_Exchange(sends), [None] * V, cfg, kind, balanced=balanced)
    return res.outputs


@settings(max_examples=40, deadline=None)
@given(sends=_outbox)
@example(sends=[(0, 1, "empty", None)])                       # pid-0 sender
@example(sends=[(0, 0, "tiny", "a"), (0, 0, "tiny", "a")])    # self + dup tags
@example(sends=[(1, 2, "slotfill", None)])                    # exact slot fill
@example(sends=[(0, 3, "oversize", "a"), (2, 3, "empty", "a")])
@example(
    sends=[(s, d, "tiny", "a") for s in range(V) for d in range(V)]
)  # all-to-all
def test_direct_routing_delivery_agrees(sends):
    ref = _deliver(sends, "memory", balanced=False)
    assert _deliver(sends, "seq", balanced=False) == ref
    assert _deliver(sends, "par", balanced=False) == ref


@settings(max_examples=40, deadline=None)
@given(sends=_outbox)
@example(sends=[(0, 1, "empty", None)])
@example(sends=[(0, 0, "tiny", "a"), (0, 0, "tiny", "a")])
@example(sends=[(1, 2, "slotfill", None)])
@example(sends=[(0, 3, "oversize", "a"), (2, 3, "empty", "a")])
@example(
    sends=[(0, d, "tiny", t) for d in range(V) for t in ("a", "b")]
)  # chunk traffic regrouped *at* processor 0
def test_balanced_routing_delivery_agrees(sends):
    """Balanced mode must deliver the same messages — same sources, tags,
    payload bytes, and (preserved, not recomputed) size_items charges."""
    ref = _deliver(sends, "memory", balanced=False)
    assert _deliver(sends, "memory", balanced=True) == ref
    assert _deliver(sends, "seq", balanced=True) == ref
    assert _deliver(sends, "par", balanced=True) == ref
