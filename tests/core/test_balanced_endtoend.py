"""Balanced-mode differential tests across the whole algorithm catalogue.

BalancedRouting chunks *serialized* payloads at the word level, so every
payload class the library uses (numpy arrays, dicts of arrays, tuples,
strings, Chunk bundles) must survive the split/regroup/reassemble cycle
on the EM backends.  These tests run representative algorithms from all
three Figure 5 groups with ``balanced=True`` and require bit-identical
outputs to the direct runs.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.spatial import Delaunay

from repro.algorithms.collectives import partition_array
from repro.cgm.config import MachineConfig
from repro.em.runner import em_run, em_sort


class TestBalancedGroupA:
    def test_sort_balanced_matches_direct(self, rng):
        n = 1 << 13
        data = rng.integers(0, 2**50, n)
        cfg = MachineConfig(N=n, v=8, D=2, B=64)
        direct = em_sort(data, cfg, engine="seq")
        balanced = em_sort(data, cfg, engine="seq", balanced=True)
        assert np.array_equal(direct.values, balanced.values)

    def test_balanced_message_sizes_tighter(self, rng):
        """After balancing, the h-relation of each physical round stays
        within Theorem 1's band around h/v."""
        n = 1 << 13
        data = rng.integers(0, 2**50, n)
        cfg = MachineConfig(N=n, v=8, D=2, B=64)
        res = em_sort(data, cfg, engine="seq", balanced=True)
        assert res.report.overflow_blocks == 0


class TestBalancedGroupB:
    def test_delaunay_balanced(self, rng):
        pts = rng.random((500, 2))
        import repro.algorithms.geometry as geo
        from repro.algorithms.geometry.delaunay import DelaunayCGM

        cfg = MachineConfig(N=3 * 500, v=4, D=2, B=32)
        rows = np.column_stack((pts, np.arange(500, dtype=np.float64)))
        res = em_run(
            DelaunayCGM(n_points=500),
            partition_array(rows, 4),
            cfg,
            engine="seq",
            balanced=True,
        )
        ref = {tuple(sorted(map(int, t))) for t in Delaunay(pts).simplices}
        assert {tuple(t) for t in res.outputs[0]["triangles"]} == ref

    def test_dominance_balanced(self, rng):
        import repro.algorithms.geometry as geo
        from repro.algorithms.geometry.dominance import DominanceCount, dominance_reference

        pts = rng.random((200, 2))
        w = rng.random(200)
        rows = np.column_stack((pts, w, np.arange(200, dtype=np.float64)))
        cfg = MachineConfig(N=rows.size, v=4, D=2, B=32)
        res = em_run(DominanceCount(), partition_array(rows, 4), cfg, "seq", balanced=True)
        out = np.zeros(200)
        for o in res.outputs:
            for gid, val in o:
                out[int(gid)] = val
        assert np.allclose(out, dominance_reference(pts, w))


class TestBalancedGroupC:
    def test_connected_components_balanced(self):
        import networkx as nx

        from repro.algorithms.graphs.connectivity import ConnectedComponents

        n = 200
        G = nx.gnm_random_graph(n, 300, seed=2)
        edges = np.array(G.edges())
        rows = np.column_stack((np.arange(len(edges)), edges))
        cfg = MachineConfig(N=n, v=4, D=2, B=16)
        res = em_run(
            ConnectedComponents(n), partition_array(rows, 4), cfg, "seq", balanced=True
        )
        comp = np.concatenate([o[0] for o in res.outputs])
        for cc in nx.connected_components(G):
            assert {comp[u] for u in cc} == {min(cc)}

    def test_expression_eval_balanced(self, rng):
        from repro.algorithms.collectives import slice_bounds
        from repro.algorithms.graphs.tree_contraction import (
            ExpressionEval,
            eval_expression_direct,
        )

        n = 150
        parent = np.full(n, -1, dtype=np.int64)
        op = rng.integers(0, 2, n)
        val = rng.uniform(0.5, 1.5, n)
        child_count = np.zeros(n, dtype=int)
        avail = [0]
        for u in range(1, n):
            k = int(rng.integers(0, len(avail)))
            p = avail[k]
            parent[u] = p
            child_count[p] += 1
            if child_count[p] == 2:
                avail.pop(k)
            avail.append(u)
        cfg = MachineConfig(N=n, v=4, D=2, B=16)
        inputs = []
        for pid in range(4):
            lo, hi = slice_bounds(n, 4, pid)
            inputs.append((parent[lo:hi], op[lo:hi], val[lo:hi]))
        res = em_run(ExpressionEval(), inputs, cfg, "seq", balanced=True)
        expect = eval_expression_direct(parent, op, val, 0)
        assert res.outputs[0] == pytest.approx(expect, rel=1e-9)

    def test_balanced_on_par_engine(self, rng):
        n = 1 << 12
        data = rng.integers(0, 2**40, n)
        cfg = MachineConfig(N=n, v=8, p=4, D=2, B=32)
        res = em_sort(data, cfg, engine="par", balanced=True)
        assert np.array_equal(res.values, np.sort(data))
        # Lemma 2 + Lemma 4 compose: X = 2 * lambda * v/p
        assert res.report.supersteps == 2 * res.report.rounds * (8 // 4)
