"""Tests for the lower-bound formulas and the Figure 6/7 parameter-space
analysis, including the paper's concrete numeric claims (Section 1.4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.theory import (
    comparison_lower_bound_ios,
    constraint_surface,
    em_cgm_sort_ios,
    fig7_slice,
    log_term,
    log_term_bound_c,
    min_problem_size,
    permutation_lower_bound_ios,
    predicted_parallel_ios,
    sort_lower_bound_ios,
    speedup_vs_pdm_sort,
    transpose_lower_bound_ios,
)


class TestLowerBounds:
    def test_log_term_at_least_one(self):
        assert log_term(1 << 20, 1 << 19, 64) >= 1.0

    def test_log_term_infinite_when_memory_tiny(self):
        assert math.isinf(log_term(1 << 20, 32, 64))

    def test_sort_bound_exceeds_linear(self):
        N, M, B, D = 1 << 30, 1 << 12, 64, 1
        assert sort_lower_bound_ios(N, M, B, D) > N / (D * B)

    def test_permutation_bound_is_min(self):
        # tiny memory: sorting term explodes, so permutation caps at N/D
        N, M, B, D = 1 << 20, 256, 64, 2
        assert permutation_lower_bound_ios(N, M, B, D) <= N / D
        # big memory: sorting wins
        M = 1 << 18
        assert permutation_lower_bound_ios(N, M, B, D) == pytest.approx(
            sort_lower_bound_ios(N, M, B, D)
        )

    def test_transpose_bound_uses_min_dimension(self):
        N, M, B, D = 1 << 20, 1 << 12, 64, 1
        thin = transpose_lower_bound_ios(N, 2, N // 2, M, B, D)
        square = transpose_lower_bound_ios(N, 1 << 10, 1 << 10, M, B, D)
        assert thin <= square

    def test_comparison_bound(self):
        assert comparison_lower_bound_ios(1 << 20, 64) > (1 << 20) / 64

    def test_em_cgm_headline(self):
        assert em_cgm_sort_ios(N=1 << 20, p=2, D=2, B=64) == (1 << 20) / (2 * 2 * 64)


class TestParameterSpace:
    def test_surface_formula(self):
        """N^(c-1) = v^c B^(c-1)  <=>  N = v^{c/(c-1)} B."""
        v, B, c = 100.0, 1000.0, 2.0
        N = min_problem_size(v, B, c)
        assert N ** (c - 1) == pytest.approx(v**c * B ** (c - 1), rel=1e-9)

    def test_on_surface_log_term_equals_c(self):
        """At the surface with M = N/v: log_{M/B}(N/B) == c exactly."""
        v, B, c = 64, 1024, 2.0
        N = int(round(min_problem_size(v, B, c)))
        assert log_term_bound_c(N, v, B) == pytest.approx(c, rel=1e-3)

    def test_above_surface_smaller_c(self):
        v, B = 64, 1024
        N = int(min_problem_size(v, B, 2.0))
        assert log_term_bound_c(10 * N, v, B) < 2.0

    def test_paper_claim_c3_v10000_needs_giga_items(self):
        """Section 1.4: c = 3, v = 10^4 => ~1 giga-item suffices."""
        N = min_problem_size(1e4, 1e3, 3.0)
        assert 1e8 < N < 1e10  # ~10^9

    def test_paper_claim_c2_v100_needs_tens_of_mega_items(self):
        """Section 1.4 / Figure 7: v <= 100, c = 2 => N ~ 10^7 suffices."""
        N = min_problem_size(100.0, 1e3, 2.0)
        assert 1e6 < N <= 1e7 * 2

    def test_paper_claim_c2_v10000(self):
        """Figure 6: c = 2, v = 10^4 => ~100 giga-items."""
        N = min_problem_size(1e4, 1e3, 2.0)
        assert 1e10 < N < 1e12

    def test_surface_grid_shape_and_monotonicity(self):
        v = np.logspace(1, 4, 7)
        B = np.logspace(2, 4, 5)
        grid = constraint_surface(v, B, c=2.0)
        assert grid.shape == (5, 7)
        assert (np.diff(grid, axis=1) > 0).all()  # more procs -> bigger N
        assert (np.diff(grid, axis=0) > 0).all()  # bigger blocks -> bigger N

    def test_fig7_matches_surface(self):
        v = np.array([10.0, 100.0, 1000.0])
        assert fig7_slice(v) == pytest.approx(
            [min_problem_size(x, 1e3, 2.0) for x in v]
        )

    def test_speedup_positive_and_grows_with_v(self):
        """With M = N/v, more virtual processors means smaller memory and
        a bigger log factor saved; at fixed v, growing N *shrinks* the
        factor (the coarse-grained regime is asymptotically benign)."""
        s_few = speedup_vs_pdm_sort(1 << 30, 64, 1, 1, 1024)
        s_many = speedup_vs_pdm_sort(1 << 30, 1 << 14, 1, 1, 1024)
        assert 0 < s_few < s_many
        assert speedup_vs_pdm_sort(1 << 30, 64, 1, 1, 1024) <= speedup_vs_pdm_sort(
            1 << 20, 64, 1, 1, 1024
        )


class TestPredictions:
    def test_predicted_ios_scale_with_rounds_and_v(self):
        base = predicted_parallel_ios(8, 1, 2, 64, rounds=4, mu_items=4096, h_items=4096)
        assert predicted_parallel_ios(8, 1, 2, 64, 8, 4096, 4096) == pytest.approx(2 * base)
        assert predicted_parallel_ios(16, 1, 2, 64, 4, 4096, 4096) == pytest.approx(2 * base)

    def test_predicted_ios_scale_inverse_with_p(self):
        a = predicted_parallel_ios(8, 1, 2, 64, 4, 4096, 4096)
        b = predicted_parallel_ios(8, 2, 2, 64, 4, 4096, 4096)
        assert b == pytest.approx(a / 2)

    def test_predicted_ios_scale_inverse_with_D(self):
        a = predicted_parallel_ios(8, 1, 1, 64, 4, 4096, 4096)
        b = predicted_parallel_ios(8, 1, 2, 64, 4, 4096, 4096)
        assert b == pytest.approx(a / 2)
