"""The worker-exchange transport layer (repro.core.transport): wire
framing and checksums, node-list parsing, connect retry policy, handshake
validation, and logical bit-identity across memory / shm / tcp."""

from __future__ import annotations

import socket
import struct

import numpy as np
import pytest

from repro.algorithms.collectives import partition_array
from repro.algorithms.sorting import SampleSort
from repro.cgm.config import MachineConfig
from repro.core.transport import (
    TransportError,
    parse_nodes,
    render_nodes,
    require_nodes,
)
from repro.core.transport.node import NodeServer
from repro.core.transport.tcp import (
    PROTOCOL_VERSION,
    TcpFleet,
    dial,
    recv_frame,
    runtime_fingerprint,
    send_frame,
)
from repro.em.runner import em_run
from repro.tune.knobs import KnobError
from repro.tune.runtime import RuntimeConfig
from repro.util.validation import ConfigurationError

V, D, B = 8, 2, 64
N = 1 << 13


def make_data() -> np.ndarray:
    return np.random.default_rng(7).integers(0, 1 << 30, N, dtype=np.int64)


def counters(report) -> dict:
    return {
        "io": report.io.as_dict(),
        "io_max": report.io_max.as_dict(),
        "rounds": report.rounds,
        "supersteps": report.supersteps,
        "comm": report.comm_items,
        "cross": report.cross_items,
        "ctx_io": report.context_blocks_io,
        "msg_io": report.message_blocks_io,
        "ovf": report.overflow_blocks,
        "peak": report.peak_memory_items,
    }


class TestFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            obj = ("pkt", 3, 0, 1, 2, {"k": np.arange(4)})
            n = send_frame(a, obj)
            assert n > 12  # header + payload actually hit the wire
            got = recv_frame(b)
            assert got[:5] == obj[:5]
            assert np.array_equal(got[5]["k"], obj[5]["k"])
        finally:
            a.close()
            b.close()

    def test_checksum_rejects_corruption(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, ("hello",))
            header = b.recv(12, socket.MSG_PEEK)
            raw = bytearray(b.recv(12 + struct.unpack(">I", header[8:12])[0]))
            raw[-1] ^= 0xFF  # flip one payload byte
            c, d = socket.socketpair()
            c.sendall(bytes(raw))
            with pytest.raises(TransportError, match="checksum"):
                recv_frame(d)
            c.close()
            d.close()
        finally:
            a.close()
            b.close()

    def test_magic_rejects_foreign_peer(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"GET / HTTP/1.1\r\n" + b"\x00" * 32)
            with pytest.raises(TransportError, match="magic"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, ("hello", "x" * 100))
            whole = b.recv(1 << 16)
            c, d = socket.socketpair()
            c.sendall(whole[:20])  # header + a truncated payload
            c.close()
            with pytest.raises(TransportError, match="closed"):
                recv_frame(d)
            d.close()
        finally:
            a.close()
            b.close()


class TestNodeLists:
    def test_parse_and_render(self):
        nodes = parse_nodes(" alpha:9876 , 10.0.0.2:1 ")
        assert nodes == [("alpha", 9876), ("10.0.0.2", 1)]
        assert render_nodes(nodes) == "alpha:9876,10.0.0.2:1"

    @pytest.mark.parametrize(
        "raw", ["alpha", "alpha:notaport", ":9876", "alpha:0", "alpha:70000", ""]
    )
    def test_malformed_entries(self, raw):
        with pytest.raises(ValueError):
            parse_nodes(raw)

    def test_require_nodes_without_list(self):
        with pytest.raises(ConfigurationError, match="REPRO_NODES"):
            require_nodes(None)

    def test_knob_wraps_parse_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_NODES", "localhost:notaport")
        with pytest.raises(KnobError, match="REPRO_NODES"):
            RuntimeConfig.from_env()

    def test_transport_knob_rejects_unknown_kind(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "carrier-pigeon")
        with pytest.raises(KnobError, match="REPRO_TRANSPORT"):
            RuntimeConfig.from_env()


def free_port() -> int:
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


class TestDial:
    def test_bounded_retry_then_clean_error(self, monkeypatch):
        import repro.core.transport.tcp as tcp

        monkeypatch.setattr(tcp, "CONNECT_RETRIES", 2)
        monkeypatch.setattr(tcp, "CONNECT_BACKOFF_S", 0.01)
        with pytest.raises(TransportError, match="after 2 attempts"):
            dial("127.0.0.1", free_port())


@pytest.fixture
def node_pair():
    servers = [NodeServer().start_thread(), NodeServer().start_thread()]
    yield servers
    for s in servers:
        s.shutdown()


def session_doc() -> dict:
    return {"runtime": RuntimeConfig.from_env()}


class TestHandshake:
    def hello(self, server, *, proto=None, version=None, fp=None):
        from repro import __version__

        session = session_doc()
        host, _, port = server.address.rpartition(":")
        sock = dial(host, int(port))
        try:
            send_frame(
                sock,
                (
                    "hello",
                    PROTOCOL_VERSION if proto is None else proto,
                    __version__ if version is None else version,
                    runtime_fingerprint(session["runtime"]) if fp is None else fp,
                    0,
                    session,
                ),
            )
            return recv_frame(sock)
        finally:
            sock.close()

    def test_good_hello_is_ready(self, node_pair):
        reply = self.hello(node_pair[0])
        assert reply[0] == "ready" and reply[1] == 0

    def test_protocol_mismatch_rejected(self, node_pair):
        reply = self.hello(node_pair[0], proto=PROTOCOL_VERSION + 1)
        assert reply[0] == "reject" and "protocol version" in reply[1]

    def test_release_mismatch_rejected(self, node_pair):
        reply = self.hello(node_pair[0], version="0.0.0-not-this")
        assert reply[0] == "reject" and "release mismatch" in reply[1]

    def test_fingerprint_mismatch_rejected(self, node_pair):
        reply = self.hello(node_pair[0], fp="0" * 16)
        assert reply[0] == "reject" and "fingerprint" in reply[1]

    def test_fleet_surfaces_rejection(self, node_pair, monkeypatch):
        # bump the coordinator-side protocol only: node.py binds its own
        # copy of PROTOCOL_VERSION at import, so the daemon still speaks 1
        import repro.core.transport.tcp as tcp

        monkeypatch.setattr(tcp, "PROTOCOL_VERSION", PROTOCOL_VERSION + 1)
        fleet = TcpFleet([tuple_addr(node_pair[0])], 1)
        with pytest.raises(TransportError, match="rejected the run"):
            fleet.start(session_doc())
        fleet.stop(force=True)


def tuple_addr(server) -> tuple[str, int]:
    host, _, port = server.address.rpartition(":")
    return (host, int(port))


class TestFleetValidation:
    def test_empty_node_list(self):
        with pytest.raises(ConfigurationError, match="at least one node"):
            TcpFleet([], 2)

    def test_workers_round_robin_over_nodes(self):
        fleet = TcpFleet([("a", 1), ("b", 2)], 4)
        assert [fleet.node_label(w) for w in range(4)] == [
            "a:1", "b:2", "a:1", "b:2"
        ]

    def test_single_node_still_engages_fleet(self, monkeypatch, node_pair):
        """`--transport tcp` with one node must not silently fall back to
        an in-process run: auto-sizing floors the worker count at two."""
        from repro.core.workers import ProcessParEngine
        from repro.em.runner import make_engine

        monkeypatch.setenv("REPRO_TRANSPORT", "tcp")
        monkeypatch.setenv("REPRO_NODES", node_pair[0].address)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        eng = make_engine(MachineConfig(N=N, v=V, p=4, D=D, B=B), "par")
        assert isinstance(eng, ProcessParEngine)
        assert eng.cfg.workers == 2


class TestBitIdentity:
    """The acceptance gate: logical IOStats and outputs are identical no
    matter which transport carried the worker exchange."""

    CFG = MachineConfig(N=N, v=V, p=4, D=D, B=B, workers=2)

    def run_sort(self, monkeypatch, transport, nodes=None):
        monkeypatch.setenv("REPRO_TRANSPORT", transport)
        if nodes:
            monkeypatch.setenv("REPRO_NODES", nodes)
        else:
            monkeypatch.delenv("REPRO_NODES", raising=False)
        return em_run(
            SampleSort(), partition_array(make_data(), V), self.CFG, "par"
        )

    @pytest.mark.slow
    def test_memory_shm_tcp_identical(self, monkeypatch, node_pair):
        nodes = ",".join(s.address for s in node_pair)
        runs = {
            "memory": self.run_sort(monkeypatch, "memory"),
            "shm": self.run_sort(monkeypatch, "shm"),
            "tcp": self.run_sort(monkeypatch, "tcp", nodes),
        }
        base = runs["memory"]
        for kind, res in runs.items():
            assert counters(res.report) == counters(base.report), kind
            for a, b in zip(base.outputs, res.outputs):
                assert np.array_equal(a, b), kind
        out = np.concatenate(base.outputs)
        assert np.array_equal(out, np.sort(make_data()))

    @pytest.mark.slow
    def test_nodes_are_reusable_across_runs(self, monkeypatch, node_pair):
        """One daemon serves many sessions in sequence (and the second
        run's counters match the first bit-for-bit)."""
        nodes = ",".join(s.address for s in node_pair)
        first = self.run_sort(monkeypatch, "tcp", nodes)
        second = self.run_sort(monkeypatch, "tcp", nodes)
        assert counters(first.report) == counters(second.report)
        assert node_pair[0].sessions >= 2
