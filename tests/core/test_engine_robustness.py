"""Deeper EM-engine behaviour: overflow handling, parity alternation over
long runs, memory accounting, determinism, context-region reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram, FunctionalProgram
from repro.em.runner import make_engine


class BigMessages(CGMProgram):
    """Sends messages far larger than the advertised slot (overflow path)."""

    name = "big-messages"
    kappa = 1.0

    def max_message_items(self, cfg):
        return 8  # lie: tiny slots

    def setup(self, ctx, pid, cfg, local_input):
        ctx["pid"] = pid
        ctx["data"] = local_input

    def round(self, r, ctx, env):
        if r == 0:
            env.send((ctx["pid"] + 1) % env.v, ctx["data"], tag="big")
            return False
        (m,) = env.messages(tag="big")
        ctx["got"] = m.payload
        return True

    def finish(self, ctx):
        return ctx["got"]


class PingPong(CGMProgram):
    """Many rounds: exercises the alternating message-matrix parity."""

    name = "ping-pong"
    kappa = 1.0

    def __init__(self, rounds: int) -> None:
        self.rounds = rounds

    def setup(self, ctx, pid, cfg, local_input):
        ctx["pid"] = pid
        ctx["acc"] = np.zeros(16, dtype=np.int64)

    def round(self, r, ctx, env):
        for m in env.messages():
            ctx["acc"] = ctx["acc"] + m.payload
        if r < self.rounds:
            env.send((ctx["pid"] + r) % env.v, np.full(16, r, dtype=np.int64))
            return False
        return True

    def finish(self, ctx):
        return ctx["acc"]


class GrowingContext(CGMProgram):
    """Context doubles every round: forces region reallocation on disk."""

    name = "growing-context"
    kappa = 1.0

    def setup(self, ctx, pid, cfg, local_input):
        ctx["pid"] = pid
        ctx["blob"] = np.arange(8)

    def round(self, r, ctx, env):
        ctx["blob"] = np.concatenate([ctx["blob"], ctx["blob"]])
        return r >= 5

    def finish(self, ctx):
        return ctx["blob"].size


class TestOverflowPath:
    @pytest.mark.parametrize("kind", ["seq", "par"])
    def test_oversized_messages_survive(self, kind, rng):
        v = 4
        cfg = MachineConfig(N=1 << 12, v=v, p=2 if kind == "par" else 1, D=2, B=32)
        inputs = [rng.integers(0, 2**40, 500) for _ in range(v)]
        res = make_engine(cfg, kind).run(BigMessages(), list(inputs))
        assert res.report.overflow_blocks > 0
        for pid in range(v):
            assert np.array_equal(res.outputs[pid], inputs[(pid - 1) % v])

    def test_overflow_tracks_are_freed(self, rng):
        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=32)
        eng = make_engine(cfg, "seq")
        inputs = [rng.integers(0, 2**40, 500) for _ in range(4)]
        eng.run(BigMessages(), list(inputs))
        # after the run only contexts remain on disk; overflow regions freed
        total_tracks = sum(a.tracks_in_use for a in eng.arrays.values())
        ctx_blocks = sum(region[2] for region in eng._ctx_region.values())
        assert total_tracks <= 2 * ctx_blocks + 8

    @pytest.mark.parametrize("kind", ["seq", "par"])
    def test_many_round_overflow_footprint_bounded(self, kind, rng):
        """Regression: freed overflow/context rows are *reused* — over many
        rounds max_track() must plateau instead of growing linearly."""
        v, rounds = 4, 30
        cfg = MachineConfig(N=1 << 12, v=v, p=2 if kind == "par" else 1, D=2, B=32)

        class OverflowEveryRound(CGMProgram):
            name = "overflow-churn"
            kappa = 1.0

            def max_message_items(self, cfg):
                return 8  # lie: every payload below spills to overflow runs

            def setup(self, ctx, pid, cfg, local_input):
                ctx["pid"] = pid
                ctx["data"] = local_input

            def round(self, r, ctx, env):
                for m in env.messages():
                    ctx["data"] = m.payload
                if r < rounds:
                    env.send((ctx["pid"] + 1) % env.v, ctx["data"])
                    return False
                return True

            def finish(self, ctx):
                return ctx["data"]

        # construct the in-process engine directly: the test inspects
        # allocator internals, so the worker backend must not kick in
        from repro.core.par_engine import ParEMEngine, SeqEMEngine

        eng = (ParEMEngine if kind == "par" else SeqEMEngine)(cfg)
        inputs = [rng.integers(0, 2**40, 400) for _ in range(v)]
        res = eng.run(OverflowEveryRound(), list(inputs))
        assert res.report.overflow_blocks > 0
        base = max(mm.end_track() for mm in eng.matrices.values())
        peak_data_tracks = max(a.max_track() for a in eng.arrays.values()) - base
        # a handful of live contexts + one round's overflow runs; a
        # grow-only allocator would need Omega(rounds) times this space
        per_round_blocks = res.report.overflow_blocks // rounds
        assert peak_data_tracks <= 4 * (per_round_blocks // cfg.D + v + 4)


class TestLongRuns:
    @pytest.mark.parametrize("kind", ["seq", "par"])
    def test_parity_alternation_many_rounds(self, kind):
        v = 4
        cfg = MachineConfig(N=1 << 12, v=v, p=2 if kind == "par" else 1, D=2, B=32)
        res = make_engine(cfg, kind).run(PingPong(rounds=21), [None] * v)
        ref = make_engine(cfg.with_(p=cfg.p), "memory").run(PingPong(rounds=21), [None] * v)
        for a, b in zip(res.outputs, ref.outputs):
            assert np.array_equal(a, b)

    def test_growing_contexts_reallocate(self):
        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=32)
        eng = make_engine(cfg, "seq")
        res = eng.run(GrowingContext(), [None] * 4)
        assert res.outputs == [8 * 2**6] * 4
        assert res.report.context_blocks_io > 0


class TestMemoryAccounting:
    def test_peak_memory_reported(self, rng):
        cfg = MachineConfig(N=1 << 13, v=8, D=2, B=64)
        from repro.em.runner import em_sort

        res = em_sort(rng.integers(0, 2**40, 1 << 13), cfg, engine="seq")
        peak = res.report.peak_memory_items
        # one virtual processor's context + inbox + outbox (with block
        # padding), i.e. Theta(mu) with a modest constant — not Theta(N*v)
        assert cfg.mu <= peak <= 16 * cfg.mu

    def test_memory_scales_with_v(self, rng):
        """More virtual processors -> smaller contexts -> smaller peak."""
        from repro.em.runner import em_sort

        n = 1 << 14
        data = rng.integers(0, 2**40, n)
        peaks = {}
        for v in (4, 16):
            res = em_sort(data, MachineConfig(N=n, v=v, D=2, B=64), engine="seq")
            peaks[v] = res.report.peak_memory_items
        assert peaks[16] < peaks[4]


class TestDeterminism:
    def test_identical_runs_identical_reports(self, rng):
        from repro.em.runner import em_sort

        data = rng.integers(0, 2**40, 1 << 13)
        cfg = MachineConfig(N=data.size, v=8, D=2, B=64, seed=99)
        a = em_sort(data, cfg, engine="seq")
        b = em_sort(data, cfg, engine="seq")
        assert a.report.io.parallel_ios == b.report.io.parallel_ios
        assert a.report.h_history == b.report.h_history
        assert np.array_equal(a.values, b.values)

    def test_engines_agree_on_randomized_program(self):
        """Same cfg.seed -> same coins on every backend (list ranking)."""
        from repro.algorithms.graphs import list_rank

        n = 300
        order = np.random.default_rng(5).permutation(n)
        succ = np.full(n, -1, dtype=np.int64)
        for a, b in zip(order[:-1], order[1:]):
            succ[a] = b
        cfg = MachineConfig(N=n, v=4, B=16, seed=7)
        runs = [list_rank(succ, cfg, engine=k) for k in ("memory", "seq", "vm")]
        assert runs[0].total_rounds == runs[1].total_rounds == runs[2].total_rounds


class TestMixedTraffic:
    def test_mixed_tags_and_multiple_messages_per_pair(self):
        def r0(ctx, env):
            env.send((env.pid + 1) % env.v, "a", tag="x")
            env.send((env.pid + 1) % env.v, np.arange(40), tag="y")
            env.send((env.pid + 1) % env.v, {"k": env.pid}, tag="x")

        def r1(ctx, env):
            xs = env.messages(tag="x")
            ys = env.messages(tag="y")
            ctx["n_x"] = len(xs)
            ctx["n_y"] = len(ys)
            ctx["sum"] = int(ys[0].payload.sum())

        prog = FunctionalProgram(
            setup=lambda ctx, pid, cfg, inp: None,
            rounds=[r0, r1],
            finish=lambda ctx: (ctx["n_x"], ctx["n_y"], ctx["sum"]),
            name="mixed-tags",
        )
        for kind in ("memory", "seq", "vm"):
            cfg = MachineConfig(N=1 << 10, v=4, D=2, B=16)
            res = make_engine(cfg, kind).run(prog, [None] * 4)
            assert res.outputs == [(2, 1, 780)] * 4, kind
