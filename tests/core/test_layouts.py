"""Tests for the consecutive format and the staggered message matrix
(Figure 2): address math, full parallelism, and non-overlap."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layouts import MessageMatrix, RegionAllocator, consecutive_addresses


class TestConsecutiveFormat:
    def test_paper_definition(self):
        """block q -> disk (d+q) mod D, track T0 + (d+q)//D."""
        addrs = consecutive_addresses(nblocks=7, D=3, start_track=5, start_disk=1)
        expect = [(1, 5), (2, 5), (0, 5 + 1), (1, 6), (2, 6), (0, 7), (1, 7)]
        assert addrs == expect

    def test_full_parallelism(self):
        """Any D consecutive blocks land on D distinct disks."""
        D = 5
        addrs = consecutive_addresses(23, D, 0)
        for i in range(0, len(addrs) - D + 1):
            disks = [d for d, _ in addrs[i : i + D]]
            assert len(set(disks)) == D

    def test_zero_blocks(self):
        assert consecutive_addresses(0, 4, 0) == []


class TestMessageMatrixGeometry:
    def test_no_two_messages_share_an_address(self):
        """All (src, dest) slots of one copy are disjoint — full slots."""
        v, D, slot = 6, 4, 3
        mm = MessageMatrix(v, v, D, slot)
        seen: set[tuple[int, int]] = set()
        for j in range(v):
            for i in range(v):
                for a in mm.message_addresses(i, j, slot, parity=0):
                    assert a not in seen, f"overlap at {a} (src={i}, dest={j})"
                    seen.add(a)

    def test_copies_do_not_overlap(self):
        v, D, slot = 4, 3, 2
        mm = MessageMatrix(v, v, D, slot)
        a0 = {
            a
            for j in range(v)
            for i in range(v)
            for a in mm.message_addresses(i, j, slot, parity=0)
        }
        a1 = {
            a
            for j in range(v)
            for i in range(v)
            for a in mm.message_addresses(i, j, slot, parity=1)
        }
        assert not (a0 & a1)

    def test_stagger_formula(self):
        """block q of msg_ij -> disk (d_j + i*b' + q) mod D at track
        T_j + (d_j + i*b' + q) // D with d_j = (j b') mod D."""
        v, D, slot = 5, 3, 2
        mm = MessageMatrix(v, v, D, slot, base_track=10)
        i, j = 3, 2
        d_j = (j * slot) % D
        T_j = 10 + j * mm.band_height
        for q, (disk, track) in enumerate(mm.message_addresses(i, j, slot, 0)):
            lin = d_j + i * slot + q
            assert disk == lin % D
            assert track == T_j + lin // D

    def test_inbox_read_is_consecutive_and_parallel(self):
        """Reading a full inbox (all v messages at slot size) touches each
        disk the same number of times and in conflict-free runs of D."""
        v, D, slot = 6, 3, 2
        mm = MessageMatrix(v, v, D, slot)
        addrs = mm.inbox_addresses(2, [(i, slot) for i in range(v)], parity=0)
        # consecutive runs of D distinct disks
        for k in range(0, len(addrs) - D + 1, D):
            disks = [d for d, _ in addrs[k : k + D]]
            assert len(set(disks)) == D

    def test_writer_stagger_across_destinations(self):
        """One source writing its slot-size message to consecutive
        destinations hits distinct disks when gcd(b', D) = 1 — Figure 2's
        point — so the FIFO can emit fully parallel write cycles."""
        v, D, slot = 8, 4, 3  # gcd(3, 4) = 1
        mm = MessageMatrix(v, v, D, slot)
        i = 5
        first_blocks = [
            mm.message_addresses(i, j, 1, parity=0)[0][0] for j in range(v)
        ]
        for k in range(0, v - D + 1):
            assert len(set(first_blocks[k : k + D])) == D

    def test_oversized_message_rejected(self):
        mm = MessageMatrix(4, 4, 2, slot_blocks=2)
        with pytest.raises(ValueError, match="exceeds slot"):
            mm.message_addresses(0, 0, 3, 0)

    def test_bad_slot(self):
        with pytest.raises(ValueError):
            MessageMatrix(4, 4, 2, slot_blocks=0)

    @settings(max_examples=40, deadline=None)
    @given(
        v=st.integers(2, 8),
        D=st.integers(1, 6),
        slot=st.integers(1, 5),
    )
    def test_geometry_property(self, v, D, slot):
        """Disjointness holds for arbitrary (v, D, slot)."""
        mm = MessageMatrix(v, v, D, slot)
        seen = set()
        for j in range(v):
            for i in range(v):
                for a in mm.message_addresses(i, j, slot, parity=0):
                    assert a not in seen
                    seen.add(a)
        # everything stays inside the copy's track span
        assert all(t < mm.tracks_per_copy for _, t in seen)


class TestRegionAllocator:
    def test_rows_cover_blocks(self):
        alloc = RegionAllocator(D=4, first_track=100)
        start, rows = alloc.alloc(10)
        assert start == 100
        assert rows * 4 >= 10

    def test_sequential_non_overlap(self):
        alloc = RegionAllocator(D=2, first_track=0)
        r1 = alloc.alloc(5)
        r2 = alloc.alloc(3)
        assert r2[0] >= r1[0] + r1[1]

    def test_zero_block_alloc_still_one_row(self):
        alloc = RegionAllocator(D=2, first_track=0)
        _, rows = alloc.alloc(0)
        assert rows == 1

    def test_high_water(self):
        alloc = RegionAllocator(D=2, first_track=7)
        alloc.alloc(4)
        assert alloc.high_water_track == 9

    def test_freed_region_is_reused(self):
        alloc = RegionAllocator(D=2, first_track=0)
        r1 = alloc.alloc(4)  # rows 0-1
        alloc.alloc(2)       # row 2 keeps the cursor up
        alloc.free(*r1)
        assert alloc.free_rows == 2
        r3 = alloc.alloc(4)
        assert r3 == r1      # same rows handed back, no growth
        assert alloc.high_water_track == 3

    def test_best_fit_prefers_smallest_adequate_region(self):
        alloc = RegionAllocator(D=1, first_track=0)
        big = alloc.alloc(4)     # rows 0-3
        alloc.alloc(1)           # row 4 (separator)
        small = alloc.alloc(2)   # rows 5-6
        alloc.alloc(1)           # row 7 keeps the cursor above everything
        alloc.free(*big)
        alloc.free(*small)
        start, rows = alloc.alloc(2)
        assert (start, rows) == small  # smallest fit wins, not lowest track

    def test_adjacent_free_regions_coalesce(self):
        alloc = RegionAllocator(D=1, first_track=0)
        a = alloc.alloc(2)  # rows 0-1
        b = alloc.alloc(2)  # rows 2-3
        c = alloc.alloc(2)  # rows 4-5
        alloc.alloc(1)      # row 6 separator
        alloc.free(*a)
        alloc.free(*c)
        alloc.free(*b)      # bridges a and c into one region
        assert alloc.free_rows == 6
        assert alloc.alloc(6) == (0, 6)

    def test_free_at_cursor_retracts_it(self):
        alloc = RegionAllocator(D=2, first_track=10)
        a = alloc.alloc(4)  # rows 10-11
        b = alloc.alloc(4)  # rows 12-13
        assert alloc.high_water_track == 14
        alloc.free(*b)
        assert alloc.high_water_track == 12
        alloc.free(*a)      # coalesces with the retraction chain
        assert alloc.high_water_track == 10
        assert alloc.free_rows == 0

    def test_split_leaves_remainder_on_free_list(self):
        alloc = RegionAllocator(D=1, first_track=0)
        big = alloc.alloc(5)
        alloc.alloc(1)      # separator pins the cursor
        alloc.free(*big)
        start, rows = alloc.alloc(2)
        assert (start, rows) == (0, 2)
        assert alloc.free_rows == 3  # remainder of the split region

    def test_churn_stays_bounded(self):
        """Allocate/free cycles must not grow the high-water mark."""
        alloc = RegionAllocator(D=2, first_track=0)
        hold = alloc.alloc(6)  # long-lived region, rows 0-2
        water = []
        for _ in range(200):
            r = alloc.alloc(8)
            alloc.free(*r)
            water.append(alloc.high_water_track)
        assert max(water) == water[0]  # no leak: every round reuses rows
        alloc.free(*hold)
        assert alloc.high_water_track == 0
