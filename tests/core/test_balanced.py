"""Tests for Algorithm 1 (BalancedRouting) — Theorem 1's bounds, Lemma 1/2
arithmetic, and exact end-to-end chunk round-trips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgm.message import Message
from repro.core.balanced import (
    CHUNK_TAG,
    balanced_message_bounds,
    lemma1_min_problem_size,
    lemma2_feasible,
    phase_a_bin_sizes,
    reassemble,
    regroup_phase_b,
    split_phase_a,
)


def route_end_to_end(outboxes: dict[int, list[Message]], v: int):
    """Drive both supersteps by hand, returning inboxes and phase sizes."""
    phase_a_inbox: dict[int, list[Message]] = {b: [] for b in range(v)}
    for src, msgs in outboxes.items():
        for m in split_phase_a(msgs, v):
            phase_a_inbox[m.dest].append(m)
    phase_a_sizes = [
        m.size_items for msgs in outboxes.values() for m in split_phase_a(msgs, v)
    ]
    final_inbox: dict[int, list[Message]] = {k: [] for k in range(v)}
    phase_b_sizes = []
    for b in range(v):
        for fm in regroup_phase_b(phase_a_inbox[b]):
            phase_b_sizes.append(fm.size_items)
            final_inbox[fm.dest].append(fm)
    delivered = {k: reassemble(final_inbox[k]) for k in range(v)}
    return delivered, phase_a_sizes, phase_b_sizes


class TestEndToEndDelivery:
    def test_all_payloads_arrive_intact(self):
        v = 5
        rng = np.random.default_rng(7)
        outboxes = {}
        expected: dict[int, dict[int, np.ndarray]] = {k: {} for k in range(v)}
        for i in range(v):
            msgs = []
            for j in range(v):
                payload = rng.integers(0, 1 << 50, rng.integers(1, 200))
                msgs.append(Message(i, j, payload, tag="app"))
                expected[j][i] = payload
            outboxes[i] = msgs
        delivered, _, _ = route_end_to_end(outboxes, v)
        for k in range(v):
            got = {m.src: m.payload for m in delivered[k]}
            assert set(got) == set(expected[k])
            for i, payload in expected[k].items():
                assert np.array_equal(got[i], payload)
                assert delivered[k][0].tag == "app"

    def test_object_payloads_survive(self):
        v = 3
        outboxes = {
            0: [Message(0, 2, {"list": [1, 2, 3], "s": "hello"})],
            1: [Message(1, 2, ("tuple", None, 4.5))],
            2: [],
        }
        delivered, _, _ = route_end_to_end(outboxes, v)
        got = {m.src: m.payload for m in delivered[2]}
        assert got[0] == {"list": [1, 2, 3], "s": "hello"}
        assert got[1] == ("tuple", None, 4.5)

    def test_multiple_messages_same_pair_preserved(self):
        v = 3
        outboxes = {
            0: [Message(0, 1, np.arange(10)), Message(0, 1, np.arange(20, 30))],
            1: [],
            2: [],
        }
        delivered, _, _ = route_end_to_end(outboxes, v)
        payloads = sorted((m.payload.tolist() for m in delivered[1]))
        assert payloads == [list(range(10)), list(range(20, 30))]

    def test_empty_round_trivial(self):
        delivered, a, b = route_end_to_end({0: [], 1: []}, 2)
        assert all(not msgs for msgs in delivered.values())
        assert a == [] and b == []

    def test_v_equals_one(self):
        delivered, _, _ = route_end_to_end({0: [Message(0, 0, np.arange(5))]}, 1)
        assert np.array_equal(delivered[0][0].payload, np.arange(5))

    def test_passthrough_of_unbalanced_messages(self):
        direct = Message(0, 1, "direct", tag="x")
        out = reassemble([direct])
        assert out == [direct]

    def test_regroup_rejects_non_chunk(self):
        with pytest.raises(ValueError):
            regroup_phase_b([Message(0, 1, "not a chunk", tag="app")])


class TestTheorem1Bounds:
    @settings(max_examples=60, deadline=None)
    @given(
        v=st.integers(2, 12),
        seed=st.integers(0, 10_000),
    )
    def test_phase_sizes_within_theorem1(self, v: int, seed: int):
        """Each processor sends exactly h items split arbitrarily; both
        phases' message sizes must lie in [h/v - (v-1)/2, h/v + (v-1)/2]."""
        rng = np.random.default_rng(seed)
        h = v * int(rng.integers(v, 8 * v))  # divisible by v for exactness
        outboxes = {}
        for i in range(v):
            # adversarial split of h words into v messages
            cuts = np.sort(rng.integers(0, h + 1, v - 1))
            lengths = np.diff(np.concatenate(([0], cuts, [h])))
            msgs = []
            for j, ln in enumerate(lengths):
                payload = np.zeros(int(ln), dtype=np.uint64)
                m = Message(i, j, payload)
                # measure at the word level exactly like the theorem:
                m.size_items = int(ln)
                msgs.append(m)
            outboxes[i] = msgs

        # use the pure arithmetic (exact, no serialization envelope)
        lo, hi = balanced_message_bounds(h, v)
        for i in range(v):
            lengths = np.zeros(v, dtype=np.int64)
            for m in outboxes[i]:
                lengths[m.dest] += m.size_items
            sizes = phase_a_bin_sizes(lengths, i)
            assert sizes.sum() == h
            assert sizes.max() <= hi + 1e-9
            assert sizes.min() >= lo - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(v=st.integers(2, 10), seed=st.integers(0, 999))
    def test_phase_b_superbin_sizes(self, v: int, seed: int):
        """Phase-B message (superbin) sizes obey the same Theorem 1 bound
        when every processor receives at most h."""
        rng = np.random.default_rng(seed)
        h = v * int(rng.integers(v, 6 * v))
        # every destination receives exactly h in total, split arbitrarily
        # across sources: columns sum to h
        matrix = np.zeros((v, v), dtype=np.int64)
        for j in range(v):
            cuts = np.sort(rng.integers(0, h + 1, v - 1))
            matrix[:, j] = np.diff(np.concatenate(([0], cuts, [h])))
        # superbin b for destination k collects, from every source i, the
        # words of msg_{i,k} dealt to bin b: counts via phase_a arithmetic
        lo, hi = balanced_message_bounds(h, v)
        for k in range(v):
            superbin = np.zeros(v, dtype=np.int64)
            for i in range(v):
                ln = int(matrix[i, k])
                q, rem = divmod(ln, v)
                superbin += q
                if rem:
                    start = (i + k) % v
                    extra = (np.arange(rem) + start) % v
                    np.add.at(superbin, extra, 1)
            assert superbin.sum() == h
            assert superbin.max() <= hi + 1e-9
            assert superbin.min() >= lo - 1e-9


class TestLemmas:
    def test_lemma1_monotone(self):
        assert lemma1_min_problem_size(4, 64) < lemma1_min_problem_size(8, 64)
        assert lemma1_min_problem_size(4, 64) < lemma1_min_problem_size(4, 128)

    def test_lemma1_formula(self):
        v, b = 5, 10
        assert lemma1_min_problem_size(v, b) == v * v * b + v * v * (v - 1) // 2

    def test_lemma2_feasibility(self):
        assert lemma2_feasible(10_000, 4, 64)
        assert not lemma2_feasible(100, 8, 64)

    def test_bounds_symmetry(self):
        lo, hi = balanced_message_bounds(1000, 10)
        assert lo == pytest.approx(100 - 4.5)
        assert hi == pytest.approx(100 + 4.5)


class TestPhaseABinSizesExactness:
    @settings(max_examples=50, deadline=None)
    @given(
        v=st.integers(2, 8),
        src=st.integers(0, 7),
        seed=st.integers(0, 999),
    )
    def test_arithmetic_matches_actual_chunking(self, v, src, seed):
        """phase_a_bin_sizes must agree with the real word-dealing of
        split_phase_a (measured in whole words of serialized payloads)."""
        src = src % v
        rng = np.random.default_rng(seed)
        lengths = rng.integers(0, 40, v)
        msgs = []
        word_lengths = np.zeros(v, dtype=np.int64)
        for j in range(v):
            payload = rng.integers(0, 100, int(lengths[j]))
            m = Message(src, j, payload)
            msgs.append(m)
        chunks_per_bin = np.zeros(v, dtype=np.int64)
        for bm in split_phase_a(msgs, v):
            assert bm.tag == CHUNK_TAG
            for c in bm.payload:
                chunks_per_bin[bm.dest] += c.n_words
                word_lengths[c.fdest] = c.total_words
        predicted = phase_a_bin_sizes(word_lengths, src)
        assert np.array_equal(chunks_per_bin, predicted)
