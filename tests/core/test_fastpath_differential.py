"""Differential testing: fast path vs reference path, whole programs.

``REPRO_FASTPATH=0`` must be a pure implementation switch — same outputs,
same logical ``IOStats``, same trace *event streams* (modulo wall-clock
tags), on every engine, in balanced and direct routing, and under fault
injection (where the engine drops to the reference path internally but
must still behave identically whichever way the flag points).

Hypothesis drives the workload shape (seed, size) with a small example
budget — each example runs full simulations on both paths.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort, em_transpose
from repro.obs.bench_store import measured_from_report
from repro.obs.trace import JsonlRecorder
from repro.pdm import fastpath

FAULT_PLAN = str(
    Path(__file__).resolve().parents[2] / "benchmarks" / "fault_plans" / "ci_transient.json"
)

#: tags that legitimately differ between two runs (timing, filesystem)
#: "seq" joined the fuzzy tags when physical kinds (below) appeared: the
#: fast path's extra physical events shift later sequence numbers, while
#: the *relative* order of logical events — what seq pinned — is still
#: asserted by the normalized list order.
_FUZZY_TAGS = ("seq", "ts", "wall_s", "path", "backoff_s")

#: *physical* event kinds describe how a backend serviced the logical
#: I/O (speculative prefetch batches, arena storage growth), so they
#: exist only on the fast path — like the fuzzy tags, they are excluded
#: from the identity comparison, which pins the *logical* event stream
#: (same precedent as io_fault in tests/core/test_workers.py).
_PHYSICAL_KINDS = ("prefetch", "arena_grow")


@pytest.fixture(autouse=True)
def _restore_fastpath_env():
    was = fastpath.enabled()
    yield
    fastpath.set_enabled(was)


def _normalize(events):
    return [
        {k: v for k, v in ev.items() if k not in _FUZZY_TAGS}
        for ev in events
        if ev.get("kind") not in _PHYSICAL_KINDS
    ]


def _sort_both(cfg: MachineConfig, data: np.ndarray, engine: str, **kw):
    """Run em_sort on both paths; returns (fast, ref, fast_trace, ref_trace)."""
    out = []
    for enabled in (True, False):
        fastpath.set_enabled(enabled)
        tracer = JsonlRecorder()
        res = em_sort(data, cfg, engine=engine, tracer=tracer, **kw)
        out.append((res, tracer.events))
    (fast, t_fast), (ref, t_ref) = out
    return fast, ref, t_fast, t_ref


def _assert_identical(fast, ref, t_fast, t_ref):
    assert np.array_equal(fast.values, ref.values)
    assert measured_from_report(fast.report) == measured_from_report(ref.report)
    assert fast.report.io.as_dict() == ref.report.io.as_dict()
    assert fast.report.io_max.as_dict() == ref.report.io_max.as_dict()
    assert _normalize(t_fast) == _normalize(t_ref)


@pytest.mark.parametrize("balanced", [False, True], ids=["direct", "balanced"])
@pytest.mark.parametrize("engine", ["seq", "par"])
class TestSortIdentity:
    @settings(max_examples=8)
    @given(seed=st.integers(min_value=0, max_value=2**31), log_n=st.integers(min_value=10, max_value=12))
    def test_outputs_stats_traces_identical(self, engine, balanced, seed, log_n):
        n = 1 << log_n
        data = np.random.default_rng(seed).integers(0, 2**50, n)
        cfg = MachineConfig(N=n, v=4, p=2 if engine == "par" else 1, D=2, B=64)
        self_args = _sort_both(cfg, data, engine, balanced=balanced)
        _assert_identical(*self_args)
        assert np.array_equal(self_args[0].values, np.sort(data))


def test_transpose_identity_seq():
    mat = np.arange(64 * 64, dtype=np.int64).reshape(64, 64)
    cfg = MachineConfig(N=mat.size, v=4, D=2, B=64)
    out = []
    for enabled in (True, False):
        fastpath.set_enabled(enabled)
        tracer = JsonlRecorder()
        res = em_transpose(mat, cfg, engine="seq", tracer=tracer)
        out.append((res, tracer.events))
    (fast, t_fast), (ref, t_ref) = out
    _assert_identical(fast, ref, t_fast, t_ref)
    assert np.array_equal(fast.values, mat.T)


class TestProcessEngineIdentity:
    """The multi-core backend: small workloads, real subprocesses."""

    def test_sort_identical_with_workers(self):
        n = 1 << 12
        data = np.random.default_rng(7).integers(0, 2**50, n)
        cfg = MachineConfig(N=n, v=4, p=2, D=2, B=64, workers=2)
        fast, ref, t_fast, t_ref = _sort_both(cfg, data, "par")
        _assert_identical(fast, ref, t_fast, t_ref)

    def test_fast_process_matches_reference_inprocess(self):
        """Cross-backend too: worker fast path == in-process reference."""
        n = 1 << 12
        data = np.random.default_rng(8).integers(0, 2**50, n)
        cfg = MachineConfig(N=n, v=4, p=2, D=2, B=64)
        fastpath.set_enabled(True)
        proc = em_sort(data, cfg.with_(workers=2), engine="par")
        fastpath.set_enabled(False)
        inproc = em_sort(data, cfg, engine="par")
        assert np.array_equal(proc.values, inproc.values)
        assert measured_from_report(proc.report) == measured_from_report(inproc.report)


class TestFaultsIdentity:
    """Under a fault plan the engine pins itself to the reference disk
    machinery; the env flag must then change nothing at all."""

    @settings(max_examples=4)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_sort_identical_under_ci_transient_plan(self, seed):
        n = 1 << 11
        data = np.random.default_rng(seed).integers(0, 2**50, n)
        cfg = MachineConfig(N=n, v=4, D=2, B=64)
        fast, ref, t_fast, t_ref = _sort_both(cfg, data, "seq", faults=FAULT_PLAN)
        _assert_identical(fast, ref, t_fast, t_ref)
        f_fast = [e for e in _normalize(t_fast) if "fault" in str(e.get("kind", ""))]
        f_ref = [e for e in _normalize(t_ref) if "fault" in str(e.get("kind", ""))]
        assert f_fast == f_ref

    def test_par_engine_under_faults(self):
        n = 1 << 11
        data = np.random.default_rng(3).integers(0, 2**50, n)
        cfg = MachineConfig(N=n, v=4, p=2, D=2, B=64)
        fast, ref, t_fast, t_ref = _sort_both(cfg, data, "par", faults=FAULT_PLAN)
        _assert_identical(fast, ref, t_fast, t_ref)
