"""Property tests for Algorithm 1 (BalancedRouting).

Two guarantees are fuzzed with hypothesis:

* **Theorem 1** — for an arbitrary h-relation, every message of both
  balanced rounds has size within ``[h/v - (v-1)/2, h/v + (v-1)/2]``
  (with ``h`` the sender's/receiver's actual word total, which is at
  most the h-relation bound).
* **Round-trip** — split → route → regroup → route → reassemble
  reconstructs every original payload bit-exactly, for arbitrary byte
  strings and numpy payloads, including empty and non-word-aligned ones.

The deterministic hypothesis profile registered in ``tests/conftest.py``
keeps the explored examples identical across runs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.cgm.message import Message
from repro.core.balanced import (
    balanced_message_bounds,
    phase_a_bin_sizes,
    reassemble,
    regroup_phase_b,
    split_phase_a,
)

# -- strategies ------------------------------------------------------------

vs = st.integers(min_value=1, max_value=9)


@st.composite
def length_matrices(draw):
    """(v, L) with L[i, j] = word length of msg_ij, an arbitrary pattern."""
    v = draw(vs)
    flat = draw(
        st.lists(
            st.integers(min_value=0, max_value=200),
            min_size=v * v,
            max_size=v * v,
        )
    )
    return v, np.array(flat, dtype=np.int64).reshape(v, v)


def round_b_message_sizes(L: np.ndarray) -> np.ndarray:
    """S[b, k] = words the intermediate b forwards to final destination k.

    Message ``msg_ik`` deals word ``l`` to bin ``(i + k + l) mod v``, so
    bin b receives ``floor(L/v)`` words plus one extra when
    ``(b - i - k) mod v < L mod v`` — summed over sources i.
    """
    v = L.shape[0]
    S = np.zeros((v, v), dtype=np.int64)
    for b in range(v):
        for k in range(v):
            for i in range(v):
                q, rem = divmod(int(L[i, k]), v)
                S[b, k] += q + ((b - i - k) % v < rem)
    return S


# -- Theorem 1 -------------------------------------------------------------


@given(length_matrices())
def test_theorem1_round_a_message_bounds(case):
    """Every Superstep-A message (one bin at one source) is within
    h_i/v ± (v-1)/2, where h_i is what source i actually sends."""
    v, L = case
    for i in range(v):
        h_i = int(L[i].sum())
        lo, hi = balanced_message_bounds(h_i, v)
        sizes = phase_a_bin_sizes(L[i], src=i)
        assert int(sizes.sum()) == h_i  # dealing loses nothing
        assert sizes.min() >= lo - 1e-9, (v, i, sizes, lo)
        assert sizes.max() <= hi + 1e-9, (v, i, sizes, hi)


@given(length_matrices())
def test_theorem1_round_b_message_bounds(case):
    """Every Superstep-B message (one intermediate to one destination) is
    within h_k/v ± (v-1)/2, where h_k is what destination k receives."""
    v, L = case
    S = round_b_message_sizes(L)
    for k in range(v):
        h_k = int(L[:, k].sum())
        lo, hi = balanced_message_bounds(h_k, v)
        assert int(S[:, k].sum()) == h_k
        assert S[:, k].min() >= lo - 1e-9, (v, k, S[:, k], lo)
        assert S[:, k].max() <= hi + 1e-9, (v, k, S[:, k], hi)


def test_theorem1_bound_is_tight():
    """An adversarial remainder pattern attains exactly h/v + (v-1)/2,
    so the envelope cannot be narrowed (matches the paper's analysis)."""
    v = 5
    # message to dest j sized so that bin 0 catches every extra word:
    # rem_j chosen as (v - j) mod v puts bin 0 first in each deal order.
    lengths = np.array([(v - j) % v for j in range(v)], dtype=np.int64)
    sizes = phase_a_bin_sizes(lengths, src=0)
    h = int(lengths.sum())
    _, hi = balanced_message_bounds(h, v)
    assert sizes.max() == hi


# -- round-trip ------------------------------------------------------------

payloads = st.one_of(
    st.binary(min_size=0, max_size=300),
    st.binary(min_size=0, max_size=300).map(
        lambda b: np.frombuffer(b[: len(b) - len(b) % 8], dtype=np.uint64)
    ),
    st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=40),
)


@st.composite
def exchanges(draw):
    """A full communication round: per-source outboxes with random payloads."""
    v = draw(st.integers(min_value=1, max_value=5))
    outboxes = []
    for i in range(v):
        n = draw(st.integers(min_value=0, max_value=4))
        msgs = [
            Message(
                src=i,
                dest=draw(st.integers(min_value=0, max_value=v - 1)),
                payload=draw(payloads),
                tag=draw(st.none() | st.just("app")),
            )
            for _ in range(n)
        ]
        outboxes.append(msgs)
    return v, outboxes


def _route(messages: list[Message], v: int) -> list[list[Message]]:
    inboxes: list[list[Message]] = [[] for _ in range(v)]
    for m in messages:
        inboxes[m.dest].append(m)
    return inboxes


def _canon(payload):
    if isinstance(payload, np.ndarray):
        return ("nd", payload.dtype.str, payload.tobytes())
    if isinstance(payload, list):
        return ("py", "list", tuple(payload))
    return ("py", type(payload).__name__, payload)


@given(exchanges())
def test_balanced_roundtrip_bit_exact(case):
    v, outboxes = case
    # phase A at every source, deliver to intermediates
    phase_a = [m for out in outboxes for m in split_phase_a(out, v)]
    mid_in = _route(phase_a, v)
    # phase B at every intermediate, deliver to final destinations
    phase_b = [m for b in range(v) for m in regroup_phase_b(mid_in[b])]
    final_in = _route(phase_b, v)
    # reassemble and compare against what was originally sent
    for k in range(v):
        got = reassemble(final_in[k])
        want = [m for out in outboxes for m in out if m.dest == k]
        got_keyed = {(m.src, _canon(m.payload), m.tag) for m in got}
        want_keyed = {(m.src, _canon(m.payload), m.tag) for m in want}
        assert got_keyed == want_keyed


@given(exchanges())
def test_balanced_preserves_total_words(case):
    """Neither balanced round drops or duplicates words: per destination,
    the reassembled message count equals the sent message count."""
    v, outboxes = case
    phase_a = [m for out in outboxes for m in split_phase_a(out, v)]
    mid_in = _route(phase_a, v)
    phase_b = [m for b in range(v) for m in regroup_phase_b(mid_in[b])]
    final_in = _route(phase_b, v)
    got = sum(len(reassemble(final_in[k])) for k in range(v))
    want = sum(len(out) for out in outboxes)
    assert got == want
