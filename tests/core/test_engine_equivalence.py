"""Engine equivalence: every backend is the *same* machine, differently
simulated.

The paper's Theorems 2/3 only make sense if Algorithm 2 (seq), Algorithm 3
(par), and the in-memory/VM references all execute a CGM program to the
same answer — the backends differ in where state lives (RAM, LRU pages,
striped disks) and how rounds map to real supersteps, never in semantics.
Beyond outputs, seq and par with p=1 run the *identical* disk machinery,
so their parallel I/O counts must agree exactly.

Parametrized over balanced and direct routing and over three programs with
different communication shapes: SampleSort (data-dependent all-to-all),
CGMTranspose (regular permutation), PrefixSum (gather/scatter through
processor 0).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.collectives import PrefixSum
from repro.cgm.config import MachineConfig
from repro.em.runner import em_run, em_sort, em_transpose

BALANCED = [False, True]


def _cfg(p: int = 1) -> MachineConfig:
    return MachineConfig(N=1 << 12, v=4, p=p, D=2, B=64)


# -- program drivers: run on one engine kind, return (values, result) ------


def _run_sort(kind: str, balanced: bool):
    data = np.random.default_rng(42).integers(0, 2**50, 1 << 12)
    out = em_sort(data, _cfg(), engine=kind, balanced=balanced)
    return out.values, out.result


def _run_transpose(kind: str, balanced: bool):
    mat = np.arange(64 * 64, dtype=np.int64).reshape(64, 64)
    cfg = MachineConfig(N=mat.size, v=4, D=2, B=64)
    out = em_transpose(mat, cfg, engine=kind, balanced=balanced)
    return out.values, out.result


def _run_prefix(kind: str, balanced: bool):
    cfg = _cfg()
    vals = [3.0, 1.0, 4.0, 1.5]
    res = em_run(PrefixSum(), vals, cfg, engine=kind, balanced=balanced)
    return np.array(res.outputs), res


PROGRAMS = {
    "sort": _run_sort,
    "transpose": _run_transpose,
    "prefix-sum": _run_prefix,
}


def _expected(name: str):
    if name == "sort":
        return np.sort(np.random.default_rng(42).integers(0, 2**50, 1 << 12))
    if name == "transpose":
        return np.arange(64 * 64, dtype=np.int64).reshape(64, 64).T
    vals = [3.0, 1.0, 4.0, 1.5]
    return np.array([0.0] + list(np.cumsum(vals[:-1])))


@pytest.mark.parametrize("balanced", BALANCED, ids=["direct", "balanced"])
@pytest.mark.parametrize("program", sorted(PROGRAMS))
class TestOutputsIdentical:
    def test_vm_seq_par_agree(self, program, balanced):
        runs = {
            kind: PROGRAMS[program](kind, balanced)[0]
            for kind in ("memory", "vm", "seq", "par")
        }
        want = _expected(program)
        for kind, got in runs.items():
            assert np.array_equal(got, want), f"{kind} diverged on {program}"

    def test_seq_par_p1_identical_ios(self, program, balanced):
        """p=1 par is the same machine as seq (Algorithm 2 is Algorithm 3's
        degenerate case) — identical parallel I/O count, block totals, and
        per-disk placement, not merely matching outputs."""
        _, seq = PROGRAMS[program]("seq", balanced)
        _, par = PROGRAMS[program]("par", balanced)
        assert seq.report.io.parallel_ios == par.report.io.parallel_ios
        assert seq.report.io.blocks_total == par.report.io.blocks_total
        assert seq.report.io.per_disk_blocks == par.report.io.per_disk_blocks
        assert seq.report.io.width_histogram == par.report.io.width_histogram
        # no network traffic when everything lives on one real processor
        assert seq.report.comm_items == par.report.comm_items

    def test_reports_consistent(self, program, balanced):
        """Deterministic simulation: re-running a backend reproduces the
        full cost report, and balanced mode doubles the CGM rounds."""
        _, a = PROGRAMS[program]("seq", balanced)
        _, b = PROGRAMS[program]("seq", balanced)
        assert a.report.io.parallel_ios == b.report.io.parallel_ios
        assert a.report.supersteps == b.report.supersteps
        if balanced:
            # two-phase routing doubles the real supersteps, not the CGM
            # round count lambda
            _, direct = PROGRAMS[program]("seq", False)
            assert a.report.rounds == direct.report.rounds
            assert a.report.supersteps == 2 * direct.report.supersteps


@pytest.mark.parametrize("program", sorted(PROGRAMS))
def test_multi_real_processor_same_answer(program):
    """p=2 distributes the virtual processors over two real machines and
    moves cross-boundary messages over the (simulated) network; the answer
    must not change."""
    got, res = PROGRAMS[program]("par", False)
    cfg = _cfg(p=2)
    if program == "sort":
        data = np.random.default_rng(42).integers(0, 2**50, 1 << 12)
        out = em_sort(data, cfg, engine="par")
        got2, res2 = out.values, out.result
    elif program == "transpose":
        mat = np.arange(64 * 64, dtype=np.int64).reshape(64, 64)
        out = em_transpose(mat, cfg.with_(N=mat.size), engine="par")
        got2, res2 = out.values, out.result
    else:
        res2 = em_run(PrefixSum(), [3.0, 1.0, 4.0, 1.5], cfg, engine="par")
        got2 = np.array(res2.outputs)
    assert np.array_equal(got, got2)
    assert res2.report.comm_items > 0  # the network was actually used
