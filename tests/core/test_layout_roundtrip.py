"""Data round-trips through the staggered message matrix on real simulated
disks.

``tests/core/test_layouts.py`` checks the *geometry* (addresses don't
collide, the stagger formula matches the paper).  Here we drive actual
bytes through :class:`DiskArray` at those addresses and read them back:

* every ``msg_ij`` written into a matrix copy is recovered exactly via the
  destination's inbox read;
* the two matrix copies alternate by superstep parity without clobbering
  each other — the engines' analog of Observation 2's consecutive /
  staggered format alternation;
* with ``gcd(slot, D) = 1`` the DiskWrite-style FIFO batching achieves
  *full* D-parallelism on writes, and inbox reads are consecutive runs;
* oversized messages take the consecutive-format overflow run through the
  real engine and still arrive intact.
"""

from __future__ import annotations

import numpy as np

from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram
from repro.core.layouts import MessageMatrix
from repro.em.runner import make_engine
from repro.pdm.disk_array import DiskArray

B = 4  # items per block -> 32 bytes per block/track
BLOCK_BYTES = B * 8


def _payload(src: int, dest: int, nblocks: int, marker: int = 0) -> bytes:
    return bytes([(marker + 16 * src + dest) % 256]) * (nblocks * BLOCK_BYTES)


def _write_matrix(arr, mm, sizes, parity, marker=0):
    """Write every msg_ij (src-major, as the paper's senders do)."""
    placements = []
    for src in range(mm.n_src):
        for dest in range(mm.n_dest):
            n = sizes[src][dest]
            if n == 0:
                continue
            data = _payload(src, dest, n, marker)
            addrs = mm.message_addresses(src, dest, n, parity)
            placements.extend(
                (d, t, data[q * BLOCK_BYTES : (q + 1) * BLOCK_BYTES])
                for q, (d, t) in enumerate(addrs)
            )
    arr.write_blocks(placements)


def _read_inbox(arr, mm, sizes, dest, parity) -> bytes:
    by_src = [(s, sizes[s][dest]) for s in range(mm.n_src) if sizes[s][dest]]
    addrs = mm.inbox_addresses(dest, by_src, parity)
    return b"".join(arr.read_blocks(addrs))


class TestStaggeredRoundTrip:
    def test_every_message_recovered(self):
        v, D = 4, 2
        mm = MessageMatrix(n_src=v, n_dest=v, D=D, slot_blocks=2)
        arr = DiskArray(D=D, B=B)
        # ragged sizes, incl. empty messages
        sizes = [[(src + dest) % 3 for dest in range(v)] for src in range(v)]
        _write_matrix(arr, mm, sizes, parity=0)
        for dest in range(v):
            got = _read_inbox(arr, mm, sizes, dest, parity=0)
            want = b"".join(
                _payload(src, dest, sizes[src][dest])
                for src in range(v)
                if sizes[src][dest]
            )
            assert got == want

    def test_parity_copies_do_not_clobber(self):
        """Observation 2: round r writes copy ``r % 2`` while round r-1 is
        read from the other copy; three rounds of writes prove the copies
        are disjoint and reusable."""
        v, D = 3, 2
        mm = MessageMatrix(n_src=v, n_dest=v, D=D, slot_blocks=1)
        arr = DiskArray(D=D, B=B)
        full = [[1] * v for _ in range(v)]

        _write_matrix(arr, mm, full, parity=0, marker=0xA0)
        _write_matrix(arr, mm, full, parity=1, marker=0xB1)
        # round-0 data survives the round-1 writes
        for dest in range(v):
            assert _read_inbox(arr, mm, full, dest, 0) == b"".join(
                _payload(s, dest, 1, 0xA0) for s in range(v)
            )
        # round 2 reuses copy 0; copy 1 is untouched
        _write_matrix(arr, mm, full, parity=2, marker=0xC2)
        for dest in range(v):
            assert _read_inbox(arr, mm, full, dest, 0) == b"".join(
                _payload(s, dest, 1, 0xC2) for s in range(v)
            )
            assert _read_inbox(arr, mm, full, dest, 1) == b"".join(
                _payload(s, dest, 1, 0xB1) for s in range(v)
            )

    def test_full_parallel_writes_and_reads(self):
        """gcd(slot, D) = 1 and slot-full messages: the FIFO write batching
        and the consecutive inbox reads both touch all D disks every op."""
        v, D, slot = 8, 4, 3
        mm = MessageMatrix(n_src=v, n_dest=v, D=D, slot_blocks=slot)
        arr = DiskArray(D=D, B=B)
        full = [[slot] * v for _ in range(v)]
        _write_matrix(arr, mm, full, parity=0)
        assert sum(arr.stats.width_histogram[:D]) == 0, arr.stats.width_histogram
        assert arr.stats.parallel_ios == v * v * slot // D  # optimal count
        before = arr.stats.snapshot()
        for dest in range(v):
            _read_inbox(arr, mm, full, dest, parity=0)
        reads = arr.stats.delta_since(before)
        assert sum(reads.width_histogram[:D]) == 0, reads.width_histogram
        # every disk serviced the same number of blocks overall
        assert len(set(arr.stats.per_disk_blocks)) == 1


class _Oversized(CGMProgram):
    """Advertises 4-item messages, sends ~N/v-item ones (overflow path)."""

    name = "oversized"
    kappa = 1.0

    def max_message_items(self, cfg):
        return 4

    def setup(self, ctx, pid, cfg, local_input):
        ctx["pid"] = pid
        ctx["data"] = local_input

    def round(self, r, ctx, env):
        if r == 0:
            env.send((ctx["pid"] + 1) % env.v, ctx["data"], tag="x")
            return False
        (m,) = env.messages(tag="x")
        ctx["got"] = m.payload
        return True

    def finish(self, ctx):
        return ctx["got"]


class TestOverflowRun:
    def test_overflow_blocks_counted_and_data_intact(self):
        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=16)
        rng = np.random.default_rng(9)
        inputs = [rng.integers(0, 2**40, cfg.N // cfg.v) for _ in range(cfg.v)]
        res = make_engine(cfg, "seq").run(_Oversized(), inputs)
        assert res.report.overflow_blocks > 0
        for pid, out in enumerate(res.outputs):
            assert np.array_equal(out, inputs[(pid - 1) % cfg.v])

    def test_overflow_is_traced_with_its_layout(self):
        from repro.obs.trace import JsonlRecorder

        cfg = MachineConfig(N=1 << 12, v=4, D=2, B=16)
        rng = np.random.default_rng(9)
        inputs = [rng.integers(0, 2**40, cfg.N // cfg.v) for _ in range(cfg.v)]
        tr = JsonlRecorder()
        make_engine(cfg, "seq", tracer=tr).run(_Oversized(), inputs)
        layouts = {
            e.get("layout")
            for e in tr.events
            if e["kind"] in ("message_write", "message_read")
        }
        assert "overflow" in layouts
