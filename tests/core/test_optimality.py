"""Tests for the Definition 1 optimality predicates."""

from __future__ import annotations

import pytest

from repro.cgm.metrics import CostReport
from repro.core.optimality import (
    assess,
    sequential_linear_time,
    sequential_sort_time,
    trend,
)
from repro.pdm.io_stats import IOStats


def report_with(comp: float, cross: int, ios: int) -> CostReport:
    r = CostReport(engine="test")
    r.comp_wall_s = comp
    r.cross_items = cross
    io = IOStats()
    for _ in range(ios):
        io.record(1, 0, [0], D=1)
    r.io = io
    r.io_max = io
    return r


class TestAssess:
    def test_ratios(self):
        rep = report_with(comp=2.0, cross=100, ios=10)
        a = assess(rep, seq_time=4.0, p=2, g=0.001, G=0.01)
        assert a.phi == pytest.approx(1.0)
        assert a.xi == pytest.approx(0.1 / 2.0)
        assert a.eta == pytest.approx(0.1 / 2.0)

    def test_c_optimal_when_overheads_small(self):
        rep = report_with(comp=1.0, cross=10, ios=1)
        a = assess(rep, seq_time=1.0, p=1, g=1e-6, G=1e-6)
        assert a.is_c_optimal(c=1.0)
        assert a.is_work_optimal()
        assert a.is_io_efficient()
        assert a.is_communication_efficient()

    def test_not_c_optimal_when_io_dominates(self):
        rep = report_with(comp=1.0, cross=0, ios=10_000)
        a = assess(rep, seq_time=1.0, p=1, g=0.0, G=1.0)
        assert not a.is_c_optimal(c=1.0)
        assert not a.is_io_efficient()

    def test_bad_seq_time(self):
        with pytest.raises(ValueError):
            assess(report_with(1, 1, 1), seq_time=0.0, p=1, g=1, G=1)


class TestTrend:
    def test_flat_ratio_zero_exponent(self):
        assert trend([10, 100, 1000], [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_decreasing_ratio_negative(self):
        Ns = [10, 100, 1000]
        assert trend(Ns, [1.0, 0.1, 0.01]) < -0.5

    def test_growing_ratio_positive(self):
        assert trend([10, 100], [1.0, 10.0]) > 0.5

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            trend([10], [1.0])


class TestSequentialReferences:
    def test_sort_time_superlinear(self):
        assert sequential_sort_time(2_000_000) > 2 * sequential_sort_time(1_000_000)

    def test_linear_time(self):
        assert sequential_linear_time(2_000_000) == pytest.approx(
            2 * sequential_linear_time(1_000_000)
        )


class TestDefinitionOneOnRealRuns:
    """Empirical Definition 1: run the EM-CGM sort across an N sweep and
    check that the I/O and communication ratios do not grow with N —
    the o(1)/O(1) signature the paper's optimality notions demand."""

    def test_io_efficiency_trend_flat(self):
        import numpy as np

        from repro.cgm.config import MachineConfig
        from repro.em.runner import em_sort

        Ns = [1 << 12, 1 << 14, 1 << 16]
        etas = []
        G = 50.0  # items of computation per parallel I/O
        for n in Ns:
            data = np.random.default_rng(n).integers(0, 2**40, n)
            cfg = MachineConfig(N=n, v=8, D=2, B=64)
            res = em_sort(data, cfg, engine="seq")
            t_seq = sequential_sort_time(n, per_item_s=1.0)  # item-ops units
            eta = res.report.io.parallel_ios * G / t_seq
            etas.append(eta)
        alpha = trend(Ns, etas)
        assert alpha < 0.1, f"I/O ratio grows with N (alpha={alpha:.3f})"

    def test_communication_efficiency_trend_flat(self):
        import numpy as np

        from repro.cgm.config import MachineConfig
        from repro.em.runner import em_sort

        Ns = [1 << 12, 1 << 14, 1 << 16]
        xis = []
        for n in Ns:
            data = np.random.default_rng(n).integers(0, 2**40, n)
            cfg = MachineConfig(N=n, v=8, p=4, D=2, B=64)
            res = em_sort(data, cfg, engine="par")
            t_seq = sequential_sort_time(n, per_item_s=1.0)
            xis.append(res.report.cross_items / t_seq)
        alpha = trend(Ns, xis)
        assert alpha < 0.1, f"comm ratio grows with N (alpha={alpha:.3f})"
