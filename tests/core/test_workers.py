"""The multi-core worker backend (repro.core.workers): partitioning,
counter bit-identity vs. the single-process simulation, trace merging,
output correctness, and failure propagation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.cgm.program import CGMProgram
from repro.core.workers import ProcessParEngine, partition_reals
from repro.em.runner import em_run, em_sort, make_engine
from repro.obs.trace import JsonlRecorder
from repro.util.rng import make_rng

V, D, B = 8, 2, 64
N = 1 << 14


def _counters(report) -> dict:
    return {
        "parallel_ios": report.io.parallel_ios,
        "blocks_total": report.io.blocks_total,
        "io_dict": report.io.as_dict(),
        "io_max": report.io_max.parallel_ios,
        "context_blocks_io": report.context_blocks_io,
        "message_blocks_io": report.message_blocks_io,
        "overflow_blocks": report.overflow_blocks,
        "peak_memory": report.peak_memory_items,
        "comm_items": report.comm_items,
        "cross_items": report.cross_items,
        "rounds": report.rounds,
        "supersteps": report.supersteps,
        "h_history": report.h_history,
    }


class TestPartition:
    def test_even_split(self):
        assert partition_reals(4, 2) == [[0, 1], [2, 3]]

    def test_uneven_split_front_loads(self):
        assert partition_reals(5, 2) == [[0, 1, 2], [3, 4]]

    def test_one_worker(self):
        assert partition_reals(3, 1) == [[0, 1, 2]]

    def test_worker_per_real(self):
        assert partition_reals(3, 3) == [[0], [1], [2]]


class TestDispatch:
    def test_runner_selects_process_backend(self):
        cfg = MachineConfig(N=N, v=V, p=2, D=D, B=B, workers=2)
        assert isinstance(make_engine(cfg, "par"), ProcessParEngine)

    def test_default_stays_in_process(self, monkeypatch):
        from repro.core.par_engine import ParEMEngine

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        # the tcp transport implies the worker coordinator, so the ambient
        # distributed-lane environment must not leak into this default
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        monkeypatch.delenv("REPRO_NODES", raising=False)
        cfg = MachineConfig(N=N, v=V, p=2, D=D, B=B)
        eng = make_engine(cfg, "par")
        assert type(eng) is ParEMEngine

    def test_env_var_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        cfg = MachineConfig(N=N, v=V, p=2, D=D, B=B)
        assert isinstance(make_engine(cfg, "par"), ProcessParEngine)

    def test_p1_never_multiprocess(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        cfg = MachineConfig(N=N, v=V, p=1, D=D, B=B)
        assert not isinstance(make_engine(cfg, "seq"), ProcessParEngine)

    def test_workers_capped_at_p(self):
        cfg = MachineConfig(N=N, v=V, p=2, D=D, B=B, workers=16)
        eng = make_engine(cfg, "par")
        assert eng.n_workers == 2


class TestBitIdentity:
    @pytest.mark.parametrize("p", [2, 4])
    def test_sort_counters_match_sequential(self, p):
        data = make_rng(0).integers(0, 2**50, N)
        cfg = MachineConfig(N=N, v=V, p=p, D=D, B=B)
        seq = em_sort(data, cfg, engine="par")
        par = em_sort(data, cfg.with_(workers=p), engine="par")
        assert np.array_equal(par.values, np.sort(data))
        assert _counters(seq.report) == _counters(par.report)

    def test_fewer_workers_than_reals(self):
        """workers=2 over p=4: each worker simulates two real processors."""
        data = make_rng(1).integers(0, 2**50, N)
        cfg = MachineConfig(N=N, v=V, p=4, D=D, B=B)
        seq = em_sort(data, cfg, engine="par")
        par = em_sort(data, cfg.with_(workers=2), engine="par")
        assert np.array_equal(par.values, np.sort(data))
        assert _counters(seq.report) == _counters(par.report)

    def test_balanced_mode_matches(self):
        data = make_rng(2).integers(0, 2**50, N)
        cfg = MachineConfig(N=N, v=V, p=4, D=D, B=B)
        seq = em_sort(data, cfg, engine="par", balanced=True)
        par = em_sort(data, cfg.with_(workers=4), engine="par", balanced=True)
        assert np.array_equal(par.values, np.sort(data))
        assert _counters(seq.report) == _counters(par.report)

    def test_per_round_io_deltas_match(self):
        data = make_rng(3).integers(0, 2**50, N)
        cfg = MachineConfig(N=N, v=V, p=4, D=D, B=B)
        seq = em_sort(data, cfg, engine="par")
        par = em_sort(data, cfg.with_(workers=4), engine="par")
        for a, b in zip(seq.report.per_round, par.report.per_round):
            assert a.io.as_dict() == b.io.as_dict()
            assert (a.h_in, a.h_out, a.messages, a.comm_items) == (
                b.h_in,
                b.h_out,
                b.messages,
                b.comm_items,
            )


class TestTraces:
    def test_event_counts_match_and_workers_are_tagged(self):
        data = make_rng(4).integers(0, 2**50, N)
        cfg = MachineConfig(N=N, v=V, p=4, D=D, B=B)
        t_seq, t_par = JsonlRecorder(), JsonlRecorder()
        em_sort(data, cfg, engine="par", tracer=t_seq)
        em_sort(data, cfg.with_(workers=4), engine="par", tracer=t_par)
        a, b = t_seq.counts(), t_par.counts()
        # physical fault events (the REPRO_FAULTS injection lane) are not
        # part of the logical schedule: allocation order inside a shared
        # message region differs across backends, so the per-attempt fault
        # draws — unlike every logical counter — may diverge slightly.
        # prefetch/arena_grow are likewise physical: the in-process engine
        # runs one prefetcher and D*p shared arenas per round while each
        # worker process runs its own, so their event counts differ by
        # construction
        for c in (a, b):
            for kind in ("io_fault", "prefetch", "arena_grow"):
                c.pop(kind, None)
        assert a == b
        worker_side = {"compute_round", "context_read", "context_write",
                       "message_read", "message_write", "network_transfer",
                       "io_fault", "disk_dead", "prefetch", "arena_grow"}
        for ev in t_par.events:
            assert ("worker" in ev) == (ev["kind"] in worker_side), ev
        workers_seen = {ev["worker"] for ev in t_par.events if "worker" in ev}
        assert workers_seen == {0, 1, 2, 3}

    def test_run_begin_records_workers(self):
        tr = JsonlRecorder()
        cfg = MachineConfig(N=N, v=V, p=2, D=D, B=B, workers=2)
        em_sort(make_rng(5).integers(0, 2**40, N), cfg, engine="par", tracer=tr)
        begin = [ev for ev in tr.events if ev["kind"] == "run_begin"]
        assert begin and begin[0]["workers"] == 2


class _Boom(CGMProgram):
    name = "boom"
    kappa = 1.0

    def max_message_items(self, cfg):
        return 8

    def setup(self, ctx, pid, cfg, local_input):
        ctx["pid"] = pid

    def round(self, r, ctx, env):
        if ctx["pid"] == env.v - 1:
            raise RuntimeError("deliberate failure in the last vproc")
        return True

    def finish(self, ctx):
        return None


def assert_workers_reaped(eng) -> None:
    """Whatever the transport, no worker is left running after a run."""
    fleet = eng._fleet
    if hasattr(fleet, "_procs"):  # local backends hold the process list
        assert fleet._procs == []
    assert not any(fleet.alive(w) for w in range(fleet.n_workers))


class TestFailureHandling:
    def test_worker_exception_propagates_and_cleans_up(self):
        from repro.util.validation import SimulationError

        cfg = MachineConfig(N=1 << 12, v=4, p=4, D=D, B=32, workers=4)
        eng = make_engine(cfg, "par")
        with pytest.raises(SimulationError, match="deliberate failure"):
            eng.run(_Boom(), [None] * 4)
        assert_workers_reaped(eng)

    def test_processes_reaped_after_success(self):
        cfg = MachineConfig(N=1 << 12, v=4, p=2, D=D, B=32, workers=2)
        eng = make_engine(cfg, "par")
        data = make_rng(6).integers(0, 2**40, 1 << 12)
        from repro.algorithms.collectives import partition_array
        from repro.algorithms.sorting import SampleSort

        eng.run(SampleSort(), partition_array(data, 4))
        assert_workers_reaped(eng)


class _InboxRecorder(CGMProgram):
    """Round 0 sends a fixed tricky outbox; round 1 records the inbox."""

    name = "inbox-recorder"
    kappa = 1.0

    def max_message_items(self, cfg):
        return 16

    def setup(self, ctx, pid, cfg, local_input):
        ctx["pid"] = pid

    def round(self, r, ctx, env):
        pid = ctx["pid"]
        if r == 0:
            env.send((pid + 1) % env.v, np.array([], dtype=np.int64), tag="empty")
            env.send((pid + 1) % env.v, np.arange(16) + pid, tag="dup")
            env.send((pid + 1) % env.v, np.arange(16) * pid, tag="dup")
            if pid == 0:
                env.send(env.v - 1, np.full(64, 7), tag="big")
            return False
        ctx["inbox"] = sorted(
            (m.src, m.tag, m.size_items, m.payload.tobytes())
            for m in env.messages()
        )
        return True

    def finish(self, ctx):
        return ctx["inbox"]


class TestDelivery:
    @pytest.mark.parametrize("balanced", [False, True])
    def test_inboxes_identical_to_sequential(self, balanced):
        cfg = MachineConfig(N=1 << 12, v=4, p=4, D=D, B=32)
        ref = em_run(_InboxRecorder(), [None] * 4, cfg, "par", balanced=balanced)
        got = em_run(
            _InboxRecorder(), [None] * 4, cfg.with_(workers=4), "par",
            balanced=balanced,
        )
        assert got.outputs == ref.outputs
        assert got.report.io.as_dict() == ref.report.io.as_dict()


class TestSharedMemoryTransport:
    """The bulk payload transport (multiprocessing.shared_memory).

    ``REPRO_SHM_BYTES`` sets the per-exchange byte threshold above which
    worker message payloads travel through a shared-memory segment instead
    of the queue pickle stream.  Forcing it to 1 routes essentially every
    exchange through the segment; the result must be indistinguishable
    from the queue path.
    """

    @pytest.mark.parametrize("shm_bytes", ["1", "0"], ids=["forced-shm", "no-shm"])
    def test_transport_choice_is_invisible(self, monkeypatch, shm_bytes):
        monkeypatch.setenv("REPRO_SHM_BYTES", shm_bytes)
        data = make_rng(11).integers(0, 2**40, N)
        cfg = MachineConfig(N=N, v=V, p=4, D=D, B=B)
        ref = em_sort(data, cfg, engine="par")
        got = em_sort(data, cfg.with_(workers=4), engine="par")
        assert np.array_equal(got.values, ref.values)
        assert _counters(got.report) == _counters(ref.report)

    def test_forced_shm_matches_forced_queue(self, monkeypatch):
        data = make_rng(12).integers(0, 2**40, N)
        cfg = MachineConfig(N=N, v=V, p=2, D=D, B=B, workers=2)
        monkeypatch.setenv("REPRO_SHM_BYTES", "1")
        shm = em_sort(data, cfg, engine="par")
        monkeypatch.setenv("REPRO_SHM_BYTES", "0")
        queued = em_sort(data, cfg, engine="par")
        assert np.array_equal(shm.values, queued.values)
        assert _counters(shm.report) == _counters(queued.report)
