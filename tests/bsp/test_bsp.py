"""Tests for the BSP/BSP* cost models and Section 5 conversions."""

from __future__ import annotations

import pytest

from repro.bsp.conversion import (
    bsp_star_message_floor,
    c_optimality_preserved,
    to_bsp_star,
    to_em_bsp,
)
from repro.bsp.model import BSPCost, BSPStarCost, Superstep
from repro.util.validation import ConfigurationError, ConstraintViolation


def sample_bsp(v: int = 8, lam: int = 3, h: int = 4096, w: float = 1e5) -> BSPCost:
    return BSPCost(v=v, supersteps=tuple(Superstep(w, h) for _ in range(lam)))


class TestBSPModel:
    def test_total_time(self):
        cost = sample_bsp(lam=2, h=100, w=50.0)
        # per superstep: 50 + max(L=10, g=2 * 100) = 250
        assert cost.total_time(g=2.0, L=10.0) == pytest.approx(500.0)

    def test_latency_floor(self):
        cost = BSPCost(v=4, supersteps=(Superstep(0.0, 1),))
        assert cost.total_time(g=1.0, L=1000.0) == 1000.0

    def test_h_min_max(self):
        cost = BSPCost(v=4, supersteps=(Superstep(0, 10), Superstep(0, 99)))
        assert cost.h_min == 10 and cost.h_max == 99

    def test_empty_profile(self):
        cost = BSPCost(v=4)
        assert cost.lam == 0
        assert cost.total_time(1, 1) == 0.0


class TestBSPStarModel:
    def test_subblock_messages_penalized(self):
        """BSP* charges a whole block per message: many tiny messages cost
        more than one big one of the same total volume."""
        star = BSPStarCost(v=4, b=64, supersteps=())
        bulk = Superstep(0.0, h=640, messages_per_proc=1)
        scattered = Superstep(0.0, h=640, messages_per_proc=640)  # 1-item msgs
        assert star.comm_charge(scattered, g=1.0) > 10 * star.comm_charge(bulk, g=1.0)

    def test_block_aligned_no_penalty(self):
        star = BSPStarCost(v=4, b=64, supersteps=())
        s = Superstep(0.0, h=640, messages_per_proc=10)  # 64-item messages
        assert star.comm_charge(s, g=1.0) == pytest.approx(640.0)


class TestConversionToBSPStar:
    def test_message_floor_formula(self):
        assert bsp_star_message_floor(h_min=1000, v=10) == 1000 // 10 - 9 // 2

    def test_rounds_double(self):
        cost = sample_bsp(lam=3)
        star = to_bsp_star(cost)
        assert star.lam == 6

    def test_block_size_achievable(self):
        cost = sample_bsp(v=8, h=4096)
        star = to_bsp_star(cost)
        assert star.b == bsp_star_message_floor(4096, 8)
        assert all(s.min_message >= star.b for s in star.supersteps)

    def test_excessive_block_request_rejected(self):
        with pytest.raises(ConstraintViolation):
            to_bsp_star(sample_bsp(v=8, h=4096), b=10**6)

    def test_messages_become_v_per_proc(self):
        star = to_bsp_star(sample_bsp(v=8))
        assert all(s.messages_per_proc == 8 for s in star.supersteps)


class TestConversionToEMBSP:
    def test_superstep_blowup(self):
        cost = sample_bsp(v=8, lam=2)
        em = to_em_bsp(cost, p=2, D=2, B=64, mu_items=512)
        assert len(em.supersteps) == 2 * (8 // 2)

    def test_io_counted(self):
        em = to_em_bsp(sample_bsp(v=4, lam=1, h=4096), p=1, D=2, B=64, mu_items=4096)
        # per vproc: ctx 2*64 blocks + msg 2*64 blocks over 2 disks = 128 ops
        assert em.total_ios == 4 * ((2 * 64) // 2 + (2 * 64) // 2)

    def test_p_must_divide_v(self):
        with pytest.raises(ConfigurationError):
            to_em_bsp(sample_bsp(v=8), p=3, D=1, B=64, mu_items=100)

    def test_total_time_includes_G(self):
        em = to_em_bsp(sample_bsp(v=4, lam=1), p=1, D=1, B=64, mu_items=64)
        t_cheap = em.total_time(g=0.0, G=1.0, L=0.0)
        t_dear = em.total_time(g=0.0, G=100.0, L=0.0)
        assert t_dear > t_cheap

    def test_c_optimality_predicate(self):
        cost = sample_bsp(v=8, lam=2, w=1e9)
        em = to_em_bsp(cost, p=2, D=2, B=64, mu_items=512)
        beta = sum(s.w_comp for s in cost.supersteps)
        assert c_optimality_preserved(cost, em, beta, mu_items=512, g=1.0, G=100.0)
        # a huge G (slow disks) breaks it
        assert not c_optimality_preserved(
            cost, em, beta=1e3, mu_items=512, g=1.0, G=1e12
        )

    def test_empty_profile_trivially_preserved(self):
        cost = BSPCost(v=4)
        em = to_em_bsp(cost, p=1, D=1, B=64, mu_items=10)
        assert c_optimality_preserved(cost, em, beta=0.0, mu_items=10, g=1, G=1)


class TestConversionToEMBSPStar:
    def test_item3_pipeline(self):
        """BSP -> BSP* -> EM-BSP*: the full Section 5 chain."""
        from repro.bsp.conversion import blockwise_io_efficient, to_em_bsp_star

        cost = sample_bsp(v=8, lam=2, h=8192)
        star = to_bsp_star(cost)
        em = to_em_bsp_star(star, p=2, D=2, B=64, mu_items=1024)
        # rounds doubled by balancing, then x v/p by the simulation
        assert len(em.supersteps) == (2 * 2) * (8 // 2)
        assert em.total_ios > 0

    def test_blockwise_io_efficiency_detection(self):
        from repro.bsp.conversion import blockwise_io_efficient

        cost = sample_bsp(v=8, h=8192)
        star = to_bsp_star(cost)  # b = h/v - (v-1)/2 = 1021
        assert blockwise_io_efficient(star, B=64)
        assert not blockwise_io_efficient(star, B=4096)

    def test_star_conversion_respects_p_divides_v(self):
        from repro.bsp.conversion import to_em_bsp_star

        star = to_bsp_star(sample_bsp(v=8))
        with pytest.raises(ConfigurationError):
            to_em_bsp_star(star, p=3, D=1, B=64, mu_items=128)
