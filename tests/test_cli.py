"""CLI tests: every subcommand runs, verifies, and reports."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.trace import read_jsonl


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.v == 8 and args.d == 2 and args.engine is None

    def test_engine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--engine", "quantum"])


class TestCommands:
    def test_sort(self, capsys):
        assert main(["sort", "--n", "4096", "--v", "4", "--b", "64"]) == 0
        out = capsys.readouterr().out
        assert "sorted 4096 items: OK" in out
        assert "parallel I/Os" in out

    def test_sort_balanced(self, capsys):
        assert main(["sort", "--n", "4096", "--v", "4", "--b", "64", "--balanced"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_permute(self, capsys):
        assert main(["permute", "--n", "4096", "--v", "4", "--b", "64"]) == 0
        assert "permuted 4096 items: OK" in capsys.readouterr().out

    def test_transpose(self, capsys):
        assert main(["transpose", "--rows", "32", "--cols", "64", "--v", "4", "--b", "32"]) == 0
        assert "transposed 32x64: OK" in capsys.readouterr().out

    def test_delaunay(self, capsys):
        assert main(["delaunay", "--n", "400", "--v", "4", "--b", "32"]) == 0
        assert "triangles: OK" in capsys.readouterr().out

    def test_cc(self, capsys):
        assert main(["cc", "--n", "200", "--edges", "300", "--v", "4", "--b", "32"]) == 0
        assert "components: OK" in capsys.readouterr().out

    def test_listrank(self, capsys):
        assert main(["listrank", "--n", "500", "--v", "4", "--b", "32"]) == 0
        assert "list ranking of 500 nodes: OK" in capsys.readouterr().out

    def test_listrank_par(self, capsys):
        assert main(["listrank", "--n", "400", "--v", "8", "--p", "2", "--b", "16"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_theory_with_check(self, capsys):
        assert main(["theory", "--v", "100", "--check", "1e7", "100"]) == 0
        out = capsys.readouterr().out
        assert "c=2" in out and "2.000" in out

    def test_machine_reports_constraints(self, capsys):
        assert main(["machine", "--n", "1024", "--v", "32"]) == 0
        out = capsys.readouterr().out
        assert "VIOLATED" in out  # tiny N breaks the paper constraints
        assert "suggested G" in out

    def test_vm_engine(self, capsys):
        assert main(["sort", "--n", "4096", "--v", "4", "--b", "64", "--engine", "vm"]) == 0
        assert "page faults" in capsys.readouterr().out


class TestObservabilityFlags:
    BASE = ["sort", "--n", "4096", "--v", "4", "--b", "64"]

    def test_trace_jsonl(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(self.BASE + ["--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace" in out and str(path) in out
        events = read_jsonl(str(path))
        kinds = {e["kind"] for e in events}
        assert {"run_begin", "superstep_begin", "compute_round", "run_end"} <= kinds

    def test_trace_chrome(self, tmp_path):
        path = tmp_path / "trace.json"
        assert main(self.BASE + ["--trace", str(path), "--trace-format", "chrome"]) == 0
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert isinstance(doc, list) and doc

    def test_crosscheck_passes_on_sort(self, capsys):
        assert main(self.BASE + ["--crosscheck"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out
        assert "width histogram" in out

    def test_crosscheck_balanced(self, capsys):
        assert main(self.BASE + ["--balanced", "--crosscheck"]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_trace_par_includes_network_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        args = ["sort", "--n", "4096", "--v", "4", "--p", "2", "--b", "64",
                "--trace", str(path)]
        assert main(args) == 0
        kinds = {e["kind"] for e in read_jsonl(str(path))}
        assert "network_transfer" in kinds
        assert {"superstep_begin", "context_read", "message_write"} <= kinds

    def test_transpose_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        args = ["transpose", "--rows", "32", "--cols", "64", "--v", "4",
                "--b", "32", "--trace", str(path)]
        assert main(args) == 0
        assert read_jsonl(str(path))

    def test_full_width_report_line(self, capsys):
        assert main(self.BASE) == 0
        assert "full-D parallel" in capsys.readouterr().out
