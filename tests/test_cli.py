"""CLI tests: every subcommand runs, verifies, and reports."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.trace import read_jsonl


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_no_subcommand_exits_nonzero_with_usage(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2
        assert "usage" in capsys.readouterr().err.lower()

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.v == 8 and args.d == 2 and args.engine is None

    def test_engine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--engine", "quantum"])


class TestCommands:
    def test_sort(self, capsys):
        assert main(["sort", "--n", "4096", "--v", "4", "--b", "64"]) == 0
        out = capsys.readouterr().out
        assert "sorted 4096 items: OK" in out
        assert "parallel I/Os" in out

    def test_sort_balanced(self, capsys):
        assert main(["sort", "--n", "4096", "--v", "4", "--b", "64", "--balanced"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_permute(self, capsys):
        assert main(["permute", "--n", "4096", "--v", "4", "--b", "64"]) == 0
        assert "permuted 4096 items: OK" in capsys.readouterr().out

    def test_transpose(self, capsys):
        assert main(["transpose", "--rows", "32", "--cols", "64", "--v", "4", "--b", "32"]) == 0
        assert "transposed 32x64: OK" in capsys.readouterr().out

    def test_delaunay(self, capsys):
        assert main(["delaunay", "--n", "400", "--v", "4", "--b", "32"]) == 0
        assert "triangles: OK" in capsys.readouterr().out

    def test_cc(self, capsys):
        assert main(["cc", "--n", "200", "--edges", "300", "--v", "4", "--b", "32"]) == 0
        assert "components: OK" in capsys.readouterr().out

    def test_listrank(self, capsys):
        assert main(["listrank", "--n", "500", "--v", "4", "--b", "32"]) == 0
        assert "list ranking of 500 nodes: OK" in capsys.readouterr().out

    def test_listrank_par(self, capsys):
        assert main(["listrank", "--n", "400", "--v", "8", "--p", "2", "--b", "16"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_theory_with_check(self, capsys):
        assert main(["theory", "--v", "100", "--check", "1e7", "100"]) == 0
        out = capsys.readouterr().out
        assert "c=2" in out and "2.000" in out

    def test_machine_reports_constraints(self, capsys):
        assert main(["machine", "--n", "1024", "--v", "32"]) == 0
        out = capsys.readouterr().out
        assert "VIOLATED" in out  # tiny N breaks the paper constraints
        assert "suggested G" in out

    def test_vm_engine(self, capsys):
        assert main(["sort", "--n", "4096", "--v", "4", "--b", "64", "--engine", "vm"]) == 0
        assert "page faults" in capsys.readouterr().out


class TestObservabilityFlags:
    BASE = ["sort", "--n", "4096", "--v", "4", "--b", "64"]

    def test_trace_jsonl(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(self.BASE + ["--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace" in out and str(path) in out
        events = read_jsonl(str(path))
        kinds = {e["kind"] for e in events}
        assert {"run_begin", "superstep_begin", "compute_round", "run_end"} <= kinds

    def test_trace_chrome(self, tmp_path):
        path = tmp_path / "trace.json"
        assert main(self.BASE + ["--trace", str(path), "--trace-format", "chrome"]) == 0
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert isinstance(doc, list) and doc

    def test_crosscheck_passes_on_sort(self, capsys):
        assert main(self.BASE + ["--crosscheck"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out
        assert "width histogram" in out

    def test_crosscheck_balanced(self, capsys):
        assert main(self.BASE + ["--balanced", "--crosscheck"]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_trace_par_includes_network_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        args = ["sort", "--n", "4096", "--v", "4", "--p", "2", "--b", "64",
                "--trace", str(path)]
        assert main(args) == 0
        kinds = {e["kind"] for e in read_jsonl(str(path))}
        assert "network_transfer" in kinds
        assert {"superstep_begin", "context_read", "message_write"} <= kinds

    def test_transpose_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        args = ["transpose", "--rows", "32", "--cols", "64", "--v", "4",
                "--b", "32", "--trace", str(path)]
        assert main(args) == 0
        assert read_jsonl(str(path))

    def test_full_width_report_line(self, capsys):
        assert main(self.BASE) == 0
        assert "full-D parallel" in capsys.readouterr().out

    def test_metrics_prometheus_and_json(self, tmp_path, capsys):
        prom = tmp_path / "m.prom"
        assert main(self.BASE + ["--metrics", str(prom)]) == 0
        text = prom.read_text()
        assert "# TYPE repro_parallel_ios_total counter" in text
        assert 'engine="seq-em"' in text
        jpath = tmp_path / "m.json"
        assert main(self.BASE + ["--metrics", str(jpath)]) == 0
        doc = json.loads(jpath.read_text())
        assert doc["repro_runs_total"]["series"][0]["value"] == 1


class TestAnalyzeCommand:
    def _trace(self, tmp_path, extra=()):
        path = tmp_path / "trace.jsonl"
        assert main(["sort", "--n", "4096", "--v", "4", "--b", "64",
                     "--trace", str(path), *extra]) == 0
        return path

    def test_analyze_traced_sort_within_envelope(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        capsys.readouterr()
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-superstep aggregation" in out
        assert "all supersteps within envelope" in out

    def test_analyze_json_output(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        capsys.readouterr()
        assert main(["analyze", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True and doc["supersteps"]

    def test_analyze_tight_envelope_fails(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        assert main(["analyze", str(path), "--envelope", "1.0001"]) == 1

    def test_analyze_bad_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{ not json\n")
        assert main(["analyze", str(bad)]) == 2

    def test_analyze_critical_path(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["sort", "--n", "8192", "--v", "8", "--p", "2",
                     "--b", "64", "--trace", str(path)]) == 0
        report = capsys.readouterr().out
        total = next(
            ln for ln in report.splitlines() if "parallel I/Os" in ln
        ).split(":")[1].split()[0]
        assert main(["analyze", str(path), "--critical-path", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "comm/comp/I/O attribution" in out
        assert "per-lane totals" in out and "r0" in out and "r1" in out
        assert f"= {total} (IOStats run total)" in out
        assert "top-2 slowest rounds" in out


class TestLiveCommands:
    def _trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(["sort", "--n", "4096", "--v", "4", "--b", "64",
                     "--trace", str(path)]) == 0
        return str(path)

    def test_top_once_renders_final_frame(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        capsys.readouterr()
        assert main(["top", path, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top — sample-sort" in out
        assert "status: finished" in out

    def test_top_requires_exactly_one_source(self, capsys):
        assert main(["top"]) == 2
        assert main(["top", "x.jsonl", "--url", "http://h"]) == 2

    def test_serve_metrics_exit_after_run(self, capsys):
        import signal

        old_int = signal.getsignal(signal.SIGINT)
        old_term = signal.getsignal(signal.SIGTERM)
        try:
            assert main(["serve-metrics", "--n", "4096", "--v", "4",
                         "--b", "64", "--port", "0", "--exit-after-run"]) == 0
        finally:
            signal.signal(signal.SIGINT, old_int)
            signal.signal(signal.SIGTERM, old_term)
        out = capsys.readouterr().out
        assert "serving on http://127.0.0.1:" in out
        assert "served sort of 4096 items" in out


class TestBenchCommand:
    def _docs(self, tmp_path, ios=100):
        from repro.obs.bench_store import BenchStore

        store = BenchStore("suite")
        store.record("pt", measured={"parallel_ios": ios})
        return store.write(str(tmp_path))

    def test_compare_identical_ok(self, tmp_path, capsys):
        old = self._docs(tmp_path / "a")
        new = self._docs(tmp_path / "b")
        assert main(["bench", "--compare", old, new]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_perturbed_fails(self, tmp_path, capsys):
        old = self._docs(tmp_path / "a", ios=100)
        new = self._docs(tmp_path / "b", ios=110)
        assert main(["bench", "--compare", old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_io_rtol(self, tmp_path):
        old = self._docs(tmp_path / "a", ios=100)
        new = self._docs(tmp_path / "b", ios=110)
        assert main(["bench", "--compare", old, new, "--io-rtol", "0.2"]) == 0

    def test_compare_invalid_doc_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        good = self._docs(tmp_path)
        assert main(["bench", "--compare", str(bad), good]) == 2

    def test_list_suites(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3_vm_vs_em" in out and "theorem3_scaling" in out

    def test_unknown_suite_exits_2(self, capsys):
        assert main(["bench", "no_such_suite"]) == 2


class TestResilienceFlags:
    """--faults / --checkpoint / --resume, and their error exits (rc 3)."""

    BASE = ["sort", "--n", "4096", "--v", "4", "--b", "64"]

    def _plan(self, tmp_path) -> str:
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 7, "p_transient_read": 0.05, "p_transient_write": 0.05,
            "retry": {"max_retries": 6},
        }))
        return str(path)

    def test_faulted_run_reports_and_completes(self, tmp_path, capsys):
        assert main(self.BASE + ["--faults", self._plan(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "sorted 4096 items: OK" in out
        assert "injected faults" in out and "retries" in out

    def test_fault_metrics_exported(self, tmp_path):
        prom = tmp_path / "m.prom"
        args = self.BASE + ["--faults", self._plan(tmp_path), "--metrics", str(prom)]
        assert main(args) == 0
        text = prom.read_text()
        assert "repro_io_retries_total" in text
        assert "repro_io_faults_total" in text

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        ck = str(tmp_path / "ck")
        assert main(self.BASE + ["--checkpoint", ck]) == 0
        first = capsys.readouterr().out
        import os

        assert any(n.startswith("ckpt_") for n in os.listdir(ck))
        assert main(self.BASE + ["--checkpoint", ck, "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "parallel I/Os" in resumed
        # identical machine line and cost lines — the resumed report is the
        # checkpointed one
        assert [ln for ln in first.splitlines() if "I/Os" in ln] == [
            ln for ln in resumed.splitlines() if "I/Os" in ln
        ]

    def test_missing_plan_file_exits_3(self, tmp_path, capsys):
        rc = main(self.BASE + ["--faults", str(tmp_path / "nope.json")])
        assert rc == 3
        assert "error:" in capsys.readouterr().err

    def test_resume_without_checkpoint_exits_3(self, capsys):
        assert main(self.BASE + ["--resume"]) == 3
        assert "error:" in capsys.readouterr().err

    def test_resume_from_empty_dir_exits_3(self, tmp_path, capsys):
        rc = main(self.BASE + ["--checkpoint", str(tmp_path / "ck"), "--resume"])
        assert rc == 3
        assert "no checkpoint found" in capsys.readouterr().err

    def test_resume_from_corrupt_checkpoint_exits_3(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        assert main(self.BASE + ["--checkpoint", str(ck)]) == 0
        capsys.readouterr()
        newest = sorted(ck.glob("ckpt_*.bin"))[-1]
        blob = newest.read_bytes()
        newest.write_bytes(blob[: len(blob) // 2])  # truncate mid-payload
        assert main(self.BASE + ["--checkpoint", str(ck), "--resume"]) == 3
        assert "truncated" in capsys.readouterr().err

    def test_unsupported_engine_exits_3(self, tmp_path, capsys):
        args = self.BASE + ["--engine", "memory", "--faults", self._plan(tmp_path)]
        assert main(args) == 3
        assert "error:" in capsys.readouterr().err


class TestTuneCommand:
    """repro tune, --profile application, and knob-error exits (rc 2)."""

    TUNE = ["tune", "--n", "2048", "--probe-n", "512", "--reps", "1"]

    def _tuned(self, tmp_path, capsys) -> str:
        path = str(tmp_path / "profile.json")
        assert main(self.TUNE + ["--out", path]) == 0
        capsys.readouterr()
        return path

    def test_tune_writes_valid_profile(self, tmp_path, capsys):
        path = str(tmp_path / "profile.json")
        assert main(self.TUNE + ["--out", path]) == 0
        out = capsys.readouterr().out
        assert "chosen" in out and "apply with" in out
        from repro.tune.profile import validate_profile

        doc = json.loads(open(path).read())
        assert validate_profile(doc) == []
        assert doc["workload"] == {"op": "sort", "n": 2048, "p": 1, "seed": 0}

    def test_tune_json_output(self, tmp_path, capsys):
        path = str(tmp_path / "profile.json")
        assert main(self.TUNE + ["--out", path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "repro-tuned-profile"

    def test_tune_trace_records_decisions(self, tmp_path, capsys):
        path = str(tmp_path / "profile.json")
        trace = str(tmp_path / "t.jsonl")
        assert main(self.TUNE + ["--out", path, "--trace", trace]) == 0
        kinds = [e.get("kind") for e in read_jsonl(trace)]
        assert "tune_begin" in kinds and "tune_probe" in kinds
        assert kinds[-1] == "tune_end"

    def test_list_knobs(self, capsys):
        assert main(["tune", "--list-knobs"]) == 0
        out = capsys.readouterr().out
        assert "| Variable |" in out and "`REPRO_FASTPATH`" in out

    def test_profile_fills_machine_args(self, tmp_path, capsys):
        path = self._tuned(tmp_path, capsys)
        doc = json.loads(open(path).read())
        assert main(["sort", "--n", "2048", "--profile", path]) == 0
        out = capsys.readouterr().out
        assert f"v={doc['machine']['v']}" in out
        assert f"D={doc['machine']['D']}" in out
        assert f"B={doc['machine']['B']}" in out

    def test_explicit_flag_beats_profile(self, tmp_path, capsys):
        path = self._tuned(tmp_path, capsys)
        assert main(["sort", "--n", "2048", "--profile", path, "--v", "16"]) == 0
        assert "v=16" in capsys.readouterr().out

    def test_missing_profile_exits_3(self, tmp_path, capsys):
        rc = main(["sort", "--n", "2048", "--profile", str(tmp_path / "no.json")])
        assert rc == 3
        assert "error:" in capsys.readouterr().err

    def test_invalid_profile_exits_3(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "something-else"}))
        assert main(["sort", "--n", "2048", "--profile", str(bad)]) == 3
        assert "error:" in capsys.readouterr().err


class TestKnobErrors:
    """Malformed REPRO_* values: one-line named diagnostic, exit code 2."""

    BASE = ["sort", "--n", "2048", "--v", "4", "--b", "64"]

    @pytest.mark.parametrize(
        "var,raw",
        [
            ("REPRO_WORKERS", "two"),
            ("REPRO_FASTPATH", "sometimes"),
            ("REPRO_ARENA", "tape"),
            ("REPRO_PREFETCH", "maybe"),
            ("REPRO_SHM_BYTES", "nonsense"),
            ("REPRO_SPILL_QUOTA", "lots"),
        ],
    )
    def test_malformed_knob_exits_2_with_named_error(
        self, monkeypatch, capsys, var, raw
    ):
        monkeypatch.setenv(var, raw)
        assert main(self.BASE) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert var in err and raw in err
        assert "Traceback" not in err
        assert err.count("\n") == 1  # exactly one line

    def test_well_formed_knob_still_runs(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FASTPATH", "auto:16")
        assert main(self.BASE) == 0
        assert "sorted 2048 items: OK" in capsys.readouterr().out


class TestServeBindErrors:
    """Regression: a busy port must yield one named error line and exit 2,
    not a traceback (both the metrics server and the job server)."""

    @pytest.fixture
    def busy_port(self):
        import socket

        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        sock.listen(1)
        try:
            yield sock.getsockname()[1]
        finally:
            sock.close()

    def _assert_one_line_port_error(self, capsys, port):
        err = capsys.readouterr().err
        assert f"port {port} on 127.0.0.1 is already in use" in err
        assert "Traceback" not in err
        assert err.count("\n") == 1

    def test_serve_metrics_port_in_use(self, busy_port, capsys):
        rc = main(["serve-metrics", "--n", "1024", "--v", "4", "--b", "64",
                   "--port", str(busy_port)])
        assert rc == 2
        self._assert_one_line_port_error(capsys, busy_port)

    def test_serve_port_in_use(self, busy_port, capsys, tmp_path):
        rc = main(["serve", "--port", str(busy_port),
                   "--state-dir", str(tmp_path / "state")])
        assert rc == 2
        self._assert_one_line_port_error(capsys, busy_port)


class TestSubmitCommand:
    SPEC = {"op": "sort", "n": 4096, "seed": 1,
            "machine": {"v": 8, "D": 2, "B": 64}}

    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    @pytest.fixture
    def served(self, tmp_path):
        from repro.service.server import JobServer, ServiceCore

        core = ServiceCore(state_dir=str(tmp_path / "state"), pool_size=1)
        server = JobServer(core).start()
        try:
            yield server
        finally:
            core.drain(timeout=60)
            server.close()

    def test_local_run_verifies(self, spec_file, capsys):
        assert main(["submit", spec_file, "--local", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["result"]["ok"] is True
        assert doc["cache"] == "local"

    def test_submit_wait_then_cached_duplicate(self, served, spec_file, capsys):
        assert main(["submit", spec_file, "--url", served.url,
                     "--wait", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["state"] == "done" and first["cache"] == "miss"
        assert main(["submit", spec_file, "--url", served.url,
                     "--wait", "--json"]) == 0
        dup = json.loads(capsys.readouterr().out)
        assert dup["cache"] == "hit"
        assert dup["result"] == first["result"]

    def test_submit_stream_emits_run_end(self, served, spec_file, capsys):
        assert main(["submit", spec_file, "--url", served.url,
                     "--stream", "--json"]) == 0
        kinds = [json.loads(line).get("kind")
                 for line in capsys.readouterr().out.splitlines()
                 if line.startswith("{")]
        assert "run_end" in kinds

    def test_missing_spec_file_exits_2(self, capsys):
        assert main(["submit", "/nonexistent/spec.json"]) == 2
        assert "cannot read spec" in capsys.readouterr().err

    def test_non_json_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        assert main(["submit", str(path)]) == 2
        assert "spec is not JSON" in capsys.readouterr().err

    def test_unreachable_server_exits_3(self, spec_file, capsys):
        assert main(["submit", spec_file,
                     "--url", "http://127.0.0.1:9", "--timeout", "2"]) == 3
        assert "error:" in capsys.readouterr().err

    def test_rejected_spec_exits_2_with_server_error(self, served, tmp_path, capsys):
        path = tmp_path / "bad_spec.json"
        path.write_text(json.dumps({"op": "merge", "n": 0}))
        assert main(["submit", str(path), "--url", served.url]) == 2
        err = capsys.readouterr().err
        assert "server refused the job (400)" in err
