"""Tests for MachineConfig: derived quantities, defaults, and the paper's
constraint checks."""

from __future__ import annotations

import pytest

from repro.cgm.config import MachineConfig
from repro.util.validation import ConfigurationError, ConstraintViolation


class TestConstruction:
    def test_defaults(self):
        cfg = MachineConfig(N=10_000, v=4)
        assert cfg.p == 1 and cfg.D == 1
        assert cfg.M >= cfg.D * cfg.B
        assert cfg.mu == 2500
        assert cfg.h == 2500

    def test_p_must_divide_v(self):
        with pytest.raises(ConfigurationError, match="divide"):
            MachineConfig(N=1000, v=5, p=2)

    def test_p_cannot_exceed_v(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(N=1000, v=2, p=4)

    def test_memory_must_hold_disk_buffers(self):
        with pytest.raises(ConfigurationError, match="M >= D\\*B"):
            MachineConfig(N=1000, v=2, D=4, B=64, M=100)

    def test_positive_parameters(self):
        for bad in (dict(N=0, v=1), dict(N=10, v=0), dict(N=10, v=1, D=0), dict(N=10, v=1, B=0)):
            with pytest.raises(ConfigurationError):
                MachineConfig(**bad)

    def test_with_replaces_fields(self):
        cfg = MachineConfig(N=10_000, v=4)
        cfg2 = cfg.with_(D=3)
        assert cfg2.D == 3 and cfg2.N == cfg.N
        assert cfg.D == 1  # original unchanged

    def test_describe_mentions_key_parameters(self):
        text = MachineConfig(N=100, v=2, D=2, B=16).describe()
        assert "N=100" in text and "D=2" in text


class TestConstraints:
    def test_good_config_passes(self):
        cfg = MachineConfig(N=1 << 16, v=4, D=2, B=64)
        assert cfg.validate(kappa=2.0) == []

    def test_small_N_violates(self):
        cfg = MachineConfig(N=256, v=16, D=2, B=64)
        bad = cfg.validate(kappa=3.0)
        assert bad  # several constraints fail
        assert any("v*D*B" in b or "Lemma 2" in b for b in bad)

    def test_strict_mode_raises(self):
        cfg = MachineConfig(N=256, v=16, D=2, B=64, strict=True)
        with pytest.raises(ConstraintViolation):
            cfg.validate(kappa=3.0)

    def test_explicit_strict_overrides_config(self):
        cfg = MachineConfig(N=256, v=16, D=2, B=64)
        with pytest.raises(ConstraintViolation):
            cfg.validate(kappa=3.0, strict=True)

    def test_constraint_report_structure(self):
        rep = MachineConfig(N=1 << 16, v=4).constraint_report()
        assert all({"ok", "detail"} <= set(d) for d in rep.values())
        assert any("Lemma 2" in k for k in rep)

    def test_balanced_slot_bound(self):
        cfg = MachineConfig(N=1 << 16, v=8, B=64)
        assert cfg.max_balanced_message_items == 2 * ((1 << 16) // 64)
        assert cfg.message_slot_blocks() >= 1

    def test_kappa_dependence(self):
        # N = 4096 = 16^3: passes kappa=3 exactly, fails kappa=3.5
        cfg = MachineConfig(N=4096, v=16, B=1, M=100_000)
        ok3 = cfg.constraint_report(kappa=3.0)["N >= v^kappa (CGM slackness, kappa <= 3)"]
        ok35 = cfg.constraint_report(kappa=3.5)["N >= v^kappa (CGM slackness, kappa <= 3)"]
        assert ok3["ok"] and not ok35["ok"]
