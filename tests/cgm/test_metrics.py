"""Unit tests for the BSP-style cost accounting (CostReport/RoundMetrics)."""

from __future__ import annotations

import pytest

from repro.cgm.metrics import CostReport, RoundMetrics
from repro.pdm.io_stats import IOStats


def io_with(parallel_ios: int) -> IOStats:
    s = IOStats()
    for _ in range(parallel_ios):
        s.record(1, 0, [0], D=1)
    return s


class TestRoundMetrics:
    def test_h_is_max_of_in_out(self):
        m = RoundMetrics(0, h_in=10, h_out=25)
        assert m.h == 25

    def test_defaults(self):
        m = RoundMetrics(3)
        assert m.h == 0 and m.comp_wall_s == 0.0


class TestCostReport:
    def make(self) -> CostReport:
        r = CostReport(engine="t")
        r.add_round(RoundMetrics(0, h_in=5, h_out=8, comm_items=20, cross_items=12, comp_wall_s=0.5))
        r.add_round(RoundMetrics(1, h_in=9, h_out=2, comm_items=10, cross_items=0, comp_wall_s=0.25))
        r.supersteps = 4
        r.io = io_with(100)
        r.io_max = io_with(30)
        return r

    def test_aggregation(self):
        r = self.make()
        assert r.rounds == 2
        assert r.comm_items == 30
        assert r.cross_items == 12
        assert r.h_history == [8, 9]
        assert r.comp_wall_s == pytest.approx(0.75)

    def test_modeled_time_components(self):
        r = self.make()
        assert r.t_comm(g=2.0) == pytest.approx(24.0)
        assert r.t_sync(L=10.0) == pytest.approx(40.0)
        # io_max takes precedence: disks on different processors overlap
        assert r.t_io(G=1.5) == pytest.approx(45.0)
        assert r.modeled_time(g=2.0, G=1.5, L=10.0) == pytest.approx(
            0.75 + 24.0 + 45.0 + 40.0
        )

    def test_t_io_falls_back_to_total(self):
        r = CostReport(engine="t")
        r.io = io_with(7)
        assert r.t_io(G=2.0) == pytest.approx(14.0)

    def test_summary_mentions_key_counters(self):
        text = self.make().summary()
        assert "rounds=2" in text and "parallel_ios=100" in text
