"""Engine driver semantics: superstep isolation, delivery, termination,
differential agreement across all four backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.cgm.engine import InMemoryEngine
from repro.cgm.program import CGMProgram, FunctionalProgram
from repro.em.runner import make_engine
from repro.util.validation import ConfigurationError, SimulationError

from tests.conftest import all_engine_kinds, cfg_for


class EchoRing(CGMProgram):
    """Each proc sends its pid around a ring for `hops` rounds."""

    name = "echo-ring"
    kappa = 1.0

    def __init__(self, hops: int = 3) -> None:
        self.hops = hops

    def setup(self, ctx, pid, cfg, local_input):
        ctx["pid"] = pid
        ctx["token"] = pid
        ctx["trace"] = []

    def round(self, r, ctx, env):
        if r > 0:
            (m,) = env.messages()
            ctx["token"] = m.payload
            ctx["trace"] = ctx["trace"] + [m.payload]
        if r < self.hops:
            env.send((ctx["pid"] + 1) % env.v, ctx["token"])
            return False
        return True

    def finish(self, ctx):
        return ctx["trace"]


class TestDriverSemantics:
    def test_ring_traces(self, small_cfg):
        eng = InMemoryEngine(small_cfg)
        res = eng.run(EchoRing(hops=3), [None] * small_cfg.v)
        v = small_cfg.v
        for pid, trace in enumerate(res.outputs):
            assert trace == [(pid - 1) % v, (pid - 2) % v, (pid - 3) % v]

    def test_superstep_isolation(self):
        """A message sent in round r must NOT be readable by a processor
        simulated later in the same round."""

        class SameRoundProbe(CGMProgram):
            name = "probe"
            kappa = 1.0

            def setup(self, ctx, pid, cfg, local_input):
                ctx["pid"] = pid
                ctx["saw_early"] = False

            def round(self, r, ctx, env):
                if r == 0:
                    if env.messages():
                        ctx["saw_early"] = True  # would prove a leak
                    if ctx["pid"] == 0:
                        env.send(1, "leak?")
                    return False
                return True

            def finish(self, ctx):
                return ctx["saw_early"]

        cfg = MachineConfig(N=1 << 12, v=4)
        for kind in all_engine_kinds():
            res = make_engine(cfg_for(kind, cfg), kind).run(SameRoundProbe(), [None] * 4)
            assert res.outputs == [False] * 4, kind

    def test_wrong_input_count_rejected(self, small_cfg):
        with pytest.raises(ConfigurationError, match="one input slice"):
            InMemoryEngine(small_cfg).run(EchoRing(), [None])

    def test_runaway_program_guarded(self):
        class Forever(CGMProgram):
            name = "forever"
            kappa = 1.0

            def setup(self, ctx, pid, cfg, local_input):
                ctx["pid"] = pid

            def round(self, r, ctx, env):
                env.send(ctx["pid"], "again")
                return False

            def finish(self, ctx):
                return None

        import repro.cgm.engine as engine_mod

        old = engine_mod.MAX_ROUNDS
        engine_mod.MAX_ROUNDS = 20
        try:
            with pytest.raises(SimulationError, match="exceeded"):
                InMemoryEngine(MachineConfig(N=1 << 10, v=2)).run(Forever(), [None] * 2)
        finally:
            engine_mod.MAX_ROUNDS = old

    def test_send_out_of_range_rejected(self):
        def r0(ctx, env):
            env.send(99, "boom")

        prog = FunctionalProgram(
            setup=lambda ctx, pid, cfg, x: None, rounds=[r0], finish=lambda ctx: None
        )
        with pytest.raises(ValueError, match="out of range"):
            InMemoryEngine(MachineConfig(N=1 << 10, v=2)).run(prog, [None] * 2)

    def test_done_with_messages_in_flight_continues(self):
        """All procs report done but one sent a message: the engine must
        run another round to deliver it."""

        class LateSend(CGMProgram):
            name = "late-send"
            kappa = 1.0

            def setup(self, ctx, pid, cfg, local_input):
                ctx["pid"] = pid
                ctx["got"] = False

            def round(self, r, ctx, env):
                for m in env.messages():
                    ctx["got"] = True
                if r == 0 and ctx["pid"] == 0:
                    env.send(1, "late")
                return True  # claims done immediately

            def finish(self, ctx):
                return ctx["got"]

        res = InMemoryEngine(MachineConfig(N=1 << 10, v=2)).run(LateSend(), [None] * 2)
        assert res.outputs[1] is True

    def test_rounds_counted(self, small_cfg):
        res = InMemoryEngine(small_cfg).run(EchoRing(hops=2), [None] * small_cfg.v)
        assert res.report.rounds == 3  # hops rounds + final quiescent round

    def test_h_history_recorded(self, small_cfg):
        res = InMemoryEngine(small_cfg).run(EchoRing(hops=1), [None] * small_cfg.v)
        assert len(res.report.h_history) == res.report.rounds
        assert res.report.h_history[0] >= 1


class TestDifferentialBackends:
    """The same program must produce identical outputs on every backend."""

    @pytest.mark.parametrize("kind", all_engine_kinds())
    def test_ring_everywhere(self, kind):
        cfg = cfg_for(kind, MachineConfig(N=1 << 12, v=8, D=2, B=32))
        res = make_engine(cfg, kind).run(EchoRing(hops=4), [None] * 8)
        ref = InMemoryEngine(cfg.with_(p=cfg.p)).run(EchoRing(hops=4), [None] * 8)
        assert res.outputs == ref.outputs

    @pytest.mark.parametrize("kind", all_engine_kinds())
    @pytest.mark.parametrize("balanced", [False, True])
    def test_numpy_contexts_roundtrip(self, kind, balanced):
        """Contexts with numpy payloads must survive the disk round trip."""

        def r0(ctx, env):
            ctx["arr"] = ctx["arr"] * 2
            env.send((env.pid + 1) % env.v, ctx["arr"][:10])

        def r1(ctx, env):
            (m,) = env.messages()
            ctx["neighbor"] = m.payload

        prog = FunctionalProgram(
            setup=lambda ctx, pid, cfg, x: ctx.update(arr=x),
            rounds=[r0, r1],
            finish=lambda ctx: (ctx["arr"].sum(), ctx["neighbor"].sum()),
            name="roundtrip",
        )
        v = 4
        cfg = cfg_for(kind, MachineConfig(N=1 << 12, v=v, D=2, B=32))
        inputs = [np.arange(100) + 1000 * pid for pid in range(v)]
        res = make_engine(cfg, kind, balanced=balanced).run(prog, list(inputs))
        for pid in range(v):
            expect_arr = (inputs[pid] * 2).sum()
            expect_nb = (inputs[(pid - 1) % v] * 2)[:10].sum()
            assert res.outputs[pid] == (expect_arr, expect_nb), (kind, balanced)


class TestEMAccounting:
    def test_seq_engine_counts_io(self, small_cfg):
        res = make_engine(small_cfg, "seq").run(EchoRing(hops=2), [None] * small_cfg.v)
        assert res.report.io.parallel_ios > 0
        assert res.report.context_blocks_io > 0
        assert res.report.message_blocks_io > 0

    def test_in_memory_engine_no_io(self, small_cfg):
        res = InMemoryEngine(small_cfg).run(EchoRing(hops=2), [None] * small_cfg.v)
        assert res.report.io.parallel_ios == 0

    def test_par_engine_supersteps_blow_up(self):
        """Lemma 4: each CGM round costs v/p real supersteps."""
        cfg = MachineConfig(N=1 << 12, v=8, p=2, D=1, B=32)
        res = make_engine(cfg, "par").run(EchoRing(hops=1), [None] * 8)
        assert res.report.supersteps == res.report.rounds * (8 // 2)

    def test_par_engine_cross_traffic(self):
        cfg = MachineConfig(N=1 << 12, v=8, p=4, D=1, B=32)
        res = make_engine(cfg, "par").run(EchoRing(hops=1), [None] * 8)
        # ring neighbors: half the hops cross real-processor boundaries
        assert 0 < res.report.cross_items <= res.report.comm_items

    def test_vm_engine_counts_faults(self):
        cfg = MachineConfig(N=1 << 14, v=8, M=2048)  # tiny memory
        res = make_engine(cfg, "vm").run(EchoRing(hops=2), [None] * 8)
        assert res.report.page_faults > 0

    def test_balanced_doubles_supersteps(self, small_cfg):
        plain = make_engine(small_cfg, "seq").run(EchoRing(hops=2), [None] * small_cfg.v)
        bal = make_engine(small_cfg, "seq", balanced=True).run(
            EchoRing(hops=2), [None] * small_cfg.v
        )
        assert bal.report.supersteps == 2 * plain.report.supersteps

    def test_seq_requires_p1(self):
        cfg = MachineConfig(N=1 << 12, v=8, p=2)
        with pytest.raises(ConfigurationError, match="p=1"):
            make_engine(cfg, "seq")

    def test_unknown_engine_kind(self, small_cfg):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            make_engine(small_cfg, "quantum")
