"""Tests for Euler tour, tree measures, LCA, and expression evaluation."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from networkx.algorithms.lowest_common_ancestors import (
    tree_all_pairs_lowest_common_ancestor,
)

from repro.algorithms.graphs import (
    euler_tour_positions,
    expression_eval,
    lowest_common_ancestors,
    range_min_queries,
    scatter_reduce,
    tree_measures,
)
from repro.algorithms.graphs.tree_contraction import (
    OP_ADD,
    OP_MUL,
    eval_expression_direct,
)
from repro.cgm.config import MachineConfig


def random_tree(n: int, seed: int) -> nx.Graph:
    return nx.random_labeled_tree(n, seed=seed)


def tree_cfg(n: int, v: int = 4) -> MachineConfig:
    return MachineConfig(N=2 * (n - 1), v=v, B=16)


class TestEulerTour:
    def test_positions_are_a_permutation(self):
        n = 50
        edges = np.array(random_tree(n, 3).edges())
        res = euler_tour_positions(edges, n, tree_cfg(n), root=0, engine="memory")
        assert sorted(res.values.tolist()) == list(range(2 * (n - 1)))

    def test_tour_starts_at_root(self):
        n = 30
        edges = np.array(random_tree(n, 4).edges())
        res = euler_tour_positions(edges, n, tree_cfg(n), root=0, engine="memory")
        pos = res.values
        first = int(np.argmin(pos))  # directed edge at position 0
        tails = edges[first // 2][0] if first % 2 == 0 else edges[first // 2][1]
        assert tails == 0

    def test_path_graph_tour(self):
        """For a path 0-1-2, the tour is fully determined."""
        edges = np.array([[0, 1], [1, 2]])
        res = euler_tour_positions(edges, 3, MachineConfig(N=4, v=2, B=8), engine="memory")
        pos = res.values
        # 0->1 (id 0), 1->2 (id 2), 2->1 (id 3), 1->0 (id 1)
        assert pos.tolist() == [0, 3, 1, 2]

    @pytest.mark.parametrize("engine", ["memory", "seq"])
    def test_engines_agree(self, engine):
        n = 40
        edges = np.array(random_tree(n, 5).edges())
        res = euler_tour_positions(edges, n, tree_cfg(n), engine=engine)
        ref = euler_tour_positions(edges, n, tree_cfg(n), engine="memory")
        assert np.array_equal(res.values, ref.values)


class TestTreeMeasures:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_against_networkx(self, seed):
        n = 64
        T = random_tree(n, seed)
        edges = np.array(T.edges())
        res = tree_measures(edges, n, tree_cfg(n), root=0, engine="memory")
        vals = res.values
        depth_nx = nx.single_source_shortest_path_length(T, 0)
        assert all(vals["depth"][u] == depth_nx[u] for u in range(n))
        assert sorted(vals["preorder"].tolist()) == list(range(n))
        for u in range(n):
            p = vals["parent"][u]
            if p >= 0:
                assert vals["preorder"][p] < vals["preorder"][u]
                assert vals["depth"][u] == vals["depth"][p] + 1
        # subtree sizes by bottom-up accumulation
        sz = np.ones(n, dtype=int)
        for u in sorted(range(n), key=lambda x: -vals["depth"][x]):
            p = vals["parent"][u]
            if p >= 0:
                sz[p] += sz[u]
        assert np.array_equal(sz, vals["size"])

    def test_star_graph(self):
        n = 20
        edges = np.array([[0, i] for i in range(1, n)])
        res = tree_measures(edges, n, tree_cfg(n), engine="memory")
        assert (res.values["depth"][1:] == 1).all()
        assert res.values["size"][0] == n
        assert (res.values["size"][1:] == 1).all()

    def test_path_graph_depths(self):
        n = 33
        edges = np.array([[i, i + 1] for i in range(n - 1)])
        res = tree_measures(edges, n, tree_cfg(n), engine="memory")
        assert np.array_equal(res.values["depth"], np.arange(n))
        assert np.array_equal(res.values["preorder"], np.arange(n))


class TestScatterReduceAndRMQ:
    def test_scatter_reduce_ops(self, rng):
        rows = np.column_stack(
            (rng.integers(0, 30, 200), rng.integers(-50, 50, 200))
        )
        cfg = MachineConfig(N=30, v=4, B=8)
        for op, fn, ident in (
            ("min", np.minimum, np.iinfo(np.int64).max),
            ("max", np.maximum, np.iinfo(np.int64).min),
            ("sum", np.add, 0),
        ):
            from repro.algorithms.graphs import scatter_reduce

            out = scatter_reduce(rows, 30, cfg, op=op, engine="memory")
            expect = np.full(30, ident, dtype=np.int64)
            fn.at(expect, rows[:, 0], rows[:, 1])
            assert np.array_equal(out.values, expect), op

    def test_rmq_exhaustive_small(self):
        vals = np.array([5, 3, 8, 3, 9, 1, 7], dtype=np.int64)
        queries = []
        qid = 0
        for lo in range(7):
            for hi in range(lo, 7):
                queries.append((qid, lo, hi))
                qid += 1
        cfg = MachineConfig(N=7, v=7, B=8)
        res = range_min_queries(vals, np.array(queries), cfg, engine="memory")
        for q, mv, _pay in res.values:
            _, lo, hi = queries[q]
            assert mv == vals[lo : hi + 1].min()

    def test_rmq_payload_argmin_leftmost(self, rng):
        vals = np.array([2, 1, 1, 4], dtype=np.int64)
        res = range_min_queries(
            vals,
            np.array([[0, 0, 3]]),
            MachineConfig(N=4, v=2, B=8),
            payload=np.arange(4) * 10,
            engine="memory",
        )
        assert res.values[0].tolist() == [0, 1, 10]  # leftmost of the two 1s

    @pytest.mark.parametrize("engine", ["memory", "seq"])
    def test_rmq_random(self, engine, rng):
        n = 300
        vals = rng.integers(0, 10_000, n)
        qs = []
        for qid in range(120):
            lo = int(rng.integers(0, n))
            hi = int(rng.integers(lo, n))
            qs.append((qid, lo, hi))
        res = range_min_queries(
            vals, np.array(qs), MachineConfig(N=n, v=8, B=16), engine=engine
        )
        for q, mv, _ in res.values:
            _, lo, hi = qs[q]
            assert mv == vals[lo : hi + 1].min()


class TestLCA:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_against_networkx(self, seed, rng):
        n = 70
        T = random_tree(n, seed)
        edges = np.array(T.edges())
        queries = rng.integers(0, n, (50, 2))
        res = lowest_common_ancestors(
            edges, queries, n, tree_cfg(n), root=0, engine="memory"
        )
        DT = nx.bfs_tree(T, 0)
        pairs = [(int(u), int(w)) for u, w in queries]
        expect = dict(tree_all_pairs_lowest_common_ancestor(DT, root=0, pairs=pairs))
        for (u, w), got in zip(pairs, res.values):
            assert expect[(u, w)] == got

    def test_lca_with_self_and_root(self):
        edges = np.array([[0, 1], [1, 2], [0, 3]])
        queries = np.array([[2, 2], [2, 3], [0, 2], [1, 2]])
        res = lowest_common_ancestors(
            edges, queries, 4, MachineConfig(N=6, v=2, B=8), engine="memory"
        )
        assert res.values.tolist() == [2, 0, 0, 1]


def random_expr_tree(n, rng):
    parent = np.full(n, -1, dtype=np.int64)
    op = rng.integers(0, 2, n)
    val = rng.uniform(0.5, 1.5, n)
    child_count = np.zeros(n, dtype=int)
    avail = [0]
    for u in range(1, n):
        k = int(rng.integers(0, len(avail)))
        p = avail[k]
        parent[u] = p
        child_count[p] += 1
        if child_count[p] == 2:
            avail.pop(k)
        avail.append(u)
    return parent, op, val


class TestExpressionEval:
    @pytest.mark.parametrize("n,v", [(1, 2), (7, 2), (150, 4), (601, 8)])
    def test_random_trees(self, n, v, rng):
        parent, op, val = random_expr_tree(n, rng)
        expect = eval_expression_direct(parent, op, val, 0)
        cfg = MachineConfig(N=n, v=v, B=16)
        res = expression_eval(parent, op, val, cfg, engine="memory")
        assert res.values == pytest.approx(expect, rel=1e-9)

    def test_seq_engine_agrees(self, rng):
        parent, op, val = random_expr_tree(200, rng)
        cfg = MachineConfig(N=200, v=4, B=16)
        a = expression_eval(parent, op, val, cfg, engine="memory")
        b = expression_eval(parent, op, val, cfg, engine="seq")
        assert a.values == pytest.approx(b.values, rel=1e-12)

    def test_pure_chain_compress(self):
        """Caterpillar chain: rake alone would take O(n) phases; compress
        must bring it to O(log)."""
        n = 256
        parent = np.arange(-1, n - 1, dtype=np.int64)
        op = np.full(n, OP_ADD)
        val = np.ones(n)
        cfg = MachineConfig(N=n, v=4, B=16)
        res = expression_eval(parent, op, val, cfg, engine="memory")
        assert res.values == pytest.approx(float(n) - (n - 1))  # leaf value 1
        # chain of adds with unit leaf: value = 1 at the single leaf
        assert res.reports[0].rounds < n // 2

    def test_all_multiply(self, rng):
        n = 63
        parent, _, _ = random_expr_tree(n, rng)
        op = np.full(n, OP_MUL)
        val = rng.uniform(0.9, 1.1, n)
        expect = eval_expression_direct(parent, op, val, 0)
        res = expression_eval(parent, op, val, MachineConfig(N=n, v=4, B=16), engine="memory")
        assert res.values == pytest.approx(expect, rel=1e-9)
