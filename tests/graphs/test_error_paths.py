"""Error-path and edge-case tests for the graph building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.graphs import (
    euler_tour_positions,
    list_rank,
    range_min_queries,
    scatter_reduce,
)
from repro.cgm.config import MachineConfig
from repro.util.validation import ConfigurationError, SimulationError


class TestScatterReduceEdges:
    def test_bad_op_rejected(self):
        from repro.algorithms.graphs.scatter import ScatterReduce

        with pytest.raises(ConfigurationError, match="op must be"):
            ScatterReduce(op="median")

    def test_empty_rows(self):
        cfg = MachineConfig(N=16, v=4, B=8)
        res = scatter_reduce(np.zeros((0, 2), dtype=np.int64), 16, cfg, "sum", "memory")
        assert np.array_equal(res.values, np.zeros(16, dtype=np.int64))

    def test_single_key_all_values(self, rng):
        rows = np.column_stack((np.zeros(50, dtype=np.int64), rng.integers(0, 10, 50)))
        cfg = MachineConfig(N=4, v=2, B=8)
        res = scatter_reduce(rows, 4, cfg, "sum", "memory")
        assert res.values[0] == rows[:, 1].sum()
        assert (res.values[1:] == 0).all()


class TestRMQEdges:
    def test_out_of_range_query_rejected(self):
        vals = np.arange(10, dtype=np.int64)
        queries = np.array([[0, 3, 12]])  # r beyond the array
        with pytest.raises(SimulationError, match="out of range"):
            range_min_queries(vals, queries, MachineConfig(N=10, v=2, B=8), engine="memory")

    def test_single_element_queries(self):
        vals = np.array([5, 2, 9], dtype=np.int64)
        queries = np.array([[0, 0, 0], [1, 2, 2]])
        res = range_min_queries(vals, queries, MachineConfig(N=3, v=3, B=8), engine="memory")
        assert res.values[0, 1] == 5
        assert res.values[1, 1] == 9

    def test_no_queries(self):
        vals = np.arange(10, dtype=np.int64)
        res = range_min_queries(
            vals, np.zeros((0, 3), dtype=np.int64), MachineConfig(N=10, v=2, B=8), engine="memory"
        )
        assert res.values.size == 0

    def test_whole_array_query(self, rng):
        vals = rng.integers(0, 1000, 64)
        res = range_min_queries(
            vals, np.array([[0, 0, 63]]), MachineConfig(N=64, v=8, B=8), engine="memory"
        )
        assert res.values[0, 1] == vals.min()


class TestEulerEdges:
    def test_single_edge_tree(self):
        edges = np.array([[0, 1]])
        res = euler_tour_positions(edges, 2, MachineConfig(N=2, v=2, B=8), engine="memory")
        assert sorted(res.values.tolist()) == [0, 1]
        assert res.values[0] == 0  # 0->1 first from root 0

    def test_no_edges_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one edge"):
            euler_tour_positions(
                np.zeros((0, 2), dtype=np.int64), 3, MachineConfig(N=4, v=2, B=8), engine="memory"
            )

    def test_disconnected_forest_detected(self):
        # two disjoint edges: the tour never closes into one list
        edges = np.array([[0, 1], [2, 3]])
        with pytest.raises(SimulationError):
            euler_tour_positions(edges, 4, MachineConfig(N=4, v=2, B=8), engine="memory")

    def test_nonzero_root(self):
        edges = np.array([[0, 1], [1, 2]])
        res = euler_tour_positions(
            edges, 3, MachineConfig(N=4, v=2, B=8), root=2, engine="memory"
        )
        pos = res.values
        # first edge of the tour leaves vertex 2: directed id 3 (2 -> 1)
        assert pos[3] == 0


class TestListRankEdges:
    def test_weights_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            list_rank(
                np.array([1, -1], dtype=np.int64),
                MachineConfig(N=2, v=2, B=8),
                weights=np.ones(3),
                engine="memory",
            )

    def test_two_node_list(self):
        succ = np.array([1, -1], dtype=np.int64)
        res = list_rank(succ, MachineConfig(N=2, v=2, B=8), engine="memory")
        assert res.values.tolist() == [1.0, 0.0]

    def test_zero_weights_all_zero_ranks(self):
        succ = np.array([1, 2, -1], dtype=np.int64)
        res = list_rank(
            succ, MachineConfig(N=3, v=1, B=8), weights=np.zeros(3), engine="memory"
        )
        assert (res.values == 0).all()
