"""Tests for CGM list ranking (Group C row 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.graphs import list_rank
from repro.cgm.config import MachineConfig
from repro.util.validation import SimulationError

from tests.conftest import all_engine_kinds, cfg_for


def random_list(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """A random single linked list over ids 0..n-1; returns (succ, order)."""
    order = np.random.default_rng(seed).permutation(n)
    succ = np.full(n, -1, dtype=np.int64)
    for a, b in zip(order[:-1], order[1:]):
        succ[a] = b
    return succ, order


def expected_ranks(order: np.ndarray) -> np.ndarray:
    n = order.size
    out = np.empty(n)
    for i, node in enumerate(order):
        out[node] = n - 1 - i
    return out


class TestListRanking:
    @pytest.mark.parametrize("kind", all_engine_kinds())
    def test_distance_to_tail_all_engines(self, kind):
        n = 400
        succ, order = random_list(n, seed=1)
        cfg = cfg_for(kind, MachineConfig(N=n, v=8, B=16))
        res = list_rank(succ, cfg, engine=kind)
        assert np.array_equal(res.values, expected_ranks(order))

    def test_identity_ordered_list(self):
        n = 128
        succ = np.arange(1, n + 1, dtype=np.int64)
        succ[-1] = -1
        res = list_rank(succ, MachineConfig(N=n, v=4, B=16), engine="memory")
        assert np.array_equal(res.values, np.arange(n)[::-1])

    def test_weighted_suffix_sums(self):
        n = 100
        succ, order = random_list(n, seed=3)
        rng = np.random.default_rng(5)
        w = rng.uniform(-2, 2, n)
        res = list_rank(succ, MachineConfig(N=n, v=4, B=16), weights=w, engine="memory")
        suffix = np.empty(n)
        acc = 0.0
        for node in order[::-1]:
            acc += w[node]
            suffix[node] = acc
        assert np.allclose(res.values, suffix)

    def test_tiny_lists(self):
        for n in (1, 2, 3):
            succ = np.arange(1, n + 1, dtype=np.int64)
            succ[-1] = -1
            res = list_rank(succ, MachineConfig(N=max(n, 2), v=2, B=8)
                            if n >= 2 else MachineConfig(N=2, v=2, B=8),
                            engine="memory") if n >= 2 else None
            if res is not None:
                assert np.array_equal(res.values[:n], np.arange(n)[::-1])

    def test_contraction_round_count_logarithmic(self):
        """Rounds grow ~log(v-fold contraction), not linearly with n."""
        rounds = {}
        for n in (256, 1024, 4096):
            succ, _ = random_list(n, seed=7)
            res = list_rank(succ, MachineConfig(N=n, v=8, B=32), engine="memory")
            rounds[n] = res.total_rounds
        # 16x more data -> at most ~2.5x more rounds (log-ish growth)
        assert rounds[4096] <= 2.5 * rounds[256]

    def test_cycle_detected(self):
        # v=1 gathers immediately, so malformed input is diagnosed cleanly
        succ = np.array([1, 2, 0, -1], dtype=np.int64)  # 0-1-2 form a cycle
        with pytest.raises(SimulationError, match="cycle"):
            list_rank(succ, MachineConfig(N=4, v=1, B=8), engine="memory")

    def test_two_lists_detected(self):
        succ = np.array([1, -1, 3, -1], dtype=np.int64)
        with pytest.raises(SimulationError, match="heads"):
            list_rank(succ, MachineConfig(N=4, v=1, B=8), engine="memory")

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), v=st.sampled_from([2, 4, 8, 16]))
    def test_ranking_property(self, seed, v):
        n = 300
        succ, order = random_list(n, seed)
        res = list_rank(succ, MachineConfig(N=n, v=v, B=16, seed=seed), engine="memory")
        assert np.array_equal(res.values, expected_ranks(order))

    def test_deterministic_across_engines(self):
        """Same seed -> identical coin flips -> identical contraction."""
        n = 300
        succ, _ = random_list(n, seed=9)
        cfg = MachineConfig(N=n, v=4, B=16, seed=42)
        a = list_rank(succ, cfg, engine="memory")
        b = list_rank(succ, cfg, engine="seq")
        assert np.array_equal(a.values, b.values)
        assert a.total_rounds == b.total_rounds
