"""Tests for connected components, spanning forest, biconnectivity, and
ear decomposition against networkx references."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.graphs import (
    biconnected_components,
    connected_components,
    ear_decomposition,
    low_high,
    spanning_forest,
)
from repro.cgm.config import MachineConfig
from repro.util.validation import ConfigurationError

from tests.conftest import all_engine_kinds, cfg_for


def connected_random_graph(n: int, m: int, seed: int) -> nx.Graph:
    G = nx.gnm_random_graph(n, m, seed=seed)
    comps = list(nx.connected_components(G))
    for a, b in zip(comps, comps[1:]):
        G.add_edge(min(a), min(b))
    return G


def biconnected_random_graph(n: int, extra: int, seed: int) -> nx.Graph:
    G = nx.cycle_graph(n)
    rng = np.random.default_rng(seed)
    while extra > 0:
        a, b = map(int, rng.integers(0, n, 2))
        if a != b and not G.has_edge(a, b):
            G.add_edge(a, b)
            extra -= 1
    assert nx.is_biconnected(G)
    return G


class TestConnectedComponents:
    @pytest.mark.parametrize("kind", all_engine_kinds())
    def test_engines_agree_with_networkx(self, kind):
        n = 60
        G = nx.gnm_random_graph(n, 50, seed=2)  # several components
        edges = np.array(G.edges())
        cfg = cfg_for(kind, MachineConfig(N=n, v=4, B=16))
        res = connected_components(edges, n, cfg, engine=kind)
        for cc in nx.connected_components(G):
            assert {res.values[u] for u in cc} == {min(cc)}

    @pytest.mark.parametrize("seed", range(6))
    def test_many_seeds(self, seed):
        n = 48
        G = connected_random_graph(n, 70, seed)
        edges = np.array(G.edges())
        res = connected_components(edges, n, MachineConfig(N=n, v=4, B=16), engine="memory")
        assert (res.values == 0).all()  # single component, min id 0

    def test_no_edges_all_singletons(self):
        n = 16
        res = connected_components(
            np.zeros((0, 2), dtype=np.int64), n, MachineConfig(N=n, v=4, B=8), engine="memory"
        )
        assert np.array_equal(res.values, np.arange(n))
        assert res.extra["forest"] == []

    def test_parallel_and_self_edges_tolerated(self):
        n = 6
        edges = np.array([[0, 1], [1, 0], [2, 2], [3, 4]])
        res = connected_components(edges, n, MachineConfig(N=n, v=2, B=8), engine="memory")
        assert res.values.tolist() == [0, 0, 2, 3, 3, 5]

    @pytest.mark.parametrize("seed", range(8))
    def test_forest_is_spanning_forest(self, seed):
        n = 40
        G = connected_random_graph(n, 55, seed)
        edges = np.array(G.edges())
        res = spanning_forest(edges, n, MachineConfig(N=n, v=4, B=16), engine="memory")
        F = nx.Graph()
        F.add_nodes_from(range(n))
        F.add_edges_from(edges[res.values])
        assert nx.is_forest(F)
        assert nx.number_connected_components(F) == nx.number_connected_components(G)

    def test_disconnected_forest(self):
        edges = np.array([[0, 1], [1, 2], [3, 4]])
        res = spanning_forest(edges, 6, MachineConfig(N=6, v=2, B=8), engine="memory")
        assert len(res.values) == 3  # 2 + 1 tree edges; vertex 5 isolated


class TestLowHigh:
    def test_low_high_on_cycle_with_chord(self):
        # cycle 0-1-2-3-0 plus chord 1-3
        G = nx.cycle_graph(4)
        G.add_edge(1, 3)
        edges = np.array(G.edges())
        res = low_high(edges, 4, MachineConfig(N=4, v=2, B=8), engine="memory")
        # low/high are in preorder space; sanity: low <= high
        assert (res.values["low"] <= res.values["high"]).all()
        # the root's subtree reaches everything
        assert res.values["low"][0] == 0

    def test_requires_connected(self):
        edges = np.array([[0, 1], [2, 3]])
        with pytest.raises(ConfigurationError, match="connected"):
            low_high(edges, 4, MachineConfig(N=4, v=2, B=8), engine="memory")


class TestBiconnectedComponents:
    @pytest.mark.parametrize("seed", range(6))
    def test_partition_matches_networkx(self, seed):
        n = 36
        G = connected_random_graph(n, 50, seed)
        edges = np.array(G.edges())
        res = biconnected_components(edges, n, MachineConfig(N=n, v=4, B=16), engine="memory")
        ours = {
            frozenset((int(a), int(b))): res.values[i]
            for i, (a, b) in enumerate(edges)
        }
        nx_groups = list(nx.biconnected_component_edges(G))
        for group in nx_groups:
            assert len({ours[frozenset(e)] for e in group}) == 1
        reps = [ours[frozenset(next(iter(g)))] for g in nx_groups]
        assert len(set(reps)) == len(nx_groups)

    @pytest.mark.parametrize("seed", range(6))
    def test_articulation_points_and_bridges(self, seed):
        n = 36
        G = connected_random_graph(n, 44, seed)
        edges = np.array(G.edges())
        res = biconnected_components(edges, n, MachineConfig(N=n, v=4, B=16), engine="memory")
        assert set(res.extra["articulation_points"]) == set(nx.articulation_points(G))
        assert {frozenset(map(int, edges[i])) for i in res.extra["bridges"]} == {
            frozenset(e) for e in nx.bridges(G)
        }

    def test_tree_every_edge_its_own_component(self):
        n = 12
        T = nx.random_labeled_tree(n, seed=4)
        edges = np.array(T.edges())
        res = biconnected_components(edges, n, MachineConfig(N=n, v=2, B=8), engine="memory")
        assert len(set(res.values.tolist())) == n - 1
        assert len(res.extra["bridges"]) == n - 1

    def test_cycle_single_component(self):
        n = 10
        edges = np.array(nx.cycle_graph(n).edges())
        res = biconnected_components(edges, n, MachineConfig(N=n, v=2, B=8), engine="memory")
        assert len(set(res.values.tolist())) == 1
        assert res.extra["articulation_points"] == []

    def test_seq_engine_agrees(self):
        n = 30
        G = connected_random_graph(n, 40, 3)
        edges = np.array(G.edges())
        cfg = MachineConfig(N=n, v=4, B=16)
        a = biconnected_components(edges, n, cfg, engine="memory")
        b = biconnected_components(edges, n, cfg, engine="seq")
        # partitions equal up to labeling: compare co-membership
        for i in range(len(edges)):
            for j in range(i + 1, len(edges)):
                assert (a.values[i] == a.values[j]) == (b.values[i] == b.values[j])


class TestEarDecomposition:
    @pytest.mark.parametrize("seed", [1, 3, 5])
    def test_ear_structure(self, seed):
        n = 20
        G = biconnected_random_graph(n, 10, seed)
        edges = np.array(G.edges())
        res = ear_decomposition(edges, n, MachineConfig(N=n, v=4, B=16), engine="memory")
        ear = res.values
        E = edges.shape[0]
        # number of ears = E - n + 1
        assert len(set(ear.tolist())) == E - n + 1
        # each ear induces max degree 2 (path or cycle)
        for k in set(ear.tolist()):
            H = nx.MultiGraph()
            H.add_edges_from(edges[ear == k])
            assert max(d for _, d in H.degree()) <= 2

    def test_ear_zero_is_a_cycle(self):
        n = 16
        G = biconnected_random_graph(n, 8, seed=2)
        edges = np.array(G.edges())
        res = ear_decomposition(edges, n, MachineConfig(N=n, v=4, B=16), engine="memory")
        first = edges[res.values == 0]
        H = nx.Graph()
        H.add_edges_from(first)
        assert all(d == 2 for _, d in H.degree())  # a simple cycle

    def test_bridge_rejected(self):
        edges = np.array([[0, 1], [1, 2], [2, 0], [2, 3]])  # 2-3 is a bridge
        with pytest.raises(ConfigurationError, match="bridge|biconnected"):
            ear_decomposition(edges, 4, MachineConfig(N=4, v=2, B=8), engine="memory")

    def test_pure_cycle_one_ear(self):
        n = 8
        edges = np.array(nx.cycle_graph(n).edges())
        res = ear_decomposition(edges, n, MachineConfig(N=n, v=2, B=8), engine="memory")
        assert set(res.values.tolist()) == {0}
