"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.cgm.config import MachineConfig

# Deterministic property testing: examples are derived from the test body
# (derandomize), not a per-run entropy source, so CI and local runs explore
# the same cases and there are no flaky examples.  Select a different
# profile with HYPOTHESIS_PROFILE if exploratory fuzzing is wanted.
settings.register_profile(
    "repro-deterministic", derandomize=True, deadline=None, max_examples=60
)
settings.register_profile("repro-explore", deadline=None, max_examples=200)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro-deterministic"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_cfg() -> MachineConfig:
    """A machine comfortably inside every paper constraint."""
    return MachineConfig(N=1 << 14, v=8, D=2, B=64)


def all_engine_kinds() -> list[str]:
    return ["memory", "seq", "vm", "par"]


def cfg_for(kind: str, base: MachineConfig) -> MachineConfig:
    """Adapt a config to an engine kind (par needs p > 1)."""
    if kind == "par":
        return base.with_(p=max(2, min(4, base.v)))
    return base
