"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_cfg() -> MachineConfig:
    """A machine comfortably inside every paper constraint."""
    return MachineConfig(N=1 << 14, v=8, D=2, B=64)


def all_engine_kinds() -> list[str]:
    return ["memory", "seq", "vm", "par"]


def cfg_for(kind: str, base: MachineConfig) -> MachineConfig:
    """Adapt a config to an engine kind (par needs p > 1)."""
    if kind == "par":
        return base.with_(p=max(2, min(4, base.v)))
    return base
