"""Tests for the cache-memory extension (Section 5)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cache.cache_sim import CacheSim, cache_log_term, tuned_vs_naive_traversal
from repro.util.validation import ConfigurationError


class TestCacheSim:
    def test_sequential_scan_compulsory_misses_only(self):
        c = CacheSim(M_I=1024, B_I=16)
        c.access_range(0, 512)
        assert c.misses == 512 // 16

    def test_repeat_scan_hits_when_fits(self):
        c = CacheSim(M_I=1024, B_I=16)
        c.access_range(0, 512)
        before = c.misses
        c.access_range(0, 512)
        assert c.misses == before

    def test_cyclic_scan_thrashes_when_too_big(self):
        c = CacheSim(M_I=256, B_I=16)  # 16 lines
        for _ in range(3):
            c.access_range(0, 512)  # 32 lines
        assert c.misses == 3 * 32

    def test_set_associativity_conflict_misses(self):
        """Direct-mapped-ish cache: two lines mapping to the same set
        evict each other even though the cache has room overall."""
        c = CacheSim(M_I=64, B_I=8, n_sets=8)  # 1 way per set
        a, b = 0, 8 * 8  # same set (line 0 and line 8, 8 sets)
        for _ in range(4):
            c.access(a)
            c.access(b)
        assert c.misses == 8

    def test_fully_associative_no_conflicts(self):
        c = CacheSim(M_I=64, B_I=8, n_sets=1)
        a, b = 0, 64
        for _ in range(4):
            c.access(a)
            c.access(b)
        assert c.misses == 2

    def test_access_indices_trace(self):
        c = CacheSim(M_I=128, B_I=8)
        misses = c.access_indices(np.array([0, 1, 2, 100, 101, 0]))
        assert misses == 2

    def test_miss_rate(self):
        c = CacheSim(M_I=1024, B_I=16)
        c.access_range(0, 16)
        assert c.miss_rate == pytest.approx(1.0)
        c.access_range(0, 16)
        assert c.miss_rate == pytest.approx(0.5)

    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            CacheSim(M_I=4, B_I=8)
        with pytest.raises(ConfigurationError):
            CacheSim(M_I=8, B_I=0)


class TestCacheTheory:
    def test_log_term_collapses_at_surface(self):
        """(M_I/B_I)^c = N  =>  log term == c exactly."""
        B_I, c = 8, 2.0
        M_I = 8 * 64          # M_I/B_I = 64
        N = int((M_I / B_I) ** c * B_I)  # so log_{64}(N/B_I) = 2
        assert cache_log_term(N, M_I, B_I) == pytest.approx(c)

    def test_log_term_grows_for_tiny_cache(self):
        assert cache_log_term(1 << 24, 64, 16) > cache_log_term(1 << 24, 4096, 16)

    def test_degenerate_cache_infinite(self):
        assert math.isinf(cache_log_term(1024, 8, 8))

    def test_tuned_beats_naive(self):
        """The paper's suggestion: virtual-processor-sized working sets
        control cache faults; a cache-oblivious interleaved sweep thrashes."""
        out = tuned_vs_naive_traversal(N=1 << 15, M_I=1 << 10, B_I=16)
        assert out["tuned"] < out["naive"] / 2
        # tuned is within a small factor of compulsory misses
        assert out["tuned"] <= 4 * out["compulsory"]
