"""CheckpointManager: atomic save/load, pruning, and corruption refusal."""

from __future__ import annotations

import json
import os

import pytest

from repro.faults.checkpoint import MAGIC, CheckpointError, CheckpointManager

META = {"engine": "seq-em", "program": "sample-sort", "seed": 1}
SNAP = {"round": 2, "payload": list(range(100)), "blob": b"\x00" * 257}


def write_one(tmp_path, round_no=2, snap=SNAP, meta=META) -> CheckpointManager:
    cm = CheckpointManager(str(tmp_path / "ck"))
    cm.save(round_no, snap, meta)
    return cm


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        cm = write_one(tmp_path)
        header, snap = cm.load(META)
        assert header["round"] == 2
        assert header["meta"] == META
        assert snap == SNAP

    def test_load_without_meta_skips_fingerprint_check(self, tmp_path):
        cm = write_one(tmp_path)
        _, snap = cm.load()
        assert snap == SNAP

    def test_filenames_sort_by_round(self, tmp_path):
        cm = CheckpointManager(str(tmp_path / "ck"), keep=10)
        # round -1 (the post-setup initial checkpoint) must sort first
        for r in (-1, 0, 1, 2):
            cm.save(r, {"round": r}, META)
        assert [os.path.basename(p) for p in cm._snapshots()] == [
            "ckpt_000000.bin", "ckpt_000001.bin",
            "ckpt_000002.bin", "ckpt_000003.bin",
        ]
        header, snap = cm.load(META)
        assert header["round"] == 2 and snap["round"] == 2

    def test_no_tmp_files_left_behind(self, tmp_path):
        cm = write_one(tmp_path)
        assert not [n for n in os.listdir(cm.directory) if n.endswith(".tmp")]

    def test_prune_keeps_newest(self, tmp_path):
        cm = CheckpointManager(str(tmp_path / "ck"), keep=2)
        for r in range(5):
            cm.save(r, {"round": r}, META)
        names = sorted(os.listdir(cm.directory))
        assert names == ["ckpt_000004.bin", "ckpt_000005.bin"]
        assert cm.load(META)[1] == {"round": 4}

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError, match="keep"):
            CheckpointManager(str(tmp_path / "ck"), keep=0)

    def test_has_checkpoint(self, tmp_path):
        cm = CheckpointManager(str(tmp_path / "ck"))
        assert not cm.has_checkpoint
        cm.save(0, SNAP, META)
        assert cm.has_checkpoint


class TestRefusal:
    """Every corruption mode refuses resume with a distinct, clear error."""

    def test_empty_directory(self, tmp_path):
        cm = CheckpointManager(str(tmp_path / "ck"))
        with pytest.raises(CheckpointError, match="no checkpoint found"):
            cm.load(META)

    def test_bad_magic(self, tmp_path):
        cm = write_one(tmp_path)
        path = cm.latest_path()
        blob = open(path, "rb").read()
        open(path, "wb").write(b"GARBAGE!" + blob[8:])
        with pytest.raises(CheckpointError, match="bad magic"):
            cm.load(META)

    def test_truncated_payload(self, tmp_path):
        cm = write_one(tmp_path)
        path = cm.latest_path()
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[:-20])
        with pytest.raises(CheckpointError, match="truncated"):
            cm.load(META)

    def test_truncated_before_header(self, tmp_path):
        cm = write_one(tmp_path)
        open(cm.latest_path(), "wb").write(MAGIC)
        with pytest.raises(CheckpointError, match="truncated"):
            cm.load(META)

    def test_garbled_payload(self, tmp_path):
        cm = write_one(tmp_path)
        path = cm.latest_path()
        blob = bytearray(open(path, "rb").read())
        blob[-5] ^= 0xFF  # flip one payload bit pattern
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError, match="SHA-256 mismatch"):
            cm.load(META)

    def test_corrupt_header(self, tmp_path):
        cm = write_one(tmp_path)
        path = cm.latest_path()
        blob = open(path, "rb").read()
        nl = blob.index(b"\n", len(MAGIC))
        open(path, "wb").write(MAGIC + b"{not json" + blob[nl:])
        with pytest.raises(CheckpointError, match="corrupt header"):
            cm.load(META)

    def test_meta_mismatch(self, tmp_path):
        cm = write_one(tmp_path)
        other = dict(META, seed=2)
        with pytest.raises(CheckpointError, match="different run"):
            cm.load(other)

    def test_unpicklable_payload(self, tmp_path):
        cm = write_one(tmp_path)
        path = cm.latest_path()
        blob = open(path, "rb").read()
        nl = blob.index(b"\n", len(MAGIC))
        header = json.loads(blob[len(MAGIC):nl])
        junk = os.urandom(header["payload_bytes"])
        # keep header digest/length consistent so only unpickling fails
        import hashlib

        header["sha256"] = hashlib.sha256(junk).hexdigest()
        open(path, "wb").write(
            MAGIC + json.dumps(header, sort_keys=True).encode() + b"\n" + junk
        )
        with pytest.raises(CheckpointError, match="does not unpickle"):
            cm.load(META)
