"""FaultyDiskArray behavior: retries, torn writes, degraded mode, and the
two-ledger invariant (logical IOStats identical to a clean run)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.injector import (
    SHADOW_BASE,
    DiskFault,
    FaultStats,
    FaultyDiskArray,
    collect_fault_stats,
)
from repro.faults.plan import DiskDeath, FaultPlan, RetryPolicy, ScheduledFault
from repro.pdm.disk_array import DiskArray, IOOp
from repro.util.validation import SimulationError

D, B = 4, 64


def make_array(plan: FaultPlan, real: int = 0, d: int = D) -> FaultyDiskArray:
    return FaultyDiskArray(d, B, plan.injector_for(real), real=real)


def fill(arr, blocks=32, seed=0) -> list[bytes]:
    rng = np.random.default_rng(seed)
    data = [rng.bytes(B) for _ in range(blocks)]
    arr.write_blocks([(i % arr.D, i // arr.D, data[i]) for i in range(blocks)])
    return data


class TestTransients:
    PLAN = FaultPlan(
        seed=3, p_transient_read=0.2, p_transient_write=0.2,
        retry=RetryPolicy(max_retries=8),
    )

    def test_data_survives_retries(self):
        arr = make_array(self.PLAN)
        data = fill(arr)
        got = arr.read_blocks([(i % D, i // D) for i in range(len(data))])
        assert got == data
        assert arr.injector.stats.retries > 0
        assert arr.injector.stats.retried_accesses > 0

    def test_logical_ledger_matches_clean_run(self):
        faulty, clean = make_array(self.PLAN), DiskArray(D, B)
        for arr in (faulty, clean):
            data = fill(arr)
            arr.read_blocks([(i % D, i // D) for i in range(len(data))])
        assert faulty.stats.as_dict() == clean.stats.as_dict()
        assert faulty.injector.stats.any  # the physical ledger saw the faults

    def test_deterministic_across_instances(self):
        a, b = make_array(self.PLAN), make_array(self.PLAN)
        fill(a), fill(b)
        assert a.injector.stats.as_dict() == b.injector.stats.as_dict()

    def test_retries_exhausted_raises(self):
        plan = FaultPlan(
            seed=1, p_transient_write=1.0, retry=RetryPolicy(max_retries=2)
        )
        arr = make_array(plan)
        with pytest.raises(DiskFault, match="after 2 retries"):
            arr.parallel_io([IOOp(0, 0, b"x" * B)])

    def test_modeled_backoff_accumulates(self):
        plan = FaultPlan(
            seed=3, p_transient_write=0.3,
            retry=RetryPolicy(max_retries=8, backoff_s=0.01),
        )
        arr = make_array(plan)
        fill(arr)
        st = arr.injector.stats
        assert st.retries > 0
        assert st.backoff_s >= 0.01 * st.retries  # linear backoff grows per attempt


class TestScheduled:
    def test_fires_at_exact_coordinate(self):
        plan = FaultPlan(
            schedule=(ScheduledFault(real=0, op=1, disk=2, kind="transient_write"),)
        )
        arr = make_array(plan)
        arr.parallel_io([IOOp(d, 0, bytes(B)) for d in range(D)])  # op 0: clean
        assert arr.injector.stats.transient_write_faults == 0
        arr.parallel_io([IOOp(d, 1, bytes(B)) for d in range(D)])  # op 1: fault
        assert arr.injector.stats.transient_write_faults == 1
        assert arr.injector.stats.retries == 1

    def test_other_real_unaffected(self):
        plan = FaultPlan(
            schedule=(ScheduledFault(real=1, op=0, disk=0, kind="transient_write"),)
        )
        arr = make_array(plan, real=0)
        arr.parallel_io([IOOp(0, 0, bytes(B))])
        assert not arr.injector.stats.any

    def test_zero_probability_plan_makes_no_rng_draws(self):
        plan = FaultPlan(schedule=(ScheduledFault(0, 5, 0, "transient_read"),))
        arr = make_array(plan)
        before = arr.injector._rng.bit_generator.state
        fill(arr)
        assert arr.injector._rng.bit_generator.state == before


class TestTornWrites:
    def test_retry_overwrites_the_tear(self):
        plan = FaultPlan(
            schedule=(ScheduledFault(real=0, op=0, disk=0, kind="torn_write"),)
        )
        arr = make_array(plan)
        block = bytes(range(64))
        arr.parallel_io([IOOp(0, 0, block)])
        assert arr.injector.stats.torn_writes == 1
        [got] = arr.parallel_io([IOOp(0, 0)])
        assert got == block

    def test_unretried_tear_leaves_corrupt_prefix(self):
        plan = FaultPlan(
            schedule=(ScheduledFault(real=0, op=0, disk=0, kind="torn_write"),),
            retry=RetryPolicy(max_retries=0),
        )
        arr = make_array(plan)
        block = bytes(range(64))
        with pytest.raises(DiskFault):
            arr.parallel_io([IOOp(0, 0, block)])
        # the half-written prefix is on the platter — the crash hazard
        # checkpoint verification exists for
        assert arr.disks[0]._tracks[0] == block[: len(block) // 2]


class TestDiskDeath:
    PLAN = FaultPlan(dead_disks=(DiskDeath(real=0, disk=1, after_op=8),))

    def test_degraded_mode_preserves_data(self):
        arr = make_array(self.PLAN)
        data = fill(arr)  # 32 blocks in 8 parallel I/Os -> death due at op 8
        got = arr.read_blocks([(i % D, i // D) for i in range(len(data))])
        assert got == data
        st = arr.injector.stats
        assert st.dead_disks == 1
        assert st.migrated_blocks == 8  # disk 1 held 8 of the 32 blocks
        assert st.degraded_ios > 0 and st.remapped_accesses > 0

    def test_dead_disk_holds_nothing(self):
        arr = make_array(self.PLAN)
        data = fill(arr)
        arr.read_blocks([(i % D, i // D) for i in range(len(data))])
        assert arr.disks[1]._tracks == {}

    def test_shadow_tracks_live_on_survivors(self):
        arr = make_array(self.PLAN)
        fill(arr)
        arr.read_blocks([(1, 0)])
        inj = arr.injector
        pdisk, ptrack = inj.remap[(1, 0)]
        assert pdisk != 1 and ptrack >= SHADOW_BASE
        assert ptrack in arr.disks[pdisk]._tracks

    def test_lost_width_accounting(self):
        arr = make_array(self.PLAN)
        fill(arr)
        st0 = arr.injector.stats.lost_width
        # a full-stripe read must now squeeze D logical tracks onto D-1
        # survivors: at least one unit of parallelism is lost
        arr.parallel_io([IOOp(d, 0) for d in range(D)])
        assert arr.injector.stats.lost_width > st0
        # logical ledger still records a full-width I/O
        assert arr.stats.width_histogram[D] > 0

    def test_second_death_remigrates_hosted_blocks(self):
        plan = FaultPlan(
            dead_disks=(
                DiskDeath(real=0, disk=1, after_op=8),
                DiskDeath(real=0, disk=2, after_op=9),
            )
        )
        arr = make_array(plan)
        data = fill(arr)
        got = arr.read_blocks([(i % D, i // D) for i in range(len(data))])
        assert got == data
        assert arr.injector.stats.dead_disks == 2
        assert arr.disks[1]._tracks == {} and arr.disks[2]._tracks == {}

    def test_all_disks_dead_raises(self):
        plan = FaultPlan(
            dead_disks=tuple(DiskDeath(real=0, disk=d, after_op=0) for d in range(2))
        )
        arr = make_array(plan, d=2)
        with pytest.raises(DiskFault, match="no\\s+survivors"):
            arr.parallel_io([IOOp(0, 0, bytes(B))])

    def test_free_blocks_follows_remap(self):
        arr = make_array(self.PLAN)
        fill(arr)
        arr.read_blocks([(1, 0)])  # forces the remap entry
        pdisk, ptrack = arr.injector.remap[(1, 0)]
        arr.free_blocks([(1, 0)])
        assert ptrack not in arr.disks[pdisk]._tracks


class TestBatchRulesStillEnforced:
    def test_two_tracks_same_disk_rejected(self):
        arr = make_array(FaultPlan())
        with pytest.raises(SimulationError):
            arr.parallel_io([IOOp(0, 0, bytes(B)), IOOp(0, 1, bytes(B))])

    def test_disk_out_of_range_rejected(self):
        arr = make_array(FaultPlan())
        with pytest.raises(SimulationError):
            arr.parallel_io([IOOp(D, 0, bytes(B))])


class TestStateRoundTrip:
    PLAN = FaultPlan(
        seed=11, p_transient_read=0.3, p_transient_write=0.3,
        retry=RetryPolicy(max_retries=8),
        dead_disks=(DiskDeath(real=0, disk=3, after_op=12),),
    )

    def test_restore_replays_identically(self):
        a = make_array(self.PLAN)
        data = fill(a)
        saved = a.injector.state()
        tracks_before = [dict(d._tracks) for d in a.disks]

        first = a.read_blocks([(i % D, i // D) for i in range(len(data))])
        stats_first = a.injector.stats.as_dict()

        # rebuild the array at the snapshot and replay the same accesses
        b = make_array(self.PLAN)
        b.injector.restore(saved)
        for disk, tracks in zip(b.disks, tracks_before):
            disk._tracks.update(tracks)
        second = b.read_blocks([(i % D, i // D) for i in range(len(data))])
        assert second == first
        assert b.injector.stats.as_dict() == stats_first

    def test_state_is_a_deep_snapshot(self):
        arr = make_array(self.PLAN)
        saved = arr.injector.state()
        fill(arr)
        assert saved["op_index"] == 0
        assert not saved["stats"].any


class TestFaultStats:
    def test_merge_sums_fields(self):
        a = FaultStats(retries=2, torn_writes=1, backoff_s=0.5)
        a.merge(FaultStats(retries=3, dead_disks=1, backoff_s=0.25))
        assert a.retries == 5 and a.torn_writes == 1 and a.dead_disks == 1
        assert a.backoff_s == 0.75

    def test_any_and_summary(self):
        assert not FaultStats().any
        st = FaultStats(retries=4, retried_accesses=3)
        assert st.any
        assert "4 retries (3 accesses)" in st.summary()

    def test_collect_skips_plain_arrays(self):
        assert collect_fault_stats([DiskArray(D, B)]) is None
        merged = collect_fault_stats(
            [DiskArray(D, B), make_array(TestTransients.PLAN)]
        )
        assert isinstance(merged, FaultStats)
