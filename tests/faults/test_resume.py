"""Checkpoint/resume end-to-end: a killed run resumes bit-identically on
both the in-process and the multi-process backends, workers are respawned
after crashes, and mismatched resumes are refused."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.algorithms.collectives import partition_array
from repro.algorithms.sorting import SampleSort
from repro.cgm.config import MachineConfig
from repro.em.runner import em_run
from repro.faults.checkpoint import CheckpointError
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.obs.trace import JsonlRecorder
from repro.util.validation import ConfigurationError, SimulationError

V, D, B = 8, 2, 64
N = 1 << 13
KILL_ROUND = 2


def make_data() -> np.ndarray:
    return np.random.default_rng(5).integers(0, 1 << 30, N, dtype=np.int64)


def run_sort(cfg, program=None, **kw):
    return em_run(
        program or SampleSort(), partition_array(make_data(), cfg.v), cfg, "par", **kw
    )


def counters(report) -> dict:
    return {
        "io": report.io.as_dict(),
        "io_max": report.io_max.as_dict(),
        "rounds": report.rounds,
        "supersteps": report.supersteps,
        "comm": report.comm_items,
        "cross": report.cross_items,
        "ctx_io": report.context_blocks_io,
        "msg_io": report.message_blocks_io,
        "ovf": report.overflow_blocks,
        "peak": report.peak_memory_items,
    }


def stripped(events, kinds=("superstep_end", "run_end")) -> list[dict]:
    # seq/ts/wall_s/span are physical (timing or bus bookkeeping); the
    # logical payload must be bit-identical across kill/resume
    return [
        {k: v for k, v in ev.items() if k not in ("seq", "ts", "wall_s", "span", "parent")}
        for ev in events
        if ev["kind"] in kinds
    ]


class KillableSort(SampleSort):
    """Sample sort that crashes once at a given round.

    The crash is *external* (a raised exception consuming a one-shot flag
    file), not a scheduled fault: a fatal fault in the plan would replay
    deterministically on resume, which is exactly what must not happen
    when testing recovery from a kill.
    """

    def __init__(self, kill_round: int, flag_path: str) -> None:
        super().__init__()
        self.kill_round = kill_round
        self.flag_path = flag_path

    def round(self, r, ctx, env):
        if r == self.kill_round and os.path.exists(self.flag_path):
            os.unlink(self.flag_path)
            raise KeyboardInterrupt("simulated kill")
        return super().round(r, ctx, env)


class CrashySort(SampleSort):
    """Sample sort whose hosting process dies hard at a given round, as
    long as the countdown file is positive (then it runs clean)."""

    def __init__(self, crash_round: int, counter_path: str) -> None:
        super().__init__()
        self.crash_round = crash_round
        self.counter_path = counter_path

    def round(self, r, ctx, env):
        # pid 0 only, so exactly one worker dies per dispatch of the round
        if r == self.crash_round and env.pid == 0:
            with open(self.counter_path) as fh:
                n = int(fh.read())
            if n > 0:
                with open(self.counter_path, "w") as fh:
                    fh.write(str(n - 1))
                os._exit(13)
        return super().round(r, ctx, env)


def kill_and_resume(cfg, tmp_path, **kw):
    """Kill a checkpointed run at KILL_ROUND, then resume it to completion."""
    ck = str(tmp_path / "ck")
    flag = str(tmp_path / "kill.flag")
    open(flag, "w").write("1")
    with pytest.raises((KeyboardInterrupt, SimulationError)):
        run_sort(
            cfg, program=KillableSort(KILL_ROUND, flag), checkpoint=ck, **kw
        )
    assert not os.path.exists(flag), "the kill never fired"
    tracer = JsonlRecorder()
    res = run_sort(cfg, checkpoint=ck, resume=True, tracer=tracer, **kw)
    return res, tracer


class TestResumeInProcess:
    CFG = MachineConfig(N=N, v=V, p=2, D=D, B=B)

    def test_bit_identical_after_kill(self, tmp_path):
        clean_tr = JsonlRecorder()
        clean = run_sort(self.CFG, tracer=clean_tr)
        resumed, tr = kill_and_resume(self.CFG, tmp_path)

        for a, b in zip(clean.outputs, resumed.outputs):
            assert np.array_equal(a, b)
        assert counters(clean.report) == counters(resumed.report)
        # the trace tail (everything from the kill round on) matches the
        # uninterrupted run event for event
        tail = [
            ev for ev in stripped(clean_tr.events)
            if ev["kind"] == "run_end" or ev["round"] >= KILL_ROUND
        ]
        assert stripped(tr.events) == tail
        assert tr.counts().get("resume") == 1

    def test_finished_checkpoint_short_circuits(self, tmp_path):
        ck = str(tmp_path / "ck")
        first = run_sort(self.CFG, checkpoint=ck)
        again = run_sort(self.CFG, checkpoint=ck, resume=True)
        for a, b in zip(first.outputs, again.outputs):
            assert np.array_equal(a, b)
        assert counters(first.report) == counters(again.report)

    def test_resume_under_fault_plan(self, tmp_path):
        plan = FaultPlan(
            seed=13, p_transient_read=0.02, p_transient_write=0.02,
            retry=RetryPolicy(max_retries=6),
        )
        clean = run_sort(self.CFG, faults=plan)
        assert clean.report.fault_stats is not None
        assert clean.report.fault_stats.retries > 0
        resumed, _ = kill_and_resume(self.CFG, tmp_path, faults=plan)
        for a, b in zip(clean.outputs, resumed.outputs):
            assert np.array_equal(a, b)
        assert counters(clean.report) == counters(resumed.report)
        assert (
            resumed.report.fault_stats.as_dict() == clean.report.fault_stats.as_dict()
        )

    def test_sorted_output_is_correct(self, tmp_path):
        resumed, _ = kill_and_resume(self.CFG, tmp_path)
        out = np.concatenate(resumed.outputs)
        assert np.array_equal(out, np.sort(make_data()))


class TestResumeWorkers:
    CFG = MachineConfig(N=N, v=V, p=4, D=D, B=B, workers=2)

    @pytest.mark.slow
    def test_bit_identical_after_kill(self, tmp_path):
        clean = run_sort(self.CFG)
        resumed, tr = kill_and_resume(self.CFG, tmp_path)
        for a, b in zip(clean.outputs, resumed.outputs):
            assert np.array_equal(a, b)
        assert counters(clean.report) == counters(resumed.report)
        assert tr.counts().get("resume") == 1

    @pytest.mark.slow
    def test_cross_backend_resume(self, tmp_path):
        """A checkpoint written in-process resumes under the workers
        backend: the fingerprint deliberately excludes the worker count."""
        inproc = self.CFG.with_(workers=0)
        clean = run_sort(inproc)
        ck = str(tmp_path / "ck")
        flag = str(tmp_path / "kill.flag")
        open(flag, "w").write("1")
        with pytest.raises((KeyboardInterrupt, SimulationError)):
            run_sort(inproc, program=KillableSort(KILL_ROUND, flag), checkpoint=ck)
        resumed = run_sort(self.CFG, checkpoint=ck, resume=True)
        for a, b in zip(clean.outputs, resumed.outputs):
            assert np.array_equal(a, b)
        assert counters(clean.report) == counters(resumed.report)

    @pytest.mark.slow
    def test_worker_crash_redispatch(self, tmp_path):
        """A worker process dying hard mid-round is respawned from the last
        checkpoint and the round is re-dispatched — the run self-heals."""
        counter = str(tmp_path / "crashes")
        open(counter, "w").write("2")
        tracer = JsonlRecorder()
        healed = run_sort(
            self.CFG,
            program=CrashySort(KILL_ROUND, counter),
            checkpoint=str(tmp_path / "ck"),
            tracer=tracer,
        )
        assert open(counter).read() == "0"
        assert tracer.counts().get("worker_redispatch") == 2
        clean = run_sort(self.CFG)
        for a, b in zip(clean.outputs, healed.outputs):
            assert np.array_equal(a, b)
        assert counters(clean.report) == counters(healed.report)

    @pytest.mark.slow
    def test_crash_without_checkpoint_is_fatal(self, tmp_path):
        counter = str(tmp_path / "crashes")
        open(counter, "w").write("1")
        with pytest.raises(SimulationError, match="died without reporting"):
            run_sort(self.CFG, program=CrashySort(KILL_ROUND, counter))


class TestCrossArenaResume:
    """Checkpoints are portable across ``REPRO_ARENA`` storage backends:
    the snapshot is the dict representation, so a run killed on the mmap
    arena resumes on the RAM arena (and vice versa) bit-identically."""

    CFG = MachineConfig(N=N, v=V, p=2, D=D, B=B)

    @pytest.mark.parametrize(
        "kill_arena,resume_arena", [("mmap", "ram"), ("ram", "mmap")]
    )
    def test_checkpoint_ports_across_arenas(
        self, tmp_path, monkeypatch, kill_arena, resume_arena
    ):
        clean_tr = JsonlRecorder()
        clean = run_sort(self.CFG, tracer=clean_tr)  # default-arena baseline

        ck = str(tmp_path / "ck")
        flag = str(tmp_path / "kill.flag")
        open(flag, "w").write("1")
        monkeypatch.setenv("REPRO_ARENA", kill_arena)
        with pytest.raises((KeyboardInterrupt, SimulationError)):
            run_sort(
                self.CFG, program=KillableSort(KILL_ROUND, flag), checkpoint=ck
            )
        assert not os.path.exists(flag), "the kill never fired"

        monkeypatch.setenv("REPRO_ARENA", resume_arena)
        tr = JsonlRecorder()
        resumed = run_sort(self.CFG, checkpoint=ck, resume=True, tracer=tr)

        for a, b in zip(clean.outputs, resumed.outputs):
            assert np.array_equal(a, b)
        assert counters(clean.report) == counters(resumed.report)
        tail = [
            ev for ev in stripped(clean_tr.events)
            if ev["kind"] == "run_end" or ev["round"] >= KILL_ROUND
        ]
        assert stripped(tr.events) == tail
        assert tr.counts().get("resume") == 1

    def test_mmap_checkpoint_restores_on_reference_path(
        self, tmp_path, monkeypatch
    ):
        """The extreme cross: killed on the mmap arena, resumed with the
        fast path disabled entirely (dict-backed reference storage)."""
        clean = run_sort(self.CFG)
        ck = str(tmp_path / "ck")
        flag = str(tmp_path / "kill.flag")
        open(flag, "w").write("1")
        monkeypatch.setenv("REPRO_ARENA", "mmap")
        with pytest.raises((KeyboardInterrupt, SimulationError)):
            run_sort(
                self.CFG, program=KillableSort(KILL_ROUND, flag), checkpoint=ck
            )
        monkeypatch.delenv("REPRO_ARENA")
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        resumed = run_sort(self.CFG, checkpoint=ck, resume=True)
        for a, b in zip(clean.outputs, resumed.outputs):
            assert np.array_equal(a, b)
        assert counters(clean.report) == counters(resumed.report)


#: test hook consumed by NodeKillerSort.round (set per-test, one-shot);
#: lives at module scope because in-process node sessions share this
#: interpreter — the unpickled program sees the same global.
_NODE_KILL = None


class NodeKillerSort(SampleSort):
    """Sample sort that severs its own node's session at a given round.

    The hook closes the session *socket* (simulated machine death), not
    an exception: the coordinator must detect the dead connection and
    recover, exactly as if a remote node had been powered off.
    """

    def __init__(self, kill_round: int) -> None:
        super().__init__()
        self.kill_round = kill_round

    def round(self, r, ctx, env):
        global _NODE_KILL
        if r == self.kill_round and env.pid == 0 and _NODE_KILL is not None:
            hook, _NODE_KILL = _NODE_KILL, None  # one-shot
            hook()
        return super().round(r, ctx, env)


class NodeKillerThenKillSort(NodeKillerSort):
    """Node death at one round, an external kill at a later one."""

    def __init__(self, kill_node_round: int, flag_path: str) -> None:
        super().__init__(kill_node_round)
        self.flag_path = flag_path

    def round(self, r, ctx, env):
        if r == KILL_ROUND and os.path.exists(self.flag_path):
            os.unlink(self.flag_path)
            raise KeyboardInterrupt("simulated kill")
        return super().round(r, ctx, env)


class TestCrossTransportResume:
    """Checkpoints are portable across worker-exchange transports: a run
    killed under tcp resumes under memory (and vice versa) bit-identically,
    and a node dying mid-run is redispatched over a fresh connection."""

    CFG = MachineConfig(N=N, v=V, p=4, D=D, B=B, workers=2)

    @pytest.fixture
    def node_pair(self):
        from repro.core.transport.node import NodeServer

        servers = [NodeServer().start_thread(), NodeServer().start_thread()]
        yield servers
        for s in servers:
            s.shutdown()

    def set_transport(self, monkeypatch, kind, node_pair=None):
        monkeypatch.setenv("REPRO_TRANSPORT", kind)
        if kind == "tcp":
            monkeypatch.setenv(
                "REPRO_NODES", ",".join(s.address for s in node_pair)
            )
        else:
            monkeypatch.delenv("REPRO_NODES", raising=False)

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "kill_transport,resume_transport",
        [("tcp", "memory"), ("memory", "tcp")],
    )
    def test_checkpoint_ports_across_transports(
        self, tmp_path, monkeypatch, node_pair, kill_transport, resume_transport
    ):
        self.set_transport(monkeypatch, "memory")
        clean = run_sort(self.CFG)  # local baseline

        ck = str(tmp_path / "ck")
        flag = str(tmp_path / "kill.flag")
        open(flag, "w").write("1")
        self.set_transport(monkeypatch, kill_transport, node_pair)
        with pytest.raises((KeyboardInterrupt, SimulationError)):
            run_sort(self.CFG, program=KillableSort(KILL_ROUND, flag), checkpoint=ck)
        assert not os.path.exists(flag), "the kill never fired"

        self.set_transport(monkeypatch, resume_transport, node_pair)
        tr = JsonlRecorder()
        resumed = run_sort(self.CFG, checkpoint=ck, resume=True, tracer=tr)
        for a, b in zip(clean.outputs, resumed.outputs):
            assert np.array_equal(a, b)
        assert counters(clean.report) == counters(resumed.report)
        assert tr.counts().get("resume") == 1

    @pytest.mark.slow
    def test_node_death_mid_run_redispatches(
        self, tmp_path, monkeypatch, node_pair
    ):
        """The socket of the node hosting worker 0 is hard-closed during
        the kill round; the coordinator respawns the session from the last
        checkpoint and the run self-heals bit-identically."""
        global _NODE_KILL
        self.set_transport(monkeypatch, "memory")
        clean = run_sort(self.CFG)

        self.set_transport(monkeypatch, "tcp", node_pair)
        tracer = JsonlRecorder()
        _NODE_KILL = node_pair[0].kill_session
        try:
            healed = run_sort(
                self.CFG,
                program=NodeKillerSort(KILL_ROUND),
                checkpoint=str(tmp_path / "ck"),
                tracer=tracer,
            )
        finally:
            _NODE_KILL = None
        assert tracer.counts().get("worker_redispatch", 0) >= 1
        assert node_pair[0].sessions >= 2  # reconnected after the death
        for a, b in zip(clean.outputs, healed.outputs):
            assert np.array_equal(a, b)
        assert counters(clean.report) == counters(healed.report)

    @pytest.mark.slow
    def test_node_death_then_resume_under_memory(
        self, tmp_path, monkeypatch, node_pair
    ):
        """Node death and an external kill in the same run: the node dies
        at round 1, the respawned run is killed at round 2, and the
        checkpoint still resumes cleanly under the memory transport."""
        global _NODE_KILL
        self.set_transport(monkeypatch, "memory")
        clean = run_sort(self.CFG)

        ck = str(tmp_path / "ck")
        flag = str(tmp_path / "kill.flag")
        open(flag, "w").write("1")
        self.set_transport(monkeypatch, "tcp", node_pair)
        _NODE_KILL = node_pair[1].kill_session
        try:
            with pytest.raises((KeyboardInterrupt, SimulationError)):
                run_sort(
                    self.CFG,
                    program=NodeKillerThenKillSort(KILL_ROUND - 1, flag),
                    checkpoint=ck,
                )
        finally:
            _NODE_KILL = None
        assert not os.path.exists(flag), "the kill never fired"

        self.set_transport(monkeypatch, "memory")
        resumed = run_sort(self.CFG, checkpoint=ck, resume=True)
        for a, b in zip(clean.outputs, resumed.outputs):
            assert np.array_equal(a, b)
        assert counters(clean.report) == counters(resumed.report)


class TestServicePath:
    """Preempt/resume through the job-service execution path: the same
    checkpoint invariants hold when the run is described by a ``JobSpec``
    and driven by ``execute_spec`` instead of ``em_run`` directly."""

    PAR = {
        "op": "sort", "n": N, "seed": 5,
        "machine": {"v": V, "p": 4, "D": D, "B": B},
    }

    def test_fingerprint_ignores_worker_count(self):
        from repro.service.spec import JobSpec

        w0 = JobSpec.from_dict(self.PAR)
        w2 = JobSpec.from_dict({**self.PAR, "workers": 2})
        assert w0.fingerprint() == w2.fingerprint()

    @pytest.mark.slow
    def test_cross_backend_preempt_resume(self, tmp_path):
        """Preempted on the multi-process backend, resumed in-process —
        counters and output hash are bit-identical to a clean run, as the
        CI service lane asserts end-to-end."""
        from repro.service.pool import execute_spec
        from repro.service.spec import JobSpec
        from repro.util.validation import PreemptedError

        clean = execute_spec(JobSpec.from_dict(self.PAR))
        ck = str(tmp_path / "ck")
        workers = JobSpec.from_dict({**self.PAR, "workers": 2})
        fired = []

        def preempt_once() -> bool:
            fired.append(True)
            return len(fired) == 1

        with pytest.raises(PreemptedError, match="resume to continue"):
            execute_spec(workers, checkpoint=ck, preempt=preempt_once)
        resumed = execute_spec(
            JobSpec.from_dict(self.PAR), checkpoint=ck, resume=True
        )
        assert resumed["ok"] is True
        assert resumed["counters"] == clean["counters"]
        assert resumed["output_sha256"] == clean["output_sha256"]
        assert resumed["fingerprint"] == clean["fingerprint"]

    @pytest.mark.slow
    def test_preempt_resume_under_fault_plan(self, tmp_path):
        from repro.service.pool import execute_spec
        from repro.service.spec import JobSpec
        from repro.util.validation import PreemptedError

        doc = {**self.PAR, "faults": {"p_transient_read": 0.02, "seed": 13}}
        clean = execute_spec(JobSpec.from_dict(doc))
        assert clean["counters"]["fault_stats"]["retries"] > 0
        ck = str(tmp_path / "ck")
        fired = []
        with pytest.raises(PreemptedError):
            execute_spec(
                JobSpec.from_dict(doc),
                checkpoint=ck,
                preempt=lambda: not fired and (fired.append(True) or True),
            )
        resumed = execute_spec(JobSpec.from_dict(doc), checkpoint=ck, resume=True)
        assert resumed["counters"] == clean["counters"]
        assert resumed["output_sha256"] == clean["output_sha256"]


class TestRefusals:
    CFG = MachineConfig(N=N, v=V, p=2, D=D, B=B)

    def test_resume_without_checkpoint_dir(self):
        with pytest.raises(ConfigurationError, match="resume"):
            run_sort(self.CFG, resume=True)

    def test_resume_from_empty_dir(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint found"):
            run_sort(self.CFG, checkpoint=str(tmp_path / "empty"), resume=True)

    def test_resume_under_different_machine_is_refused(self, tmp_path):
        _, _ = kill_and_resume(self.CFG, tmp_path)  # leaves checkpoints behind
        other = MachineConfig(N=N, v=V, p=2, D=D, B=B // 2)
        with pytest.raises(CheckpointError, match="different run"):
            run_sort(other, checkpoint=str(tmp_path / "ck"), resume=True)

    def test_resume_under_different_fault_plan_is_refused(self, tmp_path):
        _, _ = kill_and_resume(self.CFG, tmp_path)
        plan = FaultPlan(seed=99, p_transient_read=0.5)
        with pytest.raises(CheckpointError, match="different run"):
            run_sort(
                self.CFG, checkpoint=str(tmp_path / "ck"), resume=True, faults=plan
            )

    def test_memory_engine_refuses_faults(self):
        with pytest.raises(ConfigurationError, match="fault"):
            em_run(
                SampleSort(),
                partition_array(make_data(), V),
                self.CFG,
                "memory",
                faults=FaultPlan(p_transient_read=0.1),
            )

    def test_vm_engine_refuses_checkpoint(self, tmp_path):
        cfg = MachineConfig(N=N, v=V, p=1, D=D, B=B)
        with pytest.raises(ConfigurationError, match="checkpoint"):
            em_run(
                SampleSort(),
                partition_array(make_data(), V),
                cfg,
                "vm",
                checkpoint=str(tmp_path / "ck"),
            )
