"""FaultPlan construction, validation, and JSON round-tripping."""

from __future__ import annotations

import json

import pytest

from repro.faults.plan import (
    FAULT_KINDS,
    DiskDeath,
    FaultPlan,
    RetryPolicy,
    ScheduledFault,
)
from repro.util.validation import ConfigurationError

FULL_PLAN = FaultPlan(
    seed=42,
    p_transient_read=0.05,
    p_transient_write=0.02,
    p_torn_write=0.01,
    retry=RetryPolicy(max_retries=5, backoff_s=0.001),
    schedule=(
        ScheduledFault(real=0, op=3, disk=1, kind="transient_read"),
        ScheduledFault(real=1, op=7, disk=0, kind="torn_write"),
    ),
    dead_disks=(DiskDeath(real=0, disk=1, after_op=100),),
)


class TestRoundTrip:
    def test_dict_round_trip(self):
        assert FaultPlan.from_dict(FULL_PLAN.to_dict()) == FULL_PLAN

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        FULL_PLAN.to_json(str(path))
        assert FaultPlan.from_json(str(path)) == FULL_PLAN

    def test_defaults_round_trip(self):
        plan = FaultPlan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_partial_dict_fills_defaults(self):
        plan = FaultPlan.from_dict({"seed": 9, "p_transient_read": 0.1})
        assert plan.seed == 9
        assert plan.p_transient_read == 0.1
        assert plan.retry == RetryPolicy()
        assert plan.schedule == () and plan.dead_disks == ()


class TestValidation:
    def test_unknown_top_level_field(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            FaultPlan.from_dict({"seed": 1, "p_transient_reed": 0.1})

    def test_unknown_retry_field(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"retry": {"max_tries": 3}})

    def test_unknown_fault_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ScheduledFault(real=0, op=0, disk=0, kind="cosmic_ray")

    def test_negative_coordinates(self):
        with pytest.raises(ConfigurationError):
            ScheduledFault(real=0, op=-1, disk=0, kind=FAULT_KINDS[0])
        with pytest.raises(ConfigurationError):
            DiskDeath(real=0, disk=-1, after_op=0)

    def test_probability_out_of_range(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(p_transient_read=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(p_torn_write=-0.1)

    def test_negative_retries(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json(str(tmp_path / "nope.json"))

    def test_json_must_be_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json(str(path))


class TestProperties:
    def test_probabilistic_flag(self):
        assert not FaultPlan().probabilistic
        assert FaultPlan(p_transient_read=0.1).probabilistic
        assert not FaultPlan(
            schedule=(ScheduledFault(0, 0, 0, "transient_read"),)
        ).probabilistic

    def test_injector_is_per_real(self):
        a = FULL_PLAN.injector_for(0)
        b = FULL_PLAN.injector_for(1)
        assert a.real == 0 and b.real == 1
        # scheduled faults are filtered to the owning real processor
        assert (3, 1) in a._schedule and (7, 0) not in a._schedule
        assert (7, 0) in b._schedule and (3, 1) not in b._schedule
        assert a._pending_death == {1: 100} and b._pending_death == {}

    def test_injector_rng_deterministic(self):
        plan = FaultPlan(seed=7, p_transient_read=0.5)
        a, b = plan.injector_for(0), plan.injector_for(0)
        assert [a._rng.random() for _ in range(20)] == [
            b._rng.random() for _ in range(20)
        ]
