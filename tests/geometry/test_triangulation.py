"""Tests for polygon triangulation (Group B row 1 local routines)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.geometry.triangulation import (
    is_ccw,
    polygon_area,
    triangulate_monotone,
    triangulate_polygon,
    triangulation_is_valid,
)
from repro.util.validation import ConfigurationError


def star_polygon(n: int, seed: int) -> np.ndarray:
    """Simple star-shaped polygon: evenly spread angles (jittered) keep
    every angular gap below pi, so the origin stays in the kernel."""
    rng = np.random.default_rng(seed)
    ang = 2 * np.pi * (np.arange(n) + rng.uniform(0, 0.9, n)) / n
    rad = rng.uniform(1, 3, n)
    return np.column_stack((rad * np.cos(ang), rad * np.sin(ang)))


def monotone_polygon(n: int, seed: int) -> np.ndarray:
    """Simple y-monotone polygon: apex/bottom at x=0, chains left/right."""
    rng = np.random.default_rng(seed)
    ys = np.sort(rng.uniform(1, 9, n - 2))[::-1]
    side = rng.random(n - 2) < 0.5
    left = [(-(1 + rng.uniform(0, 3)), y) for y, s in zip(ys, side) if s]
    right = [((1 + rng.uniform(0, 3)), y) for y, s in zip(ys, side) if not s]
    return np.array([(0.0, 10.0)] + left + [(0.0, 0.0)] + right[::-1])


class TestHelpers:
    def test_area_square(self):
        sq = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert polygon_area(sq) == pytest.approx(1.0)
        assert is_ccw(sq)
        assert polygon_area(sq[::-1]) == pytest.approx(-1.0)

    def test_validity_checker_rejects_bad(self):
        sq = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        good = np.array([[0, 1, 2], [0, 2, 3]])
        assert triangulation_is_valid(sq, good)
        assert not triangulation_is_valid(sq, good[:1])            # too few
        bad = np.array([[0, 1, 2], [0, 1, 2]])                     # overlap
        assert not triangulation_is_valid(sq, bad)


class TestEarClipping:
    def test_triangle(self):
        tri = np.array([[0, 0], [1, 0], [0, 1]], dtype=float)
        out = triangulate_polygon(tri)
        assert out.shape == (1, 3)

    def test_square_both_orientations(self):
        sq = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert triangulation_is_valid(sq, triangulate_polygon(sq))
        assert triangulation_is_valid(sq[::-1], triangulate_polygon(sq[::-1]))

    def test_comb_nonconvex(self):
        comb = np.array(
            [[0, 0], [10, 0], [10, 5], [8, 1], [6, 5], [4, 1], [2, 5], [0, 5]],
            dtype=float,
        )
        assert triangulation_is_valid(comb, triangulate_polygon(comb))

    def test_spiral(self):
        spiral = np.array(
            [[0, 0], [6, 0], [6, 6], [1, 6], [1, 2], [4, 2], [4, 4], [2.5, 4],
             [2.5, 3], [3.2, 3], [3.2, 3.4], [2, 3.4], [2, 5], [5, 5], [5, 1],
             [0, 1]],
            dtype=float,
        )
        assert triangulation_is_valid(spiral, triangulate_polygon(spiral))

    def test_too_few_vertices(self):
        with pytest.raises(ConfigurationError):
            triangulate_polygon(np.array([[0, 0], [1, 1]], dtype=float))

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(4, 40), seed=st.integers(0, 10_000))
    def test_star_polygons_property(self, n, seed):
        poly = star_polygon(n, seed)
        assert triangulation_is_valid(poly, triangulate_polygon(poly))


class TestMonotone:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(4, 50), seed=st.integers(0, 10_000))
    def test_monotone_property(self, n, seed):
        poly = monotone_polygon(n, seed)
        assert triangulation_is_valid(poly, triangulate_monotone(poly))

    def test_convex_polygon(self):
        t = np.linspace(0, 2 * np.pi, 12, endpoint=False)
        poly = np.column_stack((np.cos(t), np.sin(t)))
        assert triangulation_is_valid(poly, triangulate_monotone(poly))

    def test_agrees_with_ear_clipping_on_area(self):
        poly = monotone_polygon(20, seed=5)
        a = triangulate_monotone(poly)
        b = triangulate_polygon(poly)
        assert a.shape == b.shape == (len(poly) - 2, 3)

    def test_cw_input_accepted(self):
        poly = monotone_polygon(15, seed=9)[::-1].copy()
        assert triangulation_is_valid(poly, triangulate_monotone(poly))
