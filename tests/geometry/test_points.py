"""Tests for point-based Group B algorithms: 3D maxima, all-nearest-
neighbours, weighted dominance counting, convex hulls, Delaunay."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.spatial import ConvexHull, Delaunay, cKDTree

import repro.algorithms.geometry as geo
from repro.algorithms.geometry.dominance import dominance_reference
from repro.algorithms.geometry.maxima import maxima_3d_reference
from repro.algorithms.geometry.slabs import Staircase2D, local_maxima_sweep
from repro.cgm.config import MachineConfig

from tests.conftest import all_engine_kinds, cfg_for


def geo_cfg(v: int = 4) -> MachineConfig:
    return MachineConfig(N=4000, v=v, B=32)


class TestStaircase:
    def test_insert_and_dominate(self):
        s = Staircase2D()
        s.insert(1.0, 5.0)
        s.insert(3.0, 2.0)
        assert s.dominates(0.5, 4.0)      # (1, 5) dominates
        assert s.dominates(2.0, 1.0)      # (3, 2) dominates
        assert not s.dominates(2.0, 3.0)  # nothing has y>=2 and z>=3
        assert not s.dominates(4.0, 1.0)

    def test_insert_evicts_dominated(self):
        s = Staircase2D()
        s.insert(1.0, 1.0)
        s.insert(2.0, 2.0)  # dominates (1,1)
        assert s.ys == [2.0]
        assert s.zs == [2.0]

    def test_local_sweep_matches_bruteforce(self, rng):
        pts = rng.random((200, 3))
        got = local_maxima_sweep(pts)
        assert np.array_equal(got, maxima_3d_reference(pts))


class TestMaxima3D:
    @pytest.mark.parametrize("kind", all_engine_kinds())
    def test_engines_match_reference(self, kind, rng):
        pts = rng.random((400, 3))
        cfg = cfg_for(kind, geo_cfg())
        res = geo.maxima_3d(pts, cfg, engine=kind)
        assert np.array_equal(res.values, maxima_3d_reference(pts))

    def test_diagonal_points_all_maximal_except_dominated(self, rng):
        pts = np.column_stack([np.arange(50)] * 3).astype(float)
        pts += rng.normal(scale=1e-6, size=pts.shape)
        res = geo.maxima_3d(pts, geo_cfg(), engine="memory")
        assert len(res.values) == 1  # strictly increasing diagonal: top wins

    def test_anti_correlated_plane_many_maxima(self, rng):
        n = 300
        x = rng.random(n)
        y = rng.random(n)
        z = 2.0 - x - y + rng.normal(scale=1e-9, size=n)
        pts = np.column_stack((x, y, z))
        res = geo.maxima_3d(pts, geo_cfg(), engine="memory")
        assert np.array_equal(res.values, maxima_3d_reference(pts))
        assert len(res.values) > n // 4  # near-Pareto surface

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000), v=st.sampled_from([2, 4, 8]))
    def test_maxima_property(self, seed, v):
        pts = np.random.default_rng(seed).random((150, 3))
        res = geo.maxima_3d(pts, geo_cfg(v), engine="memory")
        assert np.array_equal(res.values, maxima_3d_reference(pts))


class TestAllNearestNeighbors:
    @pytest.mark.parametrize("kind", all_engine_kinds())
    def test_engines_match_kdtree(self, kind, rng):
        pts = rng.random((300, 2))
        cfg = cfg_for(kind, geo_cfg())
        res = geo.all_nearest_neighbors(pts, cfg, engine=kind)
        d, i = cKDTree(pts).query(pts, k=2)
        assert np.allclose(res.values["dist"], d[:, 1])
        assert np.array_equal(res.values["nn"], i[:, 1])

    def test_clustered_input_cross_slab_neighbours(self, rng):
        """Two tight clusters on either side of a slab boundary: the NN
        must be found across slabs."""
        left = rng.normal([0.49, 0.5], 0.001, (50, 2))
        right = rng.normal([0.51, 0.5], 0.001, (50, 2))
        spread = rng.random((100, 2)) * np.array([10, 1])
        pts = np.vstack([left, right, spread])
        res = geo.all_nearest_neighbors(pts, geo_cfg(), engine="memory")
        d, i = cKDTree(pts).query(pts, k=2)
        assert np.allclose(res.values["dist"], d[:, 1])

    def test_collinear_points(self):
        pts = np.column_stack((np.arange(40, dtype=float), np.zeros(40)))
        res = geo.all_nearest_neighbors(pts, geo_cfg(), engine="memory")
        assert np.allclose(res.values["dist"], 1.0)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000), v=st.sampled_from([2, 4, 8]))
    def test_nn_property(self, seed, v):
        pts = np.random.default_rng(seed).random((120, 2))
        res = geo.all_nearest_neighbors(pts, geo_cfg(v), engine="memory")
        d, _ = cKDTree(pts).query(pts, k=2)
        assert np.allclose(res.values["dist"], d[:, 1])


class TestDominance:
    @pytest.mark.parametrize("kind", all_engine_kinds())
    def test_engines_match_bruteforce(self, kind, rng):
        pts = rng.random((250, 2))
        w = rng.random(250)
        cfg = cfg_for(kind, geo_cfg())
        res = geo.dominance_counts(pts, w, cfg, engine=kind)
        assert np.allclose(res.values, dominance_reference(pts, w))

    def test_unit_weights_are_counts(self, rng):
        pts = rng.random((200, 2))
        res = geo.dominance_counts(pts, np.ones(200), geo_cfg(), engine="memory")
        ref = dominance_reference(pts, np.ones(200))
        assert np.allclose(res.values, ref)
        assert res.values.min() == 0  # the lexicographic minimum dominates nobody

    def test_sorted_staircase_input(self):
        pts = np.column_stack((np.arange(64, dtype=float), np.arange(64, dtype=float)))
        pts += np.random.default_rng(0).normal(scale=1e-9, size=pts.shape)
        res = geo.dominance_counts(pts, np.ones(64), geo_cfg(), engine="memory")
        assert np.allclose(np.sort(res.values), np.arange(64))

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000), v=st.sampled_from([2, 4, 8]))
    def test_dominance_property(self, seed, v):
        rng = np.random.default_rng(seed)
        pts = rng.random((130, 2))
        w = rng.random(130)
        res = geo.dominance_counts(pts, w, geo_cfg(v), engine="memory")
        assert np.allclose(res.values, dominance_reference(pts, w))


class TestConvexHull:
    @pytest.mark.parametrize("kind", all_engine_kinds())
    def test_hull_2d(self, kind, rng):
        pts = rng.random((500, 2))
        cfg = cfg_for(kind, geo_cfg())
        res = geo.convex_hull_2d(pts, cfg, engine=kind)
        assert np.array_equal(res.values, np.sort(ConvexHull(pts).vertices))

    def test_hull_3d(self, rng):
        pts = rng.random((500, 3))
        res = geo.convex_hull_3d(pts, geo_cfg(), engine="memory")
        assert np.array_equal(res.values, np.sort(ConvexHull(pts).vertices))

    def test_hull_points_on_circle_all_extreme(self):
        t = np.linspace(0, 2 * np.pi, 64, endpoint=False)
        pts = np.column_stack((np.cos(t), np.sin(t)))
        res = geo.convex_hull_2d(pts, geo_cfg(), engine="memory")
        assert np.array_equal(res.values, np.arange(64))

    def test_hull_filter_shrinks_communication(self, rng):
        """The local filter must send far fewer points than N."""
        pts = rng.normal(size=(2000, 2))
        res = geo.convex_hull_2d(pts, geo_cfg(), engine="memory")
        assert res.reports[0].comm_items < 2000

    def test_gaussian_cloud_3d(self, rng):
        pts = rng.normal(size=(800, 3))
        res = geo.convex_hull_3d(pts, geo_cfg(), engine="memory")
        assert np.array_equal(res.values, np.sort(ConvexHull(pts).vertices))


class TestDelaunay:
    @pytest.mark.parametrize("kind", ["memory", "seq"])
    def test_exact_triangulation(self, kind, rng):
        pts = rng.random((600, 2))
        cfg = cfg_for(kind, geo_cfg())
        res = geo.delaunay_2d(pts, cfg, engine=kind)
        ref = {tuple(sorted(map(int, t))) for t in Delaunay(pts).simplices}
        assert {tuple(t) for t in res.values} == ref

    def test_no_fallback_on_uniform_points(self, rng):
        pts = rng.random((800, 2))
        res = geo.delaunay_2d(pts, geo_cfg(), engine="memory")
        assert not res.extra["fallback"]

    def test_fallback_still_exact_with_tiny_strips(self, rng):
        pts = rng.random((400, 2))
        res = geo.delaunay_2d(pts, geo_cfg(), engine="memory", strip_factor=0.2)
        ref = {tuple(sorted(map(int, t))) for t in Delaunay(pts).simplices}
        assert {tuple(t) for t in res.values} == ref

    def test_clustered_points(self, rng):
        a = rng.normal([0, 0], 0.05, (150, 2))
        b = rng.normal([3, 1], 0.05, (150, 2))
        pts = np.vstack([a, b])
        res = geo.delaunay_2d(pts, geo_cfg(), engine="memory")
        ref = {tuple(sorted(map(int, t))) for t in Delaunay(pts).simplices}
        assert {tuple(t) for t in res.values} == ref

    def test_euler_relation(self, rng):
        pts = rng.random((300, 2))
        res = geo.delaunay_2d(pts, geo_cfg(), engine="memory")
        h = len(ConvexHull(pts).vertices)
        assert len(res.values) == 2 * 300 - 2 - h

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 500), v=st.sampled_from([2, 4, 8]))
    def test_delaunay_property(self, seed, v):
        pts = np.random.default_rng(seed).random((250, 2))
        res = geo.delaunay_2d(pts, geo_cfg(v), engine="memory")
        ref = {tuple(sorted(map(int, t))) for t in Delaunay(pts).simplices}
        assert {tuple(t) for t in res.values} == ref
