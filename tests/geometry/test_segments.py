"""Tests for segment/rectangle Group B algorithms: lower envelope, union
area, trapezoidal decomposition, point location, segment tree stabbing,
and separability."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.algorithms.geometry as geo
from repro.algorithms.geometry.envelope import lower_envelope_reference, segment_y_at
from repro.algorithms.geometry.segtree import SegmentTree, stabbing_reference
from repro.algorithms.geometry.trapezoid import point_location_reference
from repro.algorithms.geometry.measure import union_area_sweep
from repro.cgm.config import MachineConfig

from tests.conftest import all_engine_kinds, cfg_for


def geo_cfg(v: int = 4) -> MachineConfig:
    return MachineConfig(N=4000, v=v, B=32)


def nearly_horizontal_segments(rng, n: int, span: float = 10.0) -> np.ndarray:
    """Non-crossing-ish random segments (distinct y levels, small slope)."""
    segs = []
    levels = np.linspace(0, span, n) + rng.uniform(-0.01, 0.01, n)
    for k in range(n):
        x1 = rng.uniform(0, span)
        x2 = x1 + rng.uniform(0.5, 3.0)
        y = levels[k]
        segs.append((x1, y, x2, y + rng.uniform(-0.005, 0.005)))
    return np.array(segs)


class TestLowerEnvelope:
    @pytest.mark.parametrize("kind", ["memory", "seq"])
    def test_pieces_match_reference(self, kind, rng):
        segs = nearly_horizontal_segments(rng, 50)
        cfg = cfg_for(kind, geo_cfg())
        res = geo.lower_envelope(segs, cfg, engine=kind)
        segs_id = np.column_stack((segs, np.arange(len(segs))))
        for x0, x1, sid in res.values:
            mid = np.array([(x0 + x1) / 2])
            assert lower_envelope_reference(segs_id, mid)[0] == int(sid)

    def test_pieces_are_disjoint_and_sorted(self, rng):
        segs = nearly_horizontal_segments(rng, 40)
        res = geo.lower_envelope(segs, geo_cfg(), engine="memory")
        p = res.values
        assert (np.diff(p[:, 0]) >= -1e-12).all()
        assert (p[:, 1] >= p[:, 0]).all()
        for a, b in zip(p[:-1], p[1:]):
            assert a[1] <= b[0] + 1e-9

    def test_single_segment(self):
        segs = np.array([[0.0, 1.0, 5.0, 1.0]])
        res = geo.lower_envelope(segs, geo_cfg(), engine="memory")
        covered = res.values[res.values[:, 2] >= 0]
        assert covered.shape[0] >= 1
        assert covered[0][2] == 0

    def test_gap_between_segments_marked_uncovered(self):
        segs = np.array([[0.0, 1.0, 1.0, 1.0], [3.0, 1.0, 4.0, 1.0]])
        res = geo.lower_envelope(segs, MachineConfig(N=100, v=2, B=8), engine="memory")
        gaps = res.values[res.values[:, 2] < 0]
        assert any(abs(g[0] - 1.0) < 1e-9 and abs(g[1] - 3.0) < 1e-9 for g in gaps)


class TestUnionArea:
    @pytest.mark.parametrize("kind", all_engine_kinds())
    def test_matches_sequential_sweep(self, kind, rng):
        rects = []
        for _ in range(60):
            x1, y1 = rng.uniform(0, 8, 2)
            rects.append((x1, y1, x1 + rng.uniform(0.2, 2), y1 + rng.uniform(0.2, 2)))
        rects = np.array(rects)
        cfg = cfg_for(kind, geo_cfg())
        res = geo.union_area(rects, cfg, engine=kind)
        assert res.values == pytest.approx(union_area_sweep(rects))

    def test_disjoint_rectangles_sum(self):
        rects = np.array([[0, 0, 1, 1], [2, 0, 3, 2], [5, 5, 6, 6]], dtype=float)
        res = geo.union_area(rects, geo_cfg(), engine="memory")
        assert res.values == pytest.approx(1 + 2 + 1)

    def test_nested_rectangles(self):
        rects = np.array([[0, 0, 4, 4], [1, 1, 2, 2]], dtype=float)
        res = geo.union_area(rects, geo_cfg(), engine="memory")
        assert res.values == pytest.approx(16.0)

    def test_identical_rectangles(self):
        rects = np.array([[0, 0, 2, 3]] * 5, dtype=float)
        res = geo.union_area(rects, geo_cfg(), engine="memory")
        assert res.values == pytest.approx(6.0)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000), v=st.sampled_from([2, 4, 8]))
    def test_union_area_property(self, seed, v):
        rng = np.random.default_rng(seed)
        rects = []
        for _ in range(40):
            x1, y1 = rng.uniform(0, 5, 2)
            rects.append((x1, y1, x1 + rng.uniform(0.1, 2), y1 + rng.uniform(0.1, 2)))
        rects = np.array(rects)
        res = geo.union_area(rects, geo_cfg(v), engine="memory")
        assert res.values == pytest.approx(union_area_sweep(rects))

    def test_sweep_reference_basics(self):
        assert union_area_sweep(np.zeros((0, 4))) == 0.0
        assert union_area_sweep(np.array([[0, 0, 1, 1], [0.5, 0, 1.5, 1]])) == pytest.approx(1.5)


class TestTrapezoids:
    def test_every_trapezoid_is_vertically_adjacent_pair(self, rng):
        segs = nearly_horizontal_segments(rng, 30)
        segs_id = np.column_stack((segs, np.arange(len(segs))))
        res = geo.trapezoidal_decomposition(segs, geo_cfg(), engine="memory")
        for x0, x1, below, above in res.values:
            mid = np.array([(x0 + x1) / 2])
            ys = segment_y_at(segs_id, mid)[:, 0]
            covering = np.isfinite(ys)
            stack = segs_id[covering][np.argsort(ys[covering])][:, 4].astype(int).tolist()
            walls = [-1] + stack + [-1]
            assert (int(below), int(above)) in list(zip(walls[:-1], walls[1:]))

    def test_single_segment_three_trapezoids(self):
        segs = np.array([[0.0, 1.0, 2.0, 1.0]])
        res = geo.trapezoidal_decomposition(segs, MachineConfig(N=64, v=2, B=8), engine="memory")
        pairs = {(int(b), int(a)) for _x0, _x1, b, a in res.values}
        assert (-1, 0) in pairs and (0, -1) in pairs

    def test_trapezoid_count_linear(self, rng):
        segs = nearly_horizontal_segments(rng, 40)
        res = geo.trapezoidal_decomposition(segs, geo_cfg(), engine="memory")
        # O(n) trapezoids per slab boundary structure: generous linear cap
        assert res.values.shape[0] <= 30 * len(segs)


class TestPointLocation:
    @pytest.mark.parametrize("kind", ["memory", "seq"])
    def test_matches_bruteforce(self, kind, rng):
        segs = nearly_horizontal_segments(rng, 40)
        qs = rng.uniform(0, 10, (80, 2))
        cfg = cfg_for(kind, geo_cfg())
        res = geo.point_location(segs, qs, cfg, engine=kind)
        segs_id = np.column_stack((segs, np.arange(len(segs))))
        qrows = np.column_stack((qs, np.arange(len(qs))))
        assert np.array_equal(res.values, point_location_reference(segs_id, qrows))

    def test_query_below_everything(self):
        segs = np.array([[0.0, 5.0, 10.0, 5.0]])
        qs = np.array([[5.0, 1.0]])
        res = geo.point_location(segs, qs, geo_cfg(), engine="memory")
        assert res.values[0] == -1

    def test_query_above_segment(self):
        segs = np.array([[0.0, 5.0, 10.0, 5.0]])
        qs = np.array([[5.0, 7.0]])
        res = geo.point_location(segs, qs, geo_cfg(), engine="memory")
        assert res.values[0] == 0


class TestSegmentTree:
    def test_sequential_tree_matches_bruteforce(self, rng):
        ivals = np.sort(rng.uniform(0, 10, (50, 2)), axis=1)
        rows = np.column_stack((ivals, np.arange(50)))
        tree = SegmentTree(rows)
        for x in rng.uniform(-1, 11, 60):
            assert tree.stab(float(x)) == stabbing_reference(rows, [x])[0]

    def test_stab_outside_range_empty(self):
        tree = SegmentTree(np.array([[1.0, 2.0, 0.0]]))
        assert tree.stab(0.5) == []
        assert tree.stab(2.5) == []
        assert tree.stab(1.5) == [0]

    def test_empty_tree(self):
        tree = SegmentTree(np.zeros((0, 3)))
        assert tree.stab(1.0) == []

    @pytest.mark.parametrize("kind", ["memory", "seq"])
    def test_distributed_stabbing(self, kind, rng):
        ivals = np.sort(rng.uniform(0, 10, (60, 2)), axis=1)
        xs = rng.uniform(0, 10, 40)
        cfg = cfg_for(kind, geo_cfg())
        res = geo.stabbing_queries(ivals, xs, cfg, engine=kind)
        rows = np.column_stack((ivals, np.arange(60)))
        assert res.values == stabbing_reference(rows, xs)

    def test_nested_intervals(self):
        ivals = np.array([[0, 10], [1, 9], [2, 8], [3, 7]], dtype=float)
        res = geo.stabbing_queries(ivals, np.array([5.0]), geo_cfg(), engine="memory")
        assert res.values[0] == [0, 1, 2, 3]


class TestSeparability:
    def test_unidirectional_separable(self, rng):
        A = rng.random((100, 2))
        B = rng.random((100, 2)) + np.array([5.0, 0.0])
        res = geo.unidirectional_separable(A, B, (1, 0), geo_cfg(), engine="memory")
        assert res.values is True
        assert res.extra["gap"] > 3.5

    def test_unidirectional_not_separable_in_y(self, rng):
        A = rng.random((100, 2))
        B = rng.random((100, 2)) + np.array([5.0, 0.0])
        res = geo.unidirectional_separable(A, B, (0, 1), geo_cfg(), engine="memory")
        assert res.values is False

    def test_multidirectional_witness_actually_separates(self, rng):
        A = rng.random((150, 2))
        B = rng.random((150, 2)) + np.array([2.0, 2.0])
        res = geo.separability_directions(A, B, geo_cfg(), engine="memory")
        assert res.values is True
        d = res.extra["witness"]
        assert (A @ d).max() < (B @ d).min()

    def test_overlapping_sets_not_separable(self, rng):
        A = rng.random((150, 2))
        B = rng.random((150, 2)) + np.array([0.2, 0.0])
        res = geo.separability_directions(A, B, geo_cfg(), engine="memory")
        assert res.values is False

    def test_arc_directions_all_separate(self, rng):
        A = rng.random((80, 2))
        B = rng.random((80, 2)) + np.array([4.0, 0.0])
        res = geo.separability_directions(A, B, geo_cfg(), engine="memory")
        lo, hi = res.extra["arc"]
        for t in np.linspace(lo, hi, 7):
            d = np.array([np.cos(t), np.sin(t)])
            # d points from B toward A: A-side support negative on A-B
            assert (A @ d).max() < (B @ d).min() + 1e-9
