"""Tests for Group A of Figure 5: sorting, permutation, matrix transpose —
correctness on every backend, adversarial inputs, property-based checks,
and the paper's I/O claims."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgm.config import MachineConfig
from repro.core.theory import predicted_parallel_ios
from repro.em.runner import em_permute, em_sort, em_transpose

from tests.conftest import all_engine_kinds, cfg_for


def base_cfg(n: int, v: int = 8) -> MachineConfig:
    return MachineConfig(N=n, v=v, D=2, B=64)


class TestSortCorrectness:
    @pytest.mark.parametrize("kind", all_engine_kinds())
    def test_random_input(self, kind, rng):
        n = 1 << 13
        data = rng.integers(-(2**40), 2**40, n)
        cfg = cfg_for(kind, base_cfg(n))
        out = em_sort(data, cfg, engine=kind)
        assert np.array_equal(out.values, np.sort(data))

    def test_already_sorted(self):
        n = 4096
        data = np.arange(n)
        out = em_sort(data, base_cfg(n), engine="seq")
        assert np.array_equal(out.values, data)

    def test_reverse_sorted(self):
        n = 4096
        data = np.arange(n)[::-1].copy()
        out = em_sort(data, base_cfg(n), engine="seq")
        assert np.array_equal(out.values, np.arange(n))

    def test_all_equal_keys(self):
        """Degenerate splitters: every sample identical."""
        n = 4096
        data = np.full(n, 7)
        out = em_sort(data, base_cfg(n), engine="seq")
        assert np.array_equal(out.values, data)

    def test_few_distinct_keys(self, rng):
        n = 4096
        data = rng.integers(0, 3, n)
        out = em_sort(data, base_cfg(n), engine="seq")
        assert np.array_equal(out.values, np.sort(data))

    def test_floats(self, rng):
        n = 4096
        data = rng.normal(size=n)
        out = em_sort(data, base_cfg(n), engine="memory")
        assert np.array_equal(out.values, np.sort(data))

    def test_balanced_mode(self, rng):
        n = 1 << 13
        data = rng.integers(0, 2**30, n)
        out = em_sort(data, base_cfg(n), engine="seq", balanced=True)
        assert np.array_equal(out.values, np.sort(data))

    def test_n_not_divisible_by_v(self, rng):
        n = 5000  # not a multiple of 8
        data = rng.integers(0, 10**6, n)
        out = em_sort(data, base_cfg(n), engine="seq")
        assert np.array_equal(out.values, np.sort(data))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        v=st.sampled_from([2, 4, 8, 16]),
        n=st.integers(1000, 20_000),
    )
    def test_sort_property(self, seed, v, n):
        data = np.random.default_rng(seed).integers(0, 2**50, n)
        out = em_sort(data, MachineConfig(N=n, v=v, B=32), engine="memory")
        assert np.array_equal(out.values, np.sort(data))

    def test_output_balance(self, rng):
        """Regular sampling: no processor receives more than ~2N/v."""
        n = 1 << 14
        v = 8
        data = rng.integers(0, 2**40, n)
        out = em_sort(data, base_cfg(n, v), engine="memory")
        sizes = [o.size for o in out.result.outputs]
        assert max(sizes) <= 2 * n // v + v

    def test_constant_rounds(self, rng):
        """lambda = O(1): 4 communication rounds + quiescence check."""
        for n in (1 << 12, 1 << 15):
            out = em_sort(rng.integers(0, 2**40, n), base_cfg(n), engine="memory")
            assert out.report.rounds <= 5


class TestSortIOComplexity:
    def test_io_linear_in_n(self, rng):
        """Doubling N should roughly double parallel I/Os (no log factor)."""
        ios = []
        for n in (1 << 13, 1 << 14, 1 << 15):
            data = rng.integers(0, 2**40, n)
            out = em_sort(data, base_cfg(n), engine="seq")
            ios.append(out.report.io.parallel_ios)
        r1 = ios[1] / ios[0]
        r2 = ios[2] / ios[1]
        assert 1.6 < r1 < 2.4
        assert 1.6 < r2 < 2.4

    def test_more_disks_fewer_ios(self, rng):
        n = 1 << 14
        data = rng.integers(0, 2**40, n)
        io_by_D = {}
        for D in (1, 2, 4):
            out = em_sort(data, MachineConfig(N=n, v=8, D=D, B=64), engine="seq")
            io_by_D[D] = out.report.io.parallel_ios
        assert io_by_D[2] < 0.62 * io_by_D[1]
        assert io_by_D[4] < 0.62 * io_by_D[2]

    def test_io_matches_theorem3_prediction(self, rng):
        """Measured parallel I/Os within a small constant of Theorem 3's
        (v/p) * lambda * (mu + h) / (DB)."""
        n = 1 << 15
        cfg = base_cfg(n)
        out = em_sort(rng.integers(0, 2**40, n), cfg, engine="seq")
        predicted = predicted_parallel_ios(
            cfg.v, cfg.p, cfg.D, cfg.B, out.report.rounds, cfg.mu, cfg.h
        )
        measured = out.report.io.parallel_ios
        assert measured <= 4 * predicted
        assert measured >= predicted / 4

    def test_disk_utilization_high(self, rng):
        """The staggered layout should keep most I/Os fully D-parallel."""
        n = 1 << 15
        out = em_sort(rng.integers(0, 2**40, n), base_cfg(n), engine="seq")
        assert out.report.io.utilization(2) > 0.8


class TestPermutation:
    @pytest.mark.parametrize("kind", all_engine_kinds())
    def test_random_permutation(self, kind, rng):
        n = 1 << 13
        values = rng.integers(0, 2**40, n)
        perm = rng.permutation(n)
        cfg = cfg_for(kind, base_cfg(n))
        out = em_permute(values, perm, cfg, engine=kind)
        expect = np.zeros(n, dtype=np.int64)
        expect[perm] = values
        assert np.array_equal(out.values, expect)

    def test_identity(self, rng):
        n = 4096
        values = rng.integers(0, 100, n)
        out = em_permute(values, np.arange(n), base_cfg(n), engine="seq")
        assert np.array_equal(out.values, values)

    def test_reversal(self, rng):
        n = 4096
        values = rng.integers(0, 100, n)
        out = em_permute(values, np.arange(n)[::-1].copy(), base_cfg(n), engine="seq")
        assert np.array_equal(out.values, values[::-1])

    def test_single_round(self, rng):
        n = 4096
        out = em_permute(
            rng.integers(0, 9, n), np.random.default_rng(1).permutation(n),
            base_cfg(n), engine="memory",
        )
        assert out.report.rounds <= 2

    def test_mismatched_lengths_rejected(self):
        from repro.util.validation import ConfigurationError

        with pytest.raises(ConfigurationError):
            em_permute(np.arange(10), np.arange(9), base_cfg(10, v=1))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), v=st.sampled_from([2, 4, 8]))
    def test_permutation_property(self, seed, v):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(500, 5000))
        values = rng.integers(0, 2**40, n)
        perm = rng.permutation(n)
        out = em_permute(values, perm, MachineConfig(N=n, v=v, B=32), engine="memory")
        expect = np.zeros(n, dtype=np.int64)
        expect[perm] = values
        assert np.array_equal(out.values, expect)


class TestTranspose:
    @pytest.mark.parametrize("kind", all_engine_kinds())
    def test_rectangular(self, kind, rng):
        k, ell = 96, 160
        mat = rng.integers(0, 10**6, (k, ell))
        cfg = cfg_for(kind, base_cfg(mat.size))
        out = em_transpose(mat, cfg, engine=kind)
        assert np.array_equal(out.values, mat.T)

    def test_square(self, rng):
        mat = rng.integers(0, 100, (64, 64))
        out = em_transpose(mat, base_cfg(mat.size), engine="seq")
        assert np.array_equal(out.values, mat.T)

    def test_tall_thin(self, rng):
        mat = rng.integers(0, 100, (4096, 2))
        out = em_transpose(mat, base_cfg(mat.size), engine="seq")
        assert np.array_equal(out.values, mat.T)

    def test_short_wide(self, rng):
        mat = rng.integers(0, 100, (2, 4096))
        out = em_transpose(mat, base_cfg(mat.size), engine="seq")
        assert np.array_equal(out.values, mat.T)

    def test_single_row(self, rng):
        mat = rng.integers(0, 100, (1, 512))
        out = em_transpose(mat, MachineConfig(N=512, v=4, B=16), engine="memory")
        assert np.array_equal(out.values, mat.T)

    def test_fewer_rows_than_procs(self, rng):
        mat = rng.integers(0, 100, (3, 1024))
        out = em_transpose(mat, MachineConfig(N=mat.size, v=8, B=16), engine="memory")
        assert np.array_equal(out.values, mat.T)

    def test_not_2d_rejected(self):
        from repro.util.validation import ConfigurationError

        with pytest.raises(ConfigurationError):
            em_transpose(np.arange(10), base_cfg(10, v=1))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_transpose_property(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 80))
        ell = int(rng.integers(1, 80))
        mat = rng.integers(0, 2**40, (k, ell))
        out = em_transpose(
            mat, MachineConfig(N=mat.size, v=4, B=16), engine="memory"
        )
        assert np.array_equal(out.values, mat.T)

    def test_double_transpose_identity(self, rng):
        mat = rng.integers(0, 100, (48, 80))
        cfg = base_cfg(mat.size)
        once = em_transpose(mat, cfg, engine="seq").values
        cfg2 = base_cfg(mat.size)
        twice = em_transpose(once, cfg2, engine="seq").values
        assert np.array_equal(twice, mat)
