"""Tests for collective patterns and partitioning helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.collectives import (
    AllGather,
    AllToAll,
    Broadcast,
    PrefixSum,
    bucket_by_dest,
    owner_of_index,
    partition_array,
    slice_bounds,
)
from repro.cgm.config import MachineConfig
from repro.em.runner import make_engine

from tests.conftest import all_engine_kinds, cfg_for


class TestPartitioning:
    @given(n=st.integers(0, 1000), v=st.integers(1, 32))
    def test_partition_covers_and_balances(self, n, v):
        arr = np.arange(n)
        parts = partition_array(arr, v)
        assert len(parts) == v
        assert np.array_equal(np.concatenate(parts) if parts else arr, arr)
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1

    @given(n=st.integers(1, 1000), v=st.integers(1, 32))
    def test_slice_bounds_match_partition(self, n, v):
        arr = np.arange(n)
        parts = partition_array(arr, v)
        for pid in range(v):
            lo, hi = slice_bounds(n, v, pid)
            assert np.array_equal(parts[pid], arr[lo:hi])

    @given(n=st.integers(1, 500), v=st.integers(1, 16))
    def test_owner_of_index_consistent(self, n, v):
        for idx in range(n):
            owner = owner_of_index(idx, n, v)
            lo, hi = slice_bounds(n, v, int(owner))
            assert lo <= idx < hi

    def test_owner_vectorized_matches_scalar(self):
        n, v = 103, 7
        idx = np.arange(n)
        owners = owner_of_index(idx, n, v)
        assert all(owners[i] == owner_of_index(i, n, v) for i in range(n))

    def test_bucket_by_dest_grouping(self):
        dests = np.array([2, 0, 2, 1, 0])
        rows = np.arange(10).reshape(5, 2)
        out = bucket_by_dest(dests, rows, v=3)
        assert set(out) == {0, 1, 2}
        assert np.array_equal(out[0], rows[[1, 4]])
        assert np.array_equal(out[1], rows[[3]])
        assert np.array_equal(out[2], rows[[0, 2]])

    def test_bucket_by_dest_omits_empty(self):
        out = bucket_by_dest(np.array([1, 1]), np.array([[1], [2]]), v=4)
        assert set(out) == {1}


@pytest.mark.parametrize("kind", all_engine_kinds())
class TestCollectivePrograms:
    def base_cfg(self) -> MachineConfig:
        return MachineConfig(N=1 << 12, v=8, D=2, B=32)

    def test_broadcast(self, kind):
        cfg = cfg_for(kind, self.base_cfg())
        inputs = ["the-value" if pid == 3 else None for pid in range(8)]
        res = make_engine(cfg, kind).run(Broadcast(root=3), inputs)
        assert res.outputs == ["the-value"] * 8

    def test_all_gather(self, kind):
        cfg = cfg_for(kind, self.base_cfg())
        res = make_engine(cfg, kind).run(AllGather(), list(range(8)))
        assert res.outputs == [list(range(8))] * 8

    def test_prefix_sum(self, kind):
        cfg = cfg_for(kind, self.base_cfg())
        vals = [float(x) for x in [5, 1, 4, 2, 8, 0, 3, 7]]
        res = make_engine(cfg, kind).run(PrefixSum(), vals)
        expect = [sum(vals[:i]) for i in range(8)]
        assert res.outputs == pytest.approx(expect)

    def test_all_to_all(self, kind):
        cfg = cfg_for(kind, self.base_cfg())
        res = make_engine(cfg, kind).run(AllToAll(), [None] * 8)
        for pid, received in enumerate(res.outputs):
            assert set(received) == set(range(8))
            for src, payload in received.items():
                assert payload == (src, pid)


class TestAllToAllBalanced:
    @settings(max_examples=10, deadline=None)
    @given(v=st.sampled_from([2, 4, 8]))
    def test_balanced_equals_direct(self, v):
        cfg = MachineConfig(N=1 << 12, v=v, D=2, B=32)
        def payload(pid, dest):
            return np.arange(pid * 31 + dest * 7 + 1)

        direct = make_engine(cfg, "seq").run(AllToAll(payload), [None] * v)
        bal = make_engine(cfg, "seq", balanced=True).run(AllToAll(payload), [None] * v)
        for a, b in zip(direct.outputs, bal.outputs):
            assert set(a) == set(b)
            for src in a:
                assert np.array_equal(a[src], b[src])
