"""Tuned-profile documents: schema, fingerprint, and load errors."""

from __future__ import annotations

import json

import pytest

from repro.tune.profile import (
    KIND,
    SCHEMA_VERSION,
    TunedProfile,
    config_from_profile,
    load_profile,
    profile_fingerprint,
    stable_env_fingerprint,
    validate_profile,
)
from repro.util.validation import ConfigurationError


def _profile() -> TunedProfile:
    return TunedProfile(
        workload={"op": "sort", "n": 4096, "p": 1, "seed": 0},
        machine={"v": 4, "B": 512, "D": 4},
        config={"workers": 0, "fastpath": "on", "arena": "ram",
                "prefetch": True, "shm_bytes": 65536},
        rationale=["probe: ..."],
        search={"candidates": 27},
    )


def test_document_is_valid_and_fingerprinted():
    doc = _profile().document()
    assert validate_profile(doc) == []
    assert doc["schema_version"] == SCHEMA_VERSION
    assert doc["kind"] == KIND
    assert doc["fingerprint"] == profile_fingerprint(doc["workload"], doc["env"])


def test_stable_env_fingerprint_has_no_argv0():
    assert "argv0" not in stable_env_fingerprint()


def test_dumps_is_canonical():
    text = _profile().dumps()
    assert text.endswith("\n")
    assert json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n" == text


def test_save_and_load_roundtrip(tmp_path):
    path = str(tmp_path / "p.json")
    _profile().save(path)
    doc = load_profile(path)
    assert validate_profile(doc) == []
    assert config_from_profile(doc)["fastpath"] == "on"


def test_validate_rejects_non_object():
    assert validate_profile([1, 2])
    assert validate_profile(None)


def test_validate_names_missing_keys():
    doc = _profile().document()
    del doc["machine"]
    assert any("machine" in e for e in validate_profile(doc))


def test_validate_rejects_wrong_schema_version():
    doc = _profile().document()
    doc["schema_version"] = 99
    assert any("schema_version" in e for e in validate_profile(doc))


def test_validate_rejects_bad_machine_shape():
    doc = _profile().document()
    doc["machine"]["v"] = 0
    assert any("machine.v" in e for e in validate_profile(doc))
    doc = _profile().document()
    doc["machine"]["D"] = True
    assert any("machine.D" in e for e in validate_profile(doc))


def test_validate_rejects_unknown_and_malformed_knobs():
    doc = _profile().document()
    doc["config"]["bogus"] = 1
    assert any("config.bogus" in e for e in validate_profile(doc))
    doc = _profile().document()
    doc["config"]["fastpath"] = "sideways"
    assert any("config.fastpath" in e for e in validate_profile(doc))


def test_validate_rejects_fingerprint_mismatch():
    doc = _profile().document()
    doc["workload"]["n"] = 8192  # edit after fingerprinting
    assert any("fingerprint" in e for e in validate_profile(doc))


def test_load_errors_are_configuration_errors(tmp_path):
    with pytest.raises(ConfigurationError, match="cannot read"):
        load_profile(str(tmp_path / "missing.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        load_profile(str(bad))
    tampered = tmp_path / "tampered.json"
    doc = _profile().document()
    doc["fingerprint"] = "0" * 64
    tampered.write_text(json.dumps(doc))
    with pytest.raises(ConfigurationError, match="invalid tuned profile"):
        load_profile(str(tampered))
