"""RuntimeConfig resolution: precedence and per-run snapshot consistency.

The ISSUE's second bugfix: knob state used to be read at different times
by different subsystems (``REPRO_FASTPATH`` followed a mid-process flip
while the arena choice, cached at import, did not), so back-to-back runs
could observe a half-applied environment.  Engines now resolve one
frozen snapshot per run; the regression tests here flip knobs between
runs and assert each run was internally consistent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort, make_engine
from repro.pdm.arena import TrackArena
from repro.pdm.mmap_arena import MmapTrackArena
from repro.tune.knobs import DEFAULT_AUTO_BLOCKS, DEFAULT_SHM_THRESHOLD, KnobError
from repro.tune.runtime import RuntimeConfig, apply_to_env, current


class TestResolve:
    def test_all_defaults(self):
        rt = RuntimeConfig.resolve(environ={})
        assert rt == RuntimeConfig()
        assert rt.workers == 0
        assert rt.fastpath == "on"
        assert rt.arena == "ram"
        assert rt.shm_bytes == DEFAULT_SHM_THRESHOLD

    def test_env_beats_default(self):
        rt = RuntimeConfig.resolve(environ={"REPRO_WORKERS": "3"})
        assert rt.workers == 3

    def test_profile_beats_default(self):
        rt = RuntimeConfig.resolve(profile={"arena": "mmap"}, environ={})
        assert rt.arena == "mmap"

    def test_env_beats_profile(self):
        rt = RuntimeConfig.resolve(
            profile={"arena": "mmap"}, environ={"REPRO_ARENA": "ram"}
        )
        assert rt.arena == "ram"

    def test_override_beats_env(self):
        rt = RuntimeConfig.resolve(
            overrides={"workers": 4}, environ={"REPRO_WORKERS": "2"}
        )
        assert rt.workers == 4

    def test_none_override_is_ignored(self):
        rt = RuntimeConfig.resolve(
            overrides={"workers": None}, environ={"REPRO_WORKERS": "2"}
        )
        assert rt.workers == 2

    def test_string_overrides_are_parsed(self):
        rt = RuntimeConfig.resolve(overrides={"fastpath": "auto:7"}, environ={})
        assert rt.fastpath == "auto:7"
        with pytest.raises(KnobError, match="REPRO_FASTPATH"):
            RuntimeConfig.resolve(overrides={"fastpath": "sideways"}, environ={})

    def test_unknown_keys_are_named_errors(self):
        with pytest.raises(KnobError, match="bogus"):
            RuntimeConfig.resolve(profile={"bogus": 1}, environ={})
        with pytest.raises(KnobError, match="bogus"):
            RuntimeConfig.resolve(overrides={"bogus": 1}, environ={})

    def test_malformed_env_is_a_named_error(self):
        with pytest.raises(KnobError, match="REPRO_ARENA"):
            RuntimeConfig.resolve(environ={"REPRO_ARENA": "tape"})

    def test_empty_env_value_means_unset(self):
        rt = RuntimeConfig.resolve(environ={"REPRO_WORKERS": "  "})
        assert rt.workers == 0


class TestDerivedProperties:
    def test_fastpath_mode_and_threshold(self):
        assert RuntimeConfig(fastpath="on").fastpath_mode == "on"
        assert RuntimeConfig(fastpath="auto").fastpath_mode == "auto"
        assert RuntimeConfig(fastpath="auto").fastpath_auto_blocks == (
            DEFAULT_AUTO_BLOCKS
        )
        assert RuntimeConfig(fastpath="auto:9").fastpath_auto_blocks == 9

    def test_storage_follows_mode_not_dispatch(self):
        # auto keeps arena-backed storage so supersteps can flip paths
        # over the same bytes
        assert RuntimeConfig(fastpath="auto").fastpath_storage
        assert RuntimeConfig(fastpath="on").fastpath_storage
        assert not RuntimeConfig(fastpath="off").fastpath_storage

    def test_shm_threshold_gated_by_fastpath(self):
        assert RuntimeConfig(fastpath="off").shm_threshold is None
        assert RuntimeConfig(shm_bytes=4096).shm_threshold == 4096

    def test_knob_values_roundtrip_through_resolve(self):
        rt = RuntimeConfig(workers=2, fastpath="auto:5", arena="mmap")
        again = RuntimeConfig.resolve(profile=rt.knob_values(), environ={})
        assert again == rt


def test_current_is_uncached(monkeypatch):
    assert current().arena == "ram"
    monkeypatch.setenv("REPRO_ARENA", "mmap")
    assert current().arena == "mmap"


def test_apply_to_env_roundtrip(monkeypatch):
    rt = RuntimeConfig(workers=2, fastpath="auto:5", arena="mmap", prefetch=False)
    apply_to_env(rt)
    assert current() == rt
    apply_to_env(RuntimeConfig())
    assert current() == RuntimeConfig()


# ------------------------------------------------- per-run snapshot regression


def _engine_snapshot_state(eng):
    """(arena kind, fastpath storage) the run actually used."""
    arr = next(iter(eng.arrays.values()))
    arena = arr._arena
    storage = arena is not None
    kind = (
        "mmap" if isinstance(arena, MmapTrackArena)
        else "ram" if isinstance(arena, TrackArena)
        else None
    )
    return kind, storage


@pytest.mark.parametrize("first,second", [("ram", "mmap"), ("mmap", "ram")])
def test_back_to_back_runs_each_internally_consistent(
    monkeypatch, first, second, rng
):
    """Flipping REPRO_ARENA between runs re-resolves cleanly per run.

    Regression for the inconsistent-caching bug: every subsystem of one
    run (storage arena, fast path, prefetch) must observe the same
    snapshot, and the next run must observe the flipped one.
    """
    cfg = MachineConfig(N=1 << 10, v=4, D=2, B=32)
    data = rng.integers(0, 1 << 40, 1 << 10)
    seen = []
    for kind in (first, second):
        monkeypatch.setenv("REPRO_ARENA", kind)
        eng = make_engine(cfg)
        res = eng.run(*_sort_workload(data, cfg))
        seen.append((_engine_snapshot_state(eng), res.report.io.parallel_ios))
    (k1, s1), ios1 = seen[0]
    (k2, s2), ios2 = seen[1]
    assert (k1, k2) == (first, second)
    assert s1 and s2
    # storage backend is a physical concern: logical I/O counts identical
    assert ios1 == ios2


def _sort_workload(data, cfg):
    from repro.algorithms.collectives import partition_array
    from repro.algorithms.sorting import SampleSort

    return SampleSort(), partition_array(np.asarray(data), cfg.v)


def test_env_flip_mid_process_does_not_leak_into_resolved_engine(monkeypatch):
    """An engine holds its snapshot; later env flips affect later runs only."""
    cfg = MachineConfig(N=1 << 10, v=4, D=2, B=32)
    monkeypatch.setenv("REPRO_FASTPATH", "on")
    rt = RuntimeConfig.resolve()
    eng = make_engine(cfg, runtime=rt)
    monkeypatch.setenv("REPRO_FASTPATH", "off")
    assert eng.runtime.fastpath == "on"
    assert current().fastpath == "off"


def test_em_sort_respects_fastpath_off_lane(monkeypatch, rng):
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    cfg = MachineConfig(N=1 << 10, v=4, D=2, B=32)
    data = rng.integers(0, 1 << 40, 1 << 10)
    out = em_sort(data, cfg)
    assert np.array_equal(out.values, np.sort(data))
