"""The tuner: analytic pruning, probe selection, determinism, acceptance.

Fast tests inject a deterministic ``measure`` function (no wall clocks);
the slow acceptance test at the end runs the real thing on the fig5
group-A workload and checks the ISSUE's contract directly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgm.config import MachineConfig
from repro.em.runner import em_run, make_engine
from repro.tune.profile import validate_profile
from repro.tune.runtime import RuntimeConfig
from repro.tune.tuner import (
    DEFAULTS,
    Candidate,
    WorkloadSpec,
    analytic_cost,
    build_workload,
    enumerate_candidates,
    fig5_group_a_workload,
    probe_config,
    tune,
)
from repro.util.validation import ConfigurationError


def fake_measure(spec, cand, n, reps):
    """Deterministic stand-in wall clock: analytic cost plus a v-penalty.

    Injective over the grid (irrational-ish weights) so ties never decide
    a test outcome.
    """
    return analytic_cost(spec, cand) * 1e-4 + cand.v * 1.7e-5 + cand.B * 3.1e-8


class TestWorkloadSpec:
    def test_rejects_unknown_op(self):
        with pytest.raises(ConfigurationError, match="unknown workload op"):
            WorkloadSpec(op="fft", n=64)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ConfigurationError, match="positive"):
            WorkloadSpec(op="sort", n=0)

    def test_fig5_group_a(self):
        spec = fig5_group_a_workload()
        assert (spec.op, spec.n, spec.p) == ("sort", 1 << 16, 1)


class TestCandidates:
    def test_grid_respects_p_divisibility(self):
        for cand in enumerate_candidates(WorkloadSpec(op="sort", n=1 << 12, p=4)):
            assert cand.v >= 4 and cand.v % 4 == 0

    def test_impossible_p_is_a_named_error(self):
        with pytest.raises(ConfigurationError, match="no tuning candidates"):
            enumerate_candidates(WorkloadSpec(op="sort", n=1 << 12, p=5))

    def test_probe_config_is_constructible(self):
        spec = WorkloadSpec(op="sort", n=1 << 12, p=2)
        for cand in enumerate_candidates(spec):
            cfg = probe_config(spec, cand, 1 << 10)
            assert (cfg.v, cfg.D, cfg.B) == (cand.v, cand.D, cand.B)

    def test_analytic_cost_decreases_with_more_disks(self):
        spec = WorkloadSpec(op="sort", n=1 << 14)
        lo = analytic_cost(spec, Candidate(v=8, B=256, D=4))
        hi = analytic_cost(spec, Candidate(v=8, B=256, D=1))
        assert lo < hi


@st.composite
def workloads(draw):
    op = draw(st.sampled_from(["sort", "permute", "transpose"]))
    n = draw(st.integers(min_value=1 << 8, max_value=1 << 12))
    seed = draw(st.integers(min_value=0, max_value=5))
    return WorkloadSpec(op=op, n=n, seed=seed, p=1)


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(spec=workloads())
    def test_profiles_are_byte_identical(self, spec):
        """Same workload + measure + seed -> byte-identical profile JSON."""
        a = tune(spec, probe_n=256, measure=fake_measure, calibrate=False)
        b = tune(spec, probe_n=256, measure=fake_measure, calibrate=False)
        assert a.profile.dumps() == b.profile.dumps()
        assert validate_profile(a.profile.document()) == []

    def test_defaults_candidate_always_probed(self):
        spec = WorkloadSpec(op="sort", n=1 << 12)
        res = tune(spec, probe_n=256, top_k=1, measure=fake_measure,
                   calibrate=False)
        probed = [c for c, _ in res.probes]
        assert Candidate(**DEFAULTS) in probed

    def test_chosen_never_slower_than_defaults(self):
        spec = WorkloadSpec(op="sort", n=1 << 12)
        res = tune(spec, probe_n=256, measure=fake_measure, calibrate=False)
        costs = dict((c.label(), cost) for c, cost in res.probes)
        default_cost = costs[Candidate(**DEFAULTS).label()]
        assert min(costs.values()) <= default_cost
        assert costs[res.chosen.label()] == min(costs.values())

    def test_calibration_switches_to_auto_when_reference_wins(self):
        def ref_wins(spec, cand, n, reps):
            base = fake_measure(spec, cand, n, reps)
            return base * 0.5 if cand.fastpath == "off" else base

        spec = WorkloadSpec(op="sort", n=1 << 12)
        res = tune(spec, probe_n=256, measure=ref_wins)
        assert res.chosen.fastpath.startswith("auto:")
        assert any("calibration" in line for line in res.profile.rationale)

    def test_rationale_records_every_probe(self):
        spec = WorkloadSpec(op="sort", n=1 << 12)
        res = tune(spec, probe_n=256, measure=fake_measure, calibrate=False)
        probe_lines = [r for r in res.profile.rationale if r.startswith("probe:")]
        assert len(probe_lines) == len(res.probes)


class TestBuildWorkload:
    @pytest.mark.parametrize("op", ["sort", "permute", "transpose"])
    def test_runs_and_is_deterministic(self, op):
        spec = WorkloadSpec(op=op, n=1 << 9, seed=3)
        cfg = probe_config(spec, Candidate(v=4, B=64, D=2), 1 << 9)
        prog_a, in_a = build_workload(spec, cfg, 1 << 9)
        prog_b, in_b = build_workload(spec, cfg, 1 << 9)
        ios = []
        for prog, inputs in ((prog_a, in_a), (prog_b, in_b)):
            res = em_run(prog, inputs, cfg, runtime=RuntimeConfig())
            ios.append(res.report.io.parallel_ios)
        assert ios[0] == ios[1] > 0


class TestProfileApplication:
    def test_profile_apply_matches_hand_set_config(self, tmp_path):
        """Applying a profile never changes logical IOStats vs the same
        config set by hand (satellite 3's contract)."""
        spec = WorkloadSpec(op="sort", n=1 << 10)
        res = tune(spec, probe_n=256, measure=fake_measure, calibrate=False)
        path = str(tmp_path / "p.json")
        res.profile.save(path)

        chosen = res.chosen
        cfg = MachineConfig(N=spec.n, v=chosen.v, p=spec.p, D=chosen.D,
                            B=chosen.B, seed=spec.seed, workers=chosen.workers)
        program, inputs = build_workload(spec, cfg)

        by_hand = make_engine(cfg, runtime=chosen.runtime()).run(program, inputs)
        via_profile = make_engine(cfg, profile=path).run(program, inputs)
        assert (
            via_profile.report.io.as_dict() == by_hand.report.io.as_dict()
        )

    def test_repro_profile_env_applies(self, tmp_path, monkeypatch):
        spec = WorkloadSpec(op="sort", n=1 << 10)
        res = tune(spec, probe_n=256, measure=fake_measure, calibrate=False)
        path = str(tmp_path / "p.json")
        res.profile.save(path)
        monkeypatch.setenv("REPRO_PROFILE", path)
        cfg = MachineConfig(N=spec.n, v=res.chosen.v, D=res.chosen.D,
                            B=res.chosen.B)
        eng = make_engine(cfg)
        assert eng.runtime.fastpath == res.chosen.fastpath
        assert eng.runtime.workers == res.chosen.workers


@pytest.mark.slow
def test_acceptance_fig5_group_a_tuning():
    """The ISSUE's acceptance gate, scaled to CI time: the tuner's chosen
    config measures no slower than all-defaults at probe scale, and the
    tuned run's logical IOStats are bit-identical to an untuned run of
    the same chosen config."""
    spec = fig5_group_a_workload(n=1 << 14)
    res = tune(spec, probe_n=1 << 12, reps=2)
    costs = {c.label(): cost for c, cost in res.probes}
    default_cost = costs[Candidate(**DEFAULTS).label()]
    chosen_base = res.chosen.label()
    # calibration may have rewritten fastpath on the chosen candidate;
    # compare by the probed (pre-calibration) label
    probed_chosen = min(costs.values())
    assert probed_chosen <= default_cost
    assert chosen_base  # decision recorded

    cfg = MachineConfig(N=spec.n, v=res.chosen.v, p=1, D=res.chosen.D,
                        B=res.chosen.B, seed=spec.seed)
    program, inputs = build_workload(spec, cfg)
    tuned = make_engine(cfg, runtime=res.chosen.runtime()).run(program, inputs)
    untuned = make_engine(
        cfg, runtime=res.chosen.runtime().replace(fastpath="on")
    ).run(program, inputs)
    assert tuned.report.io.as_dict() == untuned.report.io.as_dict()
    assert np.concatenate(tuned.outputs).tolist() == (
        np.concatenate(untuned.outputs).tolist()
    )
