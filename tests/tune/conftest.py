"""Hermetic environment for the tuning tests.

CI runs the whole suite under knob lanes (``REPRO_FASTPATH=0``,
``REPRO_WORKERS=2``, ``REPRO_ARENA=mmap``, ``REPRO_FAULTS=...``).  These
tests pin exact precedence and resolution semantics, so every inherited
``REPRO_*`` variable is cleared around each of them — what a lane
exports must not change what ``RuntimeConfig.resolve`` is asserted to
return.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(autouse=True)
def _clear_repro_env(monkeypatch):
    for var in [v for v in os.environ if v.startswith("REPRO_")]:
        monkeypatch.delenv(var, raising=False)
    yield
