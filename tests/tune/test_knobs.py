"""The knob registry: hardened parsing, named errors, generated docs.

The ISSUE's bugfix contract: a malformed value for *every* knob must
produce a one-line diagnostic naming the variable — never a raw
``ValueError`` traceback — and the README's knob table is generated from
the registry so it cannot drift.
"""

from __future__ import annotations

import pytest

from repro.tune.knobs import (
    ARENA_KINDS,
    DEFAULT_AUTO_BLOCKS,
    DEFAULT_SHM_THRESHOLD,
    KNOB_BY_ENV,
    KNOB_BY_NAME,
    KNOBS,
    KnobError,
    read_knob,
    render_knob_table,
    set_env,
)
from repro.util.validation import ConfigurationError


def test_registry_is_consistent():
    assert len(KNOB_BY_NAME) == len(KNOBS) == len(KNOB_BY_ENV)
    for spec in KNOBS:
        assert spec.env.startswith("REPRO_")
        assert spec.help


@pytest.mark.parametrize(
    "spec", [s for s in KNOBS if s.invalid_example is not None],
    ids=lambda s: s.env,
)
def test_every_knob_rejects_malformed_input_by_name(spec):
    """Each knob's canonical bad spelling raises KnobError naming the var."""
    with pytest.raises(KnobError, match=spec.env) as err:
        spec.coerce(spec.invalid_example)
    # one-line diagnostic: variable, offending value, accepted spellings
    msg = str(err.value)
    assert "\n" not in msg
    assert spec.invalid_example in msg


def test_knob_error_is_a_configuration_error():
    """Library callers catching ConfigurationError keep working."""
    assert issubclass(KnobError, ConfigurationError)


def test_unset_and_empty_mean_default():
    for spec in KNOBS:
        assert spec.coerce(None) == spec.default
        assert spec.coerce("") == spec.default
        assert spec.coerce("   ") == spec.default


def test_bool_tokens():
    spec = KNOB_BY_ENV["REPRO_PREFETCH"]
    for raw in ("1", "true", "YES", "On"):
        assert spec.coerce(raw) is True
    for raw in ("0", "false", "NO", "Off"):
        assert spec.coerce(raw) is False


def test_fastpath_grammar():
    spec = KNOB_BY_ENV["REPRO_FASTPATH"]
    assert spec.coerce("1") == "on"
    assert spec.coerce("off") == "off"
    assert spec.coerce("AUTO") == "auto"
    assert spec.coerce("auto:128") == "auto:128"
    with pytest.raises(KnobError, match="REPRO_FASTPATH"):
        spec.coerce("auto:lots")
    with pytest.raises(KnobError, match="REPRO_FASTPATH"):
        spec.coerce("auto:-1")


def test_arena_kinds():
    spec = KNOB_BY_ENV["REPRO_ARENA"]
    for kind in ARENA_KINDS:
        assert spec.coerce(kind) == kind
    assert spec.coerce("MMAP") == "mmap"


def test_shm_bytes_nonpositive_disables():
    spec = KNOB_BY_ENV["REPRO_SHM_BYTES"]
    assert spec.coerce("4096") == 4096
    assert spec.coerce("0") is None
    assert spec.coerce("-1") is None
    assert spec.default == DEFAULT_SHM_THRESHOLD


def test_workers_rejects_negative():
    with pytest.raises(KnobError, match="REPRO_WORKERS"):
        KNOB_BY_ENV["REPRO_WORKERS"].coerce("-2")


def test_trace_false_tokens_disable():
    spec = KNOB_BY_ENV["REPRO_TRACE"]
    assert spec.coerce("off") is None
    assert spec.coerce("1") == "1"
    assert spec.coerce("/tmp/t.jsonl") == "/tmp/t.jsonl"


def test_read_knob_by_name_and_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert read_knob("workers") == 3
    assert read_knob("REPRO_WORKERS") == 3
    assert read_knob("workers", environ={}) == 0
    with pytest.raises(KnobError, match="unknown knob"):
        read_knob("REPRO_BOGUS")


def test_set_env_validates_before_writing(monkeypatch):
    import os

    with pytest.raises(KnobError, match="REPRO_WORKERS"):
        set_env("REPRO_WORKERS", "two")
    assert "REPRO_WORKERS" not in os.environ
    set_env("REPRO_WORKERS", "2")
    assert os.environ["REPRO_WORKERS"] == "2"
    set_env("REPRO_WORKERS", None)
    assert "REPRO_WORKERS" not in os.environ
    with pytest.raises(KnobError, match="REPRO_BOGUS"):
        set_env("REPRO_BOGUS", "1")


def test_render_knob_table_covers_every_knob():
    table = render_knob_table()
    lines = table.splitlines()
    assert lines[0].startswith("| Variable ")
    assert len(lines) == 2 + len(KNOBS)
    for spec in KNOBS:
        assert f"`{spec.env}`" in table


def test_default_auto_blocks_is_positive():
    assert DEFAULT_AUTO_BLOCKS > 0


def test_readme_knob_table_matches_registry():
    """The committed README table is exactly render_knob_table() output."""
    import pathlib

    import repro

    readme = (
        pathlib.Path(repro.__file__).resolve().parents[2] / "README.md"
    ).read_text()
    begin, end = "<!-- knob-table:begin -->\n", "<!-- knob-table:end -->"
    assert begin in readme and end in readme
    committed = readme.split(begin, 1)[1].split(end, 1)[0].strip("\n")
    assert committed == render_knob_table(), (
        "README knob table drifted from the registry — regenerate with "
        "python -c 'from repro.tune.knobs import render_knob_table; "
        "print(render_knob_table())'"
    )
