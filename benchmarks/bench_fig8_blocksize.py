"""Figure 8 — Stevens' measurements: disk throughput vs block size.

The paper reprints Stevens' classic measurement to justify fixing
B ~ 10^3 items for disk I/O: effective throughput climbs steeply with
block size while positioning costs amortize, then saturates at the raw
transfer rate.  We regenerate the curve from the
:class:`DiskServiceModel` (1998-class constants) and assert its shape:
monotone rise, >100x gain from 512 B to 1 MB, and >80% of peak by 1 MB.
"""

from __future__ import annotations

import pytest

from repro.pdm.io_stats import DiskServiceModel

from conftest import print_table


def test_fig8_throughput_curve(bench_store):
    model = DiskServiceModel()
    rows = []
    sizes = [2**k for k in range(9, 21)]  # 512 B .. 1 MB
    prev = None
    for s in sizes:
        th = model.throughput(s)
        rows.append([s, f"{th / 1e6:.3f}", f"{th / model.transfer_rate_bytes_per_s:.1%}"])
        bench_store.record(
            f"throughput/block={s}",
            measured={
                "throughput_mb_s": th / 1e6,
                "fraction_of_raw": th / model.transfer_rate_bytes_per_s,
            },
        )
        if prev is not None:
            assert th > prev
        prev = th
    print_table(
        "Figure 8: effective throughput vs block size (seek 8.9ms, 7200rpm, 10MB/s)",
        ["block bytes", "MB/s", "% of raw rate"],
        rows,
    )
    small = model.throughput(512)
    big = model.throughput(1 << 20)
    assert big / small > 100
    assert big > 0.8 * model.transfer_rate_bytes_per_s


def test_fig8_b_1000_items_is_reasonable():
    """The paper fixes B ~ 10^3 items (8 KB): an order of magnitude
    better than single-sector I/O and at the knee of the curve."""
    model = DiskServiceModel()
    b_paper = model.throughput(1000 * 8)
    assert b_paper > 10 * model.throughput(512)


@pytest.mark.benchmark(group="fig8")
def test_fig8_benchmark(benchmark):
    model = DiskServiceModel()
    out = benchmark(lambda: [model.throughput(2**k) for k in range(9, 24)])
    assert len(out) == 15
