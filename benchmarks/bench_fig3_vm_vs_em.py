"""Figure 3 — CGM sort on OS virtual memory vs. the EM-CGM simulation.

The paper's prototype ran its CGM sorting algorithm (a) naively on top of
the operating system's virtual memory and (b) through the deterministic
simulation with explicit blocked, fully parallel disk I/O.  The VM curve
blows up once the working set exceeds physical memory (4 KB random-access
page faults, one disk arm); the EM-CGM curve stays linear.

We reproduce the mechanism: the same SampleSort program runs on the
``vm`` backend (LRU pager, 4 KB pages) and on the ``seq`` EM backend
(D disks, block size B), with internal memory M fixed while N sweeps
across it.  Reported simulated times use the same 1998-class disk model
for both: a page fault costs one random 4 KB access; a parallel I/O
costs one random B-block access (disks in parallel).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort
from repro.pdm.io_stats import DiskServiceModel
from repro.util.rng import make_rng

from conftest import print_table

V = 8
D = 2
B = 512                      # 4 KB blocks
M = 1 << 15                  # 32k items = 256 KB "physical memory"
SIZES = [1 << 12, 1 << 14, 1 << 15, 1 << 16, 1 << 17]


def run_point(n: int, seed: int = 1):
    data = make_rng(seed).integers(0, 2**50, n)
    cfg = MachineConfig(N=n, v=V, D=D, B=B, M=M)
    vm = em_sort(data, cfg, engine="vm")
    em = em_sort(data, cfg, engine="seq")
    model = DiskServiceModel()
    fault_cost = model.access_time(4096)
    io_cost = model.parallel_io_time(B)
    return {
        "N": n,
        "cfg": cfg,
        "em_report": em.report,
        "vm_faults": vm.report.page_faults,
        "vm_time_s": vm.report.page_faults * fault_cost,
        "em_ios": em.report.io.parallel_ios,
        "em_time_s": em.report.io.parallel_ios * io_cost,
        "em_blocks": em.report.io.blocks_total,
    }


def test_fig3_vm_blowup_vs_em_linear(bench_store):
    rows = []
    points = [run_point(n) for n in SIZES]
    for p in points:
        rows.append(
            [p["N"], p["vm_faults"], f"{p['vm_time_s']:.2f}", p["em_ios"], f"{p['em_time_s']:.2f}"]
        )
        bench_store.record(
            f"sort/N={p['N']}",
            cfg=p["cfg"],
            report=p["em_report"],
            measured={"vm_faults": p["vm_faults"]},
            timings={"vm_model_s": p["vm_time_s"], "em_model_s": p["em_time_s"]},
        )
    print_table(
        "Figure 3: sorting, virtual memory vs EM-CGM (simulated seconds)",
        ["N", "VM faults", "VM t(s)", "EM par-I/Os", "EM t(s)"],
        rows,
    )

    # shape assertions: EM grows linearly; VM grows super-linearly once
    # N crosses M (working set = contexts + messages > memory)
    small, large = points[0], points[-1]
    ratio_n = large["N"] / small["N"]
    em_growth = large["em_ios"] / max(small["em_ios"], 1)
    assert em_growth < 2.0 * ratio_n  # linear-ish
    vm_growth = large["vm_faults"] / max(small["vm_faults"], 1)
    assert vm_growth > em_growth  # VM deteriorates faster

    # beyond memory, EM-CGM's simulated time beats paging
    beyond = [p for p in points if p["N"] > M]
    assert all(p["em_time_s"] < p["vm_time_s"] for p in beyond)


@pytest.mark.benchmark(group="fig3")
def test_fig3_benchmark_em_sort(benchmark):
    data = make_rng(7).integers(0, 2**50, 1 << 15)
    cfg = MachineConfig(N=data.size, v=V, D=D, B=B, M=M)
    out = benchmark(lambda: em_sort(data, cfg, engine="seq"))
    assert np.array_equal(out.values, np.sort(data))


@pytest.mark.benchmark(group="fig3")
def test_fig3_benchmark_vm_sort(benchmark):
    data = make_rng(7).integers(0, 2**50, 1 << 15)
    cfg = MachineConfig(N=data.size, v=V, D=D, B=B, M=M)
    out = benchmark(lambda: em_sort(data, cfg, engine="vm"))
    assert np.array_equal(out.values, np.sort(data))


def test_fig3_disabled_tracing_sanity():
    """Bench sanity check: the no-op recorder changes nothing.

    With tracing disabled (the default NULL_RECORDER) the engine must
    produce bit-identical accounting to an explicit NullRecorder run, and
    the guarded call sites must never invoke ``emit`` — which is what
    makes the disabled path zero-cost.
    """
    import time

    from repro.obs.trace import NullRecorder

    class ExplodingRecorder(NullRecorder):
        def emit(self, kind, **tags):  # pragma: no cover - must not run
            raise AssertionError("disabled recorder was invoked")

    data = make_rng(11).integers(0, 2**50, 1 << 13)
    cfg = MachineConfig(N=data.size, v=V, D=D, B=B, M=M)

    t0 = time.perf_counter()
    base = em_sort(data, cfg, engine="seq")
    t_base = time.perf_counter() - t0
    t0 = time.perf_counter()
    guarded = em_sort(data, cfg, engine="seq", tracer=ExplodingRecorder())
    t_guarded = time.perf_counter() - t0

    assert np.array_equal(base.values, guarded.values)
    assert base.report.io.parallel_ios == guarded.report.io.parallel_ios
    assert base.report.io.per_disk_blocks == guarded.report.io.per_disk_blocks
    print(
        f"\ndisabled-tracing overhead: baseline {t_base * 1e3:.1f} ms, "
        f"guarded no-op recorder {t_guarded * 1e3:.1f} ms"
    )
