"""Figure 5, Group C — graph problems.

The table claims O((N log v)/(pDB)) I/Os via O(log v)-round CGM
algorithms.  This bench runs the Group C pipelines on the seq EM backend
over random inputs, verifies against networkx / direct references, and
reports parallel I/Os and round counts; a second test confirms the round
count grows with log v, not with N.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.graphs import (
    biconnected_components,
    connected_components,
    ear_decomposition,
    expression_eval,
    list_rank,
    lowest_common_ancestors,
    tree_measures,
)
from repro.algorithms.graphs.tree_contraction import eval_expression_direct
from repro.cgm.config import MachineConfig
from repro.util.rng import make_rng

from conftest import print_table

V, D, B = 4, 2, 32


def random_list(n: int, seed: int):
    order = make_rng(seed).permutation(n)
    succ = np.full(n, -1, dtype=np.int64)
    for a, b in zip(order[:-1], order[1:]):
        succ[a] = b
    return succ, order


def test_group_c_table(bench_store):
    rows_out = []

    def record(name, res, n_items, correct):
        rows_out.append(
            [
                name,
                res.total_parallel_ios,
                f"{n_items * math.log2(V) / (D * B):.0f}",
                res.total_rounds,
                "yes" if correct else "NO",
            ]
        )
        bench_store.record(
            name,
            measured={
                "parallel_ios": int(res.total_parallel_ios),
                "rounds": int(res.total_rounds),
            },
            predicted={"target_ios_nlogv_over_db": n_items * math.log2(V) / (D * B)},
        )
        assert correct, name

    n = 1000
    cfg = MachineConfig(N=n, v=V, D=D, B=B)

    succ, order = random_list(n, 1)
    res = list_rank(succ, cfg, engine="seq")
    expect = np.empty(n)
    for i, node in enumerate(order):
        expect[node] = n - 1 - i
    record("list ranking", res, n, np.array_equal(res.values, expect))

    T = nx.random_labeled_tree(n, seed=2)
    edges = np.array(T.edges())
    res = tree_measures(edges, n, cfg, engine="seq")
    depth_nx = nx.single_source_shortest_path_length(T, 0)
    ok = all(res.values["depth"][u] == depth_nx[u] for u in range(n))
    record("Euler tour + tree measures", res, 2 * n, ok)

    queries = make_rng(3).integers(0, n, (n // 2, 2))
    res = lowest_common_ancestors(edges, queries, n, cfg, engine="seq")
    record("batched LCA", res, 2 * n, res.values.shape[0] == n // 2)

    G = nx.gnm_random_graph(n, 2 * n, seed=4)
    comps = list(nx.connected_components(G))
    for a, b in zip(comps, comps[1:]):
        G.add_edge(min(a), min(b))
    gedges = np.array(G.edges())
    res = connected_components(gedges, n, cfg, engine="seq")
    ok = all(
        {res.values[u] for u in cc} == {min(cc)} for cc in nx.connected_components(G)
    )
    record("connected components", res, n + len(gedges), ok)

    res = biconnected_components(gedges, n, cfg, engine="seq")
    ok = set(res.extra["articulation_points"]) == set(nx.articulation_points(G))
    record("biconnected components", res, n + len(gedges), ok)

    # expression tree evaluation
    rng = make_rng(5)
    parent = np.full(n, -1, dtype=np.int64)
    op = rng.integers(0, 2, n)
    val = rng.uniform(0.5, 1.5, n)
    child_count = np.zeros(n, dtype=int)
    avail = [0]
    for u in range(1, n):
        k = int(rng.integers(0, len(avail)))
        p = avail[k]
        parent[u] = p
        child_count[p] += 1
        if child_count[p] == 2:
            avail.pop(k)
        avail.append(u)
    res = expression_eval(parent, op, val, cfg, engine="seq")
    expect = eval_expression_direct(parent, op, val, 0)
    record("expression tree evaluation", res, n, abs(res.values - expect) < 1e-6 * max(1, abs(expect)))

    # ear decomposition on a biconnected graph
    H = nx.cycle_graph(n // 4)
    rng2 = make_rng(6)
    extra = n // 8
    while extra:
        a, b = map(int, rng2.integers(0, n // 4, 2))
        if a != b and not H.has_edge(a, b):
            H.add_edge(a, b)
            extra -= 1
    hedges = np.array(H.edges())
    cfg_small = MachineConfig(N=n // 4, v=V, D=D, B=B)
    res = ear_decomposition(hedges, n // 4, cfg_small, engine="seq")
    record(
        "open ear decomposition",
        res,
        len(hedges),
        len(set(res.values.tolist())) == len(hedges) - n // 4 + 1,
    )

    print_table(
        "Fig 5/C: graph problems on the seq EM backend",
        ["problem", "parallel I/Os", "N log v/(DB)", "rounds", "correct"],
        rows_out,
    )


def test_group_c_rounds_grow_with_log_not_n():
    """lambda = O(log v): quadrupling N adds at most a few rounds."""
    rounds = {}
    for n in (512, 2048, 8192):
        succ, _ = random_list(n, 7)
        res = list_rank(succ, MachineConfig(N=n, v=V, D=D, B=B), engine="memory")
        rounds[n] = res.total_rounds
    assert rounds[8192] <= rounds[512] + 24  # log growth, not linear


@pytest.mark.benchmark(group="fig5c")
def test_group_c_benchmark_list_ranking(benchmark):
    n = 2000
    succ, _ = random_list(n, 8)
    cfg = MachineConfig(N=n, v=V, D=D, B=B)
    benchmark(lambda: list_rank(succ, cfg, engine="seq"))


@pytest.mark.benchmark(group="fig5c")
def test_group_c_benchmark_cc(benchmark):
    n = 1000
    G = nx.gnm_random_graph(n, 3 * n, seed=9)
    edges = np.array(G.edges())
    cfg = MachineConfig(N=n, v=V, D=D, B=B)
    benchmark(lambda: connected_components(edges, n, cfg, engine="seq"))
