"""Distributed transport bench: the tcp worker exchange versus memory.

The multi-node coordinator relays every worker packet through TCP
sockets, so this suite pins the two claims that make the distributed
backend trustworthy (the Rahn et al. distributed-sorting regime, scaled
to CI):

* **bit-identity** — a fig5-shaped parallel sort produces the same
  sorted bytes and the same IOStats dict whether the exchange rides the
  in-process memory transport or a real socket pair.  The network moves
  bytes, never logical cost.
* **accounted traffic** — the coordinator's relay counters see every
  exchanged packet; the wire byte count is reported alongside wall time
  so nightly artifacts track framing overhead over time.

Nodes come from ``REPRO_NODES`` when the workflow started real
``repro node`` daemons (the nightly 2-node step); otherwise the module
hosts two in-process :class:`~repro.core.transport.node.NodeServer`
threads so ``pytest benchmarks/`` works standalone.  ``REPRO_SCALE``
multiplies the fig5 ceiling (default 2 -> N = 2^17).

``BENCH_dist.json`` records I/O counts, wall time and relayed bytes; it
is deliberately *not* a committed baseline — wall time and wire bytes
are machine- and transport-buffer-dependent, so gating would be noise.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.algorithms.collectives import partition_array
from repro.algorithms.sorting import SampleSort
from repro.cgm.config import MachineConfig
from repro.em.runner import make_engine
from repro.tune.runtime import RuntimeConfig
from repro.util.rng import make_rng

from conftest import print_table

V, D, B = 8, 2, 64
FIG5_N = 1 << 16
WORKERS = 2


def scale_factor() -> int:
    try:
        s = int(os.environ.get("REPRO_SCALE", "2"))
    except ValueError:
        s = 2
    return max(s, 1)


def dist_cfg() -> MachineConfig:
    return MachineConfig(N=FIG5_N * scale_factor(), v=V, p=4, D=D, B=B,
                         workers=WORKERS)


def _node_list():
    """(nodes string, servers-to-shutdown): env daemons or self-hosted."""
    raw = os.environ.get("REPRO_NODES", "").strip()
    if raw:
        return raw, []
    from repro.core.transport.node import NodeServer

    servers = [NodeServer().start_thread() for _ in range(2)]
    return ",".join(s.address for s in servers), servers


def _run_sort(cfg: MachineConfig, data: np.ndarray, rt: RuntimeConfig) -> dict:
    eng = make_engine(cfg, "par", runtime=rt)
    t0 = time.perf_counter()
    res = eng.run(SampleSort(), partition_array(data, cfg.v))
    wall = time.perf_counter() - t0
    relayed = getattr(eng, "_fleet", None)
    stats = relayed.stats() if relayed is not None else {}
    return {
        "values": np.concatenate(res.outputs),
        "io": res.report.io.as_dict(),
        "report": res.report,
        "wall_s": wall,
        "wire_bytes": sum(s["bytes"] for s in stats.values()),
        "nodes": sorted(stats),
    }


def test_dist_sort_tcp_vs_memory_bit_identity(bench_store):
    cfg = dist_cfg()
    data = make_rng(cfg.N).integers(0, 2**50, cfg.N)
    base_rt = RuntimeConfig.from_env()

    nodes, servers = _node_list()
    try:
        mem = _run_sort(cfg, data, base_rt.replace(transport="memory", nodes=None))
        tcp = _run_sort(cfg, data, base_rt.replace(transport="tcp", nodes=nodes))
    finally:
        for s in servers:
            s.shutdown()

    # acceptance gate: the PDM observes an identical machine either way
    assert np.array_equal(mem["values"], tcp["values"])
    assert np.array_equal(mem["values"], np.sort(data))
    assert mem["io"] == tcp["io"], "IOStats must be bit-identical across transports"
    assert tcp["wire_bytes"] > 0, "the tcp run never touched a socket"

    rows = []
    for kind, r in (("memory", mem), ("tcp", tcp)):
        rows.append([
            kind,
            f"{cfg.N:,}",
            r["io"]["parallel_ios"],
            f"{r['wire_bytes'] / 1e6:.2f}",
            f"{r['wall_s']:.2f}",
        ])
        bench_store.record(
            f"sort/{kind}/N={cfg.N}",
            cfg=cfg,
            report=r["report"],
            predicted={
                "scale_over_fig5": scale_factor(),
                "workers": WORKERS,
                "n_nodes": len(r["nodes"]) or None,
                "wall_s": round(r["wall_s"], 3),
                "wire_bytes": r["wire_bytes"],
            },
        )
    print_table(
        f"Distributed transport: N = {scale_factor()}x fig5, bit-identical I/O",
        ["transport", "N", "parallel I/Os", "wire MB", "wall s"],
        rows,
    )
