"""Ablations of the simulation's design choices (DESIGN.md checklist).

The paper's machinery has three load-bearing choices; each ablation
removes one and measures the cost on the same workload:

1. **staggered message matrix** (Figure 2) — vs. a naive one-block-per-
   I/O discipline.  We measure the realized disk utilization: the
   staggered layout keeps I/Os ~D-wide, the naive bound is 1/D of that.
2. **message-slot sizing** — a tight `max_message_items` hint forces
   slot overflows (extra unstructured I/O); the generous default avoids
   them.  BalancedRouting removes the need for hints entirely.
3. **balanced routing on benign traffic** — Lemma 2's 2x superstep tax
   when traffic is already balanced: measurable, bounded, and the
   message I/O roughly doubles (each item travels twice).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort, make_engine
from repro.util.rng import make_rng

from conftest import print_table

V, D, B = 8, 4, 64
N = 1 << 15


def test_ablation_staggered_layout_utilization(bench_store):
    data = make_rng(0).integers(0, 2**50, N)
    cfg = MachineConfig(N=N, v=V, D=D, B=B)
    res = em_sort(data, cfg, engine="seq")
    io = res.report.io
    naive_ios = io.blocks_total          # 1 block per I/O, the strawman
    perfect = io.blocks_total / D
    bench_store.record(
        "staggered-vs-naive",
        cfg=cfg,
        report=res.report,
        measured={"utilization": io.utilization(D)},
        predicted={"naive_ios": naive_ios, "perfect_ios": perfect},
    )
    print_table(
        "Ablation 1: staggered layout vs one-block-per-I/O (D=4)",
        ["discipline", "parallel I/Os", "utilization"],
        [
            ["naive (1 block/I/O)", naive_ios, f"{1 / D:.0%}"],
            ["staggered (measured)", io.parallel_ios, f"{io.utilization(D):.0%}"],
            ["perfect D-wide", f"{perfect:.0f}", "100%"],
        ],
    )
    assert io.parallel_ios < 0.40 * naive_ios       # > 2.5x better than naive
    assert io.parallel_ios < 1.30 * perfect         # within 30% of perfect


class TightHint:
    """Wrap a program to lie about its largest message."""

    def __init__(self, program, items):
        self._p = program
        self._items = items
        self.kappa = program.kappa
        self.name = program.name + "-tight"

    def max_message_items(self, cfg):
        return self._items

    def __getattr__(self, name):
        return getattr(self._p, name)


def test_ablation_slot_sizing():
    from repro.algorithms.collectives import partition_array
    from repro.algorithms.sorting import SampleSort

    data = make_rng(1).integers(0, 2**50, N)
    cfg = MachineConfig(N=N, v=V, D=D, B=B)
    inputs = partition_array(data, V)

    rows = []
    results = {}
    for label, prog in [
        ("default hint", SampleSort()),
        ("tight hint (N/v^2)", TightHint(SampleSort(), N // (V * V))),
    ]:
        res = make_engine(cfg, "seq").run(prog, list(inputs))
        assert np.array_equal(np.concatenate(res.outputs), np.sort(data))
        results[label] = res.report
        rows.append(
            [label, res.report.io.parallel_ios, res.report.overflow_blocks]
        )
    bal = make_engine(cfg, "seq", balanced=True).run(
        TightHint(SampleSort(), N // (V * V)), list(inputs)
    )
    rows.append(
        ["tight hint + balanced", bal.report.io.parallel_ios, bal.report.overflow_blocks]
    )
    print_table(
        "Ablation 2: message-slot sizing",
        ["configuration", "parallel I/Os", "overflow blocks"],
        rows,
    )
    assert results["tight hint (N/v^2)"].overflow_blocks > 0
    assert bal.report.overflow_blocks == 0


def test_ablation_balancing_tax_on_benign_traffic():
    data = make_rng(2).integers(0, 2**50, N)
    cfg = MachineConfig(N=N, v=V, D=D, B=B)
    plain = em_sort(data, cfg, engine="seq")
    balanced = em_sort(data, cfg, engine="seq", balanced=True)
    assert np.array_equal(balanced.values, plain.values)
    print_table(
        "Ablation 3: balancing tax when traffic is already balanced",
        ["mode", "parallel I/Os", "message blocks", "supersteps"],
        [
            [
                "direct",
                plain.report.io.parallel_ios,
                plain.report.message_blocks_io,
                plain.report.supersteps,
            ],
            [
                "balanced",
                balanced.report.io.parallel_ios,
                balanced.report.message_blocks_io,
                balanced.report.supersteps,
            ],
        ],
    )
    # each item crosses the disk twice in balanced mode: <= ~3x I/O
    assert balanced.report.supersteps == 2 * plain.report.supersteps
    assert balanced.report.io.parallel_ios < 3.5 * plain.report.io.parallel_ios


@pytest.mark.benchmark(group="ablation")
def test_ablation_benchmark_balanced(benchmark):
    data = make_rng(3).integers(0, 2**50, N // 4)
    cfg = MachineConfig(N=data.size, v=V, D=D, B=B)
    benchmark(lambda: em_sort(data, cfg, engine="seq", balanced=True))
