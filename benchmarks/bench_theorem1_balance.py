"""Theorem 1 / Lemma 2 — BalancedRouting's message-size guarantees.

An adversarial h-relation (one processor sends its whole quota to a
single destination) has message sizes anywhere in [0, h]; after
Algorithm 1's two balanced rounds every message lies within
[h/v - (v-1)/2, h/v + (v-1)/2].  This bench drives the word-level
implementation over adversarial inputs, reports the realized min/max
sizes per phase, and shows the engine-level effect: balanced mode
eliminates staggered-slot overflows for skewed traffic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.cgm.message import Message
from repro.cgm.program import CGMProgram
from repro.core.balanced import (
    balanced_message_bounds,
    phase_a_bin_sizes,
    regroup_phase_b,
    split_phase_a,
)
from repro.em.runner import make_engine

from conftest import print_table


def adversarial_h_relation(v: int, h: int, seed: int):
    """Each processor i sends all h words to processor (i+1) mod v."""
    out = {}
    for i in range(v):
        lengths = np.zeros(v, dtype=np.int64)
        lengths[(i + 1) % v] = h
        out[i] = lengths
    return out


def test_theorem1_bounds_adversarial(bench_store):
    rows = []
    for v in (4, 8, 16):
        h = 64 * v
        lo, hi = balanced_message_bounds(h, v)
        worst_max, worst_min = 0, 10**9
        for i in range(v):
            lengths = np.zeros(v, dtype=np.int64)
            lengths[(i + 1) % v] = h
            sizes = phase_a_bin_sizes(lengths, i)
            worst_max = max(worst_max, int(sizes.max()))
            worst_min = min(worst_min, int(sizes.min()))
        rows.append([v, h, h, f"[{lo:.1f}, {hi:.1f}]", worst_min, worst_max])
        bench_store.record(
            f"adversarial/v={v}",
            measured={"msg_min": worst_min, "msg_max": worst_max},
            predicted={"bound_lo": lo, "bound_hi": hi},
            h=h,
        )
        assert lo <= worst_min and worst_max <= hi
    print_table(
        "Theorem 1: adversarial all-to-one h-relation, phase-A message sizes",
        ["v", "h", "raw max msg", "theorem bound", "measured min", "measured max"],
        rows,
    )


def test_theorem1_end_to_end_sizes():
    """Actual chunk routing (serialized payloads) stays near the bound."""
    v, words = 8, 512
    msgs = [Message(0, 1, np.zeros(words, dtype=np.uint64))]
    phase_a = split_phase_a(msgs, v)
    sizes_a = [m.size_items for m in phase_a]
    # serialized payload adds a small envelope: allow +2 words
    assert max(sizes_a) <= words / v + (v - 1) / 2 + 2
    # regroup at each intermediary separately, as the relay superstep does
    forwarded = []
    for me in range(v):
        mine = [m for m in phase_a if m.dest == me]
        forwarded.extend(regroup_phase_b(mine, me=me))
    assert all(m.size_items >= 1 for m in forwarded)


class SkewedTraffic(CGMProgram):
    """Round 0: processor 0 sends one huge message (overflow bait)."""

    name = "skewed"
    kappa = 1.0

    def max_message_items(self, cfg):
        return max(1, cfg.N // (cfg.v * cfg.v))  # deliberately tight slots

    def setup(self, ctx, pid, cfg, local_input):
        ctx["pid"] = pid

    def round(self, r, ctx, env):
        if r == 0 and ctx["pid"] == 0:
            env.send(1, np.zeros(env.cfg.N // env.v, dtype=np.int64), tag="blob")
        if r == 1:
            ctx["got"] = sum(m.payload.size for m in env.messages(tag="blob"))
        return r >= 1

    def finish(self, ctx):
        return ctx.get("got", 0)


def test_balancing_eliminates_slot_overflow():
    cfg = MachineConfig(N=1 << 14, v=8, D=2, B=32)
    plain = make_engine(cfg, "seq").run(SkewedTraffic(), [None] * 8)
    balanced = make_engine(cfg, "seq", balanced=True).run(SkewedTraffic(), [None] * 8)
    print_table(
        "Lemma 2: staggered-slot overflow blocks, skewed traffic",
        ["mode", "overflow blocks", "supersteps"],
        [
            ["direct", plain.report.overflow_blocks, plain.report.supersteps],
            ["balanced (2 rounds)", balanced.report.overflow_blocks, balanced.report.supersteps],
        ],
    )
    assert plain.report.overflow_blocks > 0
    assert balanced.report.overflow_blocks == 0
    assert balanced.report.supersteps == 2 * plain.report.supersteps
    assert plain.outputs[1] == balanced.outputs[1] == cfg.N // 8


@pytest.mark.benchmark(group="theorem1")
def test_theorem1_benchmark_split(benchmark):
    v = 16
    msgs = [
        Message(0, j, np.arange(256, dtype=np.uint64)) for j in range(v)
    ]
    out = benchmark(lambda: split_phase_a(msgs, v))
    assert len(out) == v
