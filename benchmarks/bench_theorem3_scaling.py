"""Theorem 3 — scalability of the parallel simulation.

Result (6) of the paper: unlike previous EM algorithms, the simulated
ones scale in the number of real processors *and* in the number of
disks.  This bench sorts a fixed input while sweeping p (with v fixed)
and reports the per-processor parallel I/O count — Theorem 3 predicts a
1/p drop — plus the superstep blow-up X = lambda * v/p, and verifies
measured I/O against the theorem's (v/p) * lambda * (mu + h)/(DB)
prediction band.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.core.theory import predicted_parallel_ios
from repro.em.runner import em_sort
from repro.util.rng import make_rng

from conftest import print_table

V, D, B = 8, 2, 64
N = 1 << 15


def test_theorem3_processor_scaling(bench_store):
    data = make_rng(0).integers(0, 2**50, N)
    rows = []
    per_proc = {}
    for p in (1, 2, 4, 8):
        cfg = MachineConfig(N=N, v=V, p=p, D=D, B=B)
        res = em_sort(data, cfg, engine="par" if p > 1 else "seq")
        assert np.array_equal(res.values, np.sort(data))
        io_pp = res.report.io_max.parallel_ios
        per_proc[p] = io_pp
        predicted = predicted_parallel_ios(V, p, D, B, res.report.rounds, cfg.mu, cfg.h)
        rows.append(
            [
                p,
                res.report.io.parallel_ios,
                io_pp,
                f"{predicted:.0f}",
                res.report.supersteps,
                res.report.cross_items,
            ]
        )
        bench_store.record(f"sort/p={p}", cfg=cfg, report=res.report)
        assert io_pp <= 4 * predicted
    print_table(
        f"Theorem 3: EM-CGM sort, N={N}, v={V}, p sweep",
        ["p", "total I/Os", "I/Os per proc", "predicted/proc", "supersteps", "net items"],
        rows,
    )
    # near-linear I/O scalability in p
    assert per_proc[2] < 0.65 * per_proc[1]
    assert per_proc[4] < 0.65 * per_proc[2]
    assert per_proc[8] < 0.70 * per_proc[4]


def test_theorem3_superstep_blowup():
    """X = lambda * v/p on the parallel machine (Lemma 4)."""
    data = make_rng(1).integers(0, 2**50, N)
    for p in (2, 4):
        cfg = MachineConfig(N=N, v=V, p=p, D=D, B=B)
        res = em_sort(data, cfg, engine="par")
        assert res.report.supersteps == res.report.rounds * (V // p)


def test_theorem3_network_traffic_only_cross_processor():
    """Messages between virtual processors on the same real processor
    stay local: cross-network volume shrinks as p drops."""
    data = make_rng(2).integers(0, 2**50, N)
    cross = {}
    for p in (2, 8):
        cfg = MachineConfig(N=N, v=V, p=p, D=D, B=B)
        res = em_sort(data, cfg, engine="par")
        cross[p] = res.report.cross_items
    assert cross[2] < cross[8]


def test_theorem3_workers_backend_bit_identical():
    """Acceptance gate: with ``workers=p`` the multi-process backend must
    report exactly the cost counters of the single-process simulation —
    real parallelism changes wall-clock, never the model."""
    data = make_rng(4).integers(0, 2**50, N)
    for p in (2, 4):
        cfg = MachineConfig(N=N, v=V, p=p, D=D, B=B)
        seq = em_sort(data, cfg, engine="par")
        par = em_sort(data, cfg.with_(workers=p), engine="par")
        assert np.array_equal(par.values, np.sort(data))
        assert par.report.io.parallel_ios == seq.report.io.parallel_ios
        assert par.report.io.blocks_total == seq.report.io.blocks_total
        assert par.report.context_blocks_io == seq.report.context_blocks_io
        assert par.report.message_blocks_io == seq.report.message_blocks_io
        assert par.report.overflow_blocks == seq.report.overflow_blocks
        assert par.report.io_max.parallel_ios == seq.report.io_max.parallel_ios


@pytest.mark.benchmark(group="theorem3")
@pytest.mark.parametrize("p", [1, 4])
def test_theorem3_benchmark(benchmark, p):
    data = make_rng(3).integers(0, 2**50, N // 4)
    cfg = MachineConfig(N=data.size, v=V, p=p, D=D, B=B)
    out = benchmark(lambda: em_sort(data, cfg, engine="par" if p > 1 else "seq"))
    assert np.array_equal(out.values, np.sort(data))
