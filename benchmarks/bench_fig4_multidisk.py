"""Figure 4 — EM-CGM sort with one vs. two (vs. more) disks.

The paper shows the running time of the EM-CGM sort dropping when a
second disk per processor is added: the simulation keeps every parallel
I/O D-wide, so I/O time scales ~1/D.  We sweep D and report parallel I/O
counts and modeled I/O time; the staggered layout's disk utilization is
printed to show the I/Os really are D-parallel (the mechanism behind the
speedup — not just the model granting it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort
from repro.obs.histograms import DiskHistograms
from repro.pdm.io_stats import DiskServiceModel
from repro.util.rng import make_rng

from conftest import print_table

V = 8
B = 256
N = 1 << 16
DISKS = [1, 2, 4, 8]


def run_point(D: int, seed: int = 3):
    data = make_rng(seed).integers(0, 2**50, N)
    cfg = MachineConfig(N=N, v=V, D=D, B=B)
    res = em_sort(data, cfg, engine="seq")
    model = DiskServiceModel()
    t = res.report.io.parallel_ios * model.parallel_io_time(B)
    util = res.report.io.utilization(D)
    hist = DiskHistograms.from_stats(res.report.io, D)
    return res.report.io.parallel_ios, t, util, hist, cfg, res.report


def test_fig4_more_disks_fewer_ios(bench_store):
    rows = []
    ios = {}
    for D in DISKS:
        n_ios, t, util, hist, cfg, report = run_point(D)
        ios[D] = n_ios
        lo, hi = hist.min_max_blocks
        bench_store.record(
            f"sort/D={D}",
            cfg=cfg,
            report=report,
            measured={"full_width_ops": hist.full_width_ops},
            timings={"io_model_s": t},
        )
        rows.append(
            [
                D,
                n_ios,
                f"{t:.2f}",
                f"{util:.2%}",
                f"{hist.full_width_fraction:.1%}",
                f"{lo}/{hi}",
            ]
        )
    print_table(
        f"Figure 4: EM-CGM sort, N={N}, varying disks per processor",
        ["D", "parallel I/Os", "I/O time (s)", "disk utilization", "full-D I/Os", "min/max blk per disk"],
        rows,
    )
    # doubling D should cut I/Os by nearly half (paper: 1 vs 2 disks)
    assert ios[2] < 0.60 * ios[1]
    assert ios[4] < 0.60 * ios[2]
    assert ios[8] < 0.65 * ios[4]


def test_fig4_utilization_stays_high():
    # partial last stripes of contexts/inboxes cost more at large D, so
    # the bar loosens slightly with D (still far above the 1/D of a
    # non-staggered layout)
    for D in DISKS:
        _, _, util, hist, _, _ = run_point(D)
        floor = 0.80 if D <= 2 else 0.65
        assert util > floor, f"D={D}: staggered layout lost parallelism ({util:.2%})"
        # the width histogram says the same thing mechanistically: the
        # typical parallel I/O genuinely touches nearly all D disks
        # (Observation 2); op-count-weighted full-width fraction is lower
        # than utilization at large D because every run's partial last
        # stripe is one narrow op
        assert hist.full_width_fraction > 0.5, (
            f"D={D}: only {hist.full_width_fraction:.1%} of I/Os were full-width"
        )
        assert hist.mean_width > (floor - 0.05) * D, (
            f"D={D}: mean I/O width {hist.mean_width:.2f} of {D}"
        )
        # and no disk sits idle while others stream blocks
        lo, hi = hist.min_max_blocks
        assert lo > 0.5 * hi, f"D={D}: per-disk imbalance {lo}/{hi}"


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("D", [1, 2])
def test_fig4_benchmark(benchmark, D):
    data = make_rng(3).integers(0, 2**50, N // 4)
    cfg = MachineConfig(N=data.size, v=V, D=D, B=B)
    out = benchmark(lambda: em_sort(data, cfg, engine="seq"))
    assert np.array_equal(out.values, np.sort(data))
