"""Out-of-core scale: the mmap arena versus the fig5 in-RAM regime.

The fig5 reproductions stop at N = 2^16 because the RAM arena materializes
every simulated track in host memory.  This suite pushes N two orders of
magnitude past that (``REPRO_SCALE`` multiplies the fig5 ceiling; default
128 -> N = 2^23, nightly runs raise it further) and pins the two claims
that make out-of-core simulation trustworthy:

* **bit-identity** — the mmap arena's run produces the same sorted bytes
  and the same IOStats dict as the RAM arena's, block for block.  Moving
  storage out of core changes *where* tracks live, never what the
  simulated PDM observes (the Guidesort-style invariance argument).
* **bounded residency** — the mmap arena's host-memory footprint is
  bookkeeping (occupancy masks + byte lengths, ~9 bytes/track) while the
  track data itself lives in spill files: O(buffers), not O(N).

``BENCH_scale.json`` (written via the shared bench store) records I/O
counts, wall time and the resident/spill split; the nightly workflow
uploads it as an artifact.  It is deliberately *not* a committed baseline:
scale and wall time vary with ``REPRO_SCALE``, so gating would be noise.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.algorithms.collectives import partition_array
from repro.algorithms.sorting import SampleSort
from repro.cgm.config import MachineConfig
from repro.em.runner import make_engine
from repro.pdm import fastpath
from repro.util.rng import make_rng

from conftest import print_table

V = 8
FIG5_N = 1 << 16  # the largest fig5 config


def scale_factor() -> int:
    """``REPRO_SCALE`` multiplier over the fig5 ceiling (default 128)."""
    try:
        s = int(os.environ.get("REPRO_SCALE", "128"))
    except ValueError:
        s = 128
    return max(s, 1)


def scale_cfg() -> MachineConfig:
    n = FIG5_N * scale_factor()
    # B grows with N so the track count (and per-track bookkeeping) stays
    # modest; D=4 exercises wider parallel I/O than the fig5 configs
    b = max(64, n >> 10)
    return MachineConfig(N=n, v=V, D=4, B=b)


def _run_sort(cfg: MachineConfig, data: np.ndarray, kind: str) -> dict:
    """One seq-EM sample sort under an arena backend; returns observables."""
    was = os.environ.get("REPRO_ARENA")
    fastpath.set_arena_kind(kind)
    try:
        eng = make_engine(cfg, "seq")
        t0 = time.perf_counter()
        res = eng.run(SampleSort(), partition_array(data, cfg.v))
        wall = time.perf_counter() - t0
        arenas = [a._arena for a in eng.arrays.values() if a._arena is not None]
        out = {
            "values": np.concatenate(res.outputs),
            "io": res.report.io.as_dict(),
            "report": res.report,
            "wall_s": wall,
            "resident_bytes": sum(a.resident_nbytes() for a in arenas),
            "spill_bytes": sum(a.spill_nbytes() for a in arenas),
        }
        for a in arenas:
            a.close()
        return out
    finally:
        if was is None:
            os.environ.pop("REPRO_ARENA", None)
        else:
            os.environ["REPRO_ARENA"] = was


def test_scale_sort_ram_vs_mmap_bit_identity(bench_store):
    cfg = scale_cfg()
    data = make_rng(cfg.N).integers(0, 2**50, cfg.N)
    data_bytes = int(data.nbytes)

    ram = _run_sort(cfg, data, "ram")
    mm = _run_sort(cfg, data, "mmap")

    # acceptance gate 1: the PDM observes an identical machine
    assert np.array_equal(ram["values"], mm["values"])
    assert np.array_equal(ram["values"], np.sort(data))
    assert ram["io"] == mm["io"], "IOStats must be bit-identical across arenas"

    # acceptance gate 2: out-of-core residency is O(buffers), not O(N) —
    # the mmap arena keeps only bookkeeping resident while the RAM arena
    # holds every simulated track in host memory
    assert mm["spill_bytes"] >= data_bytes
    assert mm["resident_bytes"] < max(1 << 20, data_bytes // 16)
    assert ram["resident_bytes"] >= mm["spill_bytes"] // 2

    rows = []
    for kind, r in (("ram", ram), ("mmap", mm)):
        rows.append([
            kind,
            f"{cfg.N:,}",
            r["io"]["parallel_ios"],
            f"{r['resident_bytes'] / 1e6:.1f}",
            f"{r['spill_bytes'] / 1e6:.1f}",
            f"{r['wall_s']:.2f}",
        ])
        bench_store.record(
            f"sort/{kind}/N={cfg.N}",
            cfg=cfg,
            report=r["report"],
            predicted={
                "scale_over_fig5": scale_factor(),
                "wall_s": round(r["wall_s"], 3),
                "arena_resident_bytes": r["resident_bytes"],
                "arena_spill_bytes": r["spill_bytes"],
                "data_bytes": data_bytes,
            },
        )
    print_table(
        f"Out-of-core scale: N = {scale_factor()}x fig5, bit-identical I/O",
        ["arena", "N", "parallel I/Os", "resident MB", "spill MB", "wall s"],
        rows,
    )


def test_scale_io_stays_linear(bench_store):
    """The O(N/(pDB)) shape survives the out-of-core regime: doubling N
    (at fixed B) roughly doubles parallel I/Os on the mmap arena."""
    base = FIG5_N * min(scale_factor(), 32)
    b = max(64, base >> 10)
    prev = None
    rows = []
    for n in (base, base * 2):
        cfg = MachineConfig(N=n, v=V, D=4, B=b)
        data = make_rng(n).integers(0, 2**50, n)
        r = _run_sort(cfg, data, "mmap")
        assert np.array_equal(r["values"], np.sort(data))
        ios = r["io"]["parallel_ios"]
        ratio = ios / prev if prev else float("nan")
        rows.append([f"{n:,}", ios, f"{ratio:.2f}"])
        bench_store.record(f"linearity/N={n}", cfg=cfg, report=r["report"])
        if prev is not None:
            assert 1.5 < ratio < 3.0, "I/O growth left the linear regime"
        prev = ios
    print_table(
        "Out-of-core I/O linearity (mmap arena, doubling N)",
        ["N", "parallel I/Os", "x prev"],
        rows,
    )
