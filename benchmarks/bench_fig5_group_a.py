"""Figure 5, Group A — sorting, permutation, matrix transpose.

The paper's table claims O(N/(pDB)) parallel I/Os for all three in the
coarse-grained regime, versus the classical PDM bounds carrying
log_{M/B}(N/B) factors.  This bench measures:

* the EM-CGM I/O counts across an N sweep (linear in N — no log factor:
  the N-doubling ratio stays ~2);
* the classical comparators on the same simulated disks — multiway merge
  sort (whose passes embody the log factor) and direct-placement
  permutation (the min(N/D, sort) behaviour);
* measured-vs-predicted against Theorem 3/4's formulas.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.core.theory import em_cgm_sort_ios, predicted_parallel_ios
from repro.em.baselines import DirectPlacementPermute, MergeSortBaseline
from repro.em.runner import em_permute, em_sort, em_transpose
from repro.util.rng import make_rng

from conftest import print_table

V, D, B = 8, 2, 64
SIZES = [1 << 13, 1 << 14, 1 << 15, 1 << 16]


def test_group_a_sorting_linear_io(bench_store):
    rows = []
    prev = None
    for n in SIZES:
        data = make_rng(n).integers(0, 2**50, n)
        cfg = MachineConfig(N=n, v=V, D=D, B=B)
        res = em_sort(data, cfg, engine="seq")
        assert np.array_equal(res.values, np.sort(data))
        ios = res.report.io.parallel_ios
        target = em_cgm_sort_ios(n, 1, D, B)
        ratio = ios / prev if prev else float("nan")
        rows.append([n, ios, f"{target:.0f}", f"{ios / target:.2f}", f"{ratio:.2f}"])
        prev = ios
        predicted = predicted_parallel_ios(V, 1, D, B, res.report.rounds, cfg.mu, cfg.h)
        assert ios <= 4 * predicted
        bench_store.record(
            f"sort/N={n}", cfg=cfg, report=res.report,
            predicted={"em_cgm_sort_ios": target},
        )
    print_table(
        "Fig 5/A1: EM-CGM sorting I/O (target N/(pDB); doubling ratio ~2)",
        ["N", "parallel I/Os", "N/(pDB)", "x target", "x prev"],
        rows,
    )


def test_group_a_sort_vs_mergesort_baseline():
    n = 1 << 15
    data = make_rng(0).integers(0, 2**50, n)
    M_small = n // 16  # deep merge tree: several passes
    base = MergeSortBaseline(D=D, B=B, M=M_small).sort(data.copy())
    cgm = em_sort(data, MachineConfig(N=n, v=V, D=D, B=B), engine="seq")
    print_table(
        "Fig 5/A1: classical merge sort vs EM-CGM (same simulated disks)",
        ["algorithm", "parallel I/Os", "passes/rounds"],
        [
            ["merge sort (M=N/16)", base.io.parallel_ios, base.passes],
            ["EM-CGM sample sort", cgm.report.io.parallel_ios, cgm.report.rounds],
        ],
    )
    assert base.passes >= 2
    # constant-round CGM sort does not pay per-pass N/B I/O repeatedly
    assert cgm.report.io.parallel_ios < 2.5 * base.io.parallel_ios


def test_group_a_permutation(bench_store):
    rows = []
    for n in SIZES[:3]:
        rng = make_rng(n)
        values = rng.integers(0, 2**40, n)
        perm = rng.permutation(n)
        cfg = MachineConfig(N=n, v=V, D=D, B=B)
        res = em_permute(values, perm, cfg, engine="seq")
        expect = np.zeros(n, dtype=np.int64)
        expect[perm] = values
        assert np.array_equal(res.values, expect)
        rows.append([n, res.report.io.parallel_ios, f"{n / (D * B):.0f}"])
        bench_store.record(f"permute/N={n}", cfg=cfg, report=res.report)
    print_table(
        "Fig 5/A2: EM-CGM permutation I/O (vs min(N/D, sort) classical)",
        ["N", "parallel I/Os", "N/(DB)"],
        rows,
    )


def test_group_a_permutation_vs_direct_placement():
    n = 1 << 13
    rng = make_rng(5)
    values = rng.integers(0, 2**40, n)
    perm = rng.permutation(n)
    naive = DirectPlacementPermute(D=D, B=B, M=n // 16).permute(values, perm)
    cgm = em_permute(values, perm, MachineConfig(N=n, v=V, D=D, B=B), engine="seq")
    print_table(
        "Fig 5/A2: direct placement vs EM-CGM permutation",
        ["algorithm", "parallel I/Os", "I/Os per item"],
        [
            ["direct placement (LRU cache)", naive.io.parallel_ios, f"{naive.io.parallel_ios / n:.3f}"],
            ["EM-CGM permute", cgm.report.io.parallel_ios, f"{cgm.report.io.parallel_ios / n:.3f}"],
        ],
    )
    # the classical behaviour: ~1 I/O per item; CGM stays blocked
    assert naive.io.parallel_ios > 0.5 * n / D
    assert cgm.report.io.parallel_ios < naive.io.parallel_ios


def test_group_a_transpose(bench_store):
    rows = []
    for k, ell in [(64, 128), (128, 256), (16, 2048)]:
        rng = make_rng(k)
        mat = rng.integers(0, 10**6, (k, ell))
        cfg = MachineConfig(N=mat.size, v=V, D=D, B=B)
        res = em_transpose(mat, cfg, engine="seq")
        assert np.array_equal(res.values, mat.T)
        rows.append(
            [f"{k}x{ell}", res.report.io.parallel_ios, f"{mat.size / (D * B):.0f}"]
        )
        bench_store.record(f"transpose/{k}x{ell}", cfg=cfg, report=res.report)
    print_table(
        "Fig 5/A3: EM-CGM matrix transpose I/O",
        ["k x l", "parallel I/Os", "N/(DB)"],
        rows,
    )


@pytest.mark.benchmark(group="fig5a")
def test_group_a_benchmark_sort(benchmark):
    n = 1 << 14
    data = make_rng(1).integers(0, 2**50, n)
    cfg = MachineConfig(N=n, v=V, D=D, B=B)
    out = benchmark(lambda: em_sort(data, cfg, engine="seq"))
    assert np.array_equal(out.values, np.sort(data))


@pytest.mark.benchmark(group="fig5a")
def test_group_a_benchmark_permute(benchmark):
    n = 1 << 14
    rng = make_rng(2)
    values = rng.integers(0, 2**40, n)
    perm = rng.permutation(n)
    cfg = MachineConfig(N=n, v=V, D=D, B=B)
    benchmark(lambda: em_permute(values, perm, cfg, engine="seq"))
