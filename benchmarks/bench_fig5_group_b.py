"""Figure 5, Group B — geometry/GIS problems.

For each problem the table claims O(N/(pDB)) or O(N log N/(pDB)) I/Os
via O(1)-round CGM algorithms.  This bench runs every Group B algorithm
on the seq EM backend, verifies the output against an independent
reference, and reports parallel I/Os alongside N/(DB) — the
coarse-grained target — and the CGM round count (constant per problem).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.spatial import ConvexHull, Delaunay, cKDTree

import repro.algorithms.geometry as geo
from repro.algorithms.geometry.dominance import dominance_reference
from repro.algorithms.geometry.maxima import maxima_3d_reference
from repro.algorithms.geometry.measure import union_area_sweep
from repro.cgm.config import MachineConfig

from conftest import print_table

V, D, B = 4, 2, 64
N_PTS = 2000


def cfg_for_rows(rows: int, width: int) -> MachineConfig:
    return MachineConfig(N=rows * width, v=V, D=D, B=B)


def test_group_b_table(rng, bench_store):
    rows_out = []

    def record(name: str, res, n_items: int, correct: bool):
        rows_out.append(
            [
                name,
                res.total_parallel_ios,
                f"{n_items / (D * B):.0f}",
                res.total_rounds,
                "yes" if correct else "NO",
            ]
        )
        bench_store.record(
            name,
            measured={
                "parallel_ios": int(res.total_parallel_ios),
                "rounds": int(res.total_rounds),
            },
            predicted={"target_ios_n_over_db": n_items / (D * B)},
        )
        assert correct, name

    # 3D maxima
    pts3 = rng.random((N_PTS, 3))
    res = geo.maxima_3d(pts3, cfg_for_rows(N_PTS, 4), engine="seq")
    record("3D maxima", res, 4 * N_PTS, np.array_equal(res.values, maxima_3d_reference(pts3)))

    # all nearest neighbours
    pts2 = rng.random((N_PTS, 2))
    res = geo.all_nearest_neighbors(pts2, cfg_for_rows(N_PTS, 3), engine="seq")
    d_ref, _ = cKDTree(pts2).query(pts2, k=2)
    record("2D all-NN", res, 3 * N_PTS, np.allclose(res.values["dist"], d_ref[:, 1]))

    # weighted dominance
    w = rng.random(N_PTS // 4)
    ptsd = rng.random((N_PTS // 4, 2))
    res = geo.dominance_counts(ptsd, w, cfg_for_rows(N_PTS // 4, 4), engine="seq")
    record(
        "2D weighted dominance",
        res,
        4 * (N_PTS // 4),
        np.allclose(res.values, dominance_reference(ptsd, w)),
    )

    # convex hulls
    res = geo.convex_hull_2d(pts2, cfg_for_rows(N_PTS, 3), engine="seq")
    record("2D convex hull", res, 3 * N_PTS, np.array_equal(res.values, np.sort(ConvexHull(pts2).vertices)))
    res = geo.convex_hull_3d(pts3, cfg_for_rows(N_PTS, 4), engine="seq")
    record("3D convex hull", res, 4 * N_PTS, np.array_equal(res.values, np.sort(ConvexHull(pts3).vertices)))

    # Delaunay
    res = geo.delaunay_2d(pts2, cfg_for_rows(N_PTS, 3), engine="seq")
    ref = {tuple(sorted(map(int, t))) for t in Delaunay(pts2).simplices}
    record("2D Delaunay", res, 3 * N_PTS, {tuple(t) for t in res.values} == ref)

    # lower envelope
    n_seg = 200
    levels = np.linspace(0, 10, n_seg) + rng.uniform(-0.01, 0.01, n_seg)
    segs = []
    for k in range(n_seg):
        x1 = rng.uniform(0, 10)
        segs.append((x1, levels[k], x1 + rng.uniform(0.5, 3), levels[k]))
    segs = np.array(segs)
    res = geo.lower_envelope(segs, cfg_for_rows(n_seg, 5), engine="seq")
    record("lower envelope", res, 5 * n_seg, res.values.shape[0] > 0)

    # union of rectangles
    rects = []
    for _ in range(300):
        x1, y1 = rng.uniform(0, 8, 2)
        rects.append((x1, y1, x1 + rng.uniform(0.2, 2), y1 + rng.uniform(0.2, 2)))
    rects = np.array(rects)
    res = geo.union_area(rects, cfg_for_rows(300, 5), engine="seq")
    record("union of rectangles", res, 5 * 300, abs(res.values - union_area_sweep(rects)) < 1e-9)

    # trapezoidal decomposition + point location
    res = geo.trapezoidal_decomposition(segs, cfg_for_rows(n_seg, 5), engine="seq")
    record("trapezoidal decomp.", res, 5 * n_seg, res.values.shape[0] >= n_seg)
    qs = rng.uniform(0, 10, (200, 2))
    res = geo.point_location(segs, qs, cfg_for_rows(n_seg, 5), engine="seq")
    record("batched point location", res, 5 * n_seg, res.values.shape[0] == 200)

    # segment tree stabbing
    ivals = np.sort(rng.uniform(0, 10, (200, 2)), axis=1)
    res = geo.stabbing_queries(ivals, rng.uniform(0, 10, 100), cfg_for_rows(200, 3), engine="seq")
    record("segment-tree stabbing", res, 3 * 200, len(res.values) == 100)

    # separability
    A = rng.random((400, 2))
    Bset = rng.random((400, 2)) + np.array([3.0, 0.0])
    res = geo.separability_directions(A, Bset, cfg_for_rows(800, 2), engine="seq")
    record("multidirectional separability", res, 2 * 800, res.values is True)

    print_table(
        "Fig 5/B: geometry problems on the seq EM backend",
        ["problem", "parallel I/Os", "N/(DB)", "rounds", "correct"],
        rows_out,
    )
    # O(1)-round claim: every Group B pipeline stays under a small constant
    assert all(r[3] <= 24 for r in rows_out)


@pytest.mark.benchmark(group="fig5b")
def test_group_b_benchmark_delaunay(benchmark, rng):
    pts = rng.random((1200, 2))
    cfg = MachineConfig(N=3 * 1200, v=V, D=D, B=B)
    res = benchmark(lambda: geo.delaunay_2d(pts, cfg, engine="seq"))
    assert not res.extra["fallback"]


@pytest.mark.benchmark(group="fig5b")
def test_group_b_benchmark_maxima(benchmark, rng):
    pts = rng.random((3000, 3))
    cfg = MachineConfig(N=4 * 3000, v=V, D=D, B=B)
    benchmark(lambda: geo.maxima_3d(pts, cfg, engine="seq"))
