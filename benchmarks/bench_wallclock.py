"""Wall-clock speedup of the vectorized fast path vs the reference path.

Every other bench gates *modeled* cost — parallel I/O counts, which are
deterministic and machine-independent.  This one gates the *simulator's
own* running time: the batched NumPy gather/scatter fast path
(``REPRO_FASTPATH=1``, the default) against the per-block reference loop
(``REPRO_FASTPATH=0``), on the same workloads two of the paper benches
use, scaled up until the I/O layer dominates:

* ``fig5_sort`` — Figure 5 Group A sorting at N=2^18 (the group-A bench
  sweeps up to 2^16 with B=64; here B=16 so the stream has enough blocks
  per superstep for vectorization to matter, exactly the regime Fig. 8's
  block-size sweep explores);
* ``theorem3_p{2,4}`` — the Theorem 3 processor-scaling sort on the
  in-process parallel engine.

Both paths must produce bit-identical outputs and logical ``IOStats`` —
asserted here on every run, and the deterministic counters recorded in
the store are gated exactly by ``repro bench --compare``.  The speedup
ratio is recorded under ``timings`` so the perf-smoke CI lane can gate it
with the one-sided ``--timing-floor`` check (absolute seconds go to
``extra``: provenance, never gated).

An in-test floor guards local runs too: ``REPRO_WALLCLOCK_FLOOR``
(default 1.5) is deliberately far below the committed baseline's ratios —
wall-clock is fuzzy, the floor only has to catch "fast path silently fell
back to the reference loop".

The timings double as the telemetry bus's disabled-path perf smoke: the
bench pins ``REPRO_TRACE`` off and asserts the engines run on the
zero-cost ``NULL_RECORDER``, so the ``--timing-floor`` gate in CI also
catches an accidentally always-on bus (its per-event overhead would sink
the measured speedups).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.cgm.config import MachineConfig
from repro.em.runner import em_sort, make_engine
from repro.obs.bench_store import measured_from_report
from repro.pdm import fastpath
from repro.util.rng import make_rng

from conftest import print_table


@pytest.fixture(autouse=True)
def _trace_pinned_off(monkeypatch):
    """Timings gate the untraced path; a stray REPRO_TRACE would skew them."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)

V, D, B = 8, 2, 16
REPS = 3

#: name -> (N, p, engine)
CONFIGS = {
    "fig5_sort": (1 << 18, 1, "seq"),
    "theorem3_p2": (1 << 17, 2, "par"),
    "theorem3_p4": (1 << 17, 4, "par"),
}


def _floor() -> float:
    try:
        return float(os.environ.get("REPRO_WALLCLOCK_FLOOR", "1.5"))
    except ValueError:
        return 1.5


def _timed_run(data: np.ndarray, cfg: MachineConfig, engine: str, enabled: bool):
    """Best-of-REPS wall time and the last result, with the path pinned."""
    was = fastpath.enabled()
    fastpath.set_enabled(enabled)
    try:
        em_sort(data, cfg, engine=engine)  # warmup (allocator, caches)
        best = float("inf")
        res = None
        for _ in range(REPS):
            t0 = time.perf_counter()
            res = em_sort(data, cfg, engine=engine)
            best = min(best, time.perf_counter() - t0)
        return best, res
    finally:
        fastpath.set_enabled(was)


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_wallclock_speedup(name, bench_store):
    N, p, engine = CONFIGS[name]
    data = make_rng(0).integers(0, 2**50, N)
    cfg = MachineConfig(N=N, v=V, p=p, D=D, B=B)

    # disabled-path guarantee: the timed engines must see the no-op
    # recorder — the timing floor below then also gates bus-off overhead
    assert make_engine(cfg, engine).tracer.enabled is False, (
        "wall-clock bench must run untraced (is REPRO_TRACE set?)"
    )

    fast_s, fast = _timed_run(data, cfg, engine, enabled=True)
    ref_s, ref = _timed_run(data, cfg, engine, enabled=False)

    # the fast path is an implementation of the same model, not a variant:
    # outputs and every logical cost counter must be bit-identical
    assert np.array_equal(fast.values, ref.values)
    assert np.array_equal(fast.values, np.sort(data))
    fast_m = measured_from_report(fast.report)
    ref_m = measured_from_report(ref.report)
    assert fast_m == ref_m, f"{name}: IOStats diverged between paths"
    assert fast.report.io.as_dict() == ref.report.io.as_dict()

    speedup = ref_s / fast_s
    floor = _floor()
    print_table(
        f"wall-clock: {name} (N={N}, p={p}, B={B}, engine={engine})",
        ["path", "best of {}".format(REPS), "speedup"],
        [
            ["reference", f"{ref_s * 1e3:.1f} ms", ""],
            ["fast", f"{fast_s * 1e3:.1f} ms", f"{speedup:.2f}x"],
        ],
    )
    bench_store.record(
        name,
        cfg=cfg,
        report=fast.report,
        timings={"speedup": speedup},
        extra={"fast_s": fast_s, "ref_s": ref_s, "engine": engine, "reps": REPS},
    )
    assert speedup >= floor, (
        f"{name}: fast path only {speedup:.2f}x over reference "
        f"(floor {floor}) — did it fall back to the per-block loop?"
    )
