"""Section 5, "Cache Memories" — the two-level application of the theory.

The paper argues the same parameter analysis applies between cache and
main memory: with problem size N = M in main memory, cache size M_I and
lines of B_I, the log_{M_I/B_I}(N/B_I) factor collapses to c when
(M_I/B_I)^c = N — so programs formulated as coarse grained parallel
algorithms with virtual-processor contexts tuned to the cache control
their cache-fault volume.  This bench regenerates the log-term table at
the cache level and measures the tuned-vs-naive line-fill counts on the
simulated set-associative cache.
"""

from __future__ import annotations

import pytest

from repro.cache.cache_sim import CacheSim, cache_log_term, tuned_vs_naive_traversal

from conftest import print_table


def test_cache_log_term_table():
    B_I = 16  # 128-byte lines
    rows = []
    for M_I in (1 << 9, 1 << 12, 1 << 15):
        for N in (1 << 16, 1 << 20, 1 << 24):
            rows.append([M_I, N, f"{cache_log_term(N, M_I, B_I):.2f}"])
    print_table(
        "Cache-level log term log_{M_I/B_I}(N/B_I) (B_I = 16 items)",
        ["M_I (items)", "N (items)", "log term"],
        rows,
    )
    # bigger cache -> smaller term; the collapse point:
    assert cache_log_term(1 << 20, 1 << 15, 16) < cache_log_term(1 << 20, 1 << 9, 16)
    M_I, c = 1 << 12, 2.0
    N_star = int((M_I / 16) ** c * 16)
    assert cache_log_term(N_star, M_I, 16) == pytest.approx(c, rel=1e-6)


def test_cache_tuned_vs_naive(bench_store):
    rows = []
    for N in (1 << 14, 1 << 16, 1 << 18):
        out = tuned_vs_naive_traversal(N=N, M_I=1 << 10, B_I=16)
        rows.append(
            [
                N,
                out["compulsory"],
                out["tuned"],
                out["naive"],
                f"{out['naive'] / max(out['tuned'], 1):.1f}x",
            ]
        )
        bench_store.record(
            f"tuned-vs-naive/N={N}",
            measured={
                "compulsory": out["compulsory"],
                "tuned": out["tuned"],
                "naive": out["naive"],
            },
        )
        assert out["tuned"] < out["naive"] / 2
        assert out["tuned"] <= 4 * out["compulsory"]
    print_table(
        "Vishkin-style cache tuning: line fills, CGM-tuned vs naive sweep",
        ["N", "compulsory", "tuned", "naive", "naive/tuned"],
        rows,
    )


def test_cache_associativity_effect():
    """Full associativity vs 4-way on the tuned schedule: tuning is
    robust to realistic associativity."""
    full = CacheSim(M_I=1 << 10, B_I=16, n_sets=1)
    assoc4 = CacheSim(M_I=1 << 10, B_I=16, n_sets=(1 << 10) // (16 * 4))
    for region in range(8):
        start = region * 512
        for _ in range(3):
            full.access_range(start, 512)
            assoc4.access_range(start, 512)
    assert assoc4.misses <= 2 * full.misses


@pytest.mark.benchmark(group="cache")
def test_cache_benchmark(benchmark):
    out = benchmark(lambda: tuned_vs_naive_traversal(N=1 << 15, M_I=1 << 10, B_I=16))
    assert out["tuned"] < out["naive"]
