"""Figures 6 & 7 — the parameter-space surface N^(c-1) = v^c B^(c-1).

Figure 6 plots the surface of minimum problem sizes over (v, B) for which
the log_{M/B}(N/B) term (with M = N/v) collapses to the constant c;
Figure 7 is the fixed-c = 2, B = 10^3 slice.  We regenerate both data
sets and assert the concrete claims of Section 1.4:

* c = 2, v = 10^4 needs ~100 giga-items;
* c = 3, v = 10^4 needs only ~1 giga-item;
* c = 2, v <= 100 needs only ~10 mega-items.

A direct check confirms that ON the surface the realized log term equals
c, above it it is smaller, below it larger.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.theory import (
    constraint_surface,
    fig7_slice,
    log_term_bound_c,
    min_problem_size,
)

from conftest import print_table


def test_fig6_surface_table(bench_store):
    B = 1e3
    v_values = np.array([10.0, 100.0, 1000.0, 10_000.0])
    rows = []
    for v in v_values:
        rows.append(
            [
                int(v),
                f"{min_problem_size(v, B, 2.0):.3g}",
                f"{min_problem_size(v, B, 3.0):.3g}",
                f"{min_problem_size(v, B, 4.0):.3g}",
            ]
        )
        bench_store.record(
            f"surface/v={int(v)}",
            measured={
                "min_N_c2": min_problem_size(v, B, 2.0),
                "min_N_c3": min_problem_size(v, B, 3.0),
                "min_N_c4": min_problem_size(v, B, 4.0),
            },
            B_items=int(B),
        )
    print_table(
        "Figure 6: minimum N for log-term <= c (B = 10^3 items)",
        ["v", "c=2", "c=3", "c=4"],
        rows,
    )
    # Section 1.4's claims
    assert 1e10 < min_problem_size(1e4, B, 2.0) < 1e12     # ~100 giga-items
    assert 1e8 < min_problem_size(1e4, B, 3.0) < 1e10      # ~1 giga-item
    assert min_problem_size(100.0, B, 2.0) <= 2e7          # ~10 mega-items


def test_fig6_grid_monotone():
    v = np.logspace(1, 4, 10)
    B = np.logspace(2, 4, 6)
    grid = constraint_surface(v, B, c=2.0)
    assert grid.shape == (6, 10)
    assert (np.diff(grid, axis=1) > 0).all()
    assert (np.diff(grid, axis=0) > 0).all()


def test_fig7_slice_and_log_term_realization():
    v_values = np.array([10.0, 32.0, 100.0, 316.0, 1000.0])
    Ns = fig7_slice(v_values, B=1e3, c=2.0)
    rows = []
    for v, N in zip(v_values, Ns):
        realized = log_term_bound_c(int(N), int(v), 1000)
        above = log_term_bound_c(int(10 * N), int(v), 1000)
        below = log_term_bound_c(max(int(N / 10), 2_000_000), int(v), 1000)
        rows.append([int(v), f"{N:.3g}", f"{realized:.3f}", f"{above:.3f}", f"{below:.3f}"])
        assert realized == pytest.approx(2.0, rel=5e-2)
        assert above < realized
    print_table(
        "Figure 7: c=2 slice (B=10^3): minimum N and realized log-term",
        ["v", "min N", "log-term@N", "@10N", "@N/10"],
        rows,
    )


@pytest.mark.benchmark(group="fig6")
def test_fig6_benchmark_surface(benchmark):
    v = np.logspace(1, 4, 50)
    B = np.logspace(2, 4, 50)
    grid = benchmark(lambda: constraint_surface(v, B, c=2.0))
    assert grid.shape == (50, 50)
