"""Shared helpers for the reproduction benchmarks.

Every module regenerates one table/figure of the paper: it prints the
paper-style rows (the reproducible artifact) and feeds one representative
configuration through pytest-benchmark for timing.  I/O counts, round
counts and message-size bounds are deterministic; wall-clock numbers are
this machine's, not 1998 Pentiums' — EXPERIMENTS.md records the shape
comparisons.
"""

from __future__ import annotations

import numpy as np
import pytest


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render a compact fixed-width table to stdout (shown with -s)."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(_fmt(c).rjust(w) for c, w in zip(r, widths)))


def _fmt(x) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1000 or abs(x) < 0.01:
            return f"{x:.3g}"
        return f"{x:.3f}"
    return str(x)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20260704)
