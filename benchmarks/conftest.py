"""Shared helpers for the reproduction benchmarks.

Every module regenerates one table/figure of the paper: it prints the
paper-style rows (the reproducible artifact), records the same numbers
into a :class:`repro.obs.bench_store.BenchStore` via the ``bench_store``
fixture, and feeds one representative configuration through
pytest-benchmark for timing.  I/O counts, round counts and message-size
bounds are deterministic; wall-clock numbers are this machine's, not 1998
Pentiums' — EXPERIMENTS.md records the shape comparisons.

At session end each module that recorded points gets one schema-versioned
``BENCH_<suite>.json`` written to ``$REPRO_BENCH_DIR`` (default: the
current directory).  ``python -m repro bench`` runs these modules
headlessly and gates the artifacts against committed baselines with
``repro bench --compare``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.obs.bench_store import BenchStore
from repro.util.rng import make_rng
from repro.util.tables import fmt_cell as _fmt  # noqa: F401  (bench modules import)
from repro.util.tables import print_table  # noqa: F401  (re-export for bench modules)

#: one store per bench module, written out at session finish.
_STORES: dict[str, BenchStore] = {}


@pytest.fixture
def bench_store(request) -> BenchStore:
    """The module's shared result store (suite name = module sans bench_)."""
    module = request.module.__name__
    store = _STORES.get(module)
    if store is None:
        store = BenchStore(module.removeprefix("bench_"))
        _STORES[module] = store
    return store


def pytest_sessionfinish(session, exitstatus):
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    for store in _STORES.values():
        if store.points:
            path = store.write(out_dir)
            print(f"\nbench store: {len(store.points)} points -> {path}")


@pytest.fixture
def rng() -> np.random.Generator:
    return make_rng(20260704)
