"""Classical PDM algorithms — the comparison points of Figure 5.

These run on the same simulated :class:`DiskArray` substrate as the
EM-CGM engines, so their parallel-I/O counts are directly comparable:

* :class:`MergeSortBaseline` — textbook external multiway merge sort:
  run formation (runs of M items) followed by ceil(log_{M/B}(N/M)) merge
  passes, each reading and writing all N items.  Its I/O count is
  Theta((N/DB) log_{M/B}(N/B)) — the Aggarwal–Vitter bound the paper's
  coarse-grained regime beats.
* :class:`DirectPlacementPermute` — permutation by direct placement with
  an M/B-block LRU write cache: the classical Theta(min(N/D, sort))
  behaviour (one I/O per item once the cache stops capturing locality).

Both are *real* algorithms: the data genuinely flows through the block
store, and the outputs are verified in the tests.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.pdm.disk_array import DiskArray
from repro.pdm.io_stats import IOStats
from repro.util.validation import ConfigurationError, require


@dataclass
class BaselineResult:
    values: np.ndarray
    io: IOStats
    passes: int = 0


class _BlockFile:
    """A linear file of fixed-size int64 blocks striped over the array.

    Block i lives on disk ``i mod D``, track allocated from a shared
    cursor — consecutive format, so bulk reads/writes of one file are
    fully D-parallel.
    """

    def __init__(self, array: DiskArray, track_cursor: list[int]) -> None:
        self.array = array
        self.addresses: list[tuple[int, int]] = []
        self._cursor = track_cursor

    def append_blocks(self, blocks: list[np.ndarray]) -> None:
        D = self.array.D
        placements = []
        for blk in blocks:
            i = len(self.addresses)
            disk = i % D
            if disk == 0:
                self._cursor[0] += 1
            addr = (disk, self._cursor[0])
            self.addresses.append(addr)
            placements.append((addr[0], addr[1], blk.tobytes()))
        self.array.write_blocks(placements)

    def read_range(self, first: int, count: int) -> np.ndarray:
        raw = self.array.read_blocks(self.addresses[first : first + count])
        return np.frombuffer(b"".join(raw), dtype=np.int64)

    @property
    def n_blocks(self) -> int:
        return len(self.addresses)


def _to_blocks(arr: np.ndarray, B: int) -> list[np.ndarray]:
    pad = (-arr.size) % B
    if pad:
        arr = np.concatenate([arr, np.zeros(pad, dtype=np.int64)])
    return [arr[i : i + B] for i in range(0, arr.size, B)]


class MergeSortBaseline:
    """External multiway merge sort with D-parallel streaming."""

    def __init__(self, D: int, B: int, M: int) -> None:
        require(M >= 2 * D * B, f"merge sort needs M >= 2*D*B, got M={M}, D*B={D * B}")
        self.D, self.B, self.M = D, B, M
        # fan-in: input streams each buffer D blocks, plus an output buffer
        self.fan_in = max(2, M // (B * D) - 1)

    def sort(self, data: np.ndarray) -> BaselineResult:
        data = np.ascontiguousarray(data, dtype=np.int64)
        n = data.size
        if n == 0:
            return BaselineResult(data, IOStats(), passes=0)
        array = DiskArray(self.D, self.B)
        cursor = [0]

        # load input onto disk (counted: the EM-CGM engines likewise pay
        # for their initial context distribution)
        source = _BlockFile(array, cursor)
        source.append_blocks(_to_blocks(data, self.B))

        # --- run formation: sorted runs of M items -------------------------
        runs: list[tuple[_BlockFile, int]] = []  # (file, item count)
        blocks_per_run = max(1, self.M // self.B)
        pos = 0
        while pos < source.n_blocks:
            count = min(blocks_per_run, source.n_blocks - pos)
            chunk = source.read_range(pos, count)
            items = min(chunk.size, n - pos * self.B)
            chunk = np.sort(chunk[:items], kind="stable")
            run = _BlockFile(array, cursor)
            run.append_blocks(_to_blocks(chunk, self.B))
            runs.append((run, items))
            pos += count

        # --- merge passes ---------------------------------------------------
        passes = 0
        while len(runs) > 1:
            passes += 1
            next_runs: list[tuple[_BlockFile, int]] = []
            for g in range(0, len(runs), self.fan_in):
                group = runs[g : g + self.fan_in]
                merged_file = _BlockFile(array, cursor)
                total = sum(cnt for _, cnt in group)

                def stream(run_file: _BlockFile, items: int):
                    """Yield items of a run, fetching D blocks per I/O."""
                    yielded = 0
                    for first in range(0, run_file.n_blocks, self.D):
                        cnt = min(self.D, run_file.n_blocks - first)
                        chunk = run_file.read_range(first, cnt)
                        take = min(chunk.size, items - yielded)
                        yielded += take
                        yield from chunk[:take].tolist()

                merged_iter = heapq.merge(*(stream(f, c) for f, c in group))
                staging: list[int] = []
                emitted = 0
                for value in merged_iter:
                    staging.append(value)
                    if len(staging) == self.B * self.D:
                        merged_file.append_blocks(
                            _to_blocks(np.array(staging, dtype=np.int64), self.B)
                        )
                        emitted += len(staging)
                        staging = []
                if staging:
                    merged_file.append_blocks(
                        _to_blocks(np.array(staging, dtype=np.int64), self.B)
                    )
                    emitted += len(staging)
                assert emitted == total
                next_runs.append((merged_file, total))
            runs = next_runs

        final_file, final_count = runs[0]
        out = final_file.read_range(0, final_file.n_blocks)[:final_count]
        return BaselineResult(out.copy(), array.stats, passes=passes)

    def predicted_passes(self, n: int) -> int:
        """1 run-formation pass + ceil(log_fan(runs)) merge passes."""
        import math

        runs = max(1, -(-n // self.M))
        if runs == 1:
            return 0
        return max(1, math.ceil(math.log(runs) / math.log(self.fan_in)))


class DirectPlacementPermute:
    """Permutation by direct placement through an LRU block cache.

    Reads the input sequentially; each item is deposited into its target
    output block.  Output blocks are cached (M/B frames, LRU, write-back):
    for a random permutation with N >> M nearly every placement misses,
    reproducing the classical ~N/D I/O behaviour that makes sorting-based
    permutation preferable in the general PDM.
    """

    def __init__(self, D: int, B: int, M: int) -> None:
        require(M >= 2 * D * B, f"need M >= 2*D*B, got M={M}")
        self.D, self.B, self.M = D, B, M
        self.frames = max(2, M // B // 2)  # half of memory for the cache

    def permute(self, values: np.ndarray, destinations: np.ndarray) -> BaselineResult:
        values = np.ascontiguousarray(values, dtype=np.int64)
        destinations = np.ascontiguousarray(destinations, dtype=np.int64)
        if values.shape != destinations.shape:
            raise ConfigurationError("values and destinations must match")
        n = values.size
        array = DiskArray(self.D, self.B)
        cursor = [0]
        source = _BlockFile(array, cursor)
        source.append_blocks(_to_blocks(values, self.B))

        n_out_blocks = -(-n // self.B)
        out_file = _BlockFile(array, cursor)
        out_file.append_blocks(_to_blocks(np.zeros(n, dtype=np.int64), self.B))

        cache: OrderedDict[int, np.ndarray] = OrderedDict()

        def load_block(bid: int) -> np.ndarray:
            if bid in cache:
                cache.move_to_end(bid)
                return cache[bid]
            if len(cache) >= self.frames:
                old_bid, old_blk = cache.popitem(last=False)
                addr = out_file.addresses[old_bid]
                array.write_blocks([(addr[0], addr[1], old_blk.tobytes())])
            blk = out_file.read_range(bid, 1).copy()
            cache[bid] = blk
            return blk

        # stream the input D blocks per I/O
        for first in range(0, source.n_blocks, self.D):
            cnt = min(self.D, source.n_blocks - first)
            chunk = source.read_range(first, cnt)
            base = first * self.B
            take = min(chunk.size, n - base)
            for off in range(take):
                dest = int(destinations[base + off])
                blk = load_block(dest // self.B)
                blk[dest % self.B] = chunk[off]

        for bid, blk in cache.items():
            addr = out_file.addresses[bid]
            array.write_blocks([(addr[0], addr[1], blk.tobytes())])
        cache.clear()

        out = out_file.read_range(0, n_out_blocks)[:n]
        return BaselineResult(out.copy(), array.stats)
