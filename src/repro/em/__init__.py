"""User-facing external-memory API and classical PDM baselines.

:mod:`repro.em.runner` wraps the engine/program machinery into one-call
functions (``em_sort``, ``em_permute``, ``em_transpose``, ``em_run``);
:mod:`repro.em.baselines` implements the *classical* PDM algorithms
(multiway merge sort with its log_{M/B}(N/B) passes, naive permutation)
that the Figure 5 benchmarks compare against.
"""

from repro.em.runner import EMResult, em_permute, em_run, em_sort, em_transpose, make_engine

__all__ = [
    "EMResult",
    "em_permute",
    "em_run",
    "em_sort",
    "em_transpose",
    "make_engine",
]
