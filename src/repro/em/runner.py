"""One-call external-memory operations built on the simulation engines.

These are the functions a downstream user calls::

    cfg = MachineConfig(N=n, v=16, p=2, D=2, B=512)
    out = em_sort(data, cfg)                     # parallel EM sort
    out.values                                    # the sorted array
    out.report.io.parallel_ios                    # PDM cost of the run

``engine=`` selects the backend: ``"seq"`` (Algorithm 2, default when
p == 1), ``"par"`` (Algorithm 3), ``"memory"`` (pure CGM reference), or
``"vm"`` (the Figure 3 LRU-paging baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.algorithms.collectives import partition_array
from repro.algorithms.permutation import CGMPermute
from repro.algorithms.sorting import SampleSort
from repro.algorithms.transpose import CGMTranspose
from repro.cgm.config import MachineConfig
from repro.cgm.engine import Engine, InMemoryEngine, RunResult
from repro.cgm.metrics import CostReport
from repro.cgm.program import CGMProgram
from repro.core.par_engine import ParEMEngine, SeqEMEngine
from repro.core.vm_engine import VMEngine
from repro.faults.checkpoint import CheckpointManager
from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.tune.runtime import RuntimeConfig
from repro.util.validation import ConfigurationError

_ENGINES = {
    "seq": SeqEMEngine,
    "par": ParEMEngine,
    "memory": InMemoryEngine,
    "vm": VMEngine,
}


def make_engine(
    cfg: MachineConfig,
    engine: str | None = None,
    balanced: bool = False,
    validate: bool = True,
    tracer: TraceRecorder | None = None,
    metrics: MetricsRegistry | None = None,
    faults: FaultPlan | str | None = None,
    checkpoint: CheckpointManager | str | None = None,
    resume: bool = False,
    runtime: RuntimeConfig | None = None,
    profile: str | dict | None = None,
) -> Engine:
    """Engine factory; ``None`` picks seq/par EM from ``cfg.p``.

    Every ``REPRO_*`` knob is resolved here, once, into one per-run
    :class:`~repro.tune.runtime.RuntimeConfig` snapshot (precedence: CLI
    flag > environment > tuned profile > default) that the engine and all
    its storage hold for the whole run — flipping an environment variable
    between two runs re-resolves cleanly, never half-applies.  Malformed
    knob values raise a named :class:`~repro.tune.knobs.KnobError` instead
    of a bare traceback.

    *runtime* pins an explicit pre-resolved snapshot (the tuner's probes);
    *profile* applies a tuned-profile JSON document (path or loaded dict)
    under the environment, as does ``REPRO_PROFILE`` when neither argument
    is given.

    The ``par`` backend switches to the multi-core worker implementation
    when ``cfg.workers > 1`` (or the ``REPRO_WORKERS`` knob requests it
    and the config leaves ``workers`` unset) and there is more than one
    real processor to parallelize over.

    Resilience knobs (EM backends only): *faults* is a
    :class:`~repro.faults.plan.FaultPlan` (or a path to its JSON form)
    injected into every disk array; *checkpoint* a
    :class:`~repro.faults.checkpoint.CheckpointManager` (or directory)
    that snapshots the run at every round boundary; *resume* restores the
    newest snapshot instead of running setup.  When no explicit plan is
    given, the ``REPRO_FAULTS`` knob applies one to every fault-capable
    engine (the CI whole-suite injection lane).

    When no *tracer* is passed, the ``REPRO_TRACE`` knob can install a
    live :class:`~repro.obs.bus.EventBus` (a truthy value records in
    memory; a path value streams JSON lines there) — unset, the default
    stays the zero-cost :data:`~repro.obs.trace.NULL_RECORDER`.
    """
    prof_doc: dict | None = None
    if runtime is not None:
        rt = runtime
    else:
        rt = RuntimeConfig.resolve()
        if profile is None and rt.profile:
            profile = rt.profile
        if profile is not None:
            from repro.tune.profile import config_from_profile, load_profile

            prof_doc = load_profile(profile) if isinstance(profile, str) else profile
            rt = RuntimeConfig.resolve(profile=config_from_profile(prof_doc))
    if tracer is None:
        from repro.obs.bus import bus_from_env

        tracer = bus_from_env()
    if engine is None:
        engine = "seq" if cfg.p == 1 else "par"
    try:
        cls = _ENGINES[engine]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {sorted(_ENGINES)}"
        ) from None
    eng: Engine | None = None
    if engine == "par" and cfg.p > 1:
        workers = cfg.workers or rt.workers
        if rt.transport == "tcp" and workers <= 1:
            # spanning machines requires the worker coordinator; with no
            # explicit count, run one worker per configured node — but
            # never fewer than two, or a single-node list would fall
            # through to an in-process run that ignores the node entirely
            # (daemons host one session per connection, so two workers on
            # one node is plain co-tenancy)
            from repro.core.transport import require_nodes

            workers = min(max(len(require_nodes(rt.nodes)), 2), cfg.p)
        if workers > 1:
            from repro.core.workers import ProcessParEngine

            eng = ProcessParEngine(
                cfg.with_(workers=workers),
                balanced=balanced,
                validate=validate,
                tracer=tracer,
                metrics=metrics,
            )
    if eng is None:
        eng = cls(
            cfg, balanced=balanced, validate=validate, tracer=tracer, metrics=metrics
        )
    eng.runtime = rt
    if isinstance(faults, str):
        faults = FaultPlan.from_json(faults)
    if faults is None and eng.supports_faults and rt.faults:
        faults = FaultPlan.from_json(rt.faults)
    eng.faults = faults
    if checkpoint is not None:
        eng.checkpoint = (
            checkpoint
            if isinstance(checkpoint, CheckpointManager)
            else CheckpointManager(checkpoint)
        )
    eng.resume = bool(resume)
    if prof_doc is not None:
        measured = prof_doc.get("search", {}).get("transport")
        if measured and measured != rt.transport:
            import warnings

            warnings.warn(
                f"tuned profile was measured under the {measured!r} transport "
                f"but this run uses {rt.transport!r}; its wall-clock choices "
                "may not transfer (logical counters are unaffected)",
                UserWarning,
                stacklevel=2,
            )
    if prof_doc is not None and tracer is not None and tracer.enabled:
        # surface the applied profile before run_begin: repro analyze
        # counts pre-superstep kinds as setup events and reports the
        # chosen configuration + rationale alongside the run
        tracer.emit(
            "tuned_config",
            config=dict(prof_doc.get("config", {})),
            machine=dict(prof_doc.get("machine", {})),
            rationale=list(prof_doc.get("rationale", [])),
            fingerprint=prof_doc.get("fingerprint", ""),
        )
    return eng


@dataclass
class EMResult:
    """An EM operation's output plus its full cost accounting."""

    values: Any
    result: RunResult

    @property
    def report(self) -> CostReport:
        return self.result.report

    @property
    def cfg(self) -> MachineConfig:
        return self.result.cfg


def em_run(
    program: CGMProgram,
    inputs: list[Any],
    cfg: MachineConfig,
    engine: str | None = None,
    balanced: bool = False,
    validate: bool = True,
    tracer: TraceRecorder | None = None,
    metrics: MetricsRegistry | None = None,
    faults: FaultPlan | str | None = None,
    checkpoint: CheckpointManager | str | None = None,
    resume: bool = False,
    runtime: RuntimeConfig | None = None,
    profile: str | dict | None = None,
) -> RunResult:
    """Run any CGM program on the selected backend."""
    return make_engine(
        cfg, engine, balanced, validate, tracer, metrics,
        faults=faults, checkpoint=checkpoint, resume=resume,
        runtime=runtime, profile=profile,
    ).run(program, inputs)


def em_sort(
    data: np.ndarray,
    cfg: MachineConfig,
    engine: str | None = None,
    balanced: bool = False,
    tracer: TraceRecorder | None = None,
    metrics: MetricsRegistry | None = None,
    faults: FaultPlan | str | None = None,
    checkpoint: CheckpointManager | str | None = None,
    resume: bool = False,
    profile: str | dict | None = None,
) -> EMResult:
    """Sort *data* with the simulated CGM sample sort (O(N/(pDB)) I/Os)."""
    data = np.asarray(data)
    res = em_run(
        SampleSort(), partition_array(data, cfg.v), cfg, engine, balanced,
        tracer=tracer, metrics=metrics,
        faults=faults, checkpoint=checkpoint, resume=resume, profile=profile,
    )
    return EMResult(np.concatenate(res.outputs), res)


def em_permute(
    values: np.ndarray,
    destinations: np.ndarray,
    cfg: MachineConfig,
    engine: str | None = None,
    balanced: bool = False,
    tracer: TraceRecorder | None = None,
    metrics: MetricsRegistry | None = None,
    faults: FaultPlan | str | None = None,
    checkpoint: CheckpointManager | str | None = None,
    resume: bool = False,
    profile: str | dict | None = None,
) -> EMResult:
    """Permute int64 *values*: output[destinations[i]] = values[i].

    *destinations* must be a permutation of 0..N-1 (Algorithm 4 of the
    paper — O(N/(pDB)) I/Os vs the PDM's min(N/D, sort) lower bound).
    """
    values = np.asarray(values)
    destinations = np.asarray(destinations, dtype=np.int64)
    if values.shape != destinations.shape:
        raise ConfigurationError("values and destinations must have equal length")
    inputs = list(
        zip(partition_array(values, cfg.v), partition_array(destinations, cfg.v))
    )
    res = em_run(
        CGMPermute(), inputs, cfg, engine, balanced, tracer=tracer, metrics=metrics,
        faults=faults, checkpoint=checkpoint, resume=resume, profile=profile,
    )
    return EMResult(np.concatenate(res.outputs), res)


def em_transpose(
    matrix: np.ndarray,
    cfg: MachineConfig,
    engine: str | None = None,
    balanced: bool = False,
    tracer: TraceRecorder | None = None,
    metrics: MetricsRegistry | None = None,
    faults: FaultPlan | str | None = None,
    checkpoint: CheckpointManager | str | None = None,
    resume: bool = False,
    profile: str | dict | None = None,
) -> EMResult:
    """Transpose a k x ell int64 matrix (O(N/(pDB)) I/Os)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ConfigurationError("em_transpose needs a 2-D matrix")
    k, ell = matrix.shape
    bands = np.array_split(matrix, cfg.v, axis=0)
    row0 = 0
    inputs = []
    for band in bands:
        inputs.append((band, row0, k, ell))
        row0 += band.shape[0]
    res = em_run(
        CGMTranspose(), inputs, cfg, engine, balanced, tracer=tracer, metrics=metrics,
        faults=faults, checkpoint=checkpoint, resume=resume, profile=profile,
    )
    out = np.vstack([o for o in res.outputs if o.size]) if any(o.size for o in res.outputs) else np.zeros((ell, k), dtype=np.int64)
    return EMResult(out, res)
