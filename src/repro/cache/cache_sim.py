"""A set-associative LRU cache simulator and the paper's cache analysis.

Everything is item-addressed (8-byte words), mirroring the PDM layer: the
cache holds ``M_I`` items in lines of ``B_I`` items, organized into
``n_sets`` sets with LRU replacement inside each set (``n_sets = 1`` gives
a fully associative cache).  The counter of interest is *line fills* — the
cache-level analog of the PDM's block I/Os.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from repro.util.validation import require


class CacheSim:
    """Item-addressed set-associative LRU cache."""

    def __init__(self, M_I: int, B_I: int, n_sets: int = 1) -> None:
        require(B_I >= 1, "line size must be positive")
        require(M_I >= B_I, "cache must hold at least one line")
        require(n_sets >= 1, "need at least one set")
        self.M_I = M_I
        self.B_I = B_I
        self.n_sets = n_sets
        self.ways = max(1, M_I // (B_I * n_sets))
        self._sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(n_sets)]
        self.misses = 0
        self.accesses = 0
        self.evictions = 0

    def access(self, addr: int) -> bool:
        """Touch one item; returns True on miss (line fill)."""
        self.accesses += 1
        line = addr // self.B_I
        s = self._sets[line % self.n_sets]
        if line in s:
            s.move_to_end(line)
            return False
        self.misses += 1
        if len(s) >= self.ways:
            s.popitem(last=False)
            self.evictions += 1
        s[line] = None
        return True

    def access_range(self, start: int, n_items: int) -> int:
        """Sequentially touch [start, start+n); returns new misses.

        Whole-line arithmetic (one access per line) keeps long streaming
        touches cheap to simulate while counting identically.
        """
        if n_items <= 0:
            return 0
        before = self.misses
        first = start // self.B_I
        last = (start + n_items - 1) // self.B_I
        for line in range(first, last + 1):
            self.access(line * self.B_I)
        return self.misses - before

    def access_indices(self, addrs: np.ndarray) -> int:
        """Touch an arbitrary index trace; returns new misses."""
        before = self.misses
        for a in np.asarray(addrs).ravel():
            self.access(int(a))
        return self.misses - before

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def cache_log_term(N: int, M_I: int, B_I: int) -> float:
    """log_{M_I/B_I}(N/B_I): the factor that collapses to c when
    (M_I/B_I)^c = N (paper, Section 5 'Cache Memories')."""
    if M_I <= B_I:
        return math.inf
    return max(1.0, math.log(N / B_I) / math.log(M_I / B_I))


def tuned_vs_naive_traversal(
    N: int, M_I: int, B_I: int, seed: int = 0
) -> dict[str, int]:
    """Cache misses of a CGM-tuned vs a naive pass over the same workload.

    The workload is the merge/communication phase of one compound
    superstep: v' "virtual processor" regions must each be read, updated
    and written.  The *tuned* schedule sizes regions to the cache
    (mu = M_I/2 items) and processes them one at a time — every region is
    loaded once.  The *naive* schedule interleaves accesses round-robin
    across all regions (the natural 'process one message from each peer'
    loop), so with v'*stride > M_I the cache thrashes.

    Returns ``{"tuned": misses, "naive": misses, "compulsory": lines}``.
    """
    rng = np.random.default_rng(seed)
    mu = max(B_I, M_I // 2)
    v = max(2, -(-N // mu))
    compulsory = -(-N // B_I)

    tuned = CacheSim(M_I, B_I)
    for region in range(v):
        start = region * mu
        size = min(mu, N - start)
        if size <= 0:
            break
        for _ in range(3):  # read, update, write within the region
            tuned.access_range(start, size)

    naive = CacheSim(M_I, B_I)
    chunk = B_I  # one line from each region per sweep
    sweeps = -(-mu // chunk)
    for s in range(3 * sweeps):
        off = (s % sweeps) * chunk
        for region in range(v):
            start = region * mu + off
            if start >= N:
                continue
            naive.access_range(start, min(chunk, N - start))
    del rng
    return {"tuned": tuned.misses, "naive": naive.misses, "compulsory": compulsory}
