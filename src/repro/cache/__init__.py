"""Section 5's cache-memory extension.

The same theory applies one level up the hierarchy: between cache (size
M_I, lines of B_I) and main memory (the "problem" of size N = M), the
block-access lower bounds of [3] hold, and when (M_I/B_I)^c = N the
logarithmic factor again collapses to the constant c.  Programs formulated
as coarse-grained parallel algorithms with virtual-processor contexts
tuned to the cache size therefore control their cache-miss volume — the
Vishkin-style observation the paper closes with.

:class:`CacheSim` is a set-associative LRU cache simulator;
:func:`tuned_vs_naive_sort_misses` demonstrates the effect on a concrete
two-level workload.
"""

from repro.cache.cache_sim import CacheSim, cache_log_term, tuned_vs_naive_traversal

__all__ = ["CacheSim", "cache_log_term", "tuned_vs_naive_traversal"]
