"""The job lifecycle state machine and its per-job event bus.

States (see DESIGN.md §11 for the full diagram)::

    queued ----> running ----> done | failed
      |  \\         |  \\
      |   `> done  |   `> preempted --> running (resumed)
      |  (cache)   |          |
      `----------> cancelled <'

``done``, ``failed`` and ``cancelled`` are terminal: the job's
:class:`~repro.obs.bus.EventBus` is closed (ending any SSE streams) and
:attr:`Job.finished` is set.  ``preempted`` is *not* terminal — the
checkpoint written at the preempting round boundary makes the next
``running`` attempt a bit-identical continuation.

Every transition is emitted on the job's bus as a ``job_state`` event,
so an SSE client sees the lifecycle interleaved with the engine's own
trace events.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.obs.bus import EventBus
from repro.service.spec import JobSpec
from repro.util.validation import SimulationError

QUEUED = "queued"
RUNNING = "running"
PREEMPTED = "preempted"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, PREEMPTED, DONE, FAILED, CANCELLED)
TERMINAL = frozenset({DONE, FAILED, CANCELLED})

#: legal transitions; queued -> done is the cache-hit short circuit
_ALLOWED: dict[str, frozenset[str]] = {
    QUEUED: frozenset({RUNNING, DONE, CANCELLED}),
    RUNNING: frozenset({DONE, FAILED, PREEMPTED, CANCELLED}),
    PREEMPTED: frozenset({RUNNING, CANCELLED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}


class ServiceError(SimulationError):
    """The job server detected an internal inconsistency."""


class InvalidTransition(ServiceError):
    """A lifecycle transition the state machine forbids."""


class Job:
    """One submitted run: spec + lifecycle + telemetry + result."""

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        ckpt_dir: str,
        fingerprint: str | None = None,
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.ckpt_dir = ckpt_dir
        self.fingerprint = (
            fingerprint if fingerprint is not None else spec.fingerprint()
        )
        #: per-job telemetry: the engine's tracer plus lifecycle events;
        #: conformance monitoring stays with the one-shot CLI paths
        self.bus = EventBus(monitor=False)
        self.state: str = QUEUED
        self.attempts = 0
        self.preemptions = 0
        self.result: dict[str, Any] | None = None
        self.error: str | None = None
        self.cache: str = "miss"
        self.submitted_s = time.time()
        self.finished_s: float | None = None
        #: dispatch order, assigned by the queue (-1 = never enqueued)
        self.enqueue_seq = -1
        #: restore from the newest checkpoint on the next dispatch
        self.resume = False
        self.finished = threading.Event()
        self._preempt = threading.Event()
        self._cancel = threading.Event()
        self._lock = threading.RLock()

    # -- lifecycle -----------------------------------------------------------

    def set_state(self, new: str) -> None:
        """Transition to *new*, emit ``job_state``, close the bus if terminal."""
        with self._lock:
            if new not in _ALLOWED.get(self.state, frozenset()):
                raise InvalidTransition(
                    f"job {self.id}: illegal transition {self.state} -> {new}"
                )
            self.state = new
            if self.bus.enabled:
                self.bus.emit(
                    "job_state",
                    job=self.id,
                    state=new,
                    attempts=self.attempts,
                    preemptions=self.preemptions,
                )
            if new in TERMINAL:
                self.finished_s = time.time()
                self.bus.close()
                self.finished.set()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    # -- control flags -------------------------------------------------------

    def request_preempt(self) -> None:
        """Ask the engine to stop at its next checkpointed round boundary."""
        self._preempt.set()

    def clear_preempt(self) -> None:
        self._preempt.clear()

    @property
    def preempt_requested(self) -> bool:
        return self._preempt.is_set()

    def request_cancel(self) -> None:
        """Cancel: a queued job dies in the queue; a running one is
        preempted at the next boundary and then discarded."""
        self._cancel.set()
        self._preempt.set()

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    # -- documents -----------------------------------------------------------

    def to_summary(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "tenant": self.spec.tenant,
            "op": self.spec.op,
            "n": self.spec.n,
            "priority": self.spec.priority,
            "state": self.state,
            "cache": self.cache,
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "submitted_s": self.submitted_s,
        }

    def to_doc(self) -> dict[str, Any]:
        doc = self.to_summary()
        doc["spec"] = self.spec.to_dict()
        doc["fingerprint"] = self.fingerprint
        doc["events_url"] = f"/jobs/{self.id}/events"
        doc["finished_s"] = self.finished_s
        if self.result is not None:
            doc["result"] = self.result
        if self.error is not None:
            doc["error"] = self.error
        return doc

    def persist_doc(self) -> dict[str, Any]:
        """What the drain path writes so a restart can re-enqueue this job."""
        return {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "resume": self.resume or self.attempts > 0,
            "ckpt_dir": self.ckpt_dir,
        }
