"""`repro serve`: the multi-tenant job server.

Split in two so everything interesting is testable without sockets:

* :class:`ServiceCore` — submit / status / cancel / drain over the
  queue, pool, cache and metrics (no HTTP anywhere);
* :class:`JobServer` — a :class:`ThreadingHTTPServer` (same skeleton as
  :class:`repro.obs.server.ObsServer`) translating HTTP to core calls.

Endpoints::

    POST /jobs               submit a spec      202 queued | 200 cached
                             (X-Repro-Cache: hit|miss on both)
                             400 invalid | 429 + Retry-After | 503 draining
    GET  /jobs               queue + job summaries
    GET  /jobs/<id>          full job document (result when done)
    GET  /jobs/<id>/events   per-job SSE stream (engine trace + lifecycle)
    POST /jobs/<id>/cancel   cancel (queued dies now, running at boundary)
    GET  /metrics            Prometheus text, per-tenant labels
    GET  /healthz            liveness + depth + drain flag

SIGTERM drain (the CLI wires the signal): stop admitting (503), preempt
in-flight jobs so they checkpoint at the next round boundary, persist
the pending + preempted set to ``<state_dir>/queue.json``, and exit 0.
A server restarted on the same state dir re-enqueues those jobs with
``resume=True`` — they continue from their snapshots bit-identically.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import urlparse

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import _jsonable
from repro.service.cache import ResultCache
from repro.service.jobs import CANCELLED, DONE, PREEMPTED, QUEUED, Job, ServiceError
from repro.service.pool import WorkerPool
from repro.service.queue import BackpressureError, JobQueue
from repro.service.spec import JobSpec
from repro.util.validation import ConfigurationError

#: seconds an idle SSE stream waits between polls (close() latency bound)
_SSE_POLL_S = 0.5
_SSE_KEEPALIVE_POLLS = 10

#: submissions beyond this many retained finished jobs evict the oldest
_MAX_FINISHED = 1024

QUEUE_STATE_FILE = "queue.json"
CACHE_STATE_FILE = "result_cache.json"


class DrainingError(ServiceError):
    """The server is shutting down and refuses new submissions (503)."""


class UnknownJobError(ServiceError):
    """No job with that id (404)."""


class ServiceCore:
    """The job server minus HTTP; every endpoint is one method here."""

    def __init__(
        self,
        state_dir: str,
        registry: MetricsRegistry | None = None,
        pool_size: int = 2,
        queue_capacity: int = 64,
        tenant_quota: int = 16,
        cache_capacity: int = 256,
        start: bool = True,
    ) -> None:
        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.queue = JobQueue(capacity=queue_capacity, tenant_quota=tenant_quota)
        self.cache = ResultCache(capacity=cache_capacity)
        self.pool = WorkerPool(self.queue, self.cache, self.registry, size=pool_size)
        self.pool.on_terminal = self._on_terminal
        self.jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._seq = itertools.count(1)
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._restore_state()
        if start:
            self.start()

    def start(self) -> "ServiceCore":
        self.pool.start()
        return self

    # -- metrics helpers -----------------------------------------------------

    def _counter(self, name: str, help: str, **labels: Any) -> None:
        if self.registry.enabled:
            self.registry.counter(name, help).labels(**labels).inc()

    def _refresh_gauges(self) -> None:
        if not self.registry.enabled:
            return
        self.registry.gauge(
            "repro_service_queue_depth", "jobs waiting for a worker"
        ).labels().set(self.queue.depth)
        stats = self.cache.stats()
        self.registry.gauge(
            "repro_service_cache_entries", "result-cache entries"
        ).labels().set(stats["entries"])

    # -- submission ----------------------------------------------------------

    def _new_job_id(self) -> str:
        with self._jobs_lock:
            while True:
                job_id = f"j{next(self._seq):05d}"
                if job_id not in self.jobs:
                    return job_id

    def _register(self, job: Job) -> None:
        with self._jobs_lock:
            self.jobs[job.id] = job
            finished = [j for j in self.jobs.values() if j.terminal]
            if len(finished) > _MAX_FINISHED:
                finished.sort(key=lambda j: j.finished_s or 0.0)
                for old in finished[: len(finished) - _MAX_FINISHED]:
                    del self.jobs[old.id]

    def submit(self, doc: Any) -> tuple[Job, bool]:
        """Validate and admit one spec; returns ``(job, served_from_cache)``.

        Raises :class:`ConfigurationError` (400), :class:`BackpressureError`
        (429) or :class:`DrainingError` (503).
        """
        if self._draining.is_set():
            raise DrainingError("server is draining; resubmit elsewhere or later")
        spec = JobSpec.from_dict(doc)
        job_id = self._new_job_id()
        job = Job(job_id, spec, os.path.join(self.state_dir, "ckpt", job_id))
        self._counter(
            "repro_service_jobs_submitted_total", "specs accepted for validation",
            tenant=spec.tenant,
        )
        cached = self.cache.get(job.fingerprint)
        if cached is not None:
            job.result = cached
            job.cache = "hit"
            self._register(job)
            self._counter(
                "repro_service_cache_hits_total",
                "jobs served from the result cache", tenant=spec.tenant,
            )
            job.set_state(DONE)
            self._record_terminal_metrics(job)
            return job, True
        self._counter(
            "repro_service_cache_misses_total",
            "submissions that had to run", tenant=spec.tenant,
        )
        self._register(job)
        try:
            self.queue.submit(job)
        except BackpressureError:
            with self._jobs_lock:
                self.jobs.pop(job.id, None)
            self._counter(
                "repro_service_rejected_total",
                "submissions refused by backpressure", tenant=spec.tenant,
            )
            raise
        self._refresh_gauges()
        victim = self.pool.maybe_preempt(job)
        if victim is not None:
            self._counter(
                "repro_service_preemptions_total",
                "running jobs evicted for a higher-priority tenant",
                tenant=victim.spec.tenant,
            )
        return job, False

    # -- status / cancel -----------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._jobs_lock:
            job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no such job {job_id!r}")
        return job

    def summaries(self) -> list[dict[str, Any]]:
        with self._jobs_lock:
            jobs = sorted(self.jobs.values(), key=lambda j: j.id)
        return [j.to_summary() for j in jobs]

    def cancel(self, job_id: str) -> Job:
        """Cancel a job; terminal jobs are left untouched (idempotent)."""
        job = self.get(job_id)
        if job.terminal:
            return job
        if self.queue.remove(job):
            job.request_cancel()
            job.set_state(CANCELLED)
            self._on_terminal(job)
        else:
            # running (or mid-requeue): the pool observes the flag at the
            # next round boundary / dispatch and finalizes the state
            job.request_cancel()
        return job

    # -- terminal bookkeeping -------------------------------------------------

    def _record_terminal_metrics(self, job: Job) -> None:
        self._counter(
            "repro_service_jobs_total", "jobs by terminal state",
            tenant=job.spec.tenant, state=job.state,
        )
        if self.registry.enabled and job.finished_s is not None:
            self.registry.timer(
                "repro_service_job_seconds", "submit-to-terminal latency"
            ).labels(tenant=job.spec.tenant).observe(
                job.finished_s - job.submitted_s
            )
        self._refresh_gauges()

    def _on_terminal(self, job: Job) -> None:
        if job.enqueue_seq >= 0:
            self.queue.release(job)
        self._record_terminal_metrics(job)

    # -- drain / restore ------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, timeout: float = 30.0) -> int:
        """SIGTERM path: stop admitting, checkpoint in-flight jobs,
        persist pending + preempted, close event streams.  Returns how
        many jobs were persisted (idempotent; later calls return 0)."""
        if self._draining.is_set():
            self._drained.wait(timeout)
            return 0
        self._draining.set()
        self.pool.stop()
        self.pool.join(timeout=timeout)
        with self._jobs_lock:
            preempted = [j for j in self.jobs.values() if j.state == PREEMPTED]
        saved = self.queue.persist(
            os.path.join(self.state_dir, QUEUE_STATE_FILE), extra=preempted
        )
        self._persist_cache()
        with self._jobs_lock:
            open_jobs = [j for j in self.jobs.values() if not j.terminal]
        for job in open_jobs:
            job.bus.close()  # end any SSE streams; state stays resumable
        self._drained.set()
        return saved

    def _persist_cache(self) -> None:
        """Write the result cache next to ``queue.json`` so a restarted
        server keeps serving hits: before this existed, a drain threw the
        cache away and every resubmitted spec re-ran from scratch."""
        docs = self.cache.to_docs()
        if not docs:
            return
        path = os.path.join(self.state_dir, CACHE_STATE_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump({"entries": docs}, fh, default=_jsonable)
        os.replace(tmp, path)

    def _restore_cache(self) -> None:
        path = os.path.join(self.state_dir, CACHE_STATE_FILE)
        if not os.path.exists(path):
            return
        try:
            with open(path) as fh:
                doc = json.load(fh)
            self.cache.load(doc.get("entries", []))
        except (OSError, ValueError):
            pass  # a corrupt cache file is a cold cache, not a crash
        os.remove(path)

    def _restore_state(self) -> None:
        self._restore_cache()
        path = os.path.join(self.state_dir, QUEUE_STATE_FILE)
        docs = JobQueue.load_persisted(path)
        if not docs:
            return
        for doc in docs:
            spec = JobSpec.from_dict(doc["spec"])
            job = Job(
                str(doc["id"]), spec,
                doc.get("ckpt_dir")
                or os.path.join(self.state_dir, "ckpt", str(doc["id"])),
            )
            job.attempts = int(doc.get("attempts", 0))
            job.preemptions = int(doc.get("preemptions", 0))
            job.resume = bool(doc.get("resume", False))
            self._register(job)
            try:
                self.queue.submit(job)
            except BackpressureError:  # smaller queue than the old server's
                with self._jobs_lock:
                    self.jobs.pop(job.id, None)
        os.remove(path)
        self._refresh_gauges()


class _ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the core for its handlers."""

    daemon_threads = True

    def __init__(self, addr: tuple[str, int], core: ServiceCore) -> None:
        super().__init__(addr, _Handler)
        self.core = core
        self.closing = threading.Event()


class _Handler(BaseHTTPRequestHandler):
    server: _ServiceHTTPServer

    def log_message(self, format: str, *args: Any) -> None:
        pass  # tests and CI hammer the API; default logging drowns stdout

    # -- response helpers ----------------------------------------------------

    def _json(
        self, code: int, doc: Any, headers: dict[str, str] | None = None
    ) -> None:
        payload = (json.dumps(doc) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _text(self, code: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlparse(self.path).path
        try:
            if path == "/metrics":
                self._metrics()
            elif path in ("/", "/healthz"):
                self._healthz()
            elif path == "/jobs":
                self._list_jobs()
            elif path.startswith("/jobs/") and path.endswith("/events"):
                self._events(path.split("/")[2])
            elif path.startswith("/jobs/"):
                self._job_doc(path.split("/")[2])
            else:
                self._json(404, {"error": f"no route {path}"})
        except UnknownJobError as exc:
            self._json(404, {"error": str(exc)})
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlparse(self.path).path
        try:
            if path == "/jobs":
                self._submit()
            elif path.startswith("/jobs/") and path.endswith("/cancel"):
                self._cancel(path.split("/")[2])
            else:
                self._json(404, {"error": f"no route {path}"})
        except UnknownJobError as exc:
            self._json(404, {"error": str(exc)})
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -- endpoints -----------------------------------------------------------

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ConfigurationError("empty request body (expected a JSON spec)")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"request body is not JSON: {exc}") from None

    def _submit(self) -> None:
        core = self.server.core
        try:
            job, cached = core.submit(self._read_body())
        except DrainingError as exc:
            self._json(503, {"error": str(exc)}, {"Retry-After": "30"})
            return
        except BackpressureError as exc:
            self._json(
                429, {"error": str(exc)},
                {"Retry-After": str(exc.retry_after_s)},
            )
            return
        except ConfigurationError as exc:
            self._json(400, {"error": str(exc)})
            return
        self._json(
            200 if cached else 202,
            job.to_doc(),
            {"X-Repro-Cache": job.cache, "Location": f"/jobs/{job.id}"},
        )

    def _cancel(self, job_id: str) -> None:
        job = self.server.core.cancel(job_id)
        self._json(200, job.to_doc())

    def _list_jobs(self) -> None:
        core = self.server.core
        self._json(
            200,
            {
                "jobs": core.summaries(),
                "queue_depth": core.queue.depth,
                "draining": core.draining,
                "cache": core.cache.stats(),
            },
        )

    def _job_doc(self, job_id: str) -> None:
        self._json(200, self.server.core.get(job_id).to_doc())

    def _healthz(self) -> None:
        core = self.server.core
        self._json(
            200,
            {
                "status": "draining" if core.draining else "ok",
                "jobs": len(core.jobs),
                "queue_depth": core.queue.depth,
            },
        )

    def _metrics(self) -> None:
        core = self.server.core
        core._refresh_gauges()
        self._text(
            200, core.registry.render_prometheus(),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _events(self, job_id: str) -> None:
        """Per-job SSE: replay the bus buffer, then stream live events
        until the job reaches a terminal state (bus closed -> end frame)."""
        job = self.server.core.get(job_id)
        bus = job.bus
        # subscribe *before* the terminal check: set_state flips the state
        # first and closes the bus after, so either we see terminal here
        # (replay-only) or our subscription is registered in time for
        # close() to end the stream — no hang window either way
        sub: Any = bus.subscribe()
        if job.terminal:
            sub.close()
            sub = None
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-store")
            self.send_header("Connection", "close")
            self.end_headers()
            last_seq = -1
            for ev in list(bus.events):
                self._frame(ev)
                last_seq = int(ev.get("seq", last_seq))
            if sub is None:
                self.wfile.write(b"event: end\ndata: {}\n\n")
                self.wfile.flush()
                return
            idle = 0
            while not self.server.closing.is_set():
                ev = sub.get(timeout=_SSE_POLL_S)
                if ev is None:
                    if sub.closed:
                        self.wfile.write(b"event: end\ndata: {}\n\n")
                        self.wfile.flush()
                        return
                    idle += 1
                    if idle >= _SSE_KEEPALIVE_POLLS:
                        self.wfile.write(b": keepalive\n\n")
                        self.wfile.flush()
                        idle = 0
                    continue
                idle = 0
                if int(ev.get("seq", -1)) <= last_seq:
                    continue  # already replayed from the buffer
                self._frame(ev)
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            if sub is not None:
                sub.close()

    def _frame(self, ev: dict[str, Any]) -> None:
        data = json.dumps(ev, default=_jsonable)
        self.wfile.write(
            f"id: {ev.get('seq', 0)}\nevent: trace\ndata: {data}\n\n".encode()
        )
        self.wfile.flush()


class JobServer:
    """The HTTP front of a :class:`ServiceCore`; ``port=0`` picks freely."""

    def __init__(
        self, core: ServiceCore, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.core = core
        self._httpd = _ServiceHTTPServer((host, port), core)
        self.host = self._httpd.server_address[0]
        self.port = int(self._httpd.server_address[1])
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "JobServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop the listener (idempotent).  Call :meth:`ServiceCore.drain`
        first for the SIGTERM semantics — close alone does not persist."""
        if self._httpd.closing.is_set():
            return
        self._httpd.closing.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
