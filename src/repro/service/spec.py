"""Validated run specifications and their cache fingerprints.

A :class:`JobSpec` is everything a tenant may say about a run: the
operation, problem size and seed, the simulated machine shape, the
backend, and a small allow-listed subset of the ``repro.tune`` knobs.
Parsing is strict, error-list style (mirroring
:func:`repro.tune.profile.validate_profile`): every problem in the
document is reported at once, as one :class:`ConfigurationError`, never
a traceback.

The **cache fingerprint** reuses the tuned-profile machinery
(:func:`repro.tune.profile.profile_fingerprint` over a canonical
workload document plus the stable host fingerprint) and deliberately
excludes everything that cannot change the result:

* ``tenant`` and ``priority`` — scheduling identity, not workload;
* ``workers`` — the multi-process backend is bit-identical to the
  in-process one by construction (the same reason
  ``repro.faults``' checkpoint metadata omits it);
* ``config`` knobs — fastpath/arena/prefetch/shm only change *how*
  bytes move, never the logical outputs or IOStats.

What remains (op, n, seed, machine shape, resolved engine, balanced
routing, fault plan) is exactly the set of inputs that determine the
result document bit for bit, so two tenants submitting the same
workload share one execution.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cgm.config import MachineConfig
from repro.faults.plan import FaultPlan
from repro.tune.knobs import KNOB_BY_NAME, KnobError
from repro.tune.profile import profile_fingerprint, stable_env_fingerprint
from repro.tune.tuner import WorkloadSpec
from repro.util.validation import ConfigurationError

#: operations a spec may request (the deterministic tuner workloads)
SPEC_OPS = ("sort", "permute", "transpose")

#: engines a spec may request (checkpoint-capable EM backends only;
#: ``None`` resolves like :func:`repro.em.runner.make_engine` does)
SPEC_ENGINES = ("seq", "par")

#: per-job problem-size ceiling — one tenant must not OOM the server
MAX_N = 1 << 24

#: per-job worker-process ceiling
MAX_WORKERS = 8

PRIORITY_RANGE = (0, 9)

#: knobs a spec's ``config`` section may set.  Everything here is
#: physical-only (bit-identical logical results by the repo's core
#: invariant).  Deliberately excluded: ``workers`` (top-level field),
#: ``faults`` (use the ``faults`` section), ``trace`` (the server owns
#: the tracer), ``profile`` and ``spill_dir`` (host paths are not
#: tenant-controllable).
CONFIG_KNOBS = frozenset({"fastpath", "arena", "prefetch", "shm_bytes", "spill_quota"})

_TOP_KEYS = frozenset(
    {
        "op", "n", "seed", "machine", "engine", "balanced", "workers",
        "config", "faults", "tenant", "priority",
    }
)
_MACHINE_KEYS = frozenset({"v", "p", "D", "B", "M"})

#: tenants become metric label values and checkpoint path components
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

DEFAULT_TENANT = "default"


def _as_int(doc: dict[str, Any], key: str, errors: list[str]) -> int | None:
    val = doc[key]
    if isinstance(val, bool) or not isinstance(val, int):
        errors.append(f"{key} must be an integer, got {val!r}")
        return None
    return val


def validate_spec(doc: Any) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"job spec must be a JSON object, got {type(doc).__name__}"]
    unknown = set(doc) - _TOP_KEYS
    if unknown:
        errors.append(f"unknown field(s): {', '.join(sorted(unknown))}")
    if doc.get("op") not in SPEC_OPS:
        errors.append(f"op must be one of {list(SPEC_OPS)}, got {doc.get('op')!r}")
    if "n" not in doc:
        errors.append("n is required")
    else:
        n = _as_int(doc, "n", errors)
        if n is not None and not 1 <= n <= MAX_N:
            errors.append(f"n must be in [1, {MAX_N}], got {n}")
    if "seed" in doc:
        _as_int(doc, "seed", errors)
    machine = doc.get("machine", {})
    if not isinstance(machine, dict):
        errors.append(f"machine must be an object, got {type(machine).__name__}")
    else:
        bad = set(machine) - _MACHINE_KEYS
        if bad:
            errors.append(f"unknown machine field(s): {', '.join(sorted(bad))}")
        for key in sorted(set(machine) & _MACHINE_KEYS):
            val = machine[key]
            if isinstance(val, bool) or not isinstance(val, int) or val < 1:
                errors.append(f"machine.{key} must be a positive integer, got {val!r}")
    engine = doc.get("engine")
    if engine is not None and engine not in SPEC_ENGINES:
        errors.append(f"engine must be one of {list(SPEC_ENGINES)}, got {engine!r}")
    if "balanced" in doc and not isinstance(doc["balanced"], bool):
        errors.append(f"balanced must be a boolean, got {doc['balanced']!r}")
    if "workers" in doc:
        workers = _as_int(doc, "workers", errors)
        if workers is not None and not 0 <= workers <= MAX_WORKERS:
            errors.append(f"workers must be in [0, {MAX_WORKERS}], got {workers}")
    config = doc.get("config", {})
    if not isinstance(config, dict):
        errors.append(f"config must be an object, got {type(config).__name__}")
    else:
        for name in sorted(config):
            spec = KNOB_BY_NAME.get(name)
            if spec is None or name not in CONFIG_KNOBS:
                errors.append(
                    f"config.{name} is not a settable knob "
                    f"(allowed: {', '.join(sorted(CONFIG_KNOBS))})"
                )
                continue
            try:
                spec.coerce(str(config[name]))
            except KnobError as exc:
                errors.append(f"config.{name}: {exc}")
    faults = doc.get("faults")
    if faults is not None:
        try:
            FaultPlan.from_dict(faults)
        except ConfigurationError as exc:
            errors.append(f"faults: {exc}")
    tenant = doc.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        errors.append(
            f"tenant must match {_TENANT_RE.pattern} "
            f"(it becomes a metric label), got {tenant!r}"
        )
    if "priority" in doc:
        prio = _as_int(doc, "priority", errors)
        lo, hi = PRIORITY_RANGE
        if prio is not None and not lo <= prio <= hi:
            errors.append(f"priority must be in [{lo}, {hi}], got {prio}")
    return errors


@dataclass(frozen=True)
class JobSpec:
    """One tenant's validated run request."""

    op: str
    n: int
    seed: int = 0
    v: int = 8
    p: int = 1
    D: int = 2
    B: int = 256
    M: int | None = None
    engine: str | None = None
    balanced: bool = False
    workers: int = 0
    config: dict[str, Any] = field(default_factory=dict)
    faults: dict[str, Any] | None = None
    tenant: str = DEFAULT_TENANT
    priority: int = 0

    @classmethod
    def from_dict(cls, doc: Any) -> "JobSpec":
        """Parse and validate; raises one error listing every problem."""
        errors = validate_spec(doc)
        if errors:
            raise ConfigurationError("invalid job spec: " + "; ".join(errors))
        machine = doc.get("machine", {})
        config = {
            name: KNOB_BY_NAME[name].coerce(str(val))
            for name, val in doc.get("config", {}).items()
        }
        spec = cls(
            op=doc["op"],
            n=doc["n"],
            seed=doc.get("seed", 0),
            v=machine.get("v", 8),
            p=machine.get("p", 1),
            D=machine.get("D", 2),
            B=machine.get("B", 256),
            M=machine.get("M"),
            engine=doc.get("engine"),
            balanced=doc.get("balanced", False),
            workers=doc.get("workers", 0),
            config=config,
            faults=doc.get("faults"),
            tenant=doc.get("tenant", DEFAULT_TENANT),
            priority=doc.get("priority", 0),
        )
        # MachineConfig's own invariants (p | v, M >= D*B, ...) are the
        # authority on shape validity — surface them as spec errors too
        try:
            spec.machine_config()
        except ConfigurationError as exc:
            raise ConfigurationError(f"invalid job spec: machine: {exc}") from None
        return spec

    # -- derived views -------------------------------------------------------

    def resolved_engine(self) -> str:
        """The backend that will actually run (mirrors ``make_engine``)."""
        if self.engine is not None:
            return self.engine
        return "seq" if self.p == 1 else "par"

    def machine_config(self) -> MachineConfig:
        return MachineConfig(
            N=self.n, v=self.v, p=self.p, D=self.D, B=self.B, M=self.M,
            seed=self.seed, workers=self.workers,
        )

    def workload(self) -> WorkloadSpec:
        return WorkloadSpec(op=self.op, n=self.n, seed=self.seed, p=self.p)

    def fault_plan(self) -> FaultPlan | None:
        return None if self.faults is None else FaultPlan.from_dict(self.faults)

    # -- identity ------------------------------------------------------------

    def cache_doc(self) -> dict[str, Any]:
        """The canonical workload identity (see the module docstring for
        what is excluded and why)."""
        return {
            "kind": "repro-service-job",
            "op": self.op,
            "n": self.n,
            "seed": self.seed,
            "machine": {"v": self.v, "p": self.p, "D": self.D, "B": self.B,
                        "M": self.M},
            "engine": self.resolved_engine(),
            "balanced": self.balanced,
            "faults": self.faults,
        }

    def fingerprint(self) -> str:
        """sha256 identity for the result cache and checkpoint metadata."""
        return profile_fingerprint(self.cache_doc(), stable_env_fingerprint())

    def to_dict(self) -> dict[str, Any]:
        """Round-trippable document (``from_dict(to_dict())`` is identity)."""
        doc: dict[str, Any] = {
            "op": self.op,
            "n": self.n,
            "seed": self.seed,
            "machine": {"v": self.v, "p": self.p, "D": self.D, "B": self.B},
            "balanced": self.balanced,
            "workers": self.workers,
            "tenant": self.tenant,
            "priority": self.priority,
        }
        if self.M is not None:
            doc["machine"]["M"] = self.M
        if self.engine is not None:
            doc["engine"] = self.engine
        if self.config:
            doc["config"] = dict(self.config)
        if self.faults is not None:
            doc["faults"] = self.faults
        return doc


def spec_from_mapping(doc: Mapping[str, Any]) -> JobSpec:
    """Convenience wrapper accepting any mapping."""
    return JobSpec.from_dict(dict(doc))
