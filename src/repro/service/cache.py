"""Fingerprint-keyed result cache.

The key is :meth:`repro.service.spec.JobSpec.fingerprint` — the tuned-
profile sha256 over the canonical workload identity plus the stable
host fingerprint.  Because every knob and backend choice excluded from
that identity is bit-identity-preserving by construction, a hit can be
served to any tenant without re-running: same counters, same output
hash, same verification verdict.

Plain bounded FIFO eviction (insertion order, refreshed on hit), sized
in *entries* — result documents are small (counters + hashes, never
output arrays).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any


class ResultCache:
    """Thread-safe bounded mapping fingerprint -> result document."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._docs: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        with self._lock:
            doc = self._docs.get(fingerprint)
            if doc is None:
                self.misses += 1
                return None
            self.hits += 1
            self._docs.move_to_end(fingerprint)
            return doc

    def put(self, fingerprint: str, doc: dict[str, Any]) -> None:
        with self._lock:
            self._docs[fingerprint] = doc
            self._docs.move_to_end(fingerprint)
            while len(self._docs) > self.capacity:
                self._docs.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._docs

    def to_docs(self) -> list[dict[str, Any]]:
        """Entries in eviction order (oldest first), for drain persistence."""
        with self._lock:
            return [
                {"fingerprint": fp, "result": doc}
                for fp, doc in self._docs.items()
            ]

    def load(self, docs: list[dict[str, Any]]) -> int:
        """Re-populate from :meth:`to_docs` output; returns entries kept.

        Hit/miss/eviction counters stay fresh — they describe this
        process, not the lifetime of the state directory.  A smaller
        capacity than the writer's simply evicts the oldest entries.
        """
        kept = 0
        for entry in docs:
            fp = entry.get("fingerprint")
            doc = entry.get("result")
            if not fp or not isinstance(doc, dict):
                continue
            with self._lock:
                self._docs[str(fp)] = doc
                self._docs.move_to_end(str(fp))
                while len(self._docs) > self.capacity:
                    self._docs.popitem(last=False)
            kept += 1
        return kept

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._docs),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
