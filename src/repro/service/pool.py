"""Spec execution and the preemptible worker pool.

:func:`execute_spec` is the one place a :class:`~repro.service.spec.JobSpec`
becomes an engine run: it rebuilds the deterministic tuner workload,
resolves the spec's knobs into a frozen per-run
:class:`~repro.tune.runtime.RuntimeConfig`, runs the selected EM
backend, independently verifies the output (NumPy reference), and folds
everything into a small JSON-able **result document** — counters,
output hash, verification verdict, wall time.  The CI service lane
compares this document byte for byte against a direct in-process run of
the same spec; nothing backend- or schedule-dependent may appear in it.

:class:`WorkerPool` runs jobs from a :class:`~repro.service.queue.JobQueue`
on plain threads (each job's engine may itself fan out to worker
*processes* via the spec's ``workers`` field).  Preemption rides the
engine's checkpoint machinery: the pool installs a per-job probe as
``Engine.preempt``, the engine polls it at every round boundary *after*
the checkpoint write, and the resulting
:class:`~repro.util.validation.PreemptedError` sends the job back to
the queue with ``resume=True`` — its next attempt restores the snapshot
and continues bit-identically.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Any, Callable

import numpy as np

from repro.faults.checkpoint import CheckpointManager
from repro.obs.metrics import MetricsRegistry, ScopedRegistry
from repro.obs.trace import TraceRecorder
from repro.service.cache import ResultCache
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PREEMPTED,
    QUEUED,
    RUNNING,
    Job,
)
from repro.service.queue import JobQueue
from repro.service.spec import JobSpec
from repro.tune.runtime import RuntimeConfig
from repro.tune.tuner import build_workload
from repro.util.rng import make_rng
from repro.util.validation import PreemptedError

#: how long an idle worker blocks on the queue before re-checking stop
_POP_TIMEOUT_S = 0.1


def _output_sha256(values: np.ndarray) -> str:
    """Canonical content hash: dtype + shape + C-order bytes."""
    arr = np.ascontiguousarray(values)
    h = hashlib.sha256()
    h.update(f"{arr.dtype.str}:{arr.shape}".encode("ascii"))
    h.update(arr.tobytes())
    return h.hexdigest()


def _assemble(op: str, outputs: list[Any]) -> np.ndarray:
    if op == "transpose":
        nonempty = [o for o in outputs if getattr(o, "size", 0)]
        return np.vstack(nonempty) if nonempty else np.zeros((0, 0), dtype=np.int64)
    return np.concatenate([np.asarray(o) for o in outputs])


def reference_output(spec: JobSpec) -> np.ndarray:
    """The expected result, computed independently of any engine.

    Mirrors :func:`repro.tune.tuner.build_workload`'s RNG consumption
    exactly so verification never depends on simulator state.
    """
    rng = make_rng(spec.seed)
    if spec.op == "sort":
        return np.sort(rng.integers(0, 2**50, spec.n))
    if spec.op == "permute":
        values = rng.integers(0, 2**50, spec.n)
        dests = rng.permutation(spec.n).astype(np.int64)
        out = np.empty_like(values)
        out[dests] = values
        return out
    # transpose: same k/ell derivation as build_workload
    size = spec.n
    k = 1 << ((max(size, 2).bit_length() - 1) // 2)
    while size % k:
        k >>= 1
    ell = size // k
    matrix = rng.integers(0, 2**50, (k, ell))
    return matrix.T


def _counters(report: Any) -> dict[str, Any]:
    """The schedule-independent cost counters of one run."""
    doc: dict[str, Any] = {
        "io": report.io.as_dict(),
        "io_max": report.io_max.as_dict(),
        "rounds": report.rounds,
        "supersteps": report.supersteps,
        "comm": report.comm_items,
        "cross": report.cross_items,
        "ctx_io": report.context_blocks_io,
        "msg_io": report.message_blocks_io,
        "ovf": report.overflow_blocks,
        "peak": report.peak_memory_items,
    }
    if report.fault_stats is not None:
        doc["fault_stats"] = report.fault_stats.as_dict()
    return doc


def execute_spec(
    spec: JobSpec,
    tracer: TraceRecorder | None = None,
    metrics: MetricsRegistry | None = None,
    checkpoint: CheckpointManager | str | None = None,
    resume: bool = False,
    preempt: Callable[[], bool] | None = None,
) -> dict[str, Any]:
    """Run *spec* once and return its result document.

    Raises :class:`~repro.util.validation.PreemptedError` when *preempt*
    fires at a round boundary (the checkpoint, if any, is already on
    disk) — callers decide whether that means requeue or shutdown.
    """
    from repro.em.runner import make_engine

    cfg = spec.machine_config()
    program, inputs = build_workload(spec.workload(), cfg)
    runtime = RuntimeConfig.resolve(overrides=dict(spec.config) or None)
    engine = make_engine(
        cfg,
        spec.resolved_engine(),
        spec.balanced,
        tracer=tracer,
        metrics=metrics,
        faults=spec.fault_plan(),
        checkpoint=checkpoint,
        resume=resume,
        runtime=runtime,
    )
    engine.preempt = preempt
    t0 = time.perf_counter()
    res = engine.run(program, inputs)
    elapsed = time.perf_counter() - t0
    values = _assemble(spec.op, res.outputs)
    expected = reference_output(spec)
    ok = bool(np.array_equal(values, expected))
    return {
        "ok": ok,
        "output_sha256": _output_sha256(values),
        "counters": _counters(res.report),
        "engine": res.report.engine,
        "elapsed_s": elapsed,
        "fingerprint": spec.fingerprint(),
    }


class WorkerPool:
    """N dispatcher threads draining a :class:`JobQueue`; see module docs."""

    def __init__(
        self,
        queue: JobQueue,
        cache: ResultCache,
        registry: MetricsRegistry,
        size: int = 2,
    ) -> None:
        if size < 0:
            raise ValueError(f"pool size must be >= 0, got {size}")
        self.queue = queue
        self.cache = cache
        self.registry = registry
        self.size = size
        #: called once per job reaching a terminal state (the core's
        #: bookkeeping hook: tenant release, service metrics)
        self.on_terminal: Callable[[Job], None] | None = None
        self._threads: list[threading.Thread] = []
        self._running: dict[str, Job] = {}
        self._rlock = threading.Lock()
        self._stop = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._threads:
            return self
        for i in range(self.size):
            t = threading.Thread(
                target=self._loop, name=f"repro-serve-w{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def stop(self) -> None:
        """Begin shutdown: running jobs are preempted (they checkpoint at
        the next round boundary and stay ``preempted`` for persistence),
        idle workers wake and exit."""
        self._stop.set()
        with self._rlock:
            running = list(self._running.values())
        for job in running:
            job.request_preempt()
        self.queue.wake_all()

    def join(self, timeout: float | None = None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        for t in self._threads:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            t.join(remaining)
        self._threads = [t for t in self._threads if t.is_alive()]

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def running_jobs(self) -> list[Job]:
        with self._rlock:
            return list(self._running.values())

    # -- preemption policy ----------------------------------------------------

    def maybe_preempt(self, incoming: Job) -> Job | None:
        """Evict the lowest-priority running job if *incoming* outranks it
        and no worker is idle.  Returns the victim, if any."""
        with self._rlock:
            if self._stop.is_set() or len(self._running) < self.size:
                return None
            candidates = [
                j for j in self._running.values() if not j.preempt_requested
            ]
            if not candidates:
                return None
            victim = min(
                candidates, key=lambda j: (j.spec.priority, -j.enqueue_seq)
            )
            if victim.spec.priority >= incoming.spec.priority:
                return None
            victim.request_preempt()
            return victim

    # -- the worker loop -------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.pop(timeout=_POP_TIMEOUT_S)
            if job is None:
                continue
            with self._rlock:
                self._running[job.id] = job
            try:
                self._run(job)
            finally:
                with self._rlock:
                    self._running.pop(job.id, None)

    def _terminal(self, job: Job) -> None:
        if self.on_terminal is not None:
            self.on_terminal(job)

    def _run(self, job: Job) -> None:
        if job.cancel_requested:
            job.set_state(CANCELLED)
            self._terminal(job)
            return
        if job.state == QUEUED:
            # a duplicate spec may have completed while this job waited
            cached = self.cache.get(job.fingerprint)
            if cached is not None:
                job.result = cached
                job.cache = "hit"
                if self.registry.enabled:
                    self.registry.counter(
                        "repro_service_cache_hits_total",
                        "jobs served from the result cache",
                    ).labels(tenant=job.spec.tenant).inc()
                job.set_state(DONE)
                self._terminal(job)
                return
        job.set_state(RUNNING)
        job.attempts += 1
        scoped = ScopedRegistry(self.registry, tenant=job.spec.tenant, job=job.id)
        manager = CheckpointManager(job.ckpt_dir, keep=2)
        stop = self._stop

        def probe() -> bool:
            return job.preempt_requested or stop.is_set()

        try:
            doc = execute_spec(
                job.spec,
                tracer=job.bus,
                metrics=scoped,
                checkpoint=manager,
                resume=job.resume,
                preempt=probe,
            )
        except PreemptedError:
            job.resume = True
            if job.cancel_requested:
                job.set_state(CANCELLED)
                self._terminal(job)
            elif self._stop.is_set():
                # drain: leave the job preempted; the core persists it so
                # a restarted server resumes from the checkpoint
                job.preemptions += 1
                job.set_state(PREEMPTED)
            else:
                job.preemptions += 1
                job.clear_preempt()
                job.set_state(PREEMPTED)
                self.queue.requeue(job)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.error = f"{type(exc).__name__}: {exc}"
            job.set_state(FAILED)
            self._terminal(job)
        else:
            job.result = doc
            self.cache.put(job.fingerprint, doc)
            job.set_state(DONE)
            self._terminal(job)
