"""Multi-tenant simulation-as-a-service: the ``repro serve`` job server.

The paper's premise — one machine with D disks *simulating* a
v-processor coarse-grained parallel algorithm — means one box can serve
workloads that look parallel from the outside.  This package makes that
literal: a stdlib-only HTTP daemon that accepts run specs, queues them
per tenant with backpressure, executes them on the existing EM engines
through a small worker pool, preempts long jobs at checkpoint
boundaries for higher-priority tenants (the victim resumes
bit-identically), and serves duplicate specs straight from a
fingerprint-keyed result cache.

Layering (everything below the HTTP handler is importable on its own):

* :mod:`repro.service.spec` — :class:`JobSpec`: a validated,
  fingerprintable run specification;
* :mod:`repro.service.jobs` — :class:`Job`: the lifecycle state machine
  plus its per-job :class:`~repro.obs.bus.EventBus`;
* :mod:`repro.service.queue` — bounded priority FIFO with per-tenant
  quotas and 429-style backpressure;
* :mod:`repro.service.cache` — the fingerprint-keyed result cache;
* :mod:`repro.service.pool` — :func:`execute_spec` (spec → result
  document) and the preemptible :class:`WorkerPool`;
* :mod:`repro.service.server` — :class:`ServiceCore` (submit / cancel /
  drain, no HTTP) and :class:`JobServer` (the ThreadingHTTPServer);
* :mod:`repro.service.client` — urllib client helpers backing
  ``repro submit`` and the CI service lane.
"""

from repro.service.jobs import Job, ServiceError
from repro.service.queue import BackpressureError
from repro.service.server import DrainingError, JobServer, ServiceCore
from repro.service.spec import JobSpec

__all__ = [
    "BackpressureError",
    "DrainingError",
    "Job",
    "JobServer",
    "JobSpec",
    "ServiceCore",
    "ServiceError",
]
