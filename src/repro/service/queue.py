"""Bounded priority FIFO with per-tenant quotas and backpressure.

Admission control happens here, not in the HTTP layer: a full queue or
an over-quota tenant raises :class:`BackpressureError` carrying the
``Retry-After`` hint the handler turns into a 429.  Dispatch order is
highest priority first, FIFO within a priority class; a preempted job
re-enters with its *original* sequence number, so after the preempting
tenant drains it resumes ahead of anything submitted after it.

Tenant accounting counts a job from admission until it reaches a
terminal state (``release``), so a tenant's quota covers queued *and*
running work — a tenant cannot hold every worker and a full queue at
once.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from typing import Any

from repro.service.jobs import Job, ServiceError


class BackpressureError(ServiceError):
    """Queue full or tenant over quota — retry later (HTTP 429)."""

    def __init__(self, message: str, retry_after_s: int) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class JobQueue:
    """The pending-job set; see the module docstring."""

    def __init__(self, capacity: int = 64, tenant_quota: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        if tenant_quota < 1:
            raise ValueError(f"tenant quota must be >= 1, got {tenant_quota}")
        self.capacity = capacity
        self.tenant_quota = tenant_quota
        self._pending: list[Job] = []
        self._active: dict[str, int] = {}
        self._seq = itertools.count()
        self._cond = threading.Condition()

    # -- admission -----------------------------------------------------------

    def _retry_after(self) -> int:
        return min(30, 1 + len(self._pending))

    def submit(self, job: Job) -> None:
        """Admit *job* or raise :class:`BackpressureError`."""
        tenant = job.spec.tenant
        with self._cond:
            if len(self._pending) >= self.capacity:
                raise BackpressureError(
                    f"queue full ({self.capacity} jobs pending)",
                    self._retry_after(),
                )
            if self._active.get(tenant, 0) >= self.tenant_quota:
                raise BackpressureError(
                    f"tenant {tenant!r} at quota "
                    f"({self.tenant_quota} active jobs)",
                    self._retry_after(),
                )
            self._active[tenant] = self._active.get(tenant, 0) + 1
            job.enqueue_seq = next(self._seq)
            self._pending.append(job)
            self._cond.notify()

    def requeue(self, job: Job) -> None:
        """Re-enter a preempted job.  No capacity/quota check — the job
        was already admitted and is still counted against its tenant —
        and its original sequence number keeps its FIFO position."""
        with self._cond:
            self._pending.append(job)
            self._cond.notify()

    # -- dispatch ------------------------------------------------------------

    def pop(self, timeout: float | None = None) -> Job | None:
        """The best pending job (max priority, then FIFO), or ``None``."""
        with self._cond:
            if not self._pending:
                self._cond.wait(timeout)
            if not self._pending:
                return None
            best = min(
                self._pending, key=lambda j: (-j.spec.priority, j.enqueue_seq)
            )
            self._pending.remove(best)
            return best

    def remove(self, job: Job) -> bool:
        """Withdraw a pending job (cancellation); False if not pending."""
        with self._cond:
            try:
                self._pending.remove(job)
                return True
            except ValueError:
                return False

    def release(self, job: Job) -> None:
        """Drop *job*'s tenant hold (call exactly once, at terminal state)."""
        tenant = job.spec.tenant
        with self._cond:
            count = self._active.get(tenant, 0) - 1
            if count > 0:
                self._active[tenant] = count
            else:
                self._active.pop(tenant, None)

    # -- introspection -------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._pending)

    def pending(self) -> list[Job]:
        with self._cond:
            return sorted(
                self._pending, key=lambda j: (-j.spec.priority, j.enqueue_seq)
            )

    def active_by_tenant(self) -> dict[str, int]:
        with self._cond:
            return dict(self._active)

    def wake_all(self) -> None:
        """Wake every blocked :meth:`pop` (pool shutdown)."""
        with self._cond:
            self._cond.notify_all()

    # -- persistence (SIGTERM drain) ------------------------------------------

    def persist(self, path: str, extra: tuple[Job, ...] | list[Job] = ()) -> int:
        """Write pending + *extra* (preempted in-flight) jobs as JSON;
        returns how many were saved."""
        seen: dict[str, Job] = {}
        for job in self.pending() + list(extra):
            seen.setdefault(job.id, job)
        docs = [job.persist_doc() for job in seen.values()]
        tmp = path + ".tmp"
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"version": 1, "jobs": docs}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        return len(docs)

    @staticmethod
    def load_persisted(path: str) -> list[dict[str, Any]]:
        """The persisted job documents (empty when no state file)."""
        if not os.path.exists(path):
            return []
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        jobs = doc.get("jobs", [])
        if not isinstance(jobs, list):
            raise ServiceError(f"malformed queue state file {path!r}")
        return jobs
