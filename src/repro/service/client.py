"""urllib client helpers for the job server (no dependencies).

Backs the ``repro submit`` subcommand and the CI service lane.
:func:`run_spec_local` executes the same spec in-process through the
exact executor the server uses, so callers can assert that a served
result is bit-identical to a direct run (the service-lane acceptance
check) without shipping output arrays over HTTP.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator

from repro.obs.live import iter_sse
from repro.service.jobs import TERMINAL
from repro.service.pool import execute_spec
from repro.service.spec import JobSpec

DEFAULT_TIMEOUT_S = 10.0


class ServiceClientError(RuntimeError):
    """A request failed at the transport or HTTP layer."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


def request_json(
    method: str,
    url: str,
    body: Any = None,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> tuple[int, dict[str, str], Any]:
    """One JSON request; HTTP error codes are returned, not raised.

    Returns ``(status, headers, parsed_body)``.  Only transport failures
    (connection refused, timeout) raise :class:`ServiceClientError`.
    """
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as resp:
            raw = resp.read().decode("utf-8")
            headers = {k: v for k, v in resp.headers.items()}
            status = resp.status
    except urllib.error.HTTPError as exc:
        raw = exc.read().decode("utf-8", errors="replace")
        headers = {k: v for k, v in exc.headers.items()}
        status = exc.code
    except urllib.error.URLError as exc:
        raise ServiceClientError(f"cannot reach {url}: {exc.reason}") from None
    try:
        parsed = json.loads(raw) if raw else {}
    except json.JSONDecodeError:
        parsed = {"raw": raw}
    return status, headers, parsed


def submit_job(
    base_url: str, doc: Any, timeout_s: float = DEFAULT_TIMEOUT_S
) -> tuple[int, dict[str, str], Any]:
    """POST the spec; returns ``(status, headers, job_doc_or_error)``."""
    return request_json("POST", base_url.rstrip("/") + "/jobs", doc, timeout_s)


def get_job(
    base_url: str, job_id: str, timeout_s: float = DEFAULT_TIMEOUT_S
) -> dict[str, Any]:
    status, _, doc = request_json(
        "GET", f"{base_url.rstrip('/')}/jobs/{job_id}", timeout_s=timeout_s
    )
    if status != 200:
        raise ServiceClientError(
            f"GET /jobs/{job_id} -> {status}: {doc.get('error', doc)}", status
        )
    return doc


def cancel_job(
    base_url: str, job_id: str, timeout_s: float = DEFAULT_TIMEOUT_S
) -> dict[str, Any]:
    status, _, doc = request_json(
        "POST", f"{base_url.rstrip('/')}/jobs/{job_id}/cancel", timeout_s=timeout_s
    )
    if status != 200:
        raise ServiceClientError(
            f"POST /jobs/{job_id}/cancel -> {status}: {doc.get('error', doc)}",
            status,
        )
    return doc


def wait_job(
    base_url: str,
    job_id: str,
    timeout_s: float = 300.0,
    poll_s: float = 0.2,
) -> dict[str, Any]:
    """Poll until the job reaches a terminal state; returns its document."""
    deadline = time.monotonic() + timeout_s
    while True:
        doc = get_job(base_url, job_id)
        if doc.get("state") in TERMINAL:
            return doc
        if time.monotonic() >= deadline:
            raise ServiceClientError(
                f"job {job_id} still {doc.get('state')!r} after {timeout_s}s"
            )
        time.sleep(poll_s)


def stream_job(
    base_url: str, job_id: str, timeout_s: float = 300.0
) -> Iterator[dict[str, Any]]:
    """Yield the job's SSE events until its ``end`` frame."""
    return iter_sse(
        f"{base_url.rstrip('/')}/jobs/{job_id}/events", timeout_s=timeout_s
    )


def run_spec_local(doc: Any) -> dict[str, Any]:
    """Run a spec in-process through the server's executor.

    The returned document mirrors ``GET /jobs/<id>`` closely enough for
    bit-identity assertions: ``result`` is the same result document a
    worker would produce for this spec (counters, output hash, verdict).
    """
    spec = JobSpec.from_dict(doc)
    return {
        "state": "done",
        "cache": "local",
        "spec": spec.to_dict(),
        "fingerprint": spec.fingerprint(),
        "result": execute_spec(spec),
    }
