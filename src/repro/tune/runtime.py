"""Per-run resolved snapshots of every runtime knob.

A :class:`RuntimeConfig` is frozen: engines resolve one at the top of
``run()`` and consult only the snapshot for the rest of the run, so
flipping an environment variable mid-process affects the *next* run but
never half-applies to one in flight (historically ``REPRO_FASTPATH``
followed a flip while the arena choice, cached at import time, did not).

Precedence, lowest to highest: registry default < tuned-profile entry <
environment variable < explicit override (CLI flag / API argument).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Any, Mapping

from repro.tune import knobs
from repro.tune.knobs import (
    DEFAULT_AUTO_BLOCKS,
    DEFAULT_SHM_THRESHOLD,
    KNOB_BY_NAME,
    KNOBS,
    KnobError,
)


@dataclass(frozen=True)
class RuntimeConfig:
    """One fully-resolved, immutable set of knob values.

    Field names match :data:`repro.tune.knobs.KNOBS` entries one-to-one;
    the dataclass is picklable so the process-parallel coordinator ships
    its snapshot to workers instead of trusting their inherited environ.
    """

    workers: int = 0
    fastpath: str = "on"
    arena: str = "ram"
    prefetch: bool = True
    transport: str = "shm"
    nodes: "str | None" = None
    shm_bytes: "int | None" = DEFAULT_SHM_THRESHOLD
    spill_quota: "int | None" = None
    spill_dir: "str | None" = None
    trace: "str | None" = None
    faults: "str | None" = None
    profile: "str | None" = None

    @property
    def fastpath_mode(self) -> str:
        """``on``, ``off``, or ``auto`` (threshold stripped)."""
        return "auto" if self.fastpath.startswith("auto") else self.fastpath

    @property
    def fastpath_auto_blocks(self) -> int:
        """Block threshold for auto dispatch (``auto:N`` suffix or default)."""
        if self.fastpath.startswith("auto:"):
            return int(self.fastpath[5:])
        return DEFAULT_AUTO_BLOCKS

    @property
    def fastpath_storage(self) -> bool:
        """Whether disk arrays use arena-backed storage.

        Storage is mode-independent of per-superstep dispatch: ``auto``
        keeps the arena so supersteps can flip between paths over the
        same bytes.
        """
        return self.fastpath_mode != "off"

    @property
    def shm_threshold(self) -> "int | None":
        """Effective shared-memory threshold (None = shm transport off)."""
        if self.fastpath_mode == "off":
            return None
        return self.shm_bytes

    def replace(self, **changes: Any) -> "RuntimeConfig":
        return dataclasses.replace(self, **changes)

    def knob_values(self) -> dict[str, Any]:
        """Field-name → value for every registered knob."""
        return {spec.name: getattr(self, spec.name) for spec in KNOBS}

    @classmethod
    def resolve(
        cls,
        overrides: "Mapping[str, Any] | None" = None,
        profile: "Mapping[str, Any] | None" = None,
        environ: "Mapping[str, str] | None" = None,
    ) -> "RuntimeConfig":
        """Resolve one snapshot with full precedence.

        *profile* maps knob field names to values as found in a tuned
        profile's ``config`` section; entries are validated through the
        same parsers as environment input.  *overrides* are explicit
        (CLI/API) values applied last; ``None`` entries are ignored so
        callers can pass optional flags straight through.
        """
        env = os.environ if environ is None else environ
        values: dict[str, Any] = {s.name: s.default for s in KNOBS}
        if profile:
            for name, val in profile.items():
                spec = KNOB_BY_NAME.get(name)
                if spec is None:
                    raise KnobError(f"unknown knob {name!r} in tuned profile")
                if val is None:
                    values[name] = None
                else:
                    values[name] = spec.coerce(str(val))
        for spec in KNOBS:
            raw = env.get(spec.env)
            if raw is not None and raw.strip():
                values[spec.name] = spec.coerce(raw)
        if overrides:
            for name, val in overrides.items():
                spec = KNOB_BY_NAME.get(name)
                if spec is None:
                    raise KnobError(f"unknown knob override {name!r}")
                if val is None:
                    continue
                values[name] = spec.coerce(str(val)) if isinstance(val, str) else val
        return cls(**values)

    @classmethod
    def from_env(
        cls, environ: "Mapping[str, str] | None" = None
    ) -> "RuntimeConfig":
        return cls.resolve(environ=environ)


def current() -> RuntimeConfig:
    """The knob snapshot the current environment resolves to.

    Deliberately uncached — engines capture the result once per run;
    module-level callers (legacy ``fastpath.enabled()`` style accessors)
    always see fresh environment state.
    """
    return RuntimeConfig.from_env()


def apply_to_env(rt: RuntimeConfig) -> None:
    """Mirror a snapshot into ``os.environ`` for child processes.

    Only used by test helpers and the tuner's subprocess probes; the
    engines themselves pass snapshots explicitly.
    """
    for spec in KNOBS:
        val = getattr(rt, spec.name)
        if val is None or val == spec.default:
            knobs.set_env(spec.env, None)
        else:
            knobs.set_env(spec.env, _render(val))


def _render(val: Any) -> str:
    if val is True:
        return "1"
    if val is False:
        return "0"
    return str(val)
