"""Persisted tuned profiles: schema-versioned, fingerprinted JSON.

A tuned profile is the durable output of ``repro tune``: the machine
shape (v, B, D) and knob values the tuner chose for one workload on one
host, plus the per-decision rationale.  The document is deterministic —
no timestamps, environment fingerprint stripped of per-invocation noise,
keys sorted — so the same workload + hardware + seed always serializes
to byte-identical JSON (a property test pins this).

Layout (``SCHEMA_VERSION`` 1)::

    {
      "schema_version": 1,
      "kind": "repro-tuned-profile",
      "workload": {"op": "sort", "n": 65536, "p": 4, "seed": 7},
      "machine": {"v": 8, "B": 256, "D": 2},
      "config": {"workers": 0, "fastpath": "on", ...},
      "rationale": ["analytic: pruned 21/27 candidates ...", ...],
      "search": {"candidates": 27, "pruned": 21, "probes": 6, ...},
      "env": {"python": "...", "platform": "...", ...},
      "fingerprint": "sha256 of workload+env"
    }
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.obs.bench_store import env_fingerprint
from repro.tune.knobs import KNOB_BY_NAME
from repro.util.validation import ConfigurationError

SCHEMA_VERSION = 1
KIND = "repro-tuned-profile"

_REQUIRED_DOC_KEYS = (
    "schema_version",
    "kind",
    "workload",
    "machine",
    "config",
    "rationale",
    "env",
    "fingerprint",
)
_MACHINE_KEYS = ("v", "B", "D")


def stable_env_fingerprint() -> dict[str, str]:
    """The bench-store fingerprint minus per-invocation noise (argv0)."""
    env = env_fingerprint()
    env.pop("argv0", None)
    return env


def profile_fingerprint(
    workload: Mapping[str, Any], env: Mapping[str, str]
) -> str:
    """sha256 over the canonical workload + hardware identity."""
    canon = json.dumps(
        {"workload": dict(workload), "env": dict(env)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass
class TunedProfile:
    """One tuning decision, ready to serialize."""

    workload: dict[str, Any]
    machine: dict[str, int]
    config: dict[str, Any]
    rationale: list[str] = field(default_factory=list)
    search: dict[str, Any] = field(default_factory=dict)
    env: dict[str, str] = field(default_factory=stable_env_fingerprint)

    def document(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": KIND,
            "workload": self.workload,
            "machine": self.machine,
            "config": self.config,
            "rationale": self.rationale,
            "search": self.search,
            "env": self.env,
            "fingerprint": profile_fingerprint(self.workload, self.env),
        }

    def dumps(self) -> str:
        return json.dumps(self.document(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str) -> str:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())
        return path


def validate_profile(doc: Any) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"profile must be an object, got {type(doc).__name__}"]
    for key in _REQUIRED_DOC_KEYS:
        if key not in doc:
            errors.append(f"missing top-level key {key!r}")
    if errors:
        return errors
    if doc["schema_version"] != SCHEMA_VERSION:
        errors.append(
            f"schema_version {doc['schema_version']!r} != supported {SCHEMA_VERSION}"
        )
    if doc["kind"] != KIND:
        errors.append(f"kind {doc['kind']!r} != {KIND!r}")
    for key in ("workload", "machine", "config", "env"):
        if not isinstance(doc[key], dict):
            errors.append(f"{key} must be an object")
    if not isinstance(doc["rationale"], list):
        errors.append("rationale must be an array")
    if errors:
        return errors
    for key in _MACHINE_KEYS:
        val = doc["machine"].get(key)
        if not isinstance(val, int) or isinstance(val, bool) or val < 1:
            errors.append(f"machine.{key} must be a positive integer")
    for name, val in doc["config"].items():
        spec = KNOB_BY_NAME.get(name)
        if spec is None:
            errors.append(f"config.{name} is not a registered knob")
            continue
        if val is None:
            continue
        try:
            spec.coerce(str(val))
        except ConfigurationError as exc:
            errors.append(f"config.{name}: {exc}")
    expect = profile_fingerprint(doc["workload"], doc["env"])
    if doc["fingerprint"] != expect:
        errors.append(
            "fingerprint does not match workload+env "
            f"(expected {expect[:12]}..., got {str(doc['fingerprint'])[:12]}...)"
        )
    return errors


def load_profile(path: str) -> dict[str, Any]:
    """Load and validate a tuned-profile document.

    Raises :class:`~repro.util.validation.ConfigurationError` (CLI exit
    code 3, like a bad fault plan) when the file is missing or invalid.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ConfigurationError(f"cannot read tuned profile {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"tuned profile {path} is not valid JSON: {exc}"
        ) from None
    errors = validate_profile(doc)
    if errors:
        raise ConfigurationError(
            f"invalid tuned profile {path}:\n  " + "\n  ".join(errors)
        )
    return doc


def config_from_profile(doc: Mapping[str, Any]) -> dict[str, Any]:
    """The knob mapping to feed ``RuntimeConfig.resolve(profile=...)``."""
    return dict(doc["config"])
