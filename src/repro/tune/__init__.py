"""Auto-tuning and centralized runtime-knob management.

Every ``REPRO_*`` environment variable the simulator honors is declared
once in :mod:`repro.tune.knobs` (:class:`~repro.tune.knobs.KnobSpec`),
parsed by one hardened validator, and resolved into a per-run
:class:`~repro.tune.runtime.RuntimeConfig` snapshot with the precedence
``CLI flag > environment > tuned profile > default``.  Consumers
(:mod:`repro.pdm.fastpath`, :mod:`repro.pdm.mmap_arena`,
:mod:`repro.em.runner`, :mod:`repro.obs.bus`) delegate here — a lint
gate keeps raw ``os.environ`` knob reads out of the rest of the tree.

On top of the knob layer, :mod:`repro.tune.tuner` implements ``repro
tune``: Theorem 2/3 analytic pruning of the (v, B, D) candidate space
followed by short measured wall-clock probes, persisting the winner as a
schema-versioned :mod:`repro.tune.profile` JSON document that
``em_run``/the CLI apply automatically.
"""

from repro.tune.knobs import (
    KNOBS,
    DEFAULT_AUTO_BLOCKS,
    DEFAULT_SHM_THRESHOLD,
    KnobError,
    KnobSpec,
    render_knob_table,
)
from repro.tune.runtime import RuntimeConfig, current

__all__ = [
    "KNOBS",
    "DEFAULT_AUTO_BLOCKS",
    "DEFAULT_SHM_THRESHOLD",
    "KnobError",
    "KnobSpec",
    "RuntimeConfig",
    "current",
    "render_knob_table",
]
