"""Cost-model-driven configuration search: the engine behind ``repro tune``.

Two stages, per the granularity-control recipe: first the Theorem 2/3
analytic cost (:func:`repro.core.theory.predicted_parallel_ios`) ranks
the whole (v, B, D, workers) candidate grid and prunes it to a short
list — the model is exact for the simulation's I/O counts, so most of
the space never needs to be run — then short measured wall-clock probes
at a reduced problem size decide among the survivors, because constant
factors (NumPy batch width, process spawn cost, shm transport) are
exactly what the asymptotic model cannot see.

The all-defaults configuration is always probed, so the winner's
measured probe time is ≤ the defaults' by construction.  A final
calibration probes the winner with the fast path disabled; when the
per-block reference loop is faster at probe scale the profile records
``fastpath=auto:<blocks>`` so small supersteps dispatch to the reference
path and large ones to the vectorized one.

Probes pin their configuration via per-run :class:`RuntimeConfig`
snapshots (``make_engine(..., runtime=...)``) — nothing is written to
``os.environ``, so tuning is hermetic even under the CI env lanes.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.cgm.config import MachineConfig
from repro.core.theory import predicted_parallel_ios
from repro.tune.knobs import DEFAULT_SHM_THRESHOLD
from repro.tune.profile import TunedProfile
from repro.tune.runtime import RuntimeConfig
from repro.util.validation import ConfigurationError
from repro.util.rng import make_rng

#: the candidate grid repro tune explores (pruned analytically before probing)
V_GRID = (4, 8, 16)
B_GRID = (64, 256, 512)
D_GRID = (1, 2, 4)

#: estimated CGM rounds per operation (ranks candidates; need not be exact)
_ROUNDS = {"sort": 3, "permute": 2, "transpose": 2}

#: the committed defaults (MachineConfig + knob registry) as one candidate
DEFAULTS = {"v": 8, "B": 256, "D": 2, "workers": 0}


def default_candidate() -> "Candidate":
    """The all-defaults configuration (always probed, never pruned)."""
    return Candidate(
        v=DEFAULTS["v"], B=DEFAULTS["B"], D=DEFAULTS["D"],
        workers=DEFAULTS["workers"],
    )


@dataclass(frozen=True)
class WorkloadSpec:
    """What to tune for: one operation at one size on p real processors."""

    op: str              #: sort | permute | transpose
    n: int               #: target problem size in items
    seed: int = 0
    p: int = 1

    def __post_init__(self) -> None:
        if self.op not in _ROUNDS:
            raise ConfigurationError(
                f"unknown workload op {self.op!r}; choose from {sorted(_ROUNDS)}"
            )
        if self.n < 1:
            raise ConfigurationError(f"workload n must be positive, got {self.n}")

    def as_dict(self) -> dict[str, Any]:
        return {"op": self.op, "n": self.n, "seed": self.seed, "p": self.p}


def fig5_group_a_workload(n: int = 1 << 16, seed: int = 0) -> WorkloadSpec:
    """The Figure 5 Group A sorting workload (the CI tune smoke target)."""
    return WorkloadSpec(op="sort", n=n, seed=seed, p=1)


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: machine shape + knob values."""

    v: int
    B: int
    D: int
    workers: int = 0
    fastpath: str = "on"

    def label(self) -> str:
        return (
            f"v={self.v} B={self.B} D={self.D} "
            f"workers={self.workers} fastpath={self.fastpath}"
        )

    def runtime(self) -> RuntimeConfig:
        return RuntimeConfig(
            workers=self.workers,
            fastpath=self.fastpath,
            arena="ram",
            prefetch=True,
            shm_bytes=DEFAULT_SHM_THRESHOLD,
        )

    def knob_config(self) -> dict[str, Any]:
        """The profile's ``config`` section for this candidate."""
        rt = self.runtime()
        return {
            "workers": rt.workers,
            "fastpath": rt.fastpath,
            "arena": rt.arena,
            "prefetch": rt.prefetch,
            "shm_bytes": rt.shm_bytes,
        }


@dataclass
class TuneResult:
    """The tuner's full decision record."""

    profile: TunedProfile
    chosen: Candidate
    probes: list[tuple[Candidate, float]] = field(default_factory=list)
    pruned: int = 0
    total: int = 0


# ----------------------------------------------------------------- workloads


def build_workload(
    spec: WorkloadSpec, cfg: MachineConfig, n: "int | None" = None
) -> tuple[Any, list[Any]]:
    """Deterministic (program, inputs) for *spec* at size *n* on *cfg*."""
    from repro.algorithms.collectives import partition_array
    from repro.algorithms.permutation import CGMPermute
    from repro.algorithms.sorting import SampleSort
    from repro.algorithms.transpose import CGMTranspose

    size = spec.n if n is None else n
    rng = make_rng(spec.seed)
    if spec.op == "sort":
        data = rng.integers(0, 2**50, size)
        return SampleSort(), partition_array(data, cfg.v)
    if spec.op == "permute":
        values = rng.integers(0, 2**50, size)
        dests = rng.permutation(size).astype(np.int64)
        return CGMPermute(), list(
            zip(partition_array(values, cfg.v), partition_array(dests, cfg.v))
        )
    # transpose: the largest power-of-two row count that divides size
    k = 1 << ((max(size, 2).bit_length() - 1) // 2)
    while size % k:
        k >>= 1
    ell = size // k
    matrix = rng.integers(0, 2**50, (k, ell))
    bands = np.array_split(matrix, cfg.v, axis=0)
    inputs: list[Any] = []
    row0 = 0
    for band in bands:
        inputs.append((band, row0, k, ell))
        row0 += band.shape[0]
    return CGMTranspose(), inputs


def probe_config(spec: WorkloadSpec, cand: Candidate, n: int) -> MachineConfig:
    return MachineConfig(
        N=n, v=cand.v, p=spec.p, D=cand.D, B=cand.B,
        seed=spec.seed, workers=cand.workers,
    )


def _measure_wallclock(
    spec: WorkloadSpec, cand: Candidate, n: int, reps: int
) -> float:
    """Best-of-*reps* run time of the probe workload under *cand*."""
    from repro.em.runner import make_engine

    cfg = probe_config(spec, cand, n)
    program, inputs = build_workload(spec, cfg, n)
    rt = cand.runtime()
    make_engine(cfg, runtime=rt).run(program, inputs)  # warmup
    best = float("inf")
    for _ in range(max(1, reps)):
        eng = make_engine(cfg, runtime=rt)
        t0 = time.perf_counter()
        eng.run(program, inputs)
        best = min(best, time.perf_counter() - t0)
    return best


# --------------------------------------------------------------------- search


def enumerate_candidates(spec: WorkloadSpec) -> list[Candidate]:
    """The valid grid: p <= v, p | v, probe shape constructible."""
    workers_grid = (0,) if spec.p == 1 else (0, min(2, spec.p))
    out = []
    for v in V_GRID:
        if v < spec.p or v % spec.p:
            continue
        for B in B_GRID:
            for D in D_GRID:
                for workers in workers_grid:
                    out.append(Candidate(v=v, B=B, D=D, workers=workers))
    if not out:
        raise ConfigurationError(
            f"no tuning candidates admit p={spec.p} (need p <= v and p | v "
            f"for some v in {V_GRID})"
        )
    return out


def analytic_cost(spec: WorkloadSpec, cand: Candidate) -> float:
    """Theorem 3 predicted parallel I/Os for the full-size workload."""
    mu = -(-spec.n // cand.v)
    return predicted_parallel_ios(
        cand.v, spec.p, cand.D, cand.B,
        rounds=_ROUNDS[spec.op], mu_items=mu, h_items=mu,
    )


def _auto_threshold(spec: WorkloadSpec, cand: Candidate, probe_n: int) -> int:
    """Auto-dispatch block threshold just above the probe's round size."""
    mu_blocks = -(-(-(-probe_n // cand.v)) // cand.B)
    return 2 * max(1, mu_blocks) * (cand.v // spec.p)


MeasureFn = Callable[[WorkloadSpec, Candidate, int, int], float]


def tune(
    spec: WorkloadSpec,
    probe_n: "int | None" = None,
    reps: int = 2,
    top_k: int = 4,
    calibrate: bool = True,
    measure: "MeasureFn | None" = None,
    tracer: Any = None,
) -> TuneResult:
    """Choose a configuration for *spec*; returns profile + decision record.

    *measure* is injectable (tests pass a deterministic cost function);
    the default runs real probes via :func:`_measure_wallclock`.  With a
    deterministic *measure*, the produced profile is byte-stable: no
    timestamps, stable candidate ordering, deterministic tie-breaks.
    """
    measure_fn: MeasureFn = _measure_wallclock if measure is None else measure
    n_probe = min(spec.n, 1 << 14) if probe_n is None else min(spec.n, probe_n)
    rationale: list[str] = []

    candidates = enumerate_candidates(spec)
    ranked = sorted(
        range(len(candidates)), key=lambda i: (analytic_cost(spec, candidates[i]), i)
    )
    keep = {i for i in ranked[: max(1, top_k)]}
    defaults: "Candidate | None" = default_candidate() if (
        DEFAULTS["v"] % spec.p == 0
    ) else None
    if defaults is not None and defaults in candidates:
        keep.add(candidates.index(defaults))
    else:
        defaults = None
    probe_set = [candidates[i] for i in sorted(keep)]
    pruned = len(candidates) - len(probe_set)
    rationale.append(
        f"analytic: Theorem 3 cost pruned {pruned}/{len(candidates)} candidates; "
        f"probing {len(probe_set)} (top {top_k} by predicted parallel I/Os"
        + (", plus the all-defaults config)" if defaults else ")")
    )
    if tracer is not None:
        tracer.emit(
            "tune_begin", workload=spec.as_dict(), candidates=len(candidates),
            probed=len(probe_set), probe_n=n_probe,
        )

    probes: list[tuple[Candidate, float]] = []
    for cand in probe_set:
        cost = measure_fn(spec, cand, n_probe, reps)
        probes.append((cand, cost))
        rationale.append(
            f"probe: {cand.label()}: {cost * 1e3:.3f} ms at n={n_probe} "
            f"(predicted {analytic_cost(spec, cand):.0f} parallel I/Os)"
        )
        if tracer is not None:
            tracer.emit(
                "tune_probe", candidate=cand.label(), wall_s=cost,
                predicted_ios=analytic_cost(spec, cand),
            )

    best_i = min(range(len(probes)), key=lambda i: (probes[i][1], i))
    chosen = probes[best_i][0]
    rationale.append(f"chose {chosen.label()}: fastest measured probe")

    if calibrate and chosen.fastpath == "on":
        ref = dataclasses.replace(chosen, fastpath="off")
        ref_cost = measure_fn(spec, ref, n_probe, reps)
        if ref_cost < probes[best_i][1]:
            threshold = _auto_threshold(spec, chosen, n_probe)
            chosen = dataclasses.replace(chosen, fastpath=f"auto:{threshold}")
            rationale.append(
                f"calibration: reference path faster at probe scale "
                f"({ref_cost * 1e3:.3f} ms < {probes[best_i][1] * 1e3:.3f} ms); "
                f"fastpath=auto:{threshold} dispatches small supersteps to it"
            )
        else:
            rationale.append(
                f"calibration: fast path holds at probe scale "
                f"({probes[best_i][1] * 1e3:.3f} ms <= {ref_cost * 1e3:.3f} ms); "
                f"fastpath=on"
            )

    profile = TunedProfile(
        workload=spec.as_dict(),
        machine={"v": chosen.v, "B": chosen.B, "D": chosen.D},
        config=chosen.knob_config(),
        rationale=rationale,
        search={
            "candidates": len(candidates),
            "pruned": pruned,
            "probed": len(probe_set),
            "probe_n": n_probe,
            "reps": reps,
            "top_k": top_k,
            # probes run in-process, so they measure the ambient
            # transport; apply-time warns if a run uses a different one
            "transport": RuntimeConfig.from_env().transport,
        },
    )
    if tracer is not None:
        tracer.emit(
            "tune_end", chosen=chosen.label(), config=profile.config,
            machine=profile.machine,
        )
    return TuneResult(
        profile=profile, chosen=chosen, probes=probes,
        pruned=pruned, total=len(candidates),
    )
