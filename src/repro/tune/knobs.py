"""The single registry of every ``REPRO_*`` runtime knob.

Each knob is one :class:`KnobSpec`: its environment variable, value type,
default, owning subsystem, and a hardened parser.  All environment reads
and writes of ``REPRO_*`` variables live in this package — consumers call
:func:`repro.tune.runtime.current` (or hold a per-run
:class:`~repro.tune.runtime.RuntimeConfig` snapshot) instead of touching
``os.environ``, and a lint test greps the rest of the tree to keep it
that way.

Malformed values never escape as raw ``ValueError`` tracebacks: every
parser failure becomes a :class:`KnobError` naming the variable, the
offending value, and the accepted spellings.  ``KnobError`` subclasses
:class:`~repro.util.validation.ConfigurationError` so library callers
keep working, while the CLI maps it to exit code 2 (a usage problem)
instead of 3 (a runtime failure).

The README's knob table is generated from this registry by
:func:`render_knob_table`, so documentation cannot drift from the code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.util.validation import ConfigurationError


class KnobError(ConfigurationError):
    """A ``REPRO_*`` knob (env var, CLI flag, or profile entry) is malformed."""


_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})

#: Default payload size (bytes) above which worker packets travel through
#: shared memory.  Small packets stay on the Queue: one pickle of a few KB
#: is cheaper than creating and mapping a segment.
DEFAULT_SHM_THRESHOLD = 1 << 16

#: Default per-superstep block threshold for ``REPRO_FASTPATH=auto``: the
#: vectorized path engages when a round schedules at least this many
#: context blocks, otherwise the per-block reference loop runs (its setup
#: overhead is lower at tiny sizes — the granularity-control tradeoff).
DEFAULT_AUTO_BLOCKS = 32

#: storage backends the track arena can use (see repro.pdm.mmap_arena).
ARENA_KINDS = ("ram", "mmap")

#: worker-exchange transports (see repro.core.transport).
TRANSPORT_KINDS = ("memory", "shm", "tcp")


def _bool_tokens() -> str:
    return "/".join(sorted(_TRUE)) + " or " + "/".join(sorted(_FALSE))


def _parse_bool(raw: str) -> bool:
    tok = raw.lower()
    if tok in _TRUE:
        return True
    if tok in _FALSE:
        return False
    raise ValueError(f"not a boolean (use {_bool_tokens()})")


def _parse_workers(raw: str) -> int:
    try:
        val = int(raw)
    except ValueError:
        raise ValueError("not an integer") from None
    if val < 0:
        raise ValueError("must be >= 0 (0 = single-process simulation)")
    return val


def _parse_fastpath(raw: str) -> str:
    tok = raw.lower()
    if tok in _TRUE:
        return "on"
    if tok in _FALSE:
        return "off"
    if tok == "auto":
        return "auto"
    if tok.startswith("auto:"):
        try:
            blocks = int(tok[5:])
        except ValueError:
            raise ValueError(
                "auto threshold is not an integer (use auto:<blocks>)"
            ) from None
        if blocks < 0:
            raise ValueError("auto threshold must be >= 0")
        return f"auto:{blocks}"
    raise ValueError(f"use {_bool_tokens()}, auto, or auto:<blocks>")


def _parse_arena(raw: str) -> str:
    tok = raw.lower()
    if tok not in ARENA_KINDS:
        raise ValueError(f"choose from {ARENA_KINDS}")
    return tok


def _parse_transport(raw: str) -> str:
    tok = raw.lower()
    if tok not in TRANSPORT_KINDS:
        raise ValueError(f"choose from {TRANSPORT_KINDS}")
    return tok


def _parse_nodes(raw: str) -> str:
    # canonicalized so equal node lists compare equal in RuntimeConfig
    from repro.core.transport.base import parse_nodes, render_nodes

    return render_nodes(parse_nodes(raw))


def _parse_shm_bytes(raw: str) -> "int | None":
    try:
        val = int(raw)
    except ValueError:
        raise ValueError("not an integer byte count (<= 0 disables)") from None
    return val if val > 0 else None


def _parse_spill_quota(raw: str) -> "int | None":
    try:
        val = int(raw)
    except ValueError:
        raise ValueError("not an integer byte count (<= 0 disables)") from None
    return val if val > 0 else None


def _parse_trace(raw: str) -> "str | None":
    # false tokens disable tracing; a true token records in memory; any
    # other value is a sink path the trace streams to as JSON lines
    return None if raw.lower() in _FALSE else raw


def _parse_path(raw: str) -> str:
    return raw


@dataclass(frozen=True)
class KnobSpec:
    """Declaration of one runtime knob."""

    name: str                      #: RuntimeConfig field name
    env: str                       #: environment variable
    kind: str                      #: human-readable value type (for docs)
    default: Any
    parse: Callable[[str], Any]    #: raises ValueError on malformed input
    subsystem: str                 #: owning module (for docs)
    help: str
    #: a malformed spelling, or None when every string is valid — used by
    #: the error-coverage tests and nowhere else
    invalid_example: "str | None" = None

    def coerce(self, raw: "str | None") -> Any:
        """Parse one raw value; unset/empty means the default.

        Raises :class:`KnobError` naming the variable on malformed input.
        """
        if raw is None:
            return self.default
        raw = raw.strip()
        if not raw:
            return self.default
        try:
            return self.parse(raw)
        except ValueError as exc:
            raise KnobError(
                f"invalid {self.env}={raw!r}: {exc}"
            ) from None

    def read(self, environ: "Mapping[str, str] | None" = None) -> Any:
        env = os.environ if environ is None else environ
        return self.coerce(env.get(self.env))


KNOBS: tuple[KnobSpec, ...] = (
    KnobSpec(
        "workers", "REPRO_WORKERS", "int >= 0", 0, _parse_workers,
        "core.workers",
        "OS processes for the par backend's real processors "
        "(0 = single-process simulation; capped at p)",
        invalid_example="two",
    ),
    KnobSpec(
        "fastpath", "REPRO_FASTPATH", "on|off|auto[:blocks]", "on",
        _parse_fastpath, "pdm.fastpath",
        "vectorized fast path: on, off (per-block reference loop), or "
        "auto — dispatch per superstep by scheduled context blocks",
        invalid_example="sometimes",
    ),
    KnobSpec(
        "arena", "REPRO_ARENA", "ram|mmap", "ram", _parse_arena,
        "pdm.mmap_arena",
        "track-arena storage: preallocated host memory or memory-mapped "
        "spill files for out-of-core runs",
        invalid_example="tape",
    ),
    KnobSpec(
        "prefetch", "REPRO_PREFETCH", "bool", True, _parse_bool,
        "pdm.pipeline",
        "double-buffered superstep context prefetch (fast path only)",
        invalid_example="maybe",
    ),
    KnobSpec(
        "transport", "REPRO_TRANSPORT", "memory|shm|tcp", "shm",
        _parse_transport, "core.transport",
        "worker-exchange transport: queue pickling, queue + shared-memory "
        "bulk segments, or framed TCP to `repro node` daemons",
        invalid_example="carrier-pigeon",
    ),
    KnobSpec(
        "nodes", "REPRO_NODES", "host:port,...", None, _parse_nodes,
        "core.transport",
        "node daemons the tcp transport dials, one per worker "
        "(comma-separated host:port list)",
        invalid_example="localhost:notaport",
    ),
    KnobSpec(
        "shm_bytes", "REPRO_SHM_BYTES", "int bytes (<= 0 disables)",
        DEFAULT_SHM_THRESHOLD, _parse_shm_bytes, "core.workers",
        "payload size above which worker packets use shared memory "
        "instead of pickling through the queue",
        invalid_example="nonsense",
    ),
    KnobSpec(
        "spill_quota", "REPRO_SPILL_QUOTA", "int bytes (<= 0 disables)",
        None, _parse_spill_quota, "pdm.mmap_arena",
        "per-arena cap on total mapped spill bytes (mmap arena only)",
        invalid_example="lots",
    ),
    KnobSpec(
        "spill_dir", "REPRO_SPILL_DIR", "path", None, _parse_path,
        "pdm.mmap_arena",
        "base directory for the mmap arena's run-scoped spill files "
        "(default: the system temp dir)",
    ),
    KnobSpec(
        "trace", "REPRO_TRACE", "bool or path", None, _parse_trace,
        "obs.bus",
        "telemetry bus: a true token records in memory, a path streams "
        "JSON lines there, false/unset keeps the zero-cost null recorder",
    ),
    KnobSpec(
        "faults", "REPRO_FAULTS", "path to fault-plan JSON", None,
        _parse_path, "faults",
        "apply this fault plan to every fault-capable engine "
        "(the CI whole-suite injection lane)",
    ),
    KnobSpec(
        "profile", "REPRO_PROFILE", "path to tuned-profile JSON", None,
        _parse_path, "tune",
        "tuned profile applied automatically by em_run/the CLI "
        "(explicit env vars and CLI flags still win)",
    ),
)

KNOB_BY_NAME: dict[str, KnobSpec] = {s.name: s for s in KNOBS}
KNOB_BY_ENV: dict[str, KnobSpec] = {s.env: s for s in KNOBS}


def read_knob(name: str, environ: "Mapping[str, str] | None" = None) -> Any:
    """Parsed value of the knob called *name* (field name or env var)."""
    spec = KNOB_BY_NAME.get(name) or KNOB_BY_ENV.get(name)
    if spec is None:
        raise KnobError(f"unknown knob {name!r}")
    return spec.read(environ)


def set_env(env: str, value: "str | None") -> None:
    """Write (or with ``None`` clear) one knob's environment variable.

    The single sanctioned ``os.environ`` write path for ``REPRO_*``
    variables: callers like :func:`repro.pdm.fastpath.set_enabled` route
    through here so child processes (the workers backend) inherit the
    setting and the centralization lint stays clean.
    """
    if env not in KNOB_BY_ENV:
        raise KnobError(f"unknown knob environment variable {env!r}")
    if value is None:
        os.environ.pop(env, None)
    else:
        KNOB_BY_ENV[env].coerce(value)  # refuse to install a malformed value
        os.environ[env] = value


def _fmt_default(val: Any) -> str:
    if val is None:
        return "unset"
    if val is True:
        return "1"
    if val is False:
        return "0"
    return str(val)


def render_knob_table() -> str:
    """The README's ``REPRO_*`` reference, generated from :data:`KNOBS`.

    A doc test asserts the committed README section equals this output
    byte for byte, so the table cannot drift from the registry.
    """
    header = (
        "| Variable | Type | Default | Subsystem | Purpose |",
        "|---|---|---|---|---|",
    )
    rows = [
        f"| `{s.env}` | {s.kind.replace('|', chr(92) + '|')} "
        f"| `{_fmt_default(s.default)}` | `repro.{s.subsystem}` | {s.help} |"
        for s in KNOBS
    ]
    return "\n".join(header + tuple(rows))
