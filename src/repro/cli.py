"""Command-line interface: run EM-CGM experiments without writing code.

Usage (after ``pip install -e .``):

    python -m repro sort      --n 65536 --v 8 --d 2 --b 512 --engine seq
    python -m repro permute   --n 32768 --v 8 --engine seq --balanced
    python -m repro transpose --rows 128 --cols 256 --v 8
    python -m repro delaunay  --n 2000 --v 4
    python -m repro cc        --n 1000 --edges 2000 --v 8
    python -m repro listrank  --n 5000 --v 8 --engine par --p 2
    python -m repro theory    --v 100 1000 10000 --b 1000
    python -m repro machine   --n 65536 --v 8 --d 2 --b 512

Every run prints the PDM cost accounting (parallel I/Os, rounds,
supersteps, h-relation history) and verifies the output against an
independent reference before reporting success.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.cgm.config import MachineConfig
from repro.pdm import fastpath
from repro.pdm.io_stats import DiskServiceModel
from repro.tune.knobs import KnobError
from repro.util.validation import ConfigurationError, SimulationError


class _TrackedStore(argparse.Action):
    """``store`` that records which flags the user typed explicitly.

    A ``--profile`` only fills machine parameters the user did *not*
    give on the command line (CLI flag > tuned profile), so the parser
    needs to distinguish a default from an explicit value.  The set is
    created lazily per-parse on the namespace — a shared default set
    would leak explicitness across parses.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        setattr(namespace, self.dest, values)
        explicit = getattr(namespace, "_explicit", None)
        if explicit is None:
            explicit = set()
            setattr(namespace, "_explicit", explicit)
        explicit.add(self.dest)


def _add_machine_args(p: argparse.ArgumentParser, n_default: int = 1 << 16) -> None:
    p.add_argument("--n", type=int, default=n_default, help="problem size (items)")
    p.add_argument(
        "--v", type=int, default=8, action=_TrackedStore, help="virtual processors"
    )
    p.add_argument("--p", type=int, default=1, help="real processors")
    p.add_argument(
        "--d", type=int, default=2, action=_TrackedStore, help="disks per processor"
    )
    p.add_argument(
        "--b", type=int, default=256, action=_TrackedStore,
        help="block size (items)",
    )
    p.add_argument("--m", type=int, default=None, help="memory per processor (items)")
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        action=_TrackedStore,
        help="run the par backend's real processors in this many OS "
        "processes (0 = single-process simulation; capped at p)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--engine",
        choices=["memory", "vm", "seq", "par"],
        default=None,
        help="backend (default: seq for p=1, par otherwise)",
    )
    p.add_argument("--balanced", action="store_true", help="route via Algorithm 1")
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a superstep/I/O/network event trace to PATH",
    )
    p.add_argument(
        "--trace-format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help="trace output format: JSON-lines events or a Chrome "
        "trace-event array for chrome://tracing (default: jsonl)",
    )
    p.add_argument(
        "--crosscheck",
        action="store_true",
        help="check measured costs against the Theorem 2/3 predictions "
        "and print the per-disk parallelism histograms",
    )
    p.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the run's metrics registry to PATH "
        "(.json -> JSON snapshot, anything else -> Prometheus text)",
    )
    p.add_argument(
        "--faults",
        metavar="PLAN.json",
        default=None,
        help="inject disk faults from a JSON fault plan (seq/par engines; "
        "see repro.faults.FaultPlan)",
    )
    p.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="snapshot the run into DIR at every round boundary so a "
        "killed run can be resumed (seq/par engines)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="restore the newest snapshot in --checkpoint DIR and "
        "continue instead of starting over",
    )
    p.add_argument(
        "--arena",
        choices=["ram", "mmap"],
        default=None,
        help="track-arena storage backend: preallocated host memory (ram, "
        "the default) or memory-mapped spill files for out-of-core runs "
        "(mmap); equivalent to setting REPRO_ARENA",
    )
    p.add_argument(
        "--transport",
        choices=["memory", "shm", "tcp"],
        default=None,
        help="worker-exchange transport for the multi-process backend: "
        "queue pickling (memory), queue + shared-memory bulk segments "
        "(shm, the default), or framed TCP to 'repro node' daemons "
        "(tcp); equivalent to setting REPRO_TRANSPORT",
    )
    p.add_argument(
        "--nodes",
        metavar="HOST:PORT,...",
        default=None,
        help="node daemons the tcp transport dials, one per worker; "
        "equivalent to setting REPRO_NODES",
    )
    p.add_argument(
        "--profile",
        metavar="PROFILE.json",
        default=None,
        help="apply a tuned profile written by 'repro tune': fills "
        "--v/--d/--b/--workers you did not give explicitly and applies "
        "its runtime knobs (explicit flags and env vars still win)",
    )


def _apply_profile(args) -> None:
    """Fill non-explicit machine parameters from ``--profile``.

    The loaded document is stashed on the namespace so the run also
    applies the profile's knob section (via ``em_run(profile=...)``).
    """
    path = getattr(args, "profile", None)
    if path is None:
        return
    from repro.tune.profile import load_profile

    doc = load_profile(path)
    args._profile_doc = doc
    explicit = getattr(args, "_explicit", set())
    machine = doc["machine"]
    for dest, key in (("v", "v"), ("d", "D"), ("b", "B")):
        if dest not in explicit and hasattr(args, dest):
            setattr(args, dest, int(machine[key]))
    if "workers" not in explicit and hasattr(args, "workers"):
        workers = doc["config"].get("workers")
        if workers is not None:
            args.workers = int(workers)


def _profile_kwargs(args) -> dict:
    doc = getattr(args, "_profile_doc", None)
    return {"profile": doc} if doc is not None else {}


def _config(args, n: int | None = None) -> MachineConfig:
    return MachineConfig(
        N=n if n is not None else args.n,
        v=args.v,
        p=args.p,
        D=args.d,
        B=args.b,
        M=args.m,
        seed=args.seed,
        workers=getattr(args, "workers", 0),
    )


def _make_tracer(args):
    """An EventBus when --trace was given, else None (zero-cost path).

    The bus is a drop-in JsonlRecorder upgrade: same export paths, plus
    span threading and the streaming model-conformance monitor, so every
    ``--trace`` run gets drift detection for free.
    """
    if getattr(args, "trace", None) is None:
        return None
    try:
        # fail before the run, not after: a long simulation shouldn't
        # complete only to lose its trace to an unwritable path
        with open(args.trace, "w", encoding="utf-8"):
            pass
    except OSError as exc:
        raise SystemExit(f"error: cannot write trace to {args.trace!r}: {exc}")
    from repro.obs.bus import EventBus

    return EventBus()


def _write_trace(args, tracer) -> None:
    if tracer is None:
        return
    if args.trace_format == "chrome":
        n = tracer.write_chrome(args.trace)
    else:
        n = tracer.write_jsonl(args.trace)
    print(f"  trace            : {n} events -> {args.trace} ({args.trace_format})")


def _resilience(args) -> dict:
    """``faults``/``checkpoint``/``resume`` kwargs for the em_* helpers."""
    return {
        "faults": getattr(args, "faults", None),
        "checkpoint": getattr(args, "checkpoint", None),
        "resume": getattr(args, "resume", False),
    }


def _make_metrics(args):
    """A live MetricsRegistry when --metrics was given, else None."""
    if getattr(args, "metrics", None) is None:
        return None
    from repro.obs.metrics import MetricsRegistry

    return MetricsRegistry()


def _write_metrics(args, registry) -> None:
    if registry is None:
        return
    registry.write(args.metrics)
    kind = "json snapshot" if str(args.metrics).endswith(".json") else "prometheus text"
    print(f"  metrics          : {len(registry.metrics)} families -> {args.metrics} ({kind})")


def _crosscheck(args, report, cfg: MachineConfig) -> None:
    if not getattr(args, "crosscheck", False):
        return
    from repro.obs.costcheck import crosscheck_report
    from repro.obs.histograms import DiskHistograms

    print()
    print(crosscheck_report(report, cfg, balanced=args.balanced).render())
    if report.io.parallel_ios:
        print(DiskHistograms.from_stats(report.io, cfg.D).render())


def _report(label: str, report, cfg: MachineConfig) -> None:
    model = DiskServiceModel()
    print(f"\n{label}")
    print(f"  machine          : {cfg.describe()}")
    print(f"  CGM rounds       : {report.rounds}   supersteps: {report.supersteps}")
    print(f"  communication    : {report.comm_items} items ({report.cross_items} over the network)")
    if report.io.parallel_ios:
        print(
            f"  parallel I/Os    : {report.io.parallel_ios} total, "
            f"{report.io_max.parallel_ios} on the busiest processor"
        )
        print(f"  disk utilization : {report.io.utilization(cfg.D):.1%}")
        if report.io.width_histogram:
            from repro.obs.histograms import DiskHistograms

            h = DiskHistograms.from_stats(report.io, cfg.D)
            print(
                f"  full-D parallel  : {h.full_width_fraction:.1%} of I/Os "
                f"touch all {cfg.D} disks (mean width {h.mean_width:.2f})"
            )
        print(
            f"  modeled I/O time : "
            f"{report.io_max.parallel_ios * model.parallel_io_time(cfg.B):.2f}s "
            f"(1998-class disks)"
        )
    if report.page_faults:
        print(f"  page faults      : {report.page_faults}")
    if report.overflow_blocks:
        print(f"  overflow blocks  : {report.overflow_blocks} (consider --balanced)")
    if report.fault_stats is not None and report.fault_stats.any:
        print(f"  injected faults  : {report.fault_stats.summary()}")


def cmd_sort(args) -> int:
    from repro.em.runner import em_sort

    rng = np.random.default_rng(args.seed)
    data = rng.integers(0, 2**48, args.n)
    cfg = _config(args)
    tracer = _make_tracer(args)
    registry = _make_metrics(args)
    res = em_sort(
        data, cfg, engine=args.engine, balanced=args.balanced,
        tracer=tracer, metrics=registry, **_resilience(args), **_profile_kwargs(args),
    )
    ok = np.array_equal(res.values, np.sort(data))
    _report(f"sorted {args.n} items: {'OK' if ok else 'MISMATCH'}", res.report, cfg)
    _write_trace(args, tracer)
    _write_metrics(args, registry)
    _crosscheck(args, res.report, cfg)
    return 0 if ok else 1


def cmd_permute(args) -> int:
    from repro.em.runner import em_permute

    rng = np.random.default_rng(args.seed)
    values = rng.integers(0, 2**48, args.n)
    perm = rng.permutation(args.n)
    cfg = _config(args)
    tracer = _make_tracer(args)
    registry = _make_metrics(args)
    res = em_permute(
        values, perm, cfg, engine=args.engine, balanced=args.balanced,
        tracer=tracer, metrics=registry, **_resilience(args), **_profile_kwargs(args),
    )
    expect = np.zeros(args.n, dtype=np.int64)
    expect[perm] = values
    ok = np.array_equal(res.values, expect)
    _report(f"permuted {args.n} items: {'OK' if ok else 'MISMATCH'}", res.report, cfg)
    _write_trace(args, tracer)
    _write_metrics(args, registry)
    _crosscheck(args, res.report, cfg)
    return 0 if ok else 1


def cmd_transpose(args) -> int:
    from repro.em.runner import em_transpose

    rng = np.random.default_rng(args.seed)
    mat = rng.integers(0, 2**31, (args.rows, args.cols))
    cfg = _config(args, n=mat.size)
    tracer = _make_tracer(args)
    registry = _make_metrics(args)
    res = em_transpose(
        mat, cfg, engine=args.engine, balanced=args.balanced,
        tracer=tracer, metrics=registry, **_resilience(args), **_profile_kwargs(args),
    )
    ok = np.array_equal(res.values, mat.T)
    _report(
        f"transposed {args.rows}x{args.cols}: {'OK' if ok else 'MISMATCH'}",
        res.report,
        cfg,
    )
    _write_trace(args, tracer)
    _write_metrics(args, registry)
    _crosscheck(args, res.report, cfg)
    return 0 if ok else 1


def _note_trace_unsupported(args) -> None:
    for flag in ("trace", "metrics", "faults", "checkpoint"):
        if getattr(args, flag, None) is not None:
            print(
                f"note: --{flag} is wired for sort/permute/transpose; "
                f"this command runs without it",
                file=sys.stderr,
            )


def cmd_delaunay(args) -> int:
    from scipy.spatial import Delaunay

    import repro.algorithms.geometry as geo

    _note_trace_unsupported(args)
    rng = np.random.default_rng(args.seed)
    pts = rng.random((args.n, 2))
    cfg = _config(args, n=3 * args.n)
    res = geo.delaunay_2d(pts, cfg, engine=args.engine)
    ref = {tuple(sorted(map(int, t))) for t in Delaunay(pts).simplices}
    ok = {tuple(t) for t in res.values} == ref
    _report(
        f"Delaunay of {args.n} points -> {len(res.values)} triangles: "
        f"{'OK' if ok else 'MISMATCH'}"
        + (" [exact fallback fired]" if res.extra["fallback"] else ""),
        res.reports[0],
        cfg,
    )
    return 0 if ok else 1


def cmd_cc(args) -> int:
    import networkx as nx

    from repro.algorithms.graphs import connected_components

    _note_trace_unsupported(args)
    G = nx.gnm_random_graph(args.n, args.edges, seed=args.seed)
    edges = (
        np.array(G.edges()) if G.number_of_edges() else np.zeros((0, 2), dtype=np.int64)
    )
    cfg = _config(args, n=args.n)
    res = connected_components(edges, args.n, cfg, engine=args.engine)
    ok = all(
        {res.values[u] for u in cc} == {min(cc)} for cc in nx.connected_components(G)
    )
    n_comp = len(set(res.values.tolist()))
    _report(
        f"connected components of G({args.n}, {args.edges}) -> {n_comp} components: "
        f"{'OK' if ok else 'MISMATCH'}",
        res.reports[0],
        cfg,
    )
    return 0 if ok else 1


def cmd_listrank(args) -> int:
    from repro.algorithms.graphs import list_rank

    _note_trace_unsupported(args)
    rng = np.random.default_rng(args.seed)
    order = rng.permutation(args.n)
    succ = np.full(args.n, -1, dtype=np.int64)
    for a, b in zip(order[:-1], order[1:]):
        succ[a] = b
    cfg = _config(args, n=args.n)
    res = list_rank(succ, cfg, engine=args.engine)
    expect = np.empty(args.n)
    for i, node in enumerate(order):
        expect[node] = args.n - 1 - i
    ok = np.array_equal(res.values, expect)
    _report(
        f"list ranking of {args.n} nodes: {'OK' if ok else 'MISMATCH'}",
        res.reports[0],
        cfg,
    )
    return 0 if ok else 1


def cmd_theory(args) -> int:
    from repro.core.theory import log_term_bound_c, min_problem_size

    print(f"minimum problem size for log-term <= c  (B = {args.b} items)")
    print(f"{'v':>8} {'c=2':>12} {'c=3':>12} {'c=4':>12}")
    for v in args.v:
        print(
            f"{v:>8}"
            + "".join(f"{min_problem_size(v, args.b, c):>12.3g}" for c in (2, 3, 4))
        )
    if args.check:
        N, v = args.check
        print(
            f"\nrealized log term at N={N}, v={v}, M=N/v: "
            f"{log_term_bound_c(int(N), int(v), args.b):.3f}"
        )
    return 0


def cmd_machine(args) -> int:
    cfg = _config(args)
    print(cfg.describe())
    print("\npaper constraint report (kappa = 3):")
    for name, d in cfg.constraint_report(kappa=3.0).items():
        print(f"  [{'ok' if d['ok'] else 'VIOLATED':>8}] {name}   ({d['detail']})")
    model = DiskServiceModel()
    print(f"\nsuggested G for B={cfg.B}: {model.suggest_G(cfg.B):.0f} ops/parallel-I/O")
    return 0


def cmd_analyze(args) -> int:
    from repro.obs.analyze import analyze_file

    try:
        analysis = analyze_file(args.trace, envelope_c=args.envelope)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps(analysis.to_dict(), indent=2, sort_keys=True))
    elif args.critical_path:
        print(analysis.render_critical_path(top=args.top))
    else:
        print(analysis.render())
    return 0 if analysis.ok else 1


def _print_frame(view, clear: bool) -> None:
    if clear and sys.stdout.isatty():
        print("\x1b[2J\x1b[H", end="")
    print(view.render(), flush=True)


def cmd_top(args) -> int:
    import time

    from repro.obs.live import TopView, iter_jsonl, iter_sse

    if (args.trace is None) == (args.url is None):
        print("error: give a trace file or --url (exactly one)", file=sys.stderr)
        return 2
    view = TopView(window=args.window)
    if args.url is not None:
        events = iter_sse(args.url.rstrip("/") + "/events")
    else:
        events = iter_jsonl(
            args.trace, follow=args.follow, idle_timeout_s=args.idle_timeout
        )
    last = 0.0
    try:
        for ev in events:
            view.feed(ev)
            if view.finished:
                break  # run_end seen; a live SSE stream won't EOF on its own
            if args.once:
                continue
            now = time.monotonic()
            if now - last >= args.interval:
                _print_frame(view, clear=True)
                last = now
    except KeyboardInterrupt:
        pass
    except BrokenPipeError:
        return _exit_broken_pipe()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        _print_frame(view, clear=not args.once)
    except BrokenPipeError:
        return _exit_broken_pipe()
    return 0


def _exit_broken_pipe() -> int:
    """Downstream pager/head closed the pipe: not an error.  Point stdout
    at devnull so the interpreter's exit flush doesn't raise again."""
    import os

    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _bind_error(host: str, port: int, exc: OSError) -> int:
    """One-line bind failure, exit code 2 (usage-error convention).

    ``EADDRINUSE`` gets its own message naming the port — the common
    operator mistake (a previous server still running) should not read
    like an internal failure, let alone a traceback.
    """
    import errno

    if exc.errno == errno.EADDRINUSE:
        print(
            f"error: port {port} on {host} is already in use "
            f"(is another server running? pick a different --port)",
            file=sys.stderr,
        )
    else:
        print(f"error: cannot bind {host}:{port}: {exc}", file=sys.stderr)
    return 2


def cmd_node(args) -> int:
    from repro.core.transport.node import serve_node

    try:
        return serve_node(args.host, args.port)
    except OSError as exc:
        return _bind_error(args.host, args.port, exc)


def cmd_serve_metrics(args) -> int:
    import signal
    import threading

    from repro.em.runner import em_sort
    from repro.obs.bus import EventBus
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.server import ObsServer

    cfg = _config(args)
    bus = EventBus()
    registry = MetricsRegistry()
    try:
        server = ObsServer(
            bus=bus, registry=registry, host=args.host, port=args.port
        ).start()
    except OSError as exc:
        return _bind_error(args.host, args.port, exc)

    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda signum, frame: stop.set())

    rng = np.random.default_rng(args.seed)
    data = rng.integers(0, 2**48, args.n)
    outcome: dict = {}

    def _run() -> None:
        try:
            outcome["res"] = em_sort(
                data, cfg, engine=args.engine, balanced=args.balanced,
                tracer=bus, metrics=registry,
            )
        except Exception as exc:
            outcome["error"] = exc
        finally:
            if args.exit_after_run:
                stop.set()

    print(
        f"serving on {server.url}  "
        f"(metrics: {server.url}/metrics, events: {server.url}/events)",
        flush=True,
    )
    worker = threading.Thread(target=_run, name="repro-serve-run", daemon=True)
    worker.start()
    while not stop.is_set():
        stop.wait(0.5)
    worker.join(timeout=10.0)
    server.close()
    bus.close()
    err = outcome.get("error")
    if err is not None:
        print(f"error: workload failed: {err}", file=sys.stderr)
        return 1
    res = outcome.get("res")
    if res is not None:
        _report(f"served sort of {args.n} items", res.report, cfg)
        drifts = sum(1 for ev in bus.events if ev.get("kind") == "model_drift")
        if drifts:
            print(f"  model drift      : {drifts} superstep(s) over budget")
    return 0


def cmd_serve(args) -> int:
    """The multi-tenant job server (``repro serve``); SIGTERM drains."""
    import signal
    import threading

    from repro.service.server import JobServer, ServiceCore

    core = ServiceCore(
        state_dir=args.state_dir,
        pool_size=args.pool,
        queue_capacity=args.queue_cap,
        tenant_quota=args.tenant_quota,
        cache_capacity=args.cache_cap,
    )
    try:
        server = JobServer(core, host=args.host, port=args.port).start()
    except OSError as exc:
        core.drain(timeout=5.0)
        return _bind_error(args.host, args.port, exc)

    stop = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda signum, frame: stop.set())

    print(
        f"serving on {server.url}  "
        f"(submit: POST {server.url}/jobs, metrics: {server.url}/metrics)",
        flush=True,
    )
    print(
        f"  pool={args.pool} queue={args.queue_cap} "
        f"tenant-quota={args.tenant_quota} cache={args.cache_cap} "
        f"state={core.state_dir}",
        flush=True,
    )
    while not stop.is_set():
        stop.wait(0.5)
    persisted = core.drain(timeout=args.drain_timeout)
    server.close()
    states: dict[str, int] = {}
    for job in core.jobs.values():
        states[job.state] = states.get(job.state, 0) + 1
    summary = " ".join(f"{k}={v}" for k, v in sorted(states.items())) or "none"
    print(f"drained: persisted {persisted} job(s), jobs seen: {summary}", flush=True)
    return 0


def cmd_submit(args) -> int:
    """Submit a spec file to a running ``repro serve`` (or run it locally)."""
    import json as _json

    from repro.service.client import (
        ServiceClientError,
        run_spec_local,
        stream_job,
        submit_job,
        wait_job,
    )

    if args.spec == "-":
        raw = sys.stdin.read()
    else:
        try:
            with open(args.spec, encoding="utf-8") as fh:
                raw = fh.read()
        except OSError as exc:
            print(f"error: cannot read spec {args.spec!r}: {exc}", file=sys.stderr)
            return 2
    try:
        doc = _json.loads(raw)
    except _json.JSONDecodeError as exc:
        print(f"error: spec is not JSON: {exc}", file=sys.stderr)
        return 2

    if args.local:
        # the CI service lane's bit-identity reference: same executor,
        # same result document, no server involved
        result = run_spec_local(doc)
        print(_json.dumps(result, indent=None if args.json else 2, sort_keys=True))
        return 0 if result["result"]["ok"] else 1

    try:
        status, headers, body = submit_job(args.url, doc, timeout_s=args.timeout)
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    if status not in (200, 202):
        retry = headers.get("Retry-After")
        hint = f" (Retry-After: {retry}s)" if retry else ""
        print(
            f"error: server refused the job ({status}): "
            f"{body.get('error', body)}{hint}",
            file=sys.stderr,
        )
        return 2
    cache = headers.get("X-Repro-Cache", "miss")
    job_id = body["id"]
    if not args.json:
        print(f"job {job_id} {body['state']} (cache: {cache})", flush=True)
    if args.stream:
        try:
            for ev in stream_job(args.url, job_id, timeout_s=args.timeout):
                print(_json.dumps(ev), flush=True)
        except ServiceClientError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 3
    if not (args.wait or args.stream):
        if args.json:
            print(_json.dumps(body, sort_keys=True))
        return 0
    try:
        final = wait_job(args.url, job_id, timeout_s=args.timeout)
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    final["cache"] = cache
    if args.json:
        print(_json.dumps(final, sort_keys=True))
    else:
        result = final.get("result") or {}
        print(
            f"job {job_id} {final['state']}"
            + (
                f"  ok={result.get('ok')} ios="
                f"{result.get('counters', {}).get('io', {}).get('parallel_ios')}"
                f" sha={str(result.get('output_sha256'))[:12]}"
                if result
                else ""
            )
        )
    if final["state"] != "done":
        print(
            f"error: job ended {final['state']}: {final.get('error', '')}",
            file=sys.stderr,
        )
        return 1
    return 0 if (final.get("result") or {}).get("ok") else 1


def _benchmarks_dir(args) -> "str | None":
    """Locate the benchmarks/ directory (source checkout layout)."""
    import os

    candidates = []
    if getattr(args, "benchmarks_dir", None):
        candidates.append(args.benchmarks_dir)
    here = os.path.dirname(os.path.abspath(__file__))
    candidates.append(os.path.join(here, "..", "..", "benchmarks"))
    candidates.append(os.path.join(os.getcwd(), "benchmarks"))
    for c in candidates:
        c = os.path.abspath(c)
        if os.path.isdir(c):
            return c
    return None


def _bench_suites(bench_dir: str) -> dict[str, str]:
    """suite name -> module path for every ``bench_*.py``."""
    import glob
    import os

    out = {}
    for path in sorted(glob.glob(os.path.join(bench_dir, "bench_*.py"))):
        stem = os.path.splitext(os.path.basename(path))[0]
        out[stem.removeprefix("bench_")] = path
    return out


def cmd_bench(args) -> int:
    import os
    import subprocess

    if args.compare:
        from repro.obs.bench_store import compare, load

        try:
            old, new = load(args.compare[0]), load(args.compare[1])
            result = compare(
                old,
                new,
                io_rtol=args.io_rtol,
                time_rtol=None if args.ignore_timings else args.time_rtol,
                timing_floor=args.timing_floor,
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.render())
        return 0 if result.ok else 1

    bench_dir = _benchmarks_dir(args)
    if bench_dir is None:
        print(
            "error: benchmarks/ directory not found — run from a source "
            "checkout or pass --benchmarks-dir",
            file=sys.stderr,
        )
        return 2
    suites = _bench_suites(bench_dir)
    if args.list:
        for name in suites:
            print(name)
        return 0
    wanted = args.suites or ["all"]
    if wanted == ["all"]:
        selected = list(suites.values())
    else:
        missing = [s for s in wanted if s not in suites]
        if missing:
            print(
                f"error: unknown suite(s) {', '.join(missing)}; "
                f"available: {', '.join(suites)}",
                file=sys.stderr,
            )
            return 2
        selected = [suites[s] for s in wanted]
    env = dict(os.environ)
    env["REPRO_BENCH_DIR"] = os.path.abspath(args.out)
    src_root = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "pytest", *selected,
        "-q", "-s", "--benchmark-disable", "-p", "no:cacheprovider",
    ]
    proc = subprocess.run(cmd, cwd=os.path.dirname(bench_dir), env=env)
    return proc.returncode


def cmd_tune(args) -> int:
    from repro.tune.knobs import render_knob_table
    from repro.tune.tuner import WorkloadSpec, tune

    if args.list_knobs:
        print(render_knob_table())
        return 0
    tracer = _make_tracer(args)
    spec = WorkloadSpec(op=args.op, n=args.n, seed=args.seed, p=args.p)
    res = tune(
        spec,
        probe_n=args.probe_n,
        reps=args.reps,
        top_k=args.top_k,
        tracer=tracer,
    )
    path = res.profile.save(args.out)
    if args.json:
        import json

        print(json.dumps(res.profile.document(), indent=2, sort_keys=True))
    else:
        print(f"tuned {spec.op} (n={spec.n}, p={spec.p}, seed={spec.seed})")
        print(f"  candidates       : {res.total} ({res.pruned} pruned analytically)")
        print(f"  chosen           : {res.chosen.label()}")
        for line in res.profile.rationale:
            print(f"  - {line}")
        print(f"  profile          : {path}")
        print(
            "  apply with       : --profile "
            f"{path} (or REPRO_PROFILE={path})"
        )
    if tracer is not None:
        _write_trace(args, tracer)
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="EM-CGM: external-memory algorithms by simulating "
        "coarse grained parallel algorithms (Dehne et al., IPPS 1999)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn, extra in [
        ("sort", cmd_sort, None),
        ("permute", cmd_permute, None),
        ("delaunay", cmd_delaunay, None),
        ("cc", cmd_cc, None),
        ("listrank", cmd_listrank, None),
        ("machine", cmd_machine, None),
    ]:
        p = sub.add_parser(name)
        _add_machine_args(p, n_default=1 << 14 if name != "machine" else 1 << 16)
        p.set_defaults(fn=fn)
        if name == "cc":
            p.add_argument("--edges", type=int, default=None)

    p = sub.add_parser("transpose")
    _add_machine_args(p)
    p.add_argument("--rows", type=int, default=128)
    p.add_argument("--cols", type=int, default=256)
    p.set_defaults(fn=cmd_transpose)

    p = sub.add_parser("theory")
    p.add_argument("--v", type=int, nargs="+", default=[10, 100, 1000, 10000])
    p.add_argument("--b", type=int, default=1000)
    p.add_argument("--check", type=float, nargs=2, metavar=("N", "V"), default=None)
    p.set_defaults(fn=cmd_theory)

    p = sub.add_parser(
        "analyze",
        help="per-superstep aggregation of a --trace jsonl file, checked "
        "against the Theorem 2/3 I/O envelopes",
    )
    p.add_argument("trace", help="trace file written by --trace (jsonl format)")
    p.add_argument(
        "--envelope",
        type=float,
        default=8.0,
        metavar="C",
        help="constant-factor envelope [pred/C, pred*C] (default: 8)",
    )
    p.add_argument("--json", action="store_true", help="emit JSON instead of tables")
    p.add_argument(
        "--critical-path",
        action="store_true",
        help="per-superstep comp/I/O/comm attribution with per-worker "
        "lanes, straggler analysis and the top slowest supersteps",
    )
    p.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="K",
        help="supersteps listed in the --critical-path slowest table (default 5)",
    )
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "top",
        help="live textual dashboard of a running (or recorded) trace",
    )
    p.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="jsonl trace file (e.g. a REPRO_TRACE=<path> streaming sink)",
    )
    p.add_argument(
        "--url",
        default=None,
        help="base URL of a 'repro serve-metrics' endpoint (reads its "
        "/events SSE stream instead of a file)",
    )
    p.add_argument(
        "--follow",
        action="store_true",
        help="tail the trace file as the engine appends to it",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="consume the whole source, print one final frame",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between frame redraws (default 1)",
    )
    p.add_argument(
        "--window", type=int, default=8, help="recent supersteps shown (default 8)"
    )
    p.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="S",
        help="with --follow: stop after S seconds without new events",
    )
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser(
        "serve-metrics",
        help="run a sort workload with the telemetry bus attached and "
        "serve live /metrics (Prometheus) and /events (SSE) over HTTP "
        "until SIGINT/SIGTERM",
    )
    _add_machine_args(p)
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8765, help="bind port (0 = auto-pick)"
    )
    p.add_argument(
        "--exit-after-run",
        action="store_true",
        help="shut down when the workload finishes instead of serving "
        "until a signal arrives",
    )
    p.set_defaults(fn=cmd_serve_metrics)

    p = sub.add_parser(
        "node",
        help="host one worker of a distributed run: accepts a coordinator "
        "over TCP (see --transport tcp / REPRO_NODES), validates its "
        "handshake (protocol, release, RuntimeConfig fingerprint), and "
        "runs the worker command loop; SIGTERM exits 0 cleanly",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=9876,
        help="bind port (0 = auto-pick; the chosen port is printed)",
    )
    p.set_defaults(fn=cmd_node)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant simulation job server: POST /jobs specs, "
        "bounded per-tenant queue with backpressure, checkpoint-preemptible "
        "worker pool, fingerprint result cache, per-job SSE streams; "
        "SIGTERM drains (checkpoint + persist the queue) and exits 0",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8799, help="bind port (0 = auto-pick)"
    )
    p.add_argument(
        "--pool", type=int, default=2, metavar="N",
        help="worker threads executing jobs (default 2)",
    )
    p.add_argument(
        "--queue-cap", type=int, default=64, metavar="N",
        help="pending-job bound before 429 backpressure (default 64)",
    )
    p.add_argument(
        "--tenant-quota", type=int, default=16, metavar="N",
        help="max queued+running jobs per tenant (default 16)",
    )
    p.add_argument(
        "--cache-cap", type=int, default=256, metavar="N",
        help="result-cache entries (default 256)",
    )
    p.add_argument(
        "--state-dir", default="repro_serve_state", metavar="DIR",
        help="checkpoints + persisted queue live here (default "
        "./repro_serve_state); restart on the same dir resumes drained jobs",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="S",
        help="seconds SIGTERM waits for in-flight jobs to checkpoint",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a job-spec JSON file to a running 'repro serve' "
        "(or --local to run the same spec in-process for comparison)",
    )
    p.add_argument("spec", help="path to the spec JSON ('-' reads stdin)")
    p.add_argument(
        "--url", default="http://127.0.0.1:8799",
        help="base URL of the job server",
    )
    p.add_argument(
        "--wait", action="store_true",
        help="poll until the job reaches a terminal state",
    )
    p.add_argument(
        "--stream", action="store_true",
        help="stream the job's SSE events to stdout (implies --wait)",
    )
    p.add_argument(
        "--local", action="store_true",
        help="run the spec in-process through the server's executor "
        "instead of submitting (the CI bit-identity reference)",
    )
    p.add_argument(
        "--json", action="store_true", help="print the final job document as JSON"
    )
    p.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="overall wait/stream timeout in seconds",
    )
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser(
        "tune",
        help="choose a machine shape + runtime-knob configuration for one "
        "workload: Theorem 2/3 analytic pruning, then measured wall-clock "
        "probes; writes a reusable tuned-profile JSON",
    )
    p.add_argument(
        "--op",
        choices=["sort", "permute", "transpose"],
        default="sort",
        help="workload operation to tune for (default: sort)",
    )
    p.add_argument(
        "--n", type=int, default=1 << 16,
        help="target problem size in items (default: 65536, the fig5 "
        "group-A scale)",
    )
    p.add_argument("--p", type=int, default=1, help="real processors")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--out",
        default="tuned_profile.json",
        metavar="PROFILE.json",
        help="where to write the tuned profile (default: tuned_profile.json)",
    )
    p.add_argument(
        "--probe-n",
        type=int,
        default=None,
        metavar="N",
        help="probe problem size (default: min(n, 16384))",
    )
    p.add_argument(
        "--reps", type=int, default=2, help="probe repetitions, best-of (default 2)"
    )
    p.add_argument(
        "--top-k",
        type=int,
        default=4,
        help="candidates kept after analytic pruning (default 4)",
    )
    p.add_argument(
        "--json", action="store_true", help="print the profile document as JSON"
    )
    p.add_argument(
        "--list-knobs",
        action="store_true",
        help="print the registry of every REPRO_* knob and exit",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the tuner's decision events (tune_begin/tune_probe/"
        "tune_end) to PATH",
    )
    p.add_argument(
        "--trace-format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help=argparse.SUPPRESS,
    )
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser(
        "bench",
        help="run benchmark suites headlessly (writes BENCH_<suite>.json) "
        "or gate two result files with --compare",
    )
    p.add_argument(
        "suites",
        nargs="*",
        help="suite names (see --list) or 'all' (default)",
    )
    p.add_argument("--list", action="store_true", help="list available suites")
    p.add_argument(
        "--out", default="bench_out", help="directory for BENCH_*.json artifacts"
    )
    p.add_argument("--benchmarks-dir", default=None, help="override benchmarks/ path")
    p.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        help="regression gate: compare a new BENCH json against a baseline",
    )
    p.add_argument(
        "--io-rtol",
        type=float,
        default=0.0,
        help="relative tolerance on measured counters (default 0 = exact)",
    )
    p.add_argument(
        "--time-rtol",
        type=float,
        default=0.5,
        help="relative tolerance on timings (default 0.5)",
    )
    p.add_argument(
        "--ignore-timings",
        action="store_true",
        help="skip timing comparisons (cross-machine gating)",
    )
    p.add_argument(
        "--timing-floor",
        type=float,
        default=None,
        metavar="RTOL",
        help="one-sided timing gate for higher-is-better metrics (speedup "
        "ratios): fail only when new < old*(1-RTOL); improvements always pass",
    )
    p.set_defaults(fn=cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    fn = getattr(args, "fn", None)
    if fn is None:
        # unreachable with required=True, but argparse quirks (e.g. a bare
        # abbreviation match) must not fall through to an AttributeError
        parser.print_usage(sys.stderr)
        return 2
    if getattr(args, "command", None) == "cc" and args.edges is None:
        args.edges = 2 * args.n
    try:
        if getattr(args, "arena", None) is not None:
            # written to the environment so the workers backend's processes
            # inherit the same storage selection
            fastpath.set_arena_kind(args.arena)
        if getattr(args, "transport", None) is not None:
            from repro.tune.knobs import set_env

            set_env("REPRO_TRANSPORT", args.transport)
        if getattr(args, "nodes", None) is not None:
            from repro.tune.knobs import set_env

            set_env("REPRO_NODES", args.nodes)
        _apply_profile(args)
        return fn(args)
    except KnobError as exc:
        # a malformed REPRO_* value (or profile entry) is a usage error:
        # one line naming the variable, exit code 2, never a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (SimulationError, ConfigurationError) as exc:
        # configuration mistakes (bad fault plan, --resume without a
        # snapshot, refused corrupt checkpoint) and simulation failures
        # (exhausted retries, dead workers) exit non-zero with the
        # message, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
