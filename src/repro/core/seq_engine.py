"""Algorithm 2 — SeqCompoundSuperstep (single-processor EM simulation).

The implementation lives in :mod:`repro.core.par_engine`:
:class:`SeqEMEngine` is the p=1 specialization of Algorithm 3's machinery
(no network, one real compound superstep per CGM round).  This module
re-exports it under the name the paper's structure suggests.
"""

from repro.core.par_engine import SeqEMEngine

__all__ = ["SeqEMEngine"]
