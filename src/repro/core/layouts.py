"""Disk layouts: consecutive format, the staggered message matrix (Fig. 2).

Definitions from the paper's appendix (6.9):

* **Consecutive format** — block ``q`` of a run goes to disk
  ``(d + q) mod D`` on track ``T0 + (d + q) // D``.  Reading or writing a
  run of ``n`` blocks therefore costs ``ceil(n / D)`` fully parallel I/Os.

* **Staggered message matrix** — the messages of one communication
  superstep are stored in per-destination *bands* of parallel tracks.
  With ``b'`` blocks reserved per message slot, the message from virtual
  processor ``i`` to virtual processor ``j`` starts at linear offset
  ``i * b'`` inside band ``j``, whose disk offset is ``d_j = (j*b') mod D``
  and track base ``T_j = base + j * band_height``.  Block ``q`` of
  ``msg_ij`` lands on disk ``(d_j + i*b' + q) mod D`` at track
  ``T_j + (d_j + i*b' + q) // D``.  The stagger makes the *writes of one
  source across consecutive destinations* land on distinct disks, and the
  *reads of one destination across sources* consecutive — both fully
  parallel.

Two copies of the matrix alternate between supersteps (the engines' analog
of Observation 2's format alternation): messages of round r are written
into band-set ``r mod 2`` while the messages of round r-1 are read from
band-set ``(r-1) mod 2``.
"""

from __future__ import annotations

import bisect

import numpy as np


def consecutive_addresses(
    nblocks: int, D: int, start_track: int, start_disk: int = 0
) -> list[tuple[int, int]]:
    """(disk, track) addresses of an ``nblocks``-run in consecutive format."""
    out = []
    for q in range(nblocks):
        lin = start_disk + q
        out.append((lin % D, start_track + lin // D))
    return out


def consecutive_addresses_np(
    nblocks: int, D: int, start_track: int, start_disk: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`consecutive_addresses`: ``(disks, tracks)`` arrays.

    Same index math as the per-q loop, evaluated once over an arange; the
    fast path feeds these straight into
    :meth:`~repro.pdm.disk_array.DiskArray.write_run` / ``read_run``.
    """
    lin = start_disk + np.arange(nblocks, dtype=np.int64)
    return lin % D, start_track + lin // D


class MessageMatrix:
    """Address calculator for the staggered message layout.

    Pure geometry — it owns no disk; the engines combine its addresses
    with :meth:`repro.pdm.disk_array.DiskArray.write_blocks`, whose FIFO
    conflict rule reproduces the paper's DiskWrite procedure.
    """

    def __init__(
        self,
        n_src: int,
        n_dest: int,
        D: int,
        slot_blocks: int,
        base_track: int = 0,
    ) -> None:
        if slot_blocks < 1:
            raise ValueError("message slot must hold at least one block")
        self.n_src = n_src        #: sources with a slot in every band (v)
        self.n_dest = n_dest      #: destination bands (v, or v/p per real proc)
        self.D = D
        self.slot_blocks = slot_blocks
        self.base_track = base_track
        # highest linear index inside a band: (D-1) + n_src*b' - 1
        self.band_height = ((D - 1) + n_src * slot_blocks - 1) // D + 1

    @property
    def tracks_per_copy(self) -> int:
        """Track span of one full matrix (n_dest destination bands)."""
        return self.n_dest * self.band_height

    def copy_base(self, parity: int) -> int:
        """Track base of matrix copy 0 or 1 (alternating supersteps)."""
        return self.base_track + (parity % 2) * self.tracks_per_copy

    def message_addresses(
        self, src: int, dest: int, nblocks: int, parity: int
    ) -> list[tuple[int, int]]:
        """(disk, track) addresses for blocks 0..nblocks-1 of msg_{src,dest}."""
        if nblocks > self.slot_blocks:
            raise ValueError(
                f"message of {nblocks} blocks exceeds slot of {self.slot_blocks}"
            )
        d_j = (dest * self.slot_blocks) % self.D
        T_j = self.copy_base(parity) + dest * self.band_height
        out = []
        for q in range(nblocks):
            lin = d_j + src * self.slot_blocks + q
            out.append((lin % self.D, T_j + lin // self.D))
        return out

    def message_addresses_np(
        self, src: int, dest: int, nblocks: int, parity: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`message_addresses`: ``(disks, tracks)`` arrays."""
        if nblocks > self.slot_blocks:
            raise ValueError(
                f"message of {nblocks} blocks exceeds slot of {self.slot_blocks}"
            )
        d_j = (dest * self.slot_blocks) % self.D
        T_j = self.copy_base(parity) + dest * self.band_height
        lin = d_j + src * self.slot_blocks + np.arange(nblocks, dtype=np.int64)
        return lin % self.D, T_j + lin // self.D

    def inbox_addresses_np(
        self, dest: int, blocks_by_src: list[tuple[int, int]], parity: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`inbox_addresses` for a whole inbox at once.

        One linear-offset array covers every slot: offsets are the
        concatenated per-source aranges built with the repeat/cumsum trick,
        so no Python loop runs per block.
        """
        if not blocks_by_src:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        d_j = (dest * self.slot_blocks) % self.D
        T_j = self.copy_base(parity) + dest * self.band_height
        srcs = np.asarray([s for s, _ in blocks_by_src], dtype=np.int64)
        counts = np.asarray([n for _, n in blocks_by_src], dtype=np.int64)
        if int(counts.max(initial=0)) > self.slot_blocks:
            bad = int(counts[counts > self.slot_blocks][0])
            raise ValueError(
                f"message of {bad} blocks exceeds slot of {self.slot_blocks}"
            )
        total = int(counts.sum())
        starts = d_j + srcs * self.slot_blocks
        ends = np.cumsum(counts)
        # within-slot block index q for every output position
        q = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
        lin = np.repeat(starts, counts) + q
        return lin % self.D, T_j + lin // self.D

    def inbox_addresses(
        self, dest: int, blocks_by_src: list[tuple[int, int]], parity: int
    ) -> list[tuple[int, int]]:
        """Read addresses for a destination's whole inbox.

        *blocks_by_src* is a list of ``(src, nblocks)`` in the order the
        engine wants the blocks back (ascending src gives the consecutive,
        fully parallel read of the paper).
        """
        out: list[tuple[int, int]] = []
        for src, nblocks in blocks_by_src:
            out.extend(self.message_addresses(src, dest, nblocks, parity))
        return out

    def end_track(self) -> int:
        """First track above both matrix copies (for dynamic allocation)."""
        return self.base_track + 2 * self.tracks_per_copy


class RegionAllocator:
    """Track allocator for context regions and overflow runs, with reuse.

    Contexts change size between rounds; a virtual processor keeps its
    region until it outgrows it, then gets a fresh, larger one (the old
    tracks are freed on the simulated disks *and* returned here).
    Allocation is in whole track-rows (all D disks), so consecutive-format
    runs inside a region are always fully parallel.

    Freed regions go to a free list, adjacent free regions coalesce, and a
    free region touching the cursor retracts it — so long-running programs
    whose contexts grow (or that spill overflow runs every superstep) keep
    a bounded simulated-disk footprint instead of leaking rows forever.
    Allocation is deterministic best-fit: the smallest adequate free
    region, ties broken by lowest start track.
    """

    def __init__(self, D: int, first_track: int) -> None:
        self.D = D
        self._base = first_track
        self._cursor = first_track
        #: free regions as (start_track, rows), sorted by start, disjoint,
        #: coalesced, and never touching the cursor.
        self._free: list[tuple[int, int]] = []

    def rows_for(self, nblocks: int) -> int:
        """Track-rows needed to hold *nblocks* blocks over D disks."""
        return max(1, -(-nblocks // self.D))

    def alloc(self, nblocks: int) -> tuple[int, int]:
        """Reserve rows for *nblocks* blocks; returns (start_track, rows)."""
        rows = self.rows_for(nblocks)
        best = -1
        for i, (fstart, frows) in enumerate(self._free):
            if frows < rows:
                continue
            if best < 0 or (frows, fstart) < (
                self._free[best][1],
                self._free[best][0],
            ):
                best = i
        if best >= 0:
            fstart, frows = self._free[best]
            if frows > rows:
                self._free[best] = (fstart + rows, frows - rows)
            else:
                del self._free[best]
            return fstart, rows
        start = self._cursor
        self._cursor += rows
        return start, rows

    def free(self, start_track: int, rows: int) -> None:
        """Return a region obtained from :meth:`alloc` to the free list."""
        if rows <= 0:
            return
        regions = self._free
        i = bisect.bisect_left(regions, (start_track, rows))
        regions.insert(i, (start_track, rows))
        # coalesce with the right then the left neighbour
        if i + 1 < len(regions) and regions[i][0] + regions[i][1] == regions[i + 1][0]:
            regions[i] = (regions[i][0], regions[i][1] + regions[i + 1][1])
            del regions[i + 1]
        if i > 0 and regions[i - 1][0] + regions[i - 1][1] == regions[i][0]:
            regions[i - 1] = (regions[i - 1][0], regions[i - 1][1] + regions[i][1])
            del regions[i]
            i -= 1
        # a free region ending at the cursor retracts it
        if regions and regions[-1][0] + regions[-1][1] == self._cursor:
            self._cursor = regions[-1][0]
            regions.pop()

    @property
    def free_rows(self) -> int:
        """Rows currently on the free list (reusable without growing)."""
        return sum(rows for _start, rows in self._free)

    @property
    def high_water_track(self) -> int:
        return self._cursor
