"""The EM cost model's optimality notions (paper appendix 6.4).

Definition 1: for optimal sequential time T(N) and an EM algorithm A* on p
processors,

* phi = computation time of A* / (T(N)/p)   — must be c + o(1),
* xi  = communication time / (T(N)/p)       — must be o(1),
* eta = I/O time / (T(N)/p)                 — must be o(1)

for *c-optimality*; *work-optimal / communication-efficient /
I/O-efficient* relax the o(1) terms to O(1).  Asymptotics cannot be
checked on one run, so :func:`assess` evaluates the ratios at a given N
and :func:`trend` fits how each ratio scales across a sweep of N — a
decreasing (or flat) fitted exponent is the empirical signature of the
o(1) (resp. O(1)) requirement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.cgm.metrics import CostReport


@dataclass(frozen=True)
class OptimalityAssessment:
    """The three Definition-1 ratios at one problem size."""

    phi: float   #: computation / (T_seq / p)
    xi: float    #: communication / (T_seq / p)
    eta: float   #: I/O / (T_seq / p)
    c: float     #: phi itself — the achieved constant

    def is_c_optimal(self, c: float, slack: float = 0.25) -> bool:
        """phi <= c (1+slack), xi and eta small relative to computation."""
        return (
            self.phi <= c * (1 + slack)
            and self.xi <= slack * max(1.0, self.phi)
            and self.eta <= slack * max(1.0, self.phi)
        )

    def is_work_optimal(self, c_cap: float = 16.0) -> bool:
        return self.phi <= c_cap

    def is_io_efficient(self, cap: float = 4.0) -> bool:
        return self.eta <= cap * max(1.0, self.phi)

    def is_communication_efficient(self, cap: float = 4.0) -> bool:
        return self.xi <= cap * max(1.0, self.phi)


def assess(
    report: CostReport,
    seq_time: float,
    p: int,
    g: float,
    G: float,
) -> OptimalityAssessment:
    """Evaluate Definition 1's ratios for one run.

    *seq_time* is the optimal sequential cost T(N) in the same units as
    the report's modeled times (use a calibrated per-item cost for
    analytic T(N), or measure the sequential algorithm's wall time).
    """
    base = seq_time / p
    if base <= 0:
        raise ValueError("sequential reference time must be positive")
    phi = report.comp_wall_s / base
    xi = report.t_comm(g) / base
    eta = report.t_io(G) / base
    return OptimalityAssessment(phi=phi, xi=xi, eta=eta, c=phi)


def trend(
    Ns: Sequence[int],
    ratios: Sequence[float],
) -> float:
    """Fitted exponent alpha of ratio ~ N^alpha (least squares in log-log).

    alpha <= 0 is the empirical signature of an o(1)/O(1) ratio; alpha > 0
    means the term grows with N and the optimality claim fails.
    """
    if len(Ns) != len(ratios) or len(Ns) < 2:
        raise ValueError("need at least two (N, ratio) pairs")
    xs = [math.log(n) for n in Ns]
    ys = [math.log(max(r, 1e-12)) for r in ratios]
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    denom = sum((x - mx) ** 2 for x in xs)
    if denom == 0:
        return 0.0
    return sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / denom


def sequential_sort_time(N: int, per_item_s: float = 5e-8) -> float:
    """Analytic T(N) = N log2 N for sorting, scaled by a per-item constant."""
    return per_item_s * N * max(1.0, math.log2(max(2, N)))


def sequential_linear_time(N: int, per_item_s: float = 5e-8) -> float:
    """Analytic T(N) = N for linear-time problems (permutation, transpose)."""
    return per_item_s * N
