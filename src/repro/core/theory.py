"""PDM lower bounds and the paper's parameter-space analysis (§1.2, §1.4).

The apparent contradiction the paper resolves: the classic PDM sorting
bound Theta((N/DB) * log_{M/B}(N/B)) holds over *arbitrary* parameter
ranges, but in the coarse-grained regime (M = N/v with modest v) the
log_{M/B}(N/B) term is bounded by a constant c.  Concretely

    (M/B)^c >= N/B   with M = N/v     <=>    N^(c-1) >= v^c * B^(c-1),

which is the surface plotted in Figures 6 and 7.  This module provides the
bounds, the log-term, and the surface so the benchmarks can regenerate
those figures and check measured I/O counts against theory.
"""

from __future__ import annotations

import math

import numpy as np


# -------------------------------------------------------------------- bounds


def log_term(N: int, M: int, B: int) -> float:
    """The ubiquitous log_{M/B}(N/B) factor (>= 1)."""
    if M <= B:
        return math.inf
    return max(1.0, math.log(N / B) / math.log(M / B))


def sort_lower_bound_ios(N: int, M: int, B: int, D: int) -> float:
    """Aggarwal–Vitter: Theta((N/DB) log_{M/B}(N/B)) I/Os for sorting."""
    return (N / (D * B)) * log_term(N, M, B)


def permutation_lower_bound_ios(N: int, M: int, B: int, D: int) -> float:
    """Theta(min(N/D, (N/DB) log_{M/B}(N/B))) I/Os for permutation."""
    return min(N / D, sort_lower_bound_ios(N, M, B, D))


def transpose_lower_bound_ios(N: int, k: int, ell: int, M: int, B: int, D: int) -> float:
    """Theta((N/DB) log_{M/B} min(M, k, ell, N/B)) I/Os for k x ell transpose."""
    if M <= B:
        return math.inf
    inner = min(M, k, ell, N / B)
    factor = max(1.0, math.log(max(2.0, inner)) / math.log(M / B))
    return (N / (D * B)) * factor

def comparison_lower_bound_ios(N: int, B: int, D: int = 1) -> float:
    """Arge et al.: Omega((N/B) log(N/B)) I/Os for Omega(N log N)-comparison
    problems (per disk; divide by D for the parallel version)."""
    return (N / (B * D)) * max(1.0, math.log2(max(2.0, N / B)))


def em_cgm_sort_ios(N: int, p: int, D: int, B: int) -> float:
    """The paper's headline: O(N/(pDB)) I/Os for sorting (Theorem 4)."""
    return N / (p * D * B)


# -------------------------------------------------------- log-term analysis


def log_term_bound_c(N: int, v: int, B: int) -> float:
    """Smallest c with (M/B)^c >= N/B when M = N/v.

    This is the constant that replaces the log factor in the coarse
    grained regime; the paper's examples: c = 2 for v = 10^4 needs
    N ~ 100 giga-items, c = 3 needs only ~1 giga-item.
    """
    M = N / v
    if M <= B:
        return math.inf
    return max(1.0, math.log(N / B) / math.log(M / B))


def min_problem_size(v: float, B: float, c: float) -> float:
    """The Figure 6 surface: smallest N with N^(c-1) = v^c * B^(c-1).

    Points (N, v, B) on or above the surface admit log-term <= c.
    """
    if c <= 1:
        return math.inf
    return (v ** (c / (c - 1.0))) * B


def constraint_surface(
    v_values: np.ndarray, B_values: np.ndarray, c: float
) -> np.ndarray:
    """Grid of minimum problem sizes over (v, B) — Figure 6's surface."""
    vv, bb = np.meshgrid(np.asarray(v_values, float), np.asarray(B_values, float))
    return (vv ** (c / (c - 1.0))) * bb


def fig7_slice(v_values: np.ndarray, B: float = 1e3, c: float = 2.0) -> np.ndarray:
    """Figure 7: minimum N vs v for fixed c and B (paper fixes B ~ 10^3)."""
    v = np.asarray(v_values, float)
    return (v ** (c / (c - 1.0))) * B


# ------------------------------------------------- simulation cost predictions


def predicted_context_blocks(mu_items: int, B: int) -> int:
    return -(-mu_items // B)


def predicted_parallel_ios(
    v: int,
    p: int,
    D: int,
    B: int,
    rounds: int,
    mu_items: int,
    h_items: int,
) -> float:
    """Theorem 3's I/O count: (v/p) * lambda * O((mu + h)/(DB)).

    Per simulated virtual processor and round: read + write its context
    (2 * ceil(mu/B) blocks) and read + write its message traffic
    (2 * ceil(h/B) blocks), all fully D-parallel.
    """
    ctx_blocks = 2 * predicted_context_blocks(mu_items, B)
    msg_blocks = 2 * predicted_context_blocks(h_items, B)
    per_vproc_ios = -(-ctx_blocks // D) + -(-msg_blocks // D)
    return rounds * (v / p) * per_vproc_ios


def speedup_vs_pdm_sort(N: int, v: int, p: int, D: int, B: int) -> float:
    """Predicted I/O-count ratio: classical PDM sort / EM-CGM sort.

    With M = N/v this is Theta(log_{M/B}(N/B) / constant) — the factor the
    coarse-grained regime saves.
    """
    M = max(B + 1, N // v)
    return sort_lower_bound_ios(N, M, B, D) / em_cgm_sort_ios(N, p, D, B)
