"""Algorithm 1 — BalancedRouting — and its Theorem 1 guarantees.

A CGM communication round is an h-relation, but nothing bounds the size of
*individual* messages; the staggered disk layout needs fixed-size slots and
blocked I/O needs messages of Omega(B) items.  BalancedRouting fixes this
deterministically in two rounds:

* **Superstep A** — each source processor ``i`` cuts every outgoing message
  ``msg_ij`` into words and deals word ``l`` of ``msg_ij`` into local bin
  ``(i + j + l) mod v``; bin ``b`` is sent to intermediate processor ``b``.
* **Superstep B** — each intermediate processor regroups the chunks it
  received by final destination and forwards them.

Theorem 1: both rounds' messages have sizes within
``[h/v - (v-1)/2, h/v + (v-1)/2]`` where ``h`` is the h-relation bound.

This module implements the transform at the word (8-byte item) level over
*serialized* payloads, so it works for arbitrary message contents and the
engines can run any CGM program in balanced mode.  Pure size-arithmetic
helpers (used by property tests and the Theorem 1 bench) are provided
alongside.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.cgm.message import Message
from repro.util.items import ITEM_BYTES, deserialize, serialize

#: tag marking engine-internal balanced-routing traffic.
CHUNK_TAG = "__balanced_chunk__"


@dataclass
class Chunk:
    """A word-interleaved slice of one original message.

    Words ``l`` of the original message with ``l % v == first % v`` —
    i.e. the strided slice ``words[first::v]`` — plus the metadata needed
    to reassemble: originating processor, per-source message sequence
    number, total word count and exact byte length of the serialized
    payload, the application tag, and the original h-relation charge
    (``size_items``) so the rebuilt message charges the same as the
    direct-routed one.
    """

    src: int
    fdest: int
    msg_seq: int
    first: int
    stride: int
    total_words: int
    nbytes: int
    tag: str | None
    size_items: int
    words: np.ndarray  # uint64, the strided slice

    @property
    def n_words(self) -> int:
        return int(self.words.size)


def _payload_to_words(payload: object) -> tuple[np.ndarray, int]:
    """Serialize *payload* and view it as uint64 words (zero-padded)."""
    raw = serialize(payload)
    nbytes = len(raw)
    padded = raw.ljust(-(-nbytes // ITEM_BYTES) * ITEM_BYTES, b"\x00")
    return np.frombuffer(padded, dtype=np.uint64), nbytes


def _words_to_payload(words: np.ndarray, nbytes: int) -> object:
    return deserialize(words.tobytes()[:nbytes])


def split_phase_a(outbox: list[Message], v: int) -> list[Message]:
    """Superstep A: deal each message's words into v round-robin bins.

    Returns one Message per non-empty bin, addressed to the intermediate
    processor; its payload is the list of chunks bound for that bin.
    """
    bins: dict[int, list[Chunk]] = defaultdict(list)
    for seq, m in enumerate(outbox):
        words, nbytes = _payload_to_words(m.payload)
        total = int(words.size)
        i, j = m.src, m.dest
        # All v strided slices words[first::v] in one pass: pad to a
        # multiple of v, then column `first` of the (k, v) view is exactly
        # that slice.  One contiguous transpose copy replaces v strided
        # copies; values are bit-identical to the slice-per-bin loop.
        if total:
            k = -(-total // v)
            padded = np.empty(k * v, dtype=np.uint64)
            padded[:total] = words
            padded[total:] = 0
            cols = np.ascontiguousarray(padded.reshape(k, v).T)
        for b in range(v):
            # words l with (i + j + l) % v == b  <=>  l % v == (b - i - j) % v
            first = (b - i - j) % v
            n_piece = (total - first + v - 1) // v if total > first else 0
            if n_piece == 0 and total > 0:
                continue
            piece = cols[first, :n_piece] if total else words[first::v].copy()
            bins[b].append(
                Chunk(
                    i, j, seq, first, v, total, nbytes, m.tag,
                    m.size_items, piece,
                )
            )
    out: list[Message] = []
    for b, chunks in sorted(bins.items()):
        size = sum(c.n_words for c in chunks)
        out.append(
            Message(
                src=chunks[0].src,
                dest=b,
                payload=chunks,
                tag=CHUNK_TAG,
                size_items=max(1, size),
            )
        )
    return out


def regroup_phase_b(received: list[Message], me: int | None = None) -> list[Message]:
    """Superstep B: regroup chunks by final destination and forward.

    *received* are the phase-A messages that arrived at one intermediate
    processor; the result is one message per final destination.  *me* is
    that intermediate processor's pid — the source of every forwarded
    message.  When omitted it is taken from the received messages'
    destination field, which is only possible for a non-empty *received*;
    an empty input simply forwards nothing.
    """
    if not received:
        return []
    by_fdest: dict[int, list[Chunk]] = defaultdict(list)
    for m in received:
        if m.tag != CHUNK_TAG:
            raise ValueError("regroup_phase_b fed a non-chunk message")
        if me is None:
            me = m.dest
        elif m.dest != me:
            raise ValueError(
                f"regroup_phase_b fed chunk traffic for processor {m.dest} "
                f"while regrouping at processor {me}"
            )
        for c in m.payload:
            by_fdest[c.fdest].append(c)
    out: list[Message] = []
    for k, chunks in sorted(by_fdest.items()):
        size = sum(c.n_words for c in chunks)
        out.append(
            Message(src=me, dest=k, payload=chunks, tag=CHUNK_TAG, size_items=max(1, size))
        )
    return out


def reassemble(inbox: list[Message]) -> list[Message]:
    """Final destination: reconstruct the original messages from chunks.

    Non-chunk messages pass through untouched, so engines can mix balanced
    and direct traffic.
    """
    passthrough = [m for m in inbox if m.tag != CHUNK_TAG]
    groups: dict[tuple[int, int], list[Chunk]] = defaultdict(list)
    for m in inbox:
        if m.tag != CHUNK_TAG:
            continue
        for c in m.payload:
            groups[(c.src, c.msg_seq)].append(c)
    rebuilt: list[Message] = []
    for (src, _seq), chunks in sorted(groups.items()):
        # each group carries its own destination and original h-relation
        # charge; other groups in the same inbox must not bleed into it
        ref = chunks[0]
        words = np.zeros(ref.total_words, dtype=np.uint64)
        for c in chunks:
            words[c.first :: c.stride] = c.words
        payload = _words_to_payload(words, ref.nbytes)
        rebuilt.append(Message(src, ref.fdest, payload, ref.tag, ref.size_items))
    return passthrough + rebuilt


# --------------------------------------------------------------------------
# Pure size arithmetic — Theorem 1, Lemma 1, Lemma 2
# --------------------------------------------------------------------------


def phase_a_bin_sizes(msg_lengths: np.ndarray, src: int) -> np.ndarray:
    """Bin sizes produced at *src* by Superstep A's round-robin dealing.

    *msg_lengths[j]* is the word length of ``msg_{src,j}``.  Returns an
    array of v bin sizes.  This is exact — the same arithmetic the chunk
    splitter performs — and is what the hypothesis tests check Theorem 1
    against.
    """
    v = len(msg_lengths)
    lengths = np.asarray(msg_lengths, dtype=np.int64)
    rem = lengths % v
    # every bin gets floor(length_j / v) words from message j; the first
    # rem_j bins in dealing order — (src + j + 0..rem_j-1) mod v — get one
    # extra.  Bin b's dealing-order offset for message j is
    # (b - src - j) mod v, so the extra lands iff that offset < rem_j.
    offsets = (
        np.arange(v, dtype=np.int64)[None, :]
        - src
        - np.arange(v, dtype=np.int64)[:, None]
    ) % v
    return (lengths // v).sum() + (offsets < rem[:, None]).sum(axis=0)


def balanced_message_bounds(h: int, v: int) -> tuple[float, float]:
    """Theorem 1: [min, max] message size of both balanced rounds."""
    lo = h / v - (v - 1) / 2
    hi = h / v + (v - 1) / 2
    return lo, hi


def lemma1_min_problem_size(v: int, b_min: int) -> int:
    """Lemma 1: smallest N guaranteeing minimum message size *b_min*."""
    return v * v * b_min + (v * v * (v - 1)) // 2


def lemma2_feasible(N: int, v: int, B: int) -> bool:
    """Lemma 2's precondition: N >= v^2 B + v^2 (v-1) / 2."""
    return N >= v * v * B + (v * v * (v - 1)) // 2
