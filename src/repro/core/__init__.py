"""The paper's contribution: deterministic CGM -> EM-CGM simulation.

* :mod:`repro.core.balanced` — Algorithm 1 (BalancedRouting) and the
  Theorem 1 / Lemma 1 / Lemma 2 bounds;
* :mod:`repro.core.layouts` — consecutive and staggered disk formats
  (Figure 2) and the DiskWrite FIFO scheduler;
* :mod:`repro.core.seq_engine` — Algorithm 2 (SeqCompoundSuperstep):
  single-processor external-memory simulation;
* :mod:`repro.core.par_engine` — Algorithm 3 (ParCompoundSuperstep):
  p-processor external-memory simulation;
* :mod:`repro.core.vm_engine` — the Figure 3 virtual-memory baseline;
* :mod:`repro.core.optimality` — c-optimality / work-optimality /
  I/O-efficiency predicates (appendix 6.4);
* :mod:`repro.core.theory` — PDM lower bounds and the Figure 6/7
  parameter-space analysis.
"""

from repro.core.balanced import (
    balanced_message_bounds,
    lemma1_min_problem_size,
    lemma2_feasible,
    reassemble,
    regroup_phase_b,
    split_phase_a,
)
from repro.core.par_engine import ParEMEngine
from repro.core.seq_engine import SeqEMEngine
from repro.core.vm_engine import VMEngine

__all__ = [
    "balanced_message_bounds",
    "lemma1_min_problem_size",
    "lemma2_feasible",
    "reassemble",
    "regroup_phase_b",
    "split_phase_a",
    "ParEMEngine",
    "SeqEMEngine",
    "VMEngine",
]
