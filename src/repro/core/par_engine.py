"""Algorithm 3 — ParCompoundSuperstep — the p-processor EM simulation.

Each of the ``p`` real processors owns a :class:`DiskArray` of ``D`` disks
and ``M`` items of internal memory and simulates ``v/p`` virtual
processors.  One CGM compound superstep becomes ``v/p`` real compound
supersteps (Lemma 4's superstep blow-up): for each locally simulated
virtual processor the engine

(a) reads its context from the local disks (consecutive format),
(b) reads its incoming message blocks from the local disks,
(c) runs the program's round callback,
(d) routes generated messages to the destination's *real* processor —
    traffic whose source and destination real processors differ is charged
    to the network at ``g`` per item — where they are written to the
    destination's disks in the staggered format of Figure 2, and
(e) writes the (possibly changed) context back (consecutive format).

Messages larger than the staggered layout's fixed slot (possible only for
unbalanced programs that underestimate ``max_message_items``) spill into a
consecutive-format *overflow run*; the spilled blocks are counted in
``CostReport.overflow_blocks`` so benchmarks can verify the balanced mode
eliminates them.

All cost accounting is per-real-processor with per-superstep maxima, so
the reported parallel times are what a true p-machine would exhibit.  By
default the simulation runs in one interpreter loop; with
``cfg.workers > 1`` the :mod:`repro.core.workers` backend runs each real
processor's share in its own OS process and merges the per-worker
counters back into an identical :class:`CostReport`.
"""

from __future__ import annotations

import numpy as np

from repro.cgm.config import MachineConfig
from repro.cgm.engine import Engine
from repro.cgm.message import Message
from repro.cgm.metrics import CostReport
from repro.cgm.program import CGMProgram, Context
from repro.core.layouts import (
    MessageMatrix,
    RegionAllocator,
    consecutive_addresses,
    consecutive_addresses_np,
)
from repro.faults.injector import FaultyDiskArray, collect_fault_stats, emit_fault_metrics
from repro.pdm.block import blocks_for_bytes, pack_blocks, unpack_blocks
from repro.pdm.disk_array import DiskArray
from repro.pdm.fastpath import BlockRun, BufferPool
from repro.pdm.io_stats import IOStats
from repro.pdm.pipeline import DoubleBufferedReader
from repro.pdm.memory import InternalMemory
from repro.util.items import ITEM_BYTES, deserialize, serialize
from repro.util.validation import require

#: serialization envelope allowance when converting an item bound to blocks.
_SLOT_OVERHEAD_BYTES = 256


class _MetaEntry:
    """In-memory record of one on-disk message (the v^2-size 'message
    matrix directory' the paper keeps in internal memory).

    ``parts`` lists the (tag, size_items) of each application message
    coalesced into this physical slot message — the paper's model has one
    message per (src, dest) pair per superstep (msg_ij), so when a program
    sends several to one destination they share the slot as a bundle.
    """

    __slots__ = ("src", "nblocks", "parts", "overflow")

    def __init__(self, src, nblocks, parts, overflow):
        self.src = src
        self.nblocks = nblocks
        self.parts = parts  # list[(tag, size_items)]
        self.overflow = overflow  # None, or explicit [(disk, track)] addresses


class ParEMEngine(Engine):
    """p-processor external-memory backend (Algorithm 3)."""

    name = "par-em"
    supports_checkpoint = True
    supports_faults = True

    # ----------------------------------------------------------------- set-up

    def _start(self, program: CGMProgram) -> None:
        cfg = self.cfg
        self.vpr = cfg.vprocs_per_real

        slot_items = self._max_message_items
        envelope = _SLOT_OVERHEAD_BYTES
        if self.balanced:
            # Lemma 2: balanced messages carry at most ~2N/v^2 words, but
            # a chunk bundle adds per-chunk metadata (one chunk per
            # original message routed through the bin)
            slot_items = max(slot_items, cfg.max_balanced_message_items)
            envelope += (cfg.v + 4) * 160
        max_msg_bytes = slot_items * ITEM_BYTES + envelope
        self.slot_blocks = max(1, -(-max_msg_bytes // (cfg.B * ITEM_BYTES)))

        # per-run knob snapshot: Engine.run() resolves it before _start;
        # the workers backend ships the coordinator's snapshot instead
        # (see repro.core.workers), so one run can never see two values
        if self._rt is None:
            from repro.tune.runtime import current

            self._rt = current()
        rt = self._rt
        # the vectorized fast path services whole runs as single NumPy
        # gather/scatters; fault plans need per-op injection, so they pin
        # the reference path (REPRO_FASTPATH=0 selects it explicitly).
        # In ``auto`` mode _begin_superstep dispatches per round by the
        # scheduled context-block count (granularity control); storage
        # stays arena-backed so both paths address the same bytes.
        self._fastpath_mode = rt.fastpath_mode if self.faults is None else "off"
        self._auto_blocks = rt.fastpath_auto_blocks
        self._fastpath = self._fastpath_mode != "off"
        self._prefetch_on = self._fastpath and rt.prefetch
        self._block_bytes = cfg.B * ITEM_BYTES
        self._iopool = BufferPool()
        self._prefetch: DoubleBufferedReader | None = None

        # storage is keyed by real-processor id so a worker process can
        # instantiate only the reals it owns (see repro.core.workers)
        reals = list(self._storage_reals())
        self.arrays = {r: self._make_array(r) for r in reals}
        self.memories = {r: InternalMemory(cfg.M, strict=False) for r in reals}
        self.matrices = {
            r: MessageMatrix(cfg.v, self.vpr, cfg.D, self.slot_blocks, base_track=0)
            for r in reals
        }
        self.allocators = {
            r: RegionAllocator(cfg.D, self.matrices[r].end_track()) for r in reals
        }

        v = cfg.v
        # context directory: pid -> (start_track, rows, nblocks)
        self._ctx_region: dict[int, tuple[int, int, int]] = {}
        # message directories for the two alternating matrix copies
        self._staged_meta: dict[int, list[_MetaEntry]] = {pid: [] for pid in range(v)}
        self._ready_meta: dict[int, list[_MetaEntry]] = {pid: [] for pid in range(v)}
        self._staged_parity = 0
        self._ready_parity = 1

        self._charged: dict[int, int] = {}
        self._ctx_blocks_io = 0
        self._msg_blocks_io = 0
        self._overflow_blocks = 0

    def _make_array(self, real: int) -> DiskArray:
        """The disk array of one real processor — fault-injected when a
        plan is active, plain otherwise (the zero-overhead fast path)."""
        cfg = self.cfg
        if self.faults is None:
            # the tracer rides along for storage-level telemetry (the
            # arena growth events of the out-of-core path); logical I/O
            # events stay at the engine layer
            return DiskArray(
                cfg.D, cfg.B, tracer=self.tracer, real=real, runtime=self._rt
            )
        return FaultyDiskArray(
            cfg.D, cfg.B, self.faults.injector_for(real), tracer=self.tracer, real=real
        )

    # ------------------------------------------------------------- ownership

    def _storage_reals(self) -> "range | list[int]":
        """Real processors whose disks/memory live in this interpreter."""
        return range(self.cfg.p)

    def _owner(self, pid: int) -> int:
        return pid // self.vpr

    def _local(self, pid: int) -> int:
        return pid % self.vpr

    # ------------------------------------------------------------- contexts

    def _begin_superstep(self, pids: "list[int]") -> None:
        """Start the double-buffered context prefetch for one round.

        The context directory fixes every pid's read addresses before the
        loop runs, and a pid's tracks are only rewritten by its *own*
        store (strictly after its load) — so the whole schedule can be
        submitted up front and gathered concurrently with compute.  See
        :mod:`repro.pdm.pipeline` for the determinism argument.
        """
        if self._fastpath_mode == "auto":
            # granularity control: the batched path's setup overhead only
            # pays off once a round schedules enough context blocks, so
            # dispatch each superstep by its scheduled volume.  Both paths
            # read/write the same arena-backed bytes with identical
            # logical accounting, so flipping between them is free.
            blocks = sum(
                self._ctx_region[pid][2] for pid in pids if pid in self._ctx_region
            )
            self._fastpath = blocks >= self._auto_blocks
        if not (self._fastpath and self._prefetch_on):
            return
        schedule = [pid for pid in pids if pid in self._ctx_region]
        if len(schedule) < 2:  # nothing to overlap
            return
        reader = DoubleBufferedReader()
        for pid in schedule:
            start, _rows, nblocks = self._ctx_region[pid]
            dd, tt = consecutive_addresses_np(nblocks, self.cfg.D, start)
            reader.submit(self.arrays[self._owner(pid)], dd, tt, key=pid)
        self._prefetch = reader
        self._prefetch_keys = set(schedule)

    def _end_superstep(self) -> None:
        reader = self._prefetch
        if reader is None:
            return
        self._prefetch = None
        reader.close()
        if self.tracer.enabled:
            # physical telemetry: how the speculative pipeline serviced
            # the round's context reads.  Counter *values* may vary run to
            # run (a gather racing storage growth degrades to a clean
            # miss), but one event per prefetched round is deterministic.
            self.tracer.emit(
                "prefetch",
                submitted=reader.submitted,
                hits=reader.hits,
                misses=reader.misses,
            )

    def _store_context(self, pid: int, ctx: Context) -> None:
        owner = self._owner(pid)
        array, alloc = self.arrays[owner], self.allocators[owner]
        if self._fastpath:
            raw = serialize(dict(ctx))
            blocks = None
            nblocks = blocks_for_bytes(len(raw), self.cfg.B)
        else:
            blocks = pack_blocks(serialize(dict(ctx)), self.cfg.B)
            nblocks = len(blocks)
        region = self._ctx_region.get(pid)
        if region is None or region[1] * self.cfg.D < nblocks:
            if region is not None:
                # free the outgrown region's tracks on disk and in the
                # allocator, so a later context can reuse the rows
                old = consecutive_addresses(region[2], self.cfg.D, region[0])
                array.free_blocks(old)
                alloc.free(region[0], region[1])
            start, rows = alloc.alloc(max(nblocks, 1))
            region = (start, rows, nblocks)
        else:
            region = (region[0], region[1], nblocks)
        self._ctx_region[pid] = region
        if blocks is None:
            dd, tt = consecutive_addresses_np(nblocks, self.cfg.D, region[0])
            array.write_run(dd, tt, BlockRun(raw, nblocks, self._block_bytes))
        else:
            addrs = consecutive_addresses(nblocks, self.cfg.D, region[0])
            array.write_blocks(
                list(zip((a for a, _ in addrs), (t for _, t in addrs), blocks))
            )
        self._ctx_blocks_io += nblocks
        self._charge(pid, nblocks * self.cfg.B)
        if self.tracer.enabled:
            self.tracer.emit(
                "context_write",
                pid=pid,
                real=owner,
                blocks=nblocks,
                layout="consecutive",
            )

    def _load_context(self, pid: int) -> Context:
        owner = self._owner(pid)
        array = self.arrays[owner]
        start, _rows, nblocks = self._ctx_region[pid]
        pre = (
            self._prefetch
            if self._prefetch is not None and pid in self._prefetch_keys
            else None
        )
        if pre is not None:
            self._prefetch_keys.discard(pid)
            flat, buf = pre.get(pid)
        elif self._fastpath:
            dd, tt = consecutive_addresses_np(nblocks, self.cfg.D, start)
            buf = self._iopool.take(nblocks * self._block_bytes)
            flat = array.read_run(dd, tt, out=buf)
        else:
            addrs = consecutive_addresses(nblocks, self.cfg.D, start)
            blocks = array.read_blocks(addrs)
        self._ctx_blocks_io += nblocks
        self._charge(pid, nblocks * self.cfg.B)
        if self.tracer.enabled:
            self.tracer.emit(
                "context_read",
                pid=pid,
                real=owner,
                blocks=nblocks,
                layout="consecutive",
            )
        if self._fastpath:
            # deserialize copies out of the buffer on both encodings, so
            # the pooled staging area can be reused immediately
            ctx = Context(deserialize(flat))
            if pre is not None:
                pre.release(buf)
            else:
                self._iopool.give(buf)
            return ctx
        return Context(deserialize(unpack_blocks(blocks)))

    # ------------------------------------------------------------- messages

    def _bundle_outbox(
        self, src_pid: int, msgs: list[Message]
    ) -> list[tuple[int, list, "list[bytes] | BlockRun"]]:
        """Coalesce an outbox into one serialized bundle per destination.

        One physical slot message per destination (the paper's msg_ij):
        several application messages to one destination share the slot.
        Returns ``(dest, parts, payload)`` triples in FIFO destination
        order — the payload a block list on the reference path, a
        zero-copy :class:`BlockRun` over the serialized bytes on the fast
        path.  Serialization buffers are charged to the *source* real
        processor's internal memory.
        """
        by_dest: dict[int, list[Message]] = {}
        for m in msgs:
            by_dest.setdefault(m.dest, []).append(m)
        bundles: list[tuple[int, list, "list[bytes] | BlockRun"]] = []
        for dest in sorted(by_dest):
            group = by_dest[dest]
            if len(group) == 1:
                payload_obj = group[0].payload
            else:
                payload_obj = [(m.tag, m.payload) for m in group]
            parts = [(m.tag, m.size_items) for m in group]
            payload: "list[bytes] | BlockRun"
            if self._fastpath:
                raw = serialize(payload_obj)
                nblocks = blocks_for_bytes(len(raw), self.cfg.B)
                payload = BlockRun(raw, nblocks, self._block_bytes)
            else:
                payload = pack_blocks(serialize(payload_obj), self.cfg.B)
                nblocks = len(payload)
            self._charge(src_pid, nblocks * self.cfg.B)
            bundles.append((dest, parts, payload))
        return bundles

    @staticmethod
    def _bundle_nblocks(payload: "list[bytes] | BlockRun") -> int:
        return payload.nblocks if isinstance(payload, BlockRun) else len(payload)

    def _stage_bundles(
        self, src_pid: int, bundles: list[tuple[int, list, list[bytes]]]
    ) -> dict[int, list[tuple[int, int, bytes]]]:
        """Address bundles on their destination's disks and record the
        directory entries; returns the block placements grouped per
        owning real processor (one DiskWrite batch each).

        Runs where the destination's storage lives: inline for the
        sequential backend, in the destination worker for the process
        backend — which keeps the per-owner write batching (and hence
        ``parallel_ios``) identical in both modes.
        """
        cfg = self.cfg
        by_owner: dict[int, list] = {}
        for dest, parts, payload in bundles:
            nblocks = self._bundle_nblocks(payload)
            owner = self._owner(dest)
            if self._fastpath:
                if nblocks <= self.slot_blocks:
                    dd, tt = self.matrices[owner].message_addresses_np(
                        src_pid, self._local(dest), nblocks, self._staged_parity
                    )
                    overflow = None
                else:
                    start, _rows = self.allocators[owner].alloc(nblocks)
                    dd, tt = consecutive_addresses_np(nblocks, cfg.D, start)
                    overflow = list(zip(dd.tolist(), tt.tolist()))
                    self._overflow_blocks += nblocks
                if not isinstance(payload, BlockRun):
                    # a reference-mode peer shipped packed blocks; rewrap
                    payload = BlockRun(
                        b"".join(payload), nblocks, self._block_bytes
                    )
                by_owner.setdefault(owner, []).append((dd, tt, payload))
            else:
                blocks = (
                    payload.to_blocks()
                    if isinstance(payload, BlockRun)
                    else payload
                )
                if nblocks <= self.slot_blocks:
                    addrs = self.matrices[owner].message_addresses(
                        src_pid, self._local(dest), nblocks, self._staged_parity
                    )
                    overflow = None
                else:
                    start, _rows = self.allocators[owner].alloc(nblocks)
                    addrs = consecutive_addresses(nblocks, cfg.D, start)
                    overflow = addrs
                    self._overflow_blocks += nblocks
                by_owner.setdefault(owner, []).extend(
                    (d, t, blk) for (d, t), blk in zip(addrs, blocks)
                )
            self._staged_meta[dest].append(
                _MetaEntry(src_pid, nblocks, parts, overflow)
            )
            self._msg_blocks_io += nblocks
            if self.tracer.enabled:
                self.tracer.emit(
                    "message_write",
                    src=src_pid,
                    dest=dest,
                    real=owner,
                    blocks=nblocks,
                    layout="overflow" if overflow else "staggered",
                    parity=self._staged_parity,
                )
        return by_owner

    def _put_messages(self, src_pid: int, msgs: list[Message]) -> None:
        by_owner = self._stage_bundles(src_pid, self._bundle_outbox(src_pid, msgs))
        self._write_staged(by_owner)
        self._release(src_pid)

    def _write_staged(self, by_owner: dict[int, list]) -> None:
        """Commit one source's staged placements, one FIFO stream per
        owning real processor (batching spans bundle boundaries, exactly
        as the reference path's concatenated placement list does)."""
        for owner, batch in by_owner.items():
            if self._fastpath:
                self.arrays[owner].write_stream(batch)
            else:
                self.arrays[owner].write_blocks(batch)

    def _take_inbox(self, pid: int) -> list[Message]:
        cfg = self.cfg
        entries = self._ready_meta[pid]
        if not entries:
            return []
        self._ready_meta[pid] = []
        owner = self._owner(pid)
        array = self.arrays[owner]

        entries.sort(key=lambda e: e.src)
        slot_entries = [e for e in entries if e.overflow is None]
        by_src = [(e.src, e.nblocks) for e in slot_entries]
        buf = None
        if self._fastpath:
            dd, tt = self.matrices[owner].inbox_addresses_np(
                self._local(pid), by_src, self._ready_parity
            )
            total = int(dd.size)
            buf = self._iopool.take(total * self._block_bytes)
            flat = array.read_run(dd, tt, out=buf)
        else:
            addrs = self.matrices[owner].inbox_addresses(
                self._local(pid), by_src, self._ready_parity
            )
            blocks = array.read_blocks(addrs)
            total = len(blocks)
        self._msg_blocks_io += total
        if self.tracer.enabled and total:
            self.tracer.emit(
                "message_read",
                pid=pid,
                real=owner,
                blocks=total,
                layout="staggered",
                sources=len(slot_entries),
                parity=self._ready_parity,
            )

        msgs: list[Message] = []

        def unbundle(e: _MetaEntry, payload_obj) -> None:
            if len(e.parts) == 1:
                tag, size = e.parts[0]
                msgs.append(Message(e.src, pid, payload_obj, tag, size))
            else:
                for (tag, size), (_t, payload) in zip(e.parts, payload_obj):
                    msgs.append(Message(e.src, pid, payload, tag, size))

        cursor = 0
        bb = self._block_bytes
        for e in slot_entries:
            if self._fastpath:
                payload_obj = deserialize(
                    flat[cursor * bb : (cursor + e.nblocks) * bb]
                )
            else:
                payload_obj = deserialize(
                    unpack_blocks(blocks[cursor : cursor + e.nblocks])
                )
            cursor += e.nblocks
            unbundle(e, payload_obj)
            self._charge(pid, e.nblocks * cfg.B)
        if buf is not None:
            self._iopool.give(buf)
        alloc = self.allocators[owner]
        for e in entries:
            if e.overflow is None:
                continue
            chunk = array.read_blocks(e.overflow)
            array.free_blocks(e.overflow)
            # overflow runs start on disk 0, so the first address carries
            # the run's start track; return its rows for reuse
            alloc.free(e.overflow[0][1], alloc.rows_for(e.nblocks))
            self._msg_blocks_io += e.nblocks
            if self.tracer.enabled:
                self.tracer.emit(
                    "message_read",
                    pid=pid,
                    real=owner,
                    blocks=e.nblocks,
                    layout="overflow",
                    sources=1,
                )
            unbundle(e, deserialize(unpack_blocks(chunk)))
            self._charge(pid, e.nblocks * cfg.B)
        msgs.sort(key=lambda m: (m.src, m.tag or ""))
        return msgs

    def _flip(self) -> None:
        for pid, staged in self._staged_meta.items():
            if staged:
                self._ready_meta[pid].extend(staged)
                self._staged_meta[pid] = []
        self._staged_parity, self._ready_parity = (
            self._ready_parity,
            self._staged_parity,
        )

    def _pending_messages(self) -> bool:
        return any(self._ready_meta.values())

    # ---------------------------------------------------------- checkpointing

    @staticmethod
    def _snapshot_array(arr: DiskArray) -> dict:
        # snapshot_tracks yields the same dict[int, bytes] shape from both
        # the dict-backed and arena-backed stores, so checkpoints stay
        # portable across REPRO_FASTPATH settings
        return {
            "tracks": [d.snapshot_tracks() for d in arr.disks],
            "reads": [d.blocks_read for d in arr.disks],
            "writes": [d.blocks_written for d in arr.disks],
            "stats": arr.stats.snapshot(),
            "injector": arr.injector.state() if isinstance(arr, FaultyDiskArray) else None,
        }

    @staticmethod
    def _restore_array(arr: DiskArray, snap: dict) -> None:
        for disk, tracks, reads, writes in zip(
            arr.disks, snap["tracks"], snap["reads"], snap["writes"]
        ):
            disk.restore_tracks(tracks)
            disk.blocks_read = reads
            disk.blocks_written = writes
        arr.stats = snap["stats"].snapshot()
        if snap["injector"] is not None:
            # the checkpoint fingerprint pins the fault plan, so an
            # injector-carrying snapshot always meets a FaultyDiskArray
            arr.injector.restore(snap["injector"])  # type: ignore[attr-defined]

    @staticmethod
    def _meta_to_tuple(e: _MetaEntry) -> tuple:
        return (e.src, e.nblocks, list(e.parts), e.overflow)

    def _snapshot_backend(self) -> dict:
        """Canonical between-round state, keyed by real id / pid.

        The same shape is produced whether the reals live in one
        interpreter or are merged from worker processes, which is what
        makes snapshots portable across backends and worker counts.
        """
        return {
            "arrays": {r: self._snapshot_array(a) for r, a in self.arrays.items()},
            "memories": {r: (m.used, m.peak) for r, m in self.memories.items()},
            "allocators": {
                r: (a._cursor, list(a._free)) for r, a in self.allocators.items()
            },
            "ctx_region": dict(self._ctx_region),
            "staged_meta": {
                pid: [self._meta_to_tuple(e) for e in lst]
                for pid, lst in self._staged_meta.items()
                if lst
            },
            "ready_meta": {
                pid: [self._meta_to_tuple(e) for e in lst]
                for pid, lst in self._ready_meta.items()
                if lst
            },
            "parities": (self._staged_parity, self._ready_parity),
            "charged": dict(self._charged),
            "ctx_io": self._ctx_blocks_io,
            "msg_io": self._msg_blocks_io,
            "ovf": self._overflow_blocks,
        }

    def _restore_backend(self, backend: dict) -> None:
        for r, arr in self.arrays.items():
            self._restore_array(arr, backend["arrays"][r])
        for r, mem in self.memories.items():
            mem.used, mem.peak = backend["memories"][r]
        for r, alloc in self.allocators.items():
            cursor, free = backend["allocators"][r]
            alloc._cursor = cursor
            alloc._free = list(free)
        local = set(self._local_pids())
        self._ctx_region = {
            pid: region
            for pid, region in backend["ctx_region"].items()
            if pid in local
        }
        v = self.cfg.v
        self._staged_meta = {pid: [] for pid in range(v)}
        self._ready_meta = {pid: [] for pid in range(v)}
        for name, store in (
            ("staged_meta", self._staged_meta),
            ("ready_meta", self._ready_meta),
        ):
            for pid, entries in backend[name].items():
                if pid in local:
                    store[pid] = [_MetaEntry(*t) for t in entries]
        self._staged_parity, self._ready_parity = backend["parities"]
        self._charged = {
            pid: n for pid, n in backend["charged"].items() if pid in local
        }
        self._ctx_blocks_io = backend["ctx_io"]
        self._msg_blocks_io = backend["msg_io"]
        self._overflow_blocks = backend["ovf"]

    # ------------------------------------------------------------- accounting

    def _charge(self, pid: int, items: int) -> None:
        owner = self._owner(pid)
        self.memories[owner].charge(items)
        self._charged[pid] = self._charged.get(pid, 0) + items

    def _release(self, pid: int) -> None:
        owner = self._owner(pid)
        self.memories[owner].release(self._charged.pop(pid, 0))

    def _supersteps_per_round(self) -> int:
        # Lemma 4: one CGM round costs v/p real compound supersteps.
        return self.vpr

    def _io_totals(self) -> IOStats:
        total = IOStats(D=self.cfg.D)
        for array in self.arrays.values():
            total.merge(array.stats)
        return total

    @staticmethod
    def _fold_stats(
        report: CostReport,
        io_by_real: list[IOStats],
        mem_peaks: list[int],
        ctx_io: int,
        msg_io: int,
        ovf: int,
    ) -> None:
        """Fold per-real-processor counters into *report*.

        *io_by_real* must be in ascending real-id order so the io_max
        tie-break (first strict maximum) matches across backends.
        """
        io_max = None
        for st in io_by_real:
            report.io.merge(st)
            if io_max is None or st.parallel_ios > io_max.parallel_ios:
                io_max = st
        report.io_max = io_max.snapshot() if io_max else report.io.snapshot()
        report.peak_memory_items = max(mem_peaks, default=0)
        report.context_blocks_io = ctx_io
        report.message_blocks_io = msg_io
        report.overflow_blocks = ovf

    def _finalize(self, report: CostReport) -> None:
        # release anything still charged (finish() loads contexts)
        for pid in list(self._charged):
            self._release(pid)
        self._fold_stats(
            report,
            [self.arrays[r].stats for r in sorted(self.arrays)],
            [m.peak for m in self.memories.values()],
            self._ctx_blocks_io,
            self._msg_blocks_io,
            self._overflow_blocks,
        )
        emit_block_metrics(
            self.metrics,
            self.name,
            self.cfg,
            self._ctx_blocks_io,
            self._msg_blocks_io,
            self._overflow_blocks,
        )
        fstats = collect_fault_stats(self.arrays.values())
        if fstats is not None:
            report.fault_stats = fstats
            emit_fault_metrics(self.metrics, self.name, self.cfg, fstats)


def emit_block_metrics(metrics, name, cfg, ctx_io, msg_io, ovf) -> None:
    """Emit the EM backends' block-level counters to a metrics registry.

    Shared by :class:`ParEMEngine` and the multi-core coordinator, which
    merges the same counters from its worker processes.
    """
    if not metrics.enabled:
        return
    labels = dict(engine=name, p=cfg.p, D=cfg.D, B=cfg.B)
    metrics.counter(
        "repro_context_blocks_total", "blocks moved for context swapping"
    ).labels(**labels).inc(ctx_io)
    metrics.counter(
        "repro_message_blocks_total", "blocks moved for message traffic"
    ).labels(**labels).inc(msg_io)
    metrics.counter(
        "repro_overflow_blocks_total", "staggered-slot overflow spills"
    ).labels(**labels).inc(ovf)


class SeqEMEngine(ParEMEngine):
    """Algorithm 2 — the single-processor EM simulation.

    Identical machinery with ``p = 1``: no network traffic (every message
    is disk I/O), and one real compound superstep per CGM round.
    """

    name = "seq-em"

    def __init__(
        self,
        cfg: MachineConfig,
        balanced: bool = False,
        validate: bool = True,
        tracer=None,
        metrics=None,
    ) -> None:
        require(cfg.p == 1, f"SeqEMEngine requires p=1, got p={cfg.p}")
        super().__init__(
            cfg, balanced=balanced, validate=validate, tracer=tracer, metrics=metrics
        )

    def _supersteps_per_round(self) -> int:
        return 1
