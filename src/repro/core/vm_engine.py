"""The Figure 3 baseline: a CGM algorithm run on top of OS virtual memory.

The paper's prototype first ran its CGM sorting algorithm naively, letting
the operating system page contexts and message buffers in and out of a
too-small physical memory.  :class:`VMEngine` reproduces that execution
model: it computes exactly like :class:`InMemoryEngine`, but every context
load/store and every message put/take *touches* the corresponding address
range of a flat virtual address space backed by an LRU pager with 4 KB
pages.  Once the working set (all v contexts plus in-flight messages)
exceeds ``M``, every round's sweep over the virtual processors faults on
nearly every page — unblocked, one-page-at-a-time I/O, which is the
mechanism behind the hockey-stick in Figure 3.

Page faults are reported in ``CostReport.page_faults`` and converted to
simulated seconds with :meth:`repro.pdm.vm.LRUPager.io_time`.
"""

from __future__ import annotations

from repro.cgm.engine import InMemoryEngine
from repro.cgm.message import Message
from repro.cgm.metrics import CostReport
from repro.cgm.program import CGMProgram, Context
from repro.util.items import item_count


def context_items(ctx: Context) -> int:
    """Approximate footprint of a context in items (numpy fast path)."""
    total = 4  # dict overhead
    for key, value in ctx.items():
        total += 2 + item_count(value)
    return total


class VMEngine(InMemoryEngine):
    """In-memory execution metered through an LRU demand pager."""

    name = "virtual-memory"

    def __init__(
        self,
        cfg,
        balanced: bool = False,
        validate: bool = True,
        page_items: int = 512,
        tracer=None,
        metrics=None,
    ):
        super().__init__(
            cfg, balanced=balanced, validate=validate, tracer=tracer, metrics=metrics
        )
        self.page_items = page_items

    def _start(self, program: CGMProgram) -> None:
        super()._start(program)
        from repro.pdm.vm import LRUPager

        self.pager = LRUPager(self.cfg.M, page_items=self.page_items)
        self._addr_cursor = 0
        self._ctx_addr: dict[int, tuple[int, int]] = {}  # pid -> (base, items)
        self._msg_addr: dict[int, int] = {}  # id(msg) -> base

    # -- address-space management ------------------------------------------

    def _alloc(self, items: int) -> int:
        base = self._addr_cursor
        self._addr_cursor += max(1, items)
        return base

    def _touch_context(self, pid: int, ctx: Context) -> None:
        items = context_items(ctx)
        region = self._ctx_addr.get(pid)
        if region is None or region[1] < items:
            region = (self._alloc(items), items)
        else:
            region = (region[0], items)
        self._ctx_addr[pid] = region
        self.pager.touch_range(region[0], items)

    # -- metered backend ------------------------------------------------------

    def _store_context(self, pid: int, ctx: Context) -> None:
        faults0 = self.pager.faults
        self._touch_context(pid, ctx)
        super()._store_context(pid, ctx)
        if self.tracer.enabled:
            self.tracer.emit(
                "context_write",
                pid=pid,
                real=0,
                blocks=self.pager.faults - faults0,
                layout="paged",
            )

    def _load_context(self, pid: int) -> Context:
        ctx = super()._load_context(pid)
        faults0 = self.pager.faults
        self._touch_context(pid, ctx)
        if self.tracer.enabled:
            self.tracer.emit(
                "context_read",
                pid=pid,
                real=0,
                blocks=self.pager.faults - faults0,
                layout="paged",
            )
        return ctx

    def _put_messages(self, src_pid: int, msgs: list[Message]) -> None:
        for m in msgs:
            base = self._alloc(m.size_items)
            self._msg_addr[id(m)] = base
            faults0 = self.pager.faults
            self.pager.touch_range(base, m.size_items)
            if self.tracer.enabled:
                self.tracer.emit(
                    "message_write",
                    src=src_pid,
                    dest=m.dest,
                    real=0,
                    blocks=self.pager.faults - faults0,
                    layout="paged",
                )
        super()._put_messages(src_pid, msgs)

    def _take_inbox(self, pid: int) -> list[Message]:
        msgs = super()._take_inbox(pid)
        faults0 = self.pager.faults
        for m in msgs:
            base = self._msg_addr.pop(id(m), None)
            if base is not None:
                self.pager.touch_range(base, m.size_items)
        if self.tracer.enabled and msgs:
            self.tracer.emit(
                "message_read",
                pid=pid,
                real=0,
                blocks=self.pager.faults - faults0,
                layout="paged",
                sources=len(msgs),
            )
        return msgs

    def _finalize(self, report: CostReport) -> None:
        report.page_faults = self.pager.faults
        report.peak_memory_items = self._addr_cursor
        if self.metrics.enabled:
            self.metrics.counter(
                "repro_page_faults_total", "LRU pager faults (VM baseline)"
            ).labels(engine=self.name, page_items=self.page_items).inc(
                self.pager.faults
            )
