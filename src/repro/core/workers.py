"""Multi-core execution of Algorithm 3: one OS process per real-processor
group.

:class:`ProcessParEngine` is the opt-in (``cfg.workers > 1``) backend that
finally runs the p real processors of ParCompoundSuperstep concurrently:
the coordinator partitions the reals contiguously over ``min(workers, p)``
worker processes, and each worker instantiates only its share of the
machine — its own :class:`~repro.pdm.disk_array.DiskArray`,
:class:`~repro.pdm.memory.InternalMemory`,
:class:`~repro.core.layouts.MessageMatrix` and
:class:`~repro.core.layouts.RegionAllocator` — and simulates its virtual
processors with the exact :class:`~repro.core.par_engine.ParEMEngine`
machinery.

Round protocol (one iteration of the driver loop):

1. the coordinator broadcasts ``("round", r)`` to every worker;
2. each worker runs its local virtual processors' compound supersteps;
   step (d) traffic whose destination real lives in another worker is
   serialized *at the source* (blocks packed once, memory charged to the
   source real) and buffered per destination worker;
3. **exchange** — every worker sends exactly one packet, tagged
   ``(round, phase, src_worker)``, to every other worker (empty packets
   included), then waits for one packet from each peer: the inter-process
   barrier that stands in for the paper's network;
4. received bundles are staged on the destination's disks grouped per
   source virtual processor in ascending-pid order, replaying the
   sequential backend's per-owner DiskWrite batches;
5. ``_flip()`` everywhere (twice, with a second exchange in between, in
   balanced mode), and each worker ships its :class:`RoundStep` delta —
   I/O counters, h-relation sizes, wall times, drained trace events — to
   the coordinator, which merges them into one per-round record.

Determinism: every ``CostReport`` counter the coordinator reports is
bit-identical to the single-process simulation.  The staggered-slot
geometry is pure arithmetic in (src, dest, nblocks, parity); overflow runs
use consecutive format anchored on disk 0, so DiskWrite/DiskRead batching
— and hence ``parallel_ios`` — depends only on block *counts*, never on
which track the allocator handed out; inbox delivery is sorted by source
pid; and all remaining counters are order-independent sums or per-real
maxima.  The different allocator interleaving across processes can move
regions to different tracks, but no counter observes track numbers.
The ``fork`` start method is preferred (workers inherit the interpreter
state, so serialization is byte-identical and programs need not be
picklable); ``spawn`` is the fallback elsewhere.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import traceback
from multiprocessing import resource_tracker, shared_memory
from typing import Any

from repro.cgm.config import MachineConfig
from repro.cgm.engine import Engine, RoundStep
from repro.cgm.message import Message
from repro.cgm.metrics import CostReport
from repro.cgm.program import CGMProgram
from repro.core.par_engine import ParEMEngine, emit_block_metrics
from repro.faults.injector import FaultStats, collect_fault_stats, emit_fault_metrics
from repro.obs.trace import JsonlRecorder, replay_events
from repro.pdm import fastpath
from repro.pdm.fastpath import BlockRun
from repro.pdm.io_stats import IOStats
from repro.util.rng import spawn_rngs
from repro.util.validation import SimulationError

#: distinguishes "no threshold passed" from an explicit ``None`` (shm off)
_UNSET = object()

#: seconds a blocked queue read waits between abort-flag polls.
_POLL_S = 0.25
#: empty poll cycles tolerated after a peer process is seen dead.
_DEAD_GRACE = 8


def partition_reals(p: int, n_workers: int) -> list[list[int]]:
    """Contiguous split of real processors 0..p-1 over the workers."""
    base, extra = divmod(p, n_workers)
    plan, nxt = [], 0
    for w in range(n_workers):
        k = base + (1 if w < extra else 0)
        plan.append(list(range(nxt, nxt + k)))
        nxt += k
    return plan


def _mp_context():
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return mp.get_context("spawn")


class _Abort(SimulationError):
    """Raised inside a worker when the coordinator signalled shutdown."""


class WorkerCrashed(SimulationError):
    """A worker *process* died without reporting a result.

    Distinct from a worker-reported exception (which stays a plain
    :class:`SimulationError`): only process death is the transient,
    checkpoint-recoverable condition the coordinator re-dispatches on.
    """

    def __init__(self, workers: list[int], kind: str) -> None:
        super().__init__(
            f"worker(s) {workers} died without reporting a result for {kind!r}"
        )
        self.workers = workers


def _poll_get(q, abort, what: str):
    """Blocking queue read that honours the shared abort flag."""
    while True:
        if abort.is_set():
            raise _Abort(f"aborted while waiting for {what}")
        try:
            return q.get(timeout=_POLL_S)
        except queue.Empty:
            continue


#: payload placeholder in a shared-memory packet: the receiver rebuilds a
#: BlockRun view over the mapped segment from these coordinates.
_SHM_REF = "__shmrun__"


def _untrack_shm(shm) -> None:
    """Detach a *sender's* segment from the resource tracker.

    Ownership is explicit in the exchange protocol: the receiver unlinks
    after staging, and ``SharedMemory.unlink`` itself unregisters, which
    balances the registration made when the receiver attached.  Only the
    sender's create-side registration is left dangling — untracking it
    here keeps the tracker from warning (or double-unlinking) at exit.
    The receiver must NOT untrack, or ``unlink`` would unregister a name
    the tracker no longer holds and spray KeyError tracebacks on stderr.
    """
    try:
        resource_tracker.unregister(getattr(shm, "_name", shm.name), "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


class _Network:
    """One worker's view of the simulated network (peer-to-peer queues).

    Packets are tagged ``(round, phase, src_worker)``; a packet from a
    peer that has already raced ahead into a later phase is buffered, so
    the exchange of one phase can never consume another phase's traffic.

    Bulk transport: when the fast path is on and a packet's ``BlockRun``
    payloads total at least :func:`repro.pdm.fastpath.shm_threshold`
    bytes, the payload bytes travel through one
    ``multiprocessing.shared_memory`` segment per packet and the queue
    carries only the metadata — the receiver's scatter copies straight
    from the mapping into its track arena, so bulk bytes cross the
    process boundary exactly once and are never pickled.  Smaller packets
    (and all control traffic) stay on the queue, which also remains the
    fallback when the reference path is selected.  A packet buffered for
    a later phase keeps its wire form; its segment is only mapped when
    that phase consumes it.  :meth:`release` closes and unlinks consumed
    segments after staging.
    """

    def __init__(
        self, worker_id: int, inboxes, abort, shm_threshold=_UNSET
    ) -> None:
        self.worker_id = worker_id
        self.inboxes = inboxes
        self.abort = abort
        self._buffer: dict[tuple[int, int], dict[int, tuple]] = {}
        # the coordinator's per-run snapshot fixes the threshold for every
        # worker; the module-level fallback serves direct construction
        self.shm_threshold = (
            fastpath.shm_threshold() if shm_threshold is _UNSET else shm_threshold
        )
        self._consumed: list = []

    def _encode(self, items: list) -> tuple:
        """Wire form of one packet: ``("inl", items)`` or
        ``("shm", segment_name, items_with_refs)``."""
        threshold = self.shm_threshold
        if threshold is None:
            return ("inl", items)
        total = sum(
            bundle[2].nbytes
            for _src, bundle in items
            if isinstance(bundle[2], BlockRun)
        )
        if total < threshold:
            return ("inl", items)
        shm = shared_memory.SharedMemory(create=True, size=total)
        try:
            view = shm.buf
            off = 0
            wire_items = []
            for src_pid, (dest, parts, payload) in items:
                if isinstance(payload, BlockRun):
                    n = payload.nbytes
                    view[off : off + n] = memoryview(payload.buf).cast("B")
                    payload = (
                        _SHM_REF, off, n, payload.nblocks, payload.block_bytes
                    )
                    off += n
                wire_items.append((src_pid, (dest, parts, payload)))
            return ("shm", shm.name, wire_items)
        finally:
            # the receiver owns the segment's lifetime from here on
            _untrack_shm(shm)
            shm.close()

    def _decode(self, wire: tuple) -> list:
        kind = wire[0]
        if kind == "inl":
            return wire[1]
        _, name, wire_items = wire
        shm = shared_memory.SharedMemory(name=name)
        self._consumed.append(shm)
        view = memoryview(shm.buf)
        items = []
        for src_pid, (dest, parts, payload) in wire_items:
            if isinstance(payload, tuple) and payload and payload[0] == _SHM_REF:
                _tag, off, n, nblocks, block_bytes = payload
                payload = BlockRun(view[off : off + n], nblocks, block_bytes)
            items.append((src_pid, (dest, parts, payload)))
        return items

    def release(self) -> None:
        """Unlink segments whose payloads have been staged on disk.

        Callers must have dropped every ``BlockRun`` view first (staging
        copies the bytes into the arena); a still-exported mapping is
        retried on the next call rather than erroring the round.
        """
        keep = []
        for shm in self._consumed:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still alive
                keep.append(shm)
        self._consumed = keep

    def exchange(self, outgoing: dict[int, list], r: int, phase: int) -> list:
        """Send one packet to every peer, receive one from each; returns
        the concatenated remote items."""
        for w in sorted(outgoing):
            self.inboxes[w].put((r, phase, self.worker_id, self._encode(outgoing[w])))
        expected = set(outgoing)
        got = self._buffer.pop((r, phase), {})
        while expected - set(got):
            rr, pp, src, wire = _poll_get(
                self.inboxes[self.worker_id],
                self.abort,
                f"round {r} phase {phase} packets",
            )
            if (rr, pp) == (r, phase):
                got[src] = wire
            else:
                self._buffer.setdefault((rr, pp), {})[src] = wire
        merged: list = []
        for src in sorted(got):
            merged.extend(self._decode(got[src]))
        return merged


class _WorkerEngine(ParEMEngine):
    """The slice of the p-processor machine owned by one worker process.

    Inherits every storage and accounting mechanism of
    :class:`ParEMEngine`; only message routing is split between the local
    disks and the network.  ``name`` stays ``"par-em"`` so cost
    cross-checks treat worker-produced reports like sequential ones.
    """

    def __init__(
        self,
        cfg: MachineConfig,
        balanced: bool,
        worker_id: int,
        plan: list[list[int]],
        tracer=None,
    ) -> None:
        super().__init__(cfg, balanced=balanced, validate=False, tracer=tracer)
        self.worker_id = worker_id
        self._reals = list(plan[worker_id])
        self._real_worker = {r: w for w, reals in enumerate(plan) for r in reals}
        self.n_workers = len(plan)
        #: remote bundles buffered during the current phase, per worker.
        self._outgoing: dict[int, list] | None = None

    # ------------------------------------------------------------ topology

    def _storage_reals(self):
        return self._reals

    def _local_pids(self):
        vpr = self.cfg.vprocs_per_real
        return [pid for r in self._reals for pid in range(r * vpr, (r + 1) * vpr)]

    # ------------------------------------------------------------- routing

    def _put_messages(self, src_pid: int, msgs: list[Message]) -> None:
        bundles = self._bundle_outbox(src_pid, msgs)
        local = []
        for bundle in bundles:
            w = self._real_worker[self._owner(bundle[0])]
            if w == self.worker_id:
                local.append(bundle)
            else:
                self._outgoing[w].append((src_pid, bundle))
        self._write_staged(self._stage_bundles(src_pid, local))
        self._release(src_pid)

    def _apply_remote(self, items: list) -> None:
        """Stage bundles shipped from peer workers.

        Grouped per source pid in ascending order, one DiskWrite batch
        per destination real — exactly the batches the sequential backend
        issues for that source's outbox restricted to these reals.
        """
        by_src: dict[int, list] = {}
        for src_pid, bundle in items:
            by_src.setdefault(src_pid, []).append(bundle)
        for src_pid in sorted(by_src):
            self._write_staged(self._stage_bundles(src_pid, by_src[src_pid]))

    def _exchange_phase(self, net: _Network, r: int, phase: int) -> None:
        outgoing = self._outgoing
        self._outgoing = None
        self._apply_remote(net.exchange(outgoing, r, phase))
        # staging copied every shared-memory payload into the arena; the
        # segments backing this phase's packets can go away now
        net.release()

    def _begin_phase(self) -> None:
        self._outgoing = {
            w: [] for w in range(self.n_workers) if w != self.worker_id
        }

    # ------------------------------------------------------------ per round

    def execute_local_round(
        self, program: CGMProgram, r: int, rngs: list, net: _Network
    ) -> RoundStep:
        """This worker's share of one CGM round, including both network
        exchanges; mirrors :meth:`Engine._execute_round`."""
        cfg = self.cfg
        step = RoundStep.empty(cfg.v, cfg.p)
        io_before = self._io_totals()
        self._begin_phase()
        pids = list(self._local_pids())
        self._begin_superstep(pids)
        try:
            for pid in pids:
                self._run_vproc(program, r, pid, rngs[pid], step)
        finally:
            self._end_superstep()
        self._exchange_phase(net, r, 0)
        self._flip()
        if self.balanced:
            self._begin_phase()
            self._relay_superstep()
            self._exchange_phase(net, r, 1)
            self._flip()
        step.io = self._io_totals().delta_since(io_before)
        return step


def _worker_main(
    worker_id: int,
    cfg: MachineConfig,
    balanced: bool,
    trace_enabled: bool,
    plan: list[list[int]],
    program: CGMProgram,
    max_message_items: int,
    faults,
    runtime,
    cmd_q,
    result_q,
    net_qs,
    abort,
) -> None:
    """Worker process entry point: a command loop driven by the coordinator.

    Commands: ``("setup", {pid: input})``, ``("round", r)``, ``("finish",)``,
    ``("snapshot",)``, ``("restore", backend, rng_states)``, ``("stop",)``.
    Any exception is reported on the result queue as an
    ``("error", traceback)`` message.  *runtime* is the coordinator's
    per-run :class:`~repro.tune.runtime.RuntimeConfig` snapshot — workers
    never consult their own environment, so every process of one run
    agrees on the knob values even if the environment changes mid-run.
    """
    try:
        tracer = JsonlRecorder() if trace_enabled else None
        eng = _WorkerEngine(cfg, balanced, worker_id, plan, tracer=tracer)
        eng._max_message_items = max_message_items
        eng.faults = faults
        eng.runtime = runtime
        eng._rt = runtime
        eng._start(program)
        net = _Network(
            worker_id,
            net_qs,
            abort,
            shm_threshold=runtime.shm_threshold if runtime is not None else _UNSET,
        )
        rngs = spawn_rngs(cfg.seed, cfg.v)
        while True:
            cmd = _poll_get(cmd_q, abort, "a coordinator command")
            op = cmd[0]
            if op == "setup":
                eng._setup_contexts(program, cmd[1])
                result_q.put((worker_id, "setup", None))
            elif op == "round":
                r = cmd[1]
                step = eng.execute_local_round(program, r, rngs, net)
                payload = {
                    "sent": [(pid, n) for pid, n in enumerate(step.sent) if n],
                    "recv": [(pid, n) for pid, n in enumerate(step.recv) if n],
                    "wall": [
                        (real, s)
                        for real, s in enumerate(step.per_real_wall)
                        if s
                    ],
                    "messages": step.messages,
                    "comm_items": step.comm_items,
                    "cross_items": step.cross_items,
                    "all_done": step.all_done,
                    "io": step.io,
                    "pending": eng._pending_messages(),
                    "events": tracer.drain() if tracer else [],
                }
                result_q.put((worker_id, "round", payload))
            elif op == "finish":
                outputs = {
                    pid: program.finish(eng._load_context(pid))
                    for pid in eng._local_pids()
                }
                for pid in list(eng._charged):
                    eng._release(pid)
                payload = {
                    "outputs": outputs,
                    "io_by_real": {rl: eng.arrays[rl].stats for rl in eng._reals},
                    "mem_peaks": {rl: eng.memories[rl].peak for rl in eng._reals},
                    "ctx_io": eng._ctx_blocks_io,
                    "msg_io": eng._msg_blocks_io,
                    "ovf": eng._overflow_blocks,
                    "fault_stats": collect_fault_stats(eng.arrays.values()),
                    "events": tracer.drain() if tracer else [],
                }
                result_q.put((worker_id, "final", payload))
            elif op == "snapshot":
                payload = {
                    "backend": eng._snapshot_backend(),
                    "rng": {
                        pid: rngs[pid].bit_generator.state
                        for pid in eng._local_pids()
                    },
                }
                result_q.put((worker_id, "snapshot", payload))
            elif op == "restore":
                eng._restore_backend(cmd[1])
                for pid, state in cmd[2].items():
                    rngs[pid].bit_generator.state = state
                result_q.put((worker_id, "restore", None))
            elif op == "stop":
                return
            else:  # pragma: no cover - protocol bug
                raise SimulationError(f"unknown worker command {op!r}")
    except _Abort:
        pass
    except BaseException:
        try:
            result_q.put((worker_id, "error", traceback.format_exc()))
        except Exception:  # pragma: no cover - queue already torn down
            pass


class ProcessParEngine(Engine):
    """Coordinator of the multi-core Algorithm 3 backend.

    Drives the shared :meth:`Engine.run` loop but delegates every round to
    the worker processes and merges their per-round accounting; the
    resulting :class:`CostReport` is bit-identical to
    :class:`ParEMEngine`'s while wall-clock scales with the core count.
    """

    #: cost cross-checks and the bench store key off the engine name, and
    #: the worker backend models the same machine, so it keeps "par-em".
    name = "par-em"
    supports_checkpoint = True
    supports_faults = True

    def __init__(
        self,
        cfg: MachineConfig,
        balanced: bool = False,
        validate: bool = True,
        tracer=None,
        metrics=None,
    ) -> None:
        super().__init__(
            cfg, balanced=balanced, validate=validate, tracer=tracer, metrics=metrics
        )
        self.n_workers = max(1, min(cfg.workers or cfg.p, cfg.p))
        self._procs: list = []
        self._pending = False
        self._restarts = 0

    # ------------------------------------------------------------ lifecycle

    def _start(self, program: CGMProgram) -> None:
        cfg = self.cfg
        self._plan = partition_reals(cfg.p, self.n_workers)
        if self._rt is None:
            from repro.tune.runtime import current

            self._rt = current()
        ctx = _mp_context()
        self._abort = ctx.Event()
        self._result_q = ctx.Queue()
        self._cmd_qs = [ctx.Queue() for _ in range(self.n_workers)]
        self._net_qs = [ctx.Queue() for _ in range(self.n_workers)]
        self._procs = []
        for w in range(self.n_workers):
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    w,
                    cfg,
                    self.balanced,
                    self.tracer.enabled,
                    self._plan,
                    program,
                    self._max_message_items,
                    self.faults,
                    self._rt,
                    self._cmd_qs[w],
                    self._result_q,
                    self._net_qs,
                    self._abort,
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    def run(self, program: CGMProgram, inputs: list[Any]):
        try:
            return super().run(program, inputs)
        finally:
            self._shutdown()

    def _shutdown(self, force: bool = False) -> None:
        if not self._procs:
            return
        if force:
            # crash recovery: peers may be blocked mid-exchange waiting on
            # a dead worker's packet, so abort first instead of asking
            # politely and eating the join timeout
            self._abort.set()
        else:
            for q in self._cmd_qs:
                try:
                    q.put(("stop",))
                except Exception:  # pragma: no cover - queue torn down
                    pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                self._abort.set()
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
        self._procs = []

    # ---------------------------------------------------------- round hooks

    def _broadcast(self, cmd: tuple) -> None:
        for q in self._cmd_qs:
            q.put(cmd)

    def _gather(self, kind: str) -> dict[int, Any]:
        """One reply of *kind* from every worker, keyed by worker id."""
        got: dict[int, Any] = {}
        dead_cycles = 0
        while len(got) < self.n_workers:
            try:
                w, k, payload = self._result_q.get(timeout=_POLL_S)
            except queue.Empty:
                awaited_dead = [
                    w
                    for w in range(self.n_workers)
                    if w not in got and not self._procs[w].is_alive()
                ]
                if awaited_dead:
                    dead_cycles += 1
                    if dead_cycles >= _DEAD_GRACE:
                        self._abort.set()
                        raise WorkerCrashed(awaited_dead, kind)
                continue
            if k == "error":
                self._abort.set()
                raise SimulationError(f"worker {w} failed:\n{payload}")
            if k != kind:  # pragma: no cover - protocol bug
                raise SimulationError(f"worker {w} sent {k!r}, expected {kind!r}")
            got[w] = payload
        return got

    def _setup_contexts(self, program: CGMProgram, inputs: list[Any]) -> None:
        vpr = self.cfg.vprocs_per_real
        for w, q in enumerate(self._cmd_qs):
            local = {
                pid: inputs[pid]
                for real in self._plan[w]
                for pid in range(real * vpr, (real + 1) * vpr)
            }
            q.put(("setup", local))
        self._gather("setup")

    def _execute_round(self, program: CGMProgram, r: int, rngs: list) -> RoundStep:
        while True:
            try:
                return self._dispatch_round(r)
            except WorkerCrashed as exc:
                self._recover(program, r, exc)

    def _recover(self, program: CGMProgram, r: int, exc: WorkerCrashed) -> None:
        """Respawn the worker fleet and rewind it to the last checkpoint,
        so the crashed round can be re-dispatched."""
        cm = self.checkpoint
        snap = self._last_ckpt
        if cm is None or snap is None:
            raise exc
        if self._restarts >= cm.max_restarts:
            raise SimulationError(
                f"giving up after {self._restarts} worker restarts: {exc}"
            ) from exc
        if snap["round"] != r - 1:
            raise SimulationError(
                f"cannot re-dispatch round {r}: last checkpoint is for "
                f"round {snap['round']}"
            ) from exc
        self._restarts += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "worker_redispatch",
                round=r,
                dead_workers=exc.workers,
                restart=self._restarts,
                from_round=snap["round"],
            )
        self._shutdown(force=True)
        self._start(program)
        self._restore_state(snap, rngs=[])

    def _dispatch_round(self, r: int) -> RoundStep:
        cfg = self.cfg
        self._broadcast(("round", r))
        results = self._gather("round")
        step = RoundStep.empty(cfg.v, cfg.p)
        io = IOStats(D=cfg.D)
        self._pending = False
        for w in sorted(results):
            payload = results[w]
            for pid, n in payload["sent"]:
                step.sent[pid] += n
            for pid, n in payload["recv"]:
                step.recv[pid] += n
            for real, s in payload["wall"]:
                step.per_real_wall[real] += s
            step.messages += payload["messages"]
            step.comm_items += payload["comm_items"]
            step.cross_items += payload["cross_items"]
            step.all_done &= payload["all_done"]
            io.merge(payload["io"])
            self._pending |= payload["pending"]
            replay_events(self.tracer, payload["events"], worker=w)
        step.io = io
        return step

    def _pending_messages(self) -> bool:
        return self._pending

    def _supersteps_per_round(self) -> int:
        # Lemma 4, same as ParEMEngine: v/p real supersteps per CGM round.
        return self.cfg.vprocs_per_real

    def _round_boundary(self, r: int) -> None:
        pass

    # ---------------------------------------------------------- checkpointing

    def _snapshot_state(self, rngs: list) -> dict[str, Any]:
        """Gather each worker's backend slice and RNG states and merge
        them into the same canonical shape :class:`ParEMEngine` produces."""
        self._broadcast(("snapshot",))
        results = self._gather("snapshot")
        backend: dict[str, Any] = {
            "arrays": {},
            "memories": {},
            "allocators": {},
            "ctx_region": {},
            "staged_meta": {},
            "ready_meta": {},
            "parities": None,
            "charged": {},
            "ctx_io": 0,
            "msg_io": 0,
            "ovf": 0,
        }
        rng_states: list = [None] * self.cfg.v
        for w in sorted(results):
            part = results[w]["backend"]
            for key in ("arrays", "memories", "allocators", "ctx_region",
                        "staged_meta", "ready_meta", "charged"):
                backend[key].update(part[key])
            backend["parities"] = part["parities"]
            backend["ctx_io"] += part["ctx_io"]
            backend["msg_io"] += part["msg_io"]
            backend["ovf"] += part["ovf"]
            for pid, state in results[w]["rng"].items():
                rng_states[pid] = state
        return {"backend": backend, "rng_states": rng_states}

    def _restore_state(self, snap: dict[str, Any], rngs: list) -> None:
        """Scatter a merged snapshot back over the worker fleet.

        Every worker receives the full backend dict and filters to its own
        reals/pids; the ``ctx_io``/``msg_io``/``ovf`` totals cannot be
        split per real, so worker 0 carries them and the rest start at
        zero — the final sums stay exact under any worker count.
        """
        backend = snap["backend"]
        vpr = self.cfg.vprocs_per_real
        for w, q in enumerate(self._cmd_qs):
            part = dict(backend)
            if w != 0:
                part["ctx_io"] = part["msg_io"] = part["ovf"] = 0
            local_rng = {
                pid: snap["rng_states"][pid]
                for real in self._plan[w]
                for pid in range(real * vpr, (real + 1) * vpr)
            }
            q.put(("restore", part, local_rng))
        self._gather("restore")
        self._pending = any(bool(v) for v in backend["ready_meta"].values())

    # ------------------------------------------------------------- wrap-up

    def _collect_outputs(self, program: CGMProgram) -> list[Any]:
        self._broadcast(("finish",))
        finals = self._gather("final")
        outputs: dict[int, Any] = {}
        self._finals = finals
        for w in sorted(finals):
            outputs.update(finals[w]["outputs"])
            replay_events(self.tracer, finals[w]["events"], worker=w)
        return [outputs[pid] for pid in range(self.cfg.v)]

    def _finalize(self, report: CostReport) -> None:
        io_by_real: dict[int, IOStats] = {}
        mem_peaks: dict[int, int] = {}
        ctx_io = msg_io = ovf = 0
        for w in sorted(self._finals):
            payload = self._finals[w]
            io_by_real.update(payload["io_by_real"])
            mem_peaks.update(payload["mem_peaks"])
            ctx_io += payload["ctx_io"]
            msg_io += payload["msg_io"]
            ovf += payload["ovf"]
        ParEMEngine._fold_stats(
            report,
            [io_by_real[r] for r in sorted(io_by_real)],
            [mem_peaks[r] for r in sorted(mem_peaks)],
            ctx_io,
            msg_io,
            ovf,
        )
        emit_block_metrics(self.metrics, self.name, self.cfg, ctx_io, msg_io, ovf)
        fstats = None
        for w in sorted(self._finals):
            part = self._finals[w].get("fault_stats")
            if part is None:
                continue
            if fstats is None:
                fstats = FaultStats()
            fstats.merge(part)
        if fstats is not None:
            report.fault_stats = fstats
            emit_fault_metrics(self.metrics, self.name, self.cfg, fstats)
