"""Multi-core execution of Algorithm 3: one OS process per real-processor
group.

:class:`ProcessParEngine` is the opt-in (``cfg.workers > 1``) backend that
finally runs the p real processors of ParCompoundSuperstep concurrently:
the coordinator partitions the reals contiguously over ``min(workers, p)``
worker processes, and each worker instantiates only its share of the
machine — its own :class:`~repro.pdm.disk_array.DiskArray`,
:class:`~repro.pdm.memory.InternalMemory`,
:class:`~repro.core.layouts.MessageMatrix` and
:class:`~repro.core.layouts.RegionAllocator` — and simulates its virtual
processors with the exact :class:`~repro.core.par_engine.ParEMEngine`
machinery.

Round protocol (one iteration of the driver loop):

1. the coordinator broadcasts ``("round", r)`` to every worker;
2. each worker runs its local virtual processors' compound supersteps;
   step (d) traffic whose destination real lives in another worker is
   serialized *at the source* (blocks packed once, memory charged to the
   source real) and buffered per destination worker;
3. **exchange** — every worker sends exactly one packet, tagged
   ``(round, phase, src_worker)``, to every other worker (empty packets
   included), then waits for one packet from each peer: the inter-process
   barrier that stands in for the paper's network;
4. received bundles are staged on the destination's disks grouped per
   source virtual processor in ascending-pid order, replaying the
   sequential backend's per-owner DiskWrite batches;
5. ``_flip()`` everywhere (twice, with a second exchange in between, in
   balanced mode), and each worker ships its :class:`RoundStep` delta —
   I/O counters, h-relation sizes, wall times, drained trace events — to
   the coordinator, which merges them into one per-round record.

Determinism: every ``CostReport`` counter the coordinator reports is
bit-identical to the single-process simulation.  The staggered-slot
geometry is pure arithmetic in (src, dest, nblocks, parity); overflow runs
use consecutive format anchored on disk 0, so DiskWrite/DiskRead batching
— and hence ``parallel_ios`` — depends only on block *counts*, never on
which track the allocator handed out; inbox delivery is sorted by source
pid; and all remaining counters are order-independent sums or per-real
maxima.  The different allocator interleaving across processes can move
regions to different tracks, but no counter observes track numbers.
The ``fork`` start method is preferred (workers inherit the interpreter
state, so serialization is byte-identical and programs need not be
picklable); ``spawn`` is the fallback elsewhere.

Transports: how the exchange packets physically move is delegated to
:mod:`repro.core.transport` — ``REPRO_TRANSPORT`` selects per-worker
queues (``memory``), queues plus shared-memory bulk segments (``shm``,
the default), or framed TCP to ``repro node`` daemons (``tcp``,
spanning machines).  The coordinator drives whichever
fleet (:class:`LocalFleet` of forked processes or
:class:`~repro.core.transport.tcp.TcpFleet` of remote nodes) through one
command protocol, so checkpoints, fault recovery, and every logical
counter are transport-blind.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import traceback
from typing import Any

from repro.cgm.config import MachineConfig
from repro.cgm.engine import Engine, RoundStep
from repro.cgm.message import Message
from repro.cgm.metrics import CostReport
from repro.cgm.program import CGMProgram
from repro.core.par_engine import ParEMEngine, emit_block_metrics
from repro.core.transport import (
    MemoryTransport,
    ShmTransport,
    TcpFleet,
    Transport,
    TransportAbort,
    poll_get,
    require_nodes,
)
from repro.faults.injector import FaultStats, collect_fault_stats, emit_fault_metrics
from repro.obs.trace import JsonlRecorder, replay_events
from repro.pdm import fastpath
from repro.pdm.io_stats import IOStats
from repro.util.rng import spawn_rngs
from repro.util.validation import SimulationError

#: seconds a blocked queue read waits between abort-flag polls.
_POLL_S = 0.25
#: empty poll cycles tolerated after a peer process is seen dead.
_DEAD_GRACE = 8


def partition_reals(p: int, n_workers: int) -> list[list[int]]:
    """Contiguous split of real processors 0..p-1 over the workers."""
    base, extra = divmod(p, n_workers)
    plan, nxt = [], 0
    for w in range(n_workers):
        k = base + (1 if w < extra else 0)
        plan.append(list(range(nxt, nxt + k)))
        nxt += k
    return plan


def _mp_context():
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return mp.get_context("spawn")


class WorkerCrashed(SimulationError):
    """A worker *process* died without reporting a result.

    Distinct from a worker-reported exception (which stays a plain
    :class:`SimulationError`): only process death is the transient,
    checkpoint-recoverable condition the coordinator re-dispatches on.
    """

    def __init__(self, workers: list[int], kind: str) -> None:
        super().__init__(
            f"worker(s) {workers} died without reporting a result for {kind!r}"
        )
        self.workers = workers


class _WorkerEngine(ParEMEngine):
    """The slice of the p-processor machine owned by one worker process.

    Inherits every storage and accounting mechanism of
    :class:`ParEMEngine`; only message routing is split between the local
    disks and the network.  ``name`` stays ``"par-em"`` so cost
    cross-checks treat worker-produced reports like sequential ones.
    """

    def __init__(
        self,
        cfg: MachineConfig,
        balanced: bool,
        worker_id: int,
        plan: list[list[int]],
        tracer=None,
    ) -> None:
        super().__init__(cfg, balanced=balanced, validate=False, tracer=tracer)
        self.worker_id = worker_id
        self._reals = list(plan[worker_id])
        self._real_worker = {r: w for w, reals in enumerate(plan) for r in reals}
        self.n_workers = len(plan)
        #: remote bundles buffered during the current phase, per worker.
        self._outgoing: dict[int, list] | None = None

    # ------------------------------------------------------------ topology

    def _storage_reals(self):
        return self._reals

    def _local_pids(self):
        vpr = self.cfg.vprocs_per_real
        return [pid for r in self._reals for pid in range(r * vpr, (r + 1) * vpr)]

    # ------------------------------------------------------------- routing

    def _put_messages(self, src_pid: int, msgs: list[Message]) -> None:
        bundles = self._bundle_outbox(src_pid, msgs)
        local = []
        for bundle in bundles:
            w = self._real_worker[self._owner(bundle[0])]
            if w == self.worker_id:
                local.append(bundle)
            else:
                self._outgoing[w].append((src_pid, bundle))
        self._write_staged(self._stage_bundles(src_pid, local))
        self._release(src_pid)

    def _apply_remote(self, items: list) -> None:
        """Stage bundles shipped from peer workers.

        Grouped per source pid in ascending order, one DiskWrite batch
        per destination real — exactly the batches the sequential backend
        issues for that source's outbox restricted to these reals.
        """
        by_src: dict[int, list] = {}
        for src_pid, bundle in items:
            by_src.setdefault(src_pid, []).append(bundle)
        for src_pid in sorted(by_src):
            self._write_staged(self._stage_bundles(src_pid, by_src[src_pid]))

    def _exchange_phase(self, net: Transport, r: int, phase: int) -> None:
        outgoing = self._outgoing
        self._outgoing = None
        self._apply_remote(net.exchange(outgoing, r, phase))
        # staging copied every shared-memory payload into the arena; the
        # segments backing this phase's packets can go away now
        net.release()

    def _begin_phase(self) -> None:
        self._outgoing = {
            w: [] for w in range(self.n_workers) if w != self.worker_id
        }

    # ------------------------------------------------------------ per round

    def execute_local_round(
        self, program: CGMProgram, r: int, rngs: list, net: Transport
    ) -> RoundStep:
        """This worker's share of one CGM round, including both network
        exchanges; mirrors :meth:`Engine._execute_round`."""
        cfg = self.cfg
        step = RoundStep.empty(cfg.v, cfg.p)
        io_before = self._io_totals()
        self._begin_phase()
        pids = list(self._local_pids())
        self._begin_superstep(pids)
        try:
            for pid in pids:
                self._run_vproc(program, r, pid, rngs[pid], step)
        finally:
            self._end_superstep()
        self._exchange_phase(net, r, 0)
        self._flip()
        if self.balanced:
            self._begin_phase()
            self._relay_superstep()
            self._exchange_phase(net, r, 1)
            self._flip()
        step.io = self._io_totals().delta_since(io_before)
        return step


def run_worker_session(
    worker_id: int,
    session: dict[str, Any],
    cmd_get,
    reply,
    net: Transport,
) -> None:
    """One worker's command loop, transport-agnostic.

    Commands: ``("setup", {pid: input})``, ``("round", r)``, ``("finish",)``,
    ``("snapshot",)``, ``("restore", backend, rng_states)``, ``("stop",)``.
    *cmd_get* blocks for the next coordinator command, *reply(kind,
    payload)* ships a result back, and *net* is this worker's
    :class:`~repro.core.transport.base.Transport`.  The same loop runs in
    a forked process (:class:`LocalFleet`) and in a ``repro node``
    daemon's session thread — the commands and replies are identical, so
    the coordinator cannot tell the transports apart.

    ``session["runtime"]`` is the coordinator's per-run
    :class:`~repro.tune.runtime.RuntimeConfig` snapshot — workers never
    consult their own environment, so every process of one run agrees on
    the knob values even if environments differ across machines.

    Exceptions propagate to the caller, which owns error reporting.
    """
    cfg: MachineConfig = session["cfg"]
    program: CGMProgram = session["program"]
    runtime = session["runtime"]
    tracer = JsonlRecorder() if session["trace_enabled"] else None
    eng = _WorkerEngine(
        cfg, session["balanced"], worker_id, session["plan"], tracer=tracer
    )
    eng._max_message_items = session["max_message_items"]
    eng.faults = session["faults"]
    eng.runtime = runtime
    eng._rt = runtime
    eng._start(program)
    rngs = spawn_rngs(cfg.seed, cfg.v)
    while True:
        cmd = cmd_get()
        op = cmd[0]
        if op == "setup":
            eng._setup_contexts(program, cmd[1])
            reply("setup", None)
        elif op == "round":
            r = cmd[1]
            step = eng.execute_local_round(program, r, rngs, net)
            payload = {
                "sent": [(pid, n) for pid, n in enumerate(step.sent) if n],
                "recv": [(pid, n) for pid, n in enumerate(step.recv) if n],
                "wall": [
                    (real, s)
                    for real, s in enumerate(step.per_real_wall)
                    if s
                ],
                "messages": step.messages,
                "comm_items": step.comm_items,
                "cross_items": step.cross_items,
                "all_done": step.all_done,
                "io": step.io,
                "pending": eng._pending_messages(),
                "events": tracer.drain() if tracer else [],
            }
            reply("round", payload)
        elif op == "finish":
            outputs = {
                pid: program.finish(eng._load_context(pid))
                for pid in eng._local_pids()
            }
            for pid in list(eng._charged):
                eng._release(pid)
            payload = {
                "outputs": outputs,
                "io_by_real": {rl: eng.arrays[rl].stats for rl in eng._reals},
                "mem_peaks": {rl: eng.memories[rl].peak for rl in eng._reals},
                "ctx_io": eng._ctx_blocks_io,
                "msg_io": eng._msg_blocks_io,
                "ovf": eng._overflow_blocks,
                "fault_stats": collect_fault_stats(eng.arrays.values()),
                "transport": {
                    "kind": net.kind,
                    "sent": net.packets_sent,
                    "recv": net.packets_received,
                },
                "events": tracer.drain() if tracer else [],
            }
            reply("final", payload)
        elif op == "snapshot":
            payload = {
                "backend": eng._snapshot_backend(),
                "rng": {
                    pid: rngs[pid].bit_generator.state
                    for pid in eng._local_pids()
                },
            }
            reply("snapshot", payload)
        elif op == "restore":
            eng._restore_backend(cmd[1])
            for pid, state in cmd[2].items():
                rngs[pid].bit_generator.state = state
            reply("restore", None)
        elif op == "stop":
            net.close()
            return
        else:  # pragma: no cover - protocol bug
            raise SimulationError(f"unknown worker command {op!r}")


def _worker_main(
    worker_id: int,
    session: dict[str, Any],
    transport_kind: str,
    cmd_q,
    result_q,
    net_qs,
    abort,
) -> None:
    """Forked-process entry point: build the local transport, run the
    session loop, report any failure as an ``("error", traceback)``."""
    try:
        if transport_kind == "memory":
            net: Transport = MemoryTransport(worker_id, net_qs, abort)
        else:
            runtime = session["runtime"]
            threshold = (
                runtime.shm_threshold
                if runtime is not None
                else fastpath.shm_threshold()
            )
            net = ShmTransport(worker_id, net_qs, abort, threshold)
        run_worker_session(
            worker_id,
            session,
            cmd_get=lambda: poll_get(cmd_q, abort, "a coordinator command"),
            reply=lambda kind, payload: result_q.put((worker_id, kind, payload)),
            net=net,
        )
    except TransportAbort:
        pass
    except BaseException:
        try:
            result_q.put((worker_id, "error", traceback.format_exc()))
        except Exception:  # pragma: no cover - queue already torn down
            pass


class LocalFleet:
    """Forked worker processes wired with multiprocessing queues.

    The single-machine fleet: one daemonic process per worker, a shared
    result queue, one command queue per worker, and the per-worker inbox
    queues the memory/shm transports exchange packets on.  Mirrors
    :class:`~repro.core.transport.tcp.TcpFleet`'s surface so the
    coordinator never branches on locality.
    """

    def __init__(self, n_workers: int, transport_kind: str) -> None:
        self.n_workers = n_workers
        self.kind = transport_kind
        self._procs: list = []

    def start(self, session: dict[str, Any]) -> None:
        ctx = _mp_context()
        self._abort = ctx.Event()
        self._result_q = ctx.Queue()
        self._cmd_qs = [ctx.Queue() for _ in range(self.n_workers)]
        net_qs = [ctx.Queue() for _ in range(self.n_workers)]
        self._procs = []
        for w in range(self.n_workers):
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    w,
                    session,
                    self.kind,
                    self._cmd_qs[w],
                    self._result_q,
                    net_qs,
                    self._abort,
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    def send(self, w: int, cmd: tuple) -> None:
        try:
            self._cmd_qs[w].put(cmd)
        except Exception:  # pragma: no cover - queue torn down
            pass

    def broadcast(self, cmd: tuple) -> None:
        for w in range(self.n_workers):
            self.send(w, cmd)

    def result(self, timeout: float):
        """One ``(worker, kind, payload)`` reply; raises ``queue.Empty``."""
        return self._result_q.get(timeout=timeout)

    def alive(self, w: int) -> bool:
        return bool(self._procs) and self._procs[w].is_alive()

    def request_abort(self) -> None:
        self._abort.set()

    def stop(self, force: bool = False) -> None:
        if not self._procs:
            return
        if force:
            # crash recovery: peers may be blocked mid-exchange waiting on
            # a dead worker's packet, so abort first instead of asking
            # politely and eating the join timeout
            self._abort.set()
        else:
            self.broadcast(("stop",))
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                self._abort.set()
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
        self._procs = []

    # ------------------------------------------------------------ telemetry

    def node_label(self, w: int) -> str:
        return f"local/{w}"

    def event_tags(self, w: int) -> dict[str, Any]:
        return {}

    def stats(self) -> dict[str, dict[str, int]]:
        return {}


def make_fleet(runtime, n_workers: int):
    """Fleet for the run's ``REPRO_TRANSPORT``: local processes, or TCP
    connections to the ``REPRO_NODES`` daemons."""
    kind = getattr(runtime, "transport", None) or "shm"
    if kind == "tcp":
        return TcpFleet(require_nodes(runtime.nodes), n_workers)
    return LocalFleet(n_workers, kind)


class ProcessParEngine(Engine):
    """Coordinator of the multi-core Algorithm 3 backend.

    Drives the shared :meth:`Engine.run` loop but delegates every round to
    the worker processes and merges their per-round accounting; the
    resulting :class:`CostReport` is bit-identical to
    :class:`ParEMEngine`'s while wall-clock scales with the core count.
    """

    #: cost cross-checks and the bench store key off the engine name, and
    #: the worker backend models the same machine, so it keeps "par-em".
    name = "par-em"
    supports_checkpoint = True
    supports_faults = True

    def __init__(
        self,
        cfg: MachineConfig,
        balanced: bool = False,
        validate: bool = True,
        tracer=None,
        metrics=None,
    ) -> None:
        super().__init__(
            cfg, balanced=balanced, validate=validate, tracer=tracer, metrics=metrics
        )
        self.n_workers = max(1, min(cfg.workers or cfg.p, cfg.p))
        self._fleet = None
        self._pending = False
        self._restarts = 0

    # ------------------------------------------------------------ lifecycle

    def _start(self, program: CGMProgram) -> None:
        cfg = self.cfg
        self._plan = partition_reals(cfg.p, self.n_workers)
        if self._rt is None:
            from repro.tune.runtime import current

            self._rt = current()
        session = {
            "cfg": cfg,
            "balanced": self.balanced,
            "trace_enabled": self.tracer.enabled,
            "plan": self._plan,
            "program": program,
            "max_message_items": self._max_message_items,
            "faults": self.faults,
            "runtime": self._rt,
        }
        if self._fleet is None:
            # the fleet survives crash recovery (_shutdown + _start), so
            # relay statistics accumulate across restarts of one run
            self._fleet = make_fleet(self._rt, self.n_workers)
        self._fleet.start(session)
        if self.tracer.enabled and self._fleet.kind == "tcp":
            self.tracer.emit(
                "transport_connect",
                transport=self._fleet.kind,
                nodes=[self._fleet.node_label(w) for w in range(self.n_workers)],
            )

    def run(self, program: CGMProgram, inputs: list[Any]):
        try:
            return super().run(program, inputs)
        finally:
            self._shutdown()

    def _shutdown(self, force: bool = False) -> None:
        if self._fleet is not None:
            self._fleet.stop(force)

    # ---------------------------------------------------------- round hooks

    def _broadcast(self, cmd: tuple) -> None:
        self._fleet.broadcast(cmd)

    def _gather(self, kind: str) -> dict[int, Any]:
        """One reply of *kind* from every worker, keyed by worker id."""
        got: dict[int, Any] = {}
        dead_cycles = 0
        while len(got) < self.n_workers:
            try:
                w, k, payload = self._fleet.result(timeout=_POLL_S)
            except queue.Empty:
                awaited_dead = [
                    w
                    for w in range(self.n_workers)
                    if w not in got and not self._fleet.alive(w)
                ]
                if awaited_dead:
                    dead_cycles += 1
                    if dead_cycles >= _DEAD_GRACE:
                        self._fleet.request_abort()
                        raise WorkerCrashed(awaited_dead, kind)
                continue
            if k == "error":
                self._fleet.request_abort()
                raise SimulationError(f"worker {w} failed:\n{payload}")
            if k != kind:  # pragma: no cover - protocol bug
                raise SimulationError(f"worker {w} sent {k!r}, expected {kind!r}")
            got[w] = payload
        return got

    def _setup_contexts(self, program: CGMProgram, inputs: list[Any]) -> None:
        vpr = self.cfg.vprocs_per_real
        for w in range(self.n_workers):
            local = {
                pid: inputs[pid]
                for real in self._plan[w]
                for pid in range(real * vpr, (real + 1) * vpr)
            }
            self._fleet.send(w, ("setup", local))
        self._gather("setup")

    def _execute_round(self, program: CGMProgram, r: int, rngs: list) -> RoundStep:
        while True:
            try:
                return self._dispatch_round(r)
            except WorkerCrashed as exc:
                self._recover(program, r, exc)

    def _recover(self, program: CGMProgram, r: int, exc: WorkerCrashed) -> None:
        """Respawn the worker fleet and rewind it to the last checkpoint,
        so the crashed round can be re-dispatched."""
        cm = self.checkpoint
        snap = self._last_ckpt
        if cm is None or snap is None:
            raise exc
        if self._restarts >= cm.max_restarts:
            raise SimulationError(
                f"giving up after {self._restarts} worker restarts: {exc}"
            ) from exc
        if snap["round"] != r - 1:
            raise SimulationError(
                f"cannot re-dispatch round {r}: last checkpoint is for "
                f"round {snap['round']}"
            ) from exc
        self._restarts += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "worker_redispatch",
                round=r,
                dead_workers=exc.workers,
                restart=self._restarts,
                from_round=snap["round"],
            )
        self._shutdown(force=True)
        self._start(program)
        self._restore_state(snap, rngs=[])

    def _dispatch_round(self, r: int) -> RoundStep:
        cfg = self.cfg
        self._broadcast(("round", r))
        results = self._gather("round")
        step = RoundStep.empty(cfg.v, cfg.p)
        io = IOStats(D=cfg.D)
        self._pending = False
        for w in sorted(results):
            payload = results[w]
            for pid, n in payload["sent"]:
                step.sent[pid] += n
            for pid, n in payload["recv"]:
                step.recv[pid] += n
            for real, s in payload["wall"]:
                step.per_real_wall[real] += s
            step.messages += payload["messages"]
            step.comm_items += payload["comm_items"]
            step.cross_items += payload["cross_items"]
            step.all_done &= payload["all_done"]
            io.merge(payload["io"])
            self._pending |= payload["pending"]
            replay_events(
                self.tracer, payload["events"], worker=w,
                **self._fleet.event_tags(w),
            )
        step.io = io
        return step

    def _pending_messages(self) -> bool:
        return self._pending

    def _supersteps_per_round(self) -> int:
        # Lemma 4, same as ParEMEngine: v/p real supersteps per CGM round.
        return self.cfg.vprocs_per_real

    def _round_boundary(self, r: int) -> None:
        pass

    # ---------------------------------------------------------- checkpointing

    def _snapshot_state(self, rngs: list) -> dict[str, Any]:
        """Gather each worker's backend slice and RNG states and merge
        them into the same canonical shape :class:`ParEMEngine` produces."""
        self._broadcast(("snapshot",))
        results = self._gather("snapshot")
        backend: dict[str, Any] = {
            "arrays": {},
            "memories": {},
            "allocators": {},
            "ctx_region": {},
            "staged_meta": {},
            "ready_meta": {},
            "parities": None,
            "charged": {},
            "ctx_io": 0,
            "msg_io": 0,
            "ovf": 0,
        }
        rng_states: list = [None] * self.cfg.v
        for w in sorted(results):
            part = results[w]["backend"]
            for key in ("arrays", "memories", "allocators", "ctx_region",
                        "staged_meta", "ready_meta", "charged"):
                backend[key].update(part[key])
            backend["parities"] = part["parities"]
            backend["ctx_io"] += part["ctx_io"]
            backend["msg_io"] += part["msg_io"]
            backend["ovf"] += part["ovf"]
            for pid, state in results[w]["rng"].items():
                rng_states[pid] = state
        return {"backend": backend, "rng_states": rng_states}

    def _restore_state(self, snap: dict[str, Any], rngs: list) -> None:
        """Scatter a merged snapshot back over the worker fleet.

        Every worker receives the full backend dict and filters to its own
        reals/pids; the ``ctx_io``/``msg_io``/``ovf`` totals cannot be
        split per real, so worker 0 carries them and the rest start at
        zero — the final sums stay exact under any worker count.
        """
        backend = snap["backend"]
        vpr = self.cfg.vprocs_per_real
        for w in range(self.n_workers):
            part = dict(backend)
            if w != 0:
                part["ctx_io"] = part["msg_io"] = part["ovf"] = 0
            local_rng = {
                pid: snap["rng_states"][pid]
                for real in self._plan[w]
                for pid in range(real * vpr, (real + 1) * vpr)
            }
            self._fleet.send(w, ("restore", part, local_rng))
        self._gather("restore")
        self._pending = any(bool(v) for v in backend["ready_meta"].values())

    # ------------------------------------------------------------- wrap-up

    def _collect_outputs(self, program: CGMProgram) -> list[Any]:
        self._broadcast(("finish",))
        finals = self._gather("final")
        outputs: dict[int, Any] = {}
        self._finals = finals
        for w in sorted(finals):
            outputs.update(finals[w]["outputs"])
            replay_events(
                self.tracer, finals[w]["events"], worker=w,
                **self._fleet.event_tags(w),
            )
        return [outputs[pid] for pid in range(self.cfg.v)]

    def _finalize(self, report: CostReport) -> None:
        io_by_real: dict[int, IOStats] = {}
        mem_peaks: dict[int, int] = {}
        ctx_io = msg_io = ovf = 0
        for w in sorted(self._finals):
            payload = self._finals[w]
            io_by_real.update(payload["io_by_real"])
            mem_peaks.update(payload["mem_peaks"])
            ctx_io += payload["ctx_io"]
            msg_io += payload["msg_io"]
            ovf += payload["ovf"]
        ParEMEngine._fold_stats(
            report,
            [io_by_real[r] for r in sorted(io_by_real)],
            [mem_peaks[r] for r in sorted(mem_peaks)],
            ctx_io,
            msg_io,
            ovf,
        )
        emit_block_metrics(self.metrics, self.name, self.cfg, ctx_io, msg_io, ovf)
        self._emit_transport_metrics()
        fstats = None
        for w in sorted(self._finals):
            part = self._finals[w].get("fault_stats")
            if part is None:
                continue
            if fstats is None:
                fstats = FaultStats()
            fstats.merge(part)
        if fstats is not None:
            report.fault_stats = fstats
            emit_fault_metrics(self.metrics, self.name, self.cfg, fstats)

    def _emit_transport_metrics(self) -> None:
        """``repro_transport_*``: per-node packet counts (all transports)
        and relayed bytes (tcp, from the coordinator's relay counters)."""
        mx = self.metrics
        if not mx.enabled or self._fleet is None:
            return
        kind = self._fleet.kind
        packets = mx.counter(
            "repro_transport_packets_total", "worker-exchange packets by node"
        )
        for w in sorted(self._finals):
            tp = self._finals[w].get("transport")
            if not tp:
                continue
            node = self._fleet.node_label(w)
            packets.labels(transport=kind, node=node, direction="sent").inc(
                tp["sent"]
            )
            packets.labels(transport=kind, node=node, direction="recv").inc(
                tp["recv"]
            )
        relayed = self._fleet.stats()
        if relayed:
            bytes_total = mx.counter(
                "repro_transport_bytes_total",
                "bytes of relayed exchange frames by destination node",
            )
            for node, s in relayed.items():
                bytes_total.labels(transport=kind, node=node).inc(s["bytes"])
