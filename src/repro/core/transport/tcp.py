"""Networked worker exchange: the coordinator relays packets between
``repro node`` daemons over length-prefixed, checksummed TCP frames.

Topology is a star: the coordinator holds exactly one socket per node
(one node per worker), and a peer-to-peer packet from worker *i* to
worker *j* travels ``node i -> coordinator -> node j``.  The relay adds
a hop but changes nothing the simulation can observe — the packets, and
the one-packet-per-peer-per-phase barrier they implement, are the same
objects the local transports move, so every logical ``IOStats`` counter
stays bit-identical (DESIGN.md §12 gives the full argument).

Wire format (both directions): a 12-byte header ``>4sII`` of magic
``RPTP``, CRC-32 of the payload, and payload length, followed by the
pickled payload.  Frames::

    ("hello", proto, version, fingerprint, worker_id, session)  C -> N
    ("ready", worker_id, version) | ("reject", reason)          N -> C
    ("cmd", command_tuple)                                      C -> N
    ("result", worker_id, kind, payload)                        N -> C
    ("pkt", dest, r, phase, src, wire)                          N -> C
    ("pkt", r, phase, src, wire)                                C -> N

The handshake ships the coordinator's frozen per-run
:class:`~repro.tune.runtime.RuntimeConfig`; the node re-fingerprints it
and rejects on protocol, release, or fingerprint mismatch so two
machines can never silently disagree on knob values mid-run.
"""

from __future__ import annotations

import pickle
import queue
import socket
import struct
import threading
import time
import zlib
from typing import Any

from repro.core.transport.base import Transport, TransportError, poll_get
from repro.util.validation import ConfigurationError

#: bumped whenever a frame or handshake shape changes incompatibly.
PROTOCOL_VERSION = 1

_MAGIC = b"RPTP"
_HEADER = struct.Struct(">4sII")
#: refuse absurd frame lengths before allocating (corrupt/foreign peer).
MAX_FRAME_BYTES = 1 << 31

#: connect retry policy (tests shrink these via monkeypatch).
CONNECT_RETRIES = 6
CONNECT_BACKOFF_S = 0.2
CONNECT_BACKOFF_MAX_S = 3.0


def runtime_fingerprint(rt: Any) -> str:
    """Canonical digest of every knob value in a RuntimeConfig snapshot."""
    import hashlib
    import json

    doc = rt.knob_values() if rt is not None else {}
    canon = json.dumps(doc, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def send_frame(sock: socket.socket, obj: Any, lock=None) -> int:
    """Pickle *obj*, frame it, write it; returns bytes on the wire."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(_MAGIC, zlib.crc32(payload) & 0xFFFFFFFF, len(payload))
    data = header + payload
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)
    return len(data)


def _recv_exact(sock: socket.socket, n: int, what: str) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise TransportError(
                f"connection closed while reading {what}"
                + (" (mid-frame)" if buf else "")
            )
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket) -> Any:
    """One framed object off the socket; validates magic and checksum."""
    magic, crc, length = _HEADER.unpack(
        _recv_exact(sock, _HEADER.size, "a frame header")
    )
    if magic != _MAGIC:
        raise TransportError(
            f"bad frame magic {magic!r} (not a repro transport peer?)"
        )
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame length {length} exceeds the sanity bound")
    payload = _recv_exact(sock, length, f"a {length}-byte frame payload")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise TransportError("frame checksum mismatch (corrupt stream)")
    return pickle.loads(payload)


def dial(host: str, port: int) -> socket.socket:
    """Connect with bounded retry + exponential backoff."""
    delay = CONNECT_BACKOFF_S
    last: Exception | None = None
    for attempt in range(CONNECT_RETRIES):
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last = exc
            if attempt + 1 < CONNECT_RETRIES:
                time.sleep(delay)
                delay = min(delay * 2, CONNECT_BACKOFF_MAX_S)
    raise TransportError(
        f"cannot reach node {host}:{port} after {CONNECT_RETRIES} attempts: {last}"
    )


class TcpWorkerTransport(Transport):
    """A node-side worker's exchange endpoint: one socket to the coordinator.

    Outbound packets are framed ``("pkt", dest, ...)`` for the coordinator
    to relay; inbound packets arrive on *inbox*, fed by the node's socket
    reader thread (which demultiplexes them from command frames).
    """

    kind = "tcp"

    def __init__(self, worker_id: int, sock, wlock, inbox, abort) -> None:
        super().__init__(worker_id)
        self.sock = sock
        self.wlock = wlock
        self.inbox = inbox
        self.abort = abort

    def send_packet(self, dest: int, r: int, phase: int, wire: tuple) -> None:
        try:
            send_frame(
                self.sock, ("pkt", dest, r, phase, self.worker_id, wire), self.wlock
            )
        except OSError as exc:
            raise TransportError(f"packet send to worker {dest} failed: {exc}")

    def recv_packet(self, what: str) -> tuple:
        return poll_get(self.inbox, self.abort, what)


class _NodeConn:
    """Coordinator-side state for one node: socket, writer lock, counters."""

    def __init__(self, worker_id: int, host: str, port: int) -> None:
        self.worker_id = worker_id
        self.host = host
        self.port = port
        self.label = f"{host}:{port}"
        self.sock: socket.socket | None = None
        self.wlock = threading.Lock()
        self.alive = False
        self.packets = 0  # packet frames relayed *to* this node
        self.bytes = 0  # bytes of those frames

    def close(self) -> None:
        sock, self.sock, self.alive = self.sock, None, False
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class TcpFleet:
    """The coordinator's worker fleet when workers are ``repro node``
    daemons: dial + handshake each node, then relay their peer packets
    and funnel their result frames into one queue.

    Presents the same surface :class:`repro.core.workers.LocalFleet` does
    (``start/send/broadcast/result/alive/stop``), so the coordinator's
    round protocol — including checkpointed crash recovery, which maps a
    dead connection onto the existing respawn-and-redispatch path — is
    transport-blind.
    """

    kind = "tcp"

    def __init__(self, nodes: list[tuple[str, int]], n_workers: int) -> None:
        if not nodes:
            raise ConfigurationError(
                "transport 'tcp' needs at least one node in REPRO_NODES"
            )
        self.n_workers = n_workers
        # round-robin workers over nodes: a daemon hosts one session per
        # connection, so fewer nodes than workers just means co-tenancy
        self._conns = [
            _NodeConn(w, *nodes[w % len(nodes)]) for w in range(n_workers)
        ]
        self._results: queue.Queue = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._stopping = False

    # ----------------------------------------------------------- lifecycle

    def start(self, session: dict[str, Any]) -> None:
        from repro import __version__

        self._stopping = False
        self._threads = []
        fp = runtime_fingerprint(session.get("runtime"))
        for conn in self._conns:
            conn.sock = dial(conn.host, conn.port)
            conn.alive = True
            conn.packets = conn.bytes = 0
            send_frame(
                conn.sock,
                ("hello", PROTOCOL_VERSION, __version__, fp, conn.worker_id, session),
                conn.wlock,
            )
        for conn in self._conns:
            try:
                reply = recv_frame(conn.sock)
            except TransportError as exc:
                self.stop(force=True)
                raise TransportError(
                    f"node {conn.label} closed during handshake: {exc}"
                ) from None
            if reply[0] == "reject":
                self.stop(force=True)
                raise TransportError(f"node {conn.label} rejected the run: {reply[1]}")
            if reply[0] != "ready" or reply[1] != conn.worker_id:
                self.stop(force=True)
                raise TransportError(
                    f"node {conn.label} sent an unexpected handshake reply {reply[:2]!r}"
                )
        for conn in self._conns:
            t = threading.Thread(
                target=self._reader, args=(conn,), daemon=True,
                name=f"repro-tcp-reader-{conn.worker_id}",
            )
            t.start()
            self._threads.append(t)

    def _reader(self, conn: _NodeConn) -> None:
        """Demultiplex one node's frames: results up, packets across."""
        try:
            while True:
                frame = recv_frame(conn.sock)
                tag = frame[0]
                if tag == "result":
                    self._results.put((frame[1], frame[2], frame[3]))
                elif tag == "pkt":
                    _tag, dest, r, phase, src, wire = frame
                    self._relay(dest, (r, phase, src, wire))
                # anything else: a protocol bug; drop rather than wedge
        except (TransportError, OSError):
            conn.alive = False

    def _relay(self, dest: int, pkt: tuple) -> None:
        dc = self._conns[dest]
        try:
            n = send_frame(dc.sock, ("pkt",) + pkt, dc.wlock)
        except (OSError, AttributeError):
            # dest died; its absence surfaces as WorkerCrashed in _gather
            dc.alive = False
            return
        dc.packets += 1
        dc.bytes += n

    # ------------------------------------------------------------- commands

    def send(self, w: int, cmd: tuple) -> None:
        conn = self._conns[w]
        if conn.sock is None:
            return
        try:
            send_frame(conn.sock, ("cmd", cmd), conn.wlock)
        except OSError:
            conn.alive = False

    def broadcast(self, cmd: tuple) -> None:
        for w in range(self.n_workers):
            self.send(w, cmd)

    def result(self, timeout: float):
        """One ``(worker, kind, payload)`` reply; raises ``queue.Empty``."""
        return self._results.get(timeout=timeout)

    def alive(self, w: int) -> bool:
        return self._conns[w].alive

    def request_abort(self) -> None:
        """Unblock every worker: closing the sockets EOFs the node readers,
        which trip each session's abort flag."""
        self._stopping = True
        for conn in self._conns:
            conn.close()

    def stop(self, force: bool = False) -> None:
        self._stopping = True
        if not force:
            self.broadcast(("stop",))
        for conn in self._conns:
            conn.close()
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads = []
        # drain stale replies so a restart's _gather never sees them
        try:
            while True:
                self._results.get_nowait()
        except queue.Empty:
            pass

    # ------------------------------------------------------------ telemetry

    def node_label(self, w: int) -> str:
        return self._conns[w].label

    def event_tags(self, w: int) -> dict[str, Any]:
        return {"node": self._conns[w].label}

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-node relay traffic: packet frames and bytes sent to it."""
        return {
            conn.label: {"packets": conn.packets, "bytes": conn.bytes}
            for conn in self._conns
        }
