"""The ``repro node`` daemon: hosts one worker of a distributed run.

A node binds one port, accepts coordinator connections, and runs one
worker session per connection (sessions may overlap while an aborted
one drains, so a respawning coordinator never waits on a zombie).  Each
session validates the handshake — protocol version, repro release, and
the fingerprint of the shipped :class:`~repro.tune.runtime.RuntimeConfig`
— then enters the exact command loop the multiprocessing backend runs
(:func:`repro.core.workers.run_worker_session`), with a
:class:`~repro.core.transport.tcp.TcpWorkerTransport` as its network.

Lifecycle: SIGTERM/SIGINT stop the accept loop and abort any in-flight
session; the daemon exits 0 — the CI ``distributed`` lane asserts this
clean shutdown leaves no orphan processes.  A coordinator vanishing
(EOF on the socket) aborts only that session; the node goes straight
back to accepting, which is what lets a respawned coordinator reconnect
during crash recovery.

The session payload arrives pickled, so the CGM program class must be
importable on the node — ship the same code tree (and ``PYTHONPATH``)
to every machine.
"""

from __future__ import annotations

import queue
import signal
import socket
import threading
import traceback
from typing import Any, Callable

from repro.core.transport.base import POLL_S, TransportAbort, TransportError, poll_get
from repro.core.transport.tcp import (
    PROTOCOL_VERSION,
    TcpWorkerTransport,
    recv_frame,
    runtime_fingerprint,
    send_frame,
)


class _AnyEvent:
    """`is_set` over several events: a session aborts when either its own
    socket dies or the whole daemon is asked to stop."""

    def __init__(self, *events: Any) -> None:
        self.events = events

    def is_set(self) -> bool:
        return any(e.is_set() for e in self.events)


class NodeServer:
    """One bound, listening node; embeddable (tests) or CLI-driven.

    ``port=0`` binds an ephemeral port; :attr:`address` reports the real
    one.  :meth:`kill_session` hard-closes every live session socket —
    the test hook that makes "node death mid-run" deterministic without
    killing a process.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self._srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._srv.bind((host, port))
        self._srv.listen(4)
        self._srv.settimeout(0.5)
        self.port = self._srv.getsockname()[1]
        self.stop_event = threading.Event()
        self.sessions = 0
        self._live: list[socket.socket] = []
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------- control

    def start_thread(self) -> "NodeServer":
        self._thread = threading.Thread(
            target=self.serve_forever, kwargs={"log": None}, daemon=True,
            name=f"repro-node-{self.port}",
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self.stop_event.set()
        self.kill_session()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def kill_session(self) -> int:
        """Abruptly close every live session socket (simulated node death);
        returns how many were killed."""
        with self._lock:
            victims, self._live = self._live, []
        for sock in victims:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        return len(victims)

    # --------------------------------------------------------------- serve

    def serve_forever(self, log: "Callable[[str], None] | None" = print) -> int:
        emit = log if log is not None else (lambda msg: None)
        emit(f"repro node listening on {self.address}")
        try:
            while not self.stop_event.is_set():
                try:
                    conn, addr = self._srv.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                with self._lock:
                    self._live.append(conn)
                self.sessions += 1
                t = threading.Thread(
                    target=self._session, args=(conn, addr, emit), daemon=True,
                    name=f"repro-node-session-{self.sessions}",
                )
                t.start()
        finally:
            self._srv.close()
        emit("repro node: clean shutdown")
        return 0

    def _forget(self, conn: socket.socket) -> None:
        with self._lock:
            if conn in self._live:
                self._live.remove(conn)

    def _session(self, conn: socket.socket, addr, emit) -> None:
        try:
            self._run_session(conn, addr, emit)
        except (TransportError, OSError) as exc:
            emit(f"session from {addr[0]}:{addr[1]} dropped: {exc}")
        except Exception:
            emit(f"session from {addr[0]}:{addr[1]} failed:\n{traceback.format_exc()}")
        finally:
            self._forget(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _run_session(self, conn: socket.socket, addr, emit) -> None:
        from repro import __version__
        from repro.core.workers import run_worker_session

        hello = recv_frame(conn)
        if not (isinstance(hello, tuple) and hello and hello[0] == "hello"):
            raise TransportError(f"expected a hello frame, got {hello!r:.80}")
        _tag, proto, version, fp, worker_id, session = hello
        reason = None
        if proto != PROTOCOL_VERSION:
            reason = (
                f"protocol version mismatch: node speaks {PROTOCOL_VERSION}, "
                f"coordinator speaks {proto}"
            )
        elif version != __version__:
            reason = (
                f"repro release mismatch: node runs {__version__}, "
                f"coordinator runs {version}"
            )
        elif runtime_fingerprint(session.get("runtime")) != fp:
            reason = (
                "RuntimeConfig fingerprint mismatch: the shipped knob snapshot "
                "does not hash to the coordinator's value (corrupt or tampered)"
            )
        wlock = threading.Lock()
        if reason is not None:
            emit(f"rejecting session from {addr[0]}:{addr[1]}: {reason}")
            send_frame(conn, ("reject", reason), wlock)
            return
        send_frame(conn, ("ready", worker_id, __version__), wlock)
        emit(f"worker {worker_id} session from {addr[0]}:{addr[1]} started")

        cmd_q: queue.Queue = queue.Queue()
        inbox: queue.Queue = queue.Queue()
        gone = threading.Event()
        abort = _AnyEvent(gone, self.stop_event)

        def read_loop() -> None:
            try:
                while True:
                    frame = recv_frame(conn)
                    tag = frame[0]
                    if tag == "cmd":
                        cmd_q.put(frame[1])
                    elif tag == "pkt":
                        inbox.put((frame[1], frame[2], frame[3], frame[4]))
            except (TransportError, OSError):
                gone.set()

        reader = threading.Thread(
            target=read_loop, daemon=True, name=f"repro-node-reader-{worker_id}"
        )
        reader.start()
        net = TcpWorkerTransport(worker_id, conn, wlock, inbox, abort)
        try:
            run_worker_session(
                worker_id,
                session,
                cmd_get=lambda: poll_get(cmd_q, abort, "a coordinator command"),
                reply=lambda kind, payload: send_frame(
                    conn, ("result", worker_id, kind, payload), wlock
                ),
                net=net,
            )
        except TransportAbort:
            pass
        except BaseException:
            try:
                send_frame(
                    conn,
                    ("result", worker_id, "error", traceback.format_exc()),
                    wlock,
                )
            except (TransportError, OSError):
                pass
        finally:
            gone.set()
            self._forget(conn)
            try:
                conn.close()
            except OSError:
                pass
            reader.join(timeout=2.0)
        emit(f"worker {worker_id} session finished")


def serve_node(host: str = "127.0.0.1", port: int = 0) -> int:
    """CLI entry point: bind, install signal handlers, serve until told
    to stop; returns the process exit code."""
    server = NodeServer(host, port)

    def _stop(signum, frame) -> None:
        server.stop_event.set()
        server.kill_session()

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
    return server.serve_forever()


# imported for re-export convenience by the CLI
__all__ = ["NodeServer", "serve_node", "POLL_S"]
