"""Pluggable worker-exchange transports for the multi-process backend.

``REPRO_TRANSPORT`` selects how Algorithm 3's real-processor packets
move: ``memory`` (queues, inline pickling), ``shm`` (queues + shared-
memory bulk segments — the default, today's behavior), or ``tcp``
(``repro node`` daemons on ``REPRO_NODES``, spanning machines).  All
three carry the same packets under the same one-per-peer-per-phase
barrier, so logical cost counters are bit-identical across them.
"""

from repro.core.transport.base import (
    POLL_S,
    Transport,
    TransportAbort,
    TransportError,
    parse_nodes,
    poll_get,
    render_nodes,
    require_nodes,
)
from repro.core.transport.local import MemoryTransport, ShmTransport
from repro.core.transport.tcp import TcpFleet, TcpWorkerTransport

#: the REPRO_TRANSPORT vocabulary
TRANSPORT_KINDS = ("memory", "shm", "tcp")

__all__ = [
    "POLL_S",
    "Transport",
    "TransportAbort",
    "TransportError",
    "MemoryTransport",
    "ShmTransport",
    "TcpWorkerTransport",
    "TcpFleet",
    "TRANSPORT_KINDS",
    "parse_nodes",
    "poll_get",
    "render_nodes",
    "require_nodes",
]
