"""The worker-exchange :class:`Transport` interface.

Algorithm 3's real processors exchange exactly one packet per peer per
phase — that all-to-all is both the data plane and the superstep
barrier.  A :class:`Transport` owns how those packets move between the
OS processes (or machines) hosting the reals; everything above it (the
bundling, staging, and cost accounting in
:mod:`repro.core.workers`) is transport-agnostic, which is what keeps
logical ``IOStats`` bit-identical across backends.

Concrete transports:

* :class:`~repro.core.transport.local.MemoryTransport` — per-worker
  ``multiprocessing`` queues, payloads pickled inline;
* :class:`~repro.core.transport.local.ShmTransport` — the queue path
  plus one ``shared_memory`` segment per bulk packet (the PR-5 path);
* :class:`~repro.core.transport.tcp.TcpWorkerTransport` — length-
  prefixed, checksummed frames over a socket to the coordinator, which
  relays peer packets between ``repro node`` daemons.

The exchange protocol (:meth:`Transport.exchange`) is shared: send one
encoded packet to every peer, then block until one packet per peer of
the *same* ``(round, phase)`` has arrived, buffering any packet from a
peer that raced ahead into a later phase.  :meth:`Transport.barrier` is
the degenerate exchange with empty payloads.
"""

from __future__ import annotations

import queue
from typing import Any

from repro.util.validation import ConfigurationError, SimulationError

#: seconds a blocked packet/command read waits between abort-flag polls.
POLL_S = 0.25


class TransportError(SimulationError):
    """A worker-exchange transport failed at runtime (CLI exit code 3).

    Configuration mistakes (a malformed ``REPRO_NODES``, a missing node
    list) raise :class:`~repro.tune.knobs.KnobError` /
    :class:`~repro.util.validation.ConfigurationError` instead — the
    usage-error taxonomy (exit code 2).
    """


class TransportAbort(SimulationError):
    """Raised inside a worker when the coordinator signalled shutdown."""


def parse_nodes(raw: str) -> list[tuple[str, int]]:
    """``host:port,host:port,...`` -> validated (host, port) pairs.

    Raises :class:`ValueError` with a message suitable for the knob
    registry's one-line ``KnobError`` wrapping.
    """
    nodes: list[tuple[str, int]] = []
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        host, sep, port_s = entry.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"node {entry!r} is not host:port (use host:port,host:port,...)"
            )
        try:
            port = int(port_s)
        except ValueError:
            raise ValueError(f"node {entry!r} has a non-integer port") from None
        if not 0 < port < 65536:
            raise ValueError(f"node {entry!r} port must be in [1, 65535]")
        nodes.append((host, port))
    if not nodes:
        raise ValueError("no nodes listed (use host:port,host:port,...)")
    return nodes


def render_nodes(nodes: list[tuple[str, int]]) -> str:
    return ",".join(f"{h}:{p}" for h, p in nodes)


def require_nodes(nodes: "str | None") -> list[tuple[str, int]]:
    """The validated node list the tcp transport needs, or a clean error."""
    if not nodes:
        raise ConfigurationError(
            "transport 'tcp' needs a node list: set REPRO_NODES=host:port,... "
            "(one 'repro node' daemon per entry)"
        )
    try:
        return parse_nodes(nodes)
    except ValueError as exc:  # pragma: no cover - knob parsing catches first
        raise ConfigurationError(f"invalid REPRO_NODES: {exc}") from None


def poll_get(q: Any, abort: Any, what: str) -> Any:
    """Blocking queue read that honours the shared abort flag."""
    while True:
        if abort.is_set():
            raise TransportAbort(f"aborted while waiting for {what}")
        try:
            return q.get(timeout=POLL_S)
        except queue.Empty:
            continue


class Transport:
    """One worker's view of the simulated network.

    Subclasses implement the four primitives (:meth:`connect`,
    :meth:`send_packet`, :meth:`recv_packet`, :meth:`close`) plus
    optionally the packet codec (:meth:`_encode` / :meth:`_decode`, the
    shm bulk path) and :meth:`release` (post-staging segment cleanup).
    ``exchange``/``barrier`` are shared and define the one-packet-per-
    peer-per-phase semantics every backend must preserve.
    """

    #: registry name ("memory" | "shm" | "tcp"), for traces and metrics
    kind = "abstract"

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        #: packets from peers that raced ahead, keyed by (round, phase)
        self._buffer: dict[tuple[int, int], dict[int, tuple]] = {}
        self.packets_sent = 0
        self.packets_received = 0

    # ------------------------------------------------------------ primitives

    def connect(self) -> None:
        """Establish the link to every peer (no-op for local transports)."""

    def send_packet(self, dest: int, r: int, phase: int, wire: tuple) -> None:
        raise NotImplementedError

    def recv_packet(self, what: str) -> tuple:
        """One ``(round, phase, src, wire)`` from any peer (blocking)."""
        raise NotImplementedError

    def close(self) -> None:
        """Tear the link down (idempotent)."""

    # ----------------------------------------------------------------- codec

    def _encode(self, items: list) -> tuple:
        """Wire form of one packet; the default inlines the items."""
        return ("inl", items)

    def _decode(self, wire: tuple) -> list:
        kind = wire[0]
        if kind != "inl":  # pragma: no cover - protocol bug
            raise TransportError(f"unknown wire packet kind {kind!r}")
        return wire[1]

    def release(self) -> None:
        """Free resources backing packets whose payloads have been staged."""

    # -------------------------------------------------------------- protocol

    def exchange(self, outgoing: dict[int, list], r: int, phase: int) -> list:
        """Send one packet to every peer, receive one from each; returns
        the concatenated remote items in ascending-peer order."""
        for w in sorted(outgoing):
            self.send_packet(w, r, phase, self._encode(outgoing[w]))
            self.packets_sent += 1
        expected = set(outgoing)
        got = self._buffer.pop((r, phase), {})
        while expected - set(got):
            rr, pp, src, wire = self.recv_packet(f"round {r} phase {phase} packets")
            self.packets_received += 1
            if (rr, pp) == (r, phase):
                got[src] = wire
            else:
                self._buffer.setdefault((rr, pp), {})[src] = wire
        merged: list = []
        for src in sorted(got):
            merged.extend(self._decode(got[src]))
        return merged

    def barrier(self, peers: list[int], r: int, phase: int) -> None:
        """Synchronize with *peers* without moving data: the degenerate
        one-empty-packet-per-peer exchange."""
        self.exchange({w: [] for w in peers}, r, phase)
