"""Single-machine transports: per-worker queues, optionally with a
shared-memory bulk path.

:class:`MemoryTransport` is the plain path — every packet pickles
through its destination worker's ``multiprocessing`` queue.
:class:`ShmTransport` keeps the queue as the control lane but moves a
packet's bulk ``BlockRun`` payload bytes through one
``multiprocessing.shared_memory`` segment per packet once they total at
least the configured threshold: the receiver's scatter copies straight
from the mapping into its track arena, so bulk bytes cross the process
boundary exactly once and are never pickled.  Both re-home the PR-3/PR-5
exchange paths of ``repro.core.workers`` behind the
:class:`~repro.core.transport.base.Transport` interface — the packets on
the wire (and hence every logical counter) are unchanged.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory

from repro.core.transport.base import Transport, poll_get
from repro.pdm.fastpath import BlockRun

#: payload placeholder in a shared-memory packet: the receiver rebuilds a
#: BlockRun view over the mapped segment from these coordinates.
_SHM_REF = "__shmrun__"


def _untrack_shm(shm) -> None:
    """Detach a *sender's* segment from the resource tracker.

    Ownership is explicit in the exchange protocol: the receiver unlinks
    after staging, and ``SharedMemory.unlink`` itself unregisters, which
    balances the registration made when the receiver attached.  Only the
    sender's create-side registration is left dangling — untracking it
    here keeps the tracker from warning (or double-unlinking) at exit.
    The receiver must NOT untrack, or ``unlink`` would unregister a name
    the tracker no longer holds and spray KeyError tracebacks on stderr.
    """
    try:
        resource_tracker.unregister(getattr(shm, "_name", shm.name), "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


class MemoryTransport(Transport):
    """Peer-to-peer ``multiprocessing`` queues; payloads pickled inline."""

    kind = "memory"

    def __init__(self, worker_id: int, inboxes, abort) -> None:
        super().__init__(worker_id)
        self.inboxes = inboxes
        self.abort = abort

    def send_packet(self, dest: int, r: int, phase: int, wire: tuple) -> None:
        self.inboxes[dest].put((r, phase, self.worker_id, wire))

    def recv_packet(self, what: str) -> tuple:
        return poll_get(self.inboxes[self.worker_id], self.abort, what)


class ShmTransport(MemoryTransport):
    """Queue control lane + shared-memory segments for bulk payloads.

    A packet buffered for a later phase keeps its wire form; its segment
    is only mapped when that phase consumes it.  :meth:`release` closes
    and unlinks consumed segments after staging.
    """

    kind = "shm"

    def __init__(self, worker_id: int, inboxes, abort, shm_threshold) -> None:
        super().__init__(worker_id, inboxes, abort)
        self.shm_threshold = shm_threshold
        self._consumed: list = []

    def _encode(self, items: list) -> tuple:
        """``("inl", items)`` below the threshold, else
        ``("shm", segment_name, items_with_refs)``."""
        threshold = self.shm_threshold
        if threshold is None:
            return ("inl", items)
        total = sum(
            bundle[2].nbytes
            for _src, bundle in items
            if isinstance(bundle[2], BlockRun)
        )
        if total < threshold:
            return ("inl", items)
        shm = shared_memory.SharedMemory(create=True, size=total)
        try:
            view = shm.buf
            off = 0
            wire_items = []
            for src_pid, (dest, parts, payload) in items:
                if isinstance(payload, BlockRun):
                    n = payload.nbytes
                    view[off : off + n] = memoryview(payload.buf).cast("B")
                    payload = (
                        _SHM_REF, off, n, payload.nblocks, payload.block_bytes
                    )
                    off += n
                wire_items.append((src_pid, (dest, parts, payload)))
            return ("shm", shm.name, wire_items)
        finally:
            # the receiver owns the segment's lifetime from here on
            _untrack_shm(shm)
            shm.close()

    def _decode(self, wire: tuple) -> list:
        kind = wire[0]
        if kind == "inl":
            return wire[1]
        _, name, wire_items = wire
        shm = shared_memory.SharedMemory(name=name)
        self._consumed.append(shm)
        view = memoryview(shm.buf)
        items = []
        for src_pid, (dest, parts, payload) in wire_items:
            if isinstance(payload, tuple) and payload and payload[0] == _SHM_REF:
                _tag, off, n, nblocks, block_bytes = payload
                payload = BlockRun(view[off : off + n], nblocks, block_bytes)
            items.append((src_pid, (dest, parts, payload)))
        return items

    def release(self) -> None:
        """Unlink segments whose payloads have been staged on disk.

        Callers must have dropped every ``BlockRun`` view first (staging
        copies the bytes into the arena); a still-exported mapping is
        retried on the next call rather than erroring the round.
        """
        keep = []
        for shm in self._consumed:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still alive
                keep.append(shm)
        self._consumed = keep
