"""Error types and the `require` helper used across the library."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """An engine detected an internal inconsistency while simulating."""


class ConfigurationError(ValueError):
    """A machine/algorithm configuration is malformed (e.g. v not divisible
    by p, non-positive block size)."""


class PreemptedError(SimulationError):
    """A run was preempted at a round boundary after checkpointing.

    Raised by :meth:`repro.cgm.engine.Engine.run` when its ``preempt``
    callable returns true at a checkpoint boundary — the on-disk snapshot
    written immediately before is complete, so re-running with
    ``resume=True`` continues bit-identically.  The job server uses this
    to evict a running job in favor of a higher-priority tenant without
    losing its finished rounds.
    """


class ConstraintViolation(ValueError):
    """A paper-mandated parameter constraint does not hold.

    The paper's theorems only apply inside a parameter region (e.g.
    ``N = Omega(v*D*B)``, ``N >= v^2*B + v^2(v-1)/2``).  Engines raise this
    in strict mode and warn otherwise.
    """


def require(cond: bool, message: str, exc: type[Exception] = ConfigurationError) -> None:
    """Raise *exc* with *message* unless *cond* holds."""
    if not cond:
        raise exc(message)
