"""Item accounting and serialization.

The PDM counts cost in units of fixed-size *items*; a block holds ``B``
items and one parallel I/O moves ``D*B`` items.  We fix an item at 8 bytes
(one 64-bit word — the granularity Algorithm 1 of the paper distributes in
its round-robin binning).

Serialization has a fast path for numpy arrays (raw buffer + tiny header)
because contexts and message payloads are overwhelmingly numpy data; other
objects fall back to pickle.  The encoding is self-describing so the disk
engines can round-trip arbitrary context dictionaries through the simulated
block store.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

import numpy as np

#: Size of one PDM application item in bytes (a 64-bit word).
ITEM_BYTES = 8

# One-byte format tags.
_TAG_PICKLE = b"P"
_TAG_NDARRAY = b"N"

_HEADER = struct.Struct("<cQ")  # tag, payload byte length


def serialize(obj: Any) -> bytes:
    """Encode *obj* to a self-describing byte string.

    Contiguous numpy arrays are encoded as a raw buffer plus a pickled
    (dtype, shape) header — roughly 40x faster than pickling the array for
    the large payloads the simulators move around.
    """
    if isinstance(obj, np.ndarray) and obj.dtype != object:
        arr = np.ascontiguousarray(obj)
        # ascontiguousarray promotes 0-d to 1-d; keep the original shape.
        # The dtype object itself is pickled so structured dtypes survive.
        meta = pickle.dumps((arr.dtype, obj.shape), protocol=5)
        body = arr.tobytes()
        return (
            _HEADER.pack(_TAG_NDARRAY, len(meta))
            + meta
            + body
        )
    body = pickle.dumps(obj, protocol=5)
    return _HEADER.pack(_TAG_PICKLE, len(body)) + body


def deserialize(data: bytes) -> Any:
    """Decode a byte string produced by :func:`serialize`.

    Trailing padding (zero bytes appended to reach a block boundary) is
    ignored, which lets the disk engines store objects in whole blocks.
    """
    tag, length = _HEADER.unpack_from(data, 0)
    off = _HEADER.size
    if tag == _TAG_NDARRAY:
        meta = pickle.loads(data[off : off + length])
        dtype_spec, shape = meta
        dtype = np.dtype(dtype_spec)
        nbytes = dtype.itemsize * int(np.prod(shape)) if shape else dtype.itemsize
        body_off = off + length
        arr = np.frombuffer(data[body_off : body_off + nbytes], dtype=dtype)
        return arr.reshape(shape).copy()
    if tag == _TAG_PICKLE:
        return pickle.loads(data[off : off + length])
    raise ValueError(f"unknown serialization tag {tag!r}")


def bytes_to_items(nbytes: int) -> int:
    """Number of items needed to hold *nbytes* bytes (rounded up)."""
    return -(-nbytes // ITEM_BYTES)


def item_count(obj: Any) -> int:
    """Logical size of *obj* in items.

    Numpy arrays are measured by their buffer size; lists/tuples of scalars
    by their length; everything else by serialized size.  This is the
    quantity charged against h-relation and memory budgets.
    """
    if isinstance(obj, np.ndarray):
        return max(1, bytes_to_items(obj.nbytes))
    if isinstance(obj, (list, tuple)) and obj and all(
        isinstance(x, (int, float, np.integer, np.floating)) for x in obj[:8]
    ):
        return len(obj)
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 1
    if isinstance(obj, bytes):
        return max(1, bytes_to_items(len(obj)))
    return max(1, bytes_to_items(len(serialize(obj))))


def blocks_needed(n_items: int, B: int) -> int:
    """Number of size-``B`` blocks needed to store *n_items* items."""
    if n_items <= 0:
        return 0
    return -(-n_items // B)
