"""Shared low-level utilities: item accounting, serialization, RNG, validation.

The Parallel Disk Model (PDM) measures everything in *application data
items*.  This package fixes the item size (8 bytes), provides fast
serialization of contexts/messages into item-aligned byte strings, and the
deterministic random-number plumbing used across algorithms and benchmarks.
"""

from repro.util.items import (
    ITEM_BYTES,
    blocks_needed,
    bytes_to_items,
    deserialize,
    item_count,
    serialize,
)
from repro.util.rng import make_rng, spawn_rngs
from repro.util.validation import (
    ConfigurationError,
    ConstraintViolation,
    SimulationError,
    require,
)

__all__ = [
    "ITEM_BYTES",
    "blocks_needed",
    "bytes_to_items",
    "deserialize",
    "item_count",
    "serialize",
    "make_rng",
    "spawn_rngs",
    "ConfigurationError",
    "ConstraintViolation",
    "SimulationError",
    "require",
]
