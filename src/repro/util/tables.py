"""Fixed-width text tables shared by benchmarks, the CLI and the analyzer.

Formatting rules (:func:`fmt_cell`): floats print with three significant
or decimal digits depending on magnitude; ``nan``/``inf`` render literally
instead of tripping the magnitude tests (every comparison against NaN is
False, which previously fell through to the wrong branch); negative zero
collapses to ``0``.  Rows shorter than the header are padded with blanks
rather than raising.
"""

from __future__ import annotations

import math
from typing import Any, Sequence


def fmt_cell(x: Any) -> str:
    """Render one table cell."""
    if isinstance(x, float):
        if math.isnan(x):
            return "nan"
        if math.isinf(x):
            return "inf" if x > 0 else "-inf"
        if x == 0:  # includes -0.0
            return "0"
        if abs(x) >= 1000 or abs(x) < 0.01:
            return f"{x:.3g}"
        return f"{x:.3f}"
    return str(x)


def format_table(title: str, headers: Sequence[Any], rows: Sequence[Sequence[Any]]) -> str:
    """A compact right-aligned table as one string."""
    ncols = len(headers)
    padded = [[*map(fmt_cell, r), *[""] * (ncols - len(r))][:ncols] for r in rows]
    widths = [
        max(len(fmt_cell(h)), *(len(r[i]) for r in padded)) if padded else len(fmt_cell(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(fmt_cell(h).rjust(w) for h, w in zip(headers, widths))
    out = [f"=== {title} ===", line, "-" * len(line)]
    for r in padded:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def print_table(title: str, headers: Sequence[Any], rows: Sequence[Sequence[Any]]) -> None:
    """Print :func:`format_table` with a leading blank line (pytest ``-s``)."""
    print("\n" + format_table(title, headers, rows))
