"""Deterministic random-number plumbing.

Everything in the reproduction is seeded: benchmarks must be re-runnable
bit-for-bit, and the EM engines must replay identical message traffic on
every backend.  Virtual processors get independent child generators derived
from a single seed via :func:`numpy.random.SeedSequence.spawn`.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """A fresh :class:`numpy.random.Generator` for the given seed."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """*n* statistically-independent generators derived from one seed.

    Used to give each of the ``v`` virtual processors its own stream so a
    CGM algorithm's randomness does not depend on the order in which the
    engines happen to simulate the processors.
    """
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]
