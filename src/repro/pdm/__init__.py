"""Parallel Disk Model (PDM) substrate.

Implements the Vitter–Shriver two-level memory model the paper analyses
against: each (real) processor owns ``D`` independent disks; a disk is a
sequence of tracks; a track stores exactly one block of ``B`` items; one
*parallel I/O operation* may touch at most one track per disk and moves up
to ``D*B`` items at cost ``G``.

The substrate is a faithful simulator, not a performance shim: the disks
store real bytes, reads genuinely reconstruct what was written, and the
:class:`IOStats` counters are the PDM cost measure the paper's theorems are
stated in.  Two interchangeable executions exist — a per-op reference path
and a vectorized arena-backed fast path (:mod:`repro.pdm.fastpath`) — with
bit-identical counters, traces and stored bytes.
"""

from repro.pdm.block import blocks_for_bytes, pack_blocks, unpack_blocks
from repro.pdm.disk import Disk
from repro.pdm.disk_array import DiskArray, IOOp, greedy_batch_widths
from repro.pdm.fastpath import BlockRun, BufferPool
from repro.pdm.io_stats import DiskServiceModel, IOStats
from repro.pdm.memory import InternalMemory
from repro.pdm.vm import LRUPager

__all__ = [
    "blocks_for_bytes",
    "pack_blocks",
    "unpack_blocks",
    "Disk",
    "DiskArray",
    "IOOp",
    "greedy_batch_widths",
    "BlockRun",
    "BufferPool",
    "DiskServiceModel",
    "IOStats",
    "InternalMemory",
    "LRUPager",
]
