"""LRU demand-paging simulator — the "virtual memory" baseline of Figure 3.

The paper's experiment compares (a) a CGM sorting algorithm run naively on
top of OS virtual memory against (b) the same algorithm pushed through the
EM-CGM simulation.  The VM baseline degrades catastrophically once the
working set exceeds physical memory because paging is *unblocked* (4 KB
pages) and *non-parallel* (one disk arm at a time), while the simulation
does fully-parallel block I/O.

:class:`LRUPager` reproduces that mechanism: a flat virtual address space
of items is mapped onto fixed-size pages; an access run touches its pages
in order; misses evict the least-recently-used frame.  The fault count is
the quantity plotted against the EM engine's parallel-I/O count.
"""

from __future__ import annotations

from collections import OrderedDict


class LRUPager:
    """Single-level LRU page cache over an item-addressed space."""

    def __init__(self, memory_items: int, page_items: int = 512) -> None:
        # 512 items * 8 bytes = 4 KB, the classic page size.
        if page_items <= 0:
            raise ValueError("page size must be positive")
        self.page_items = page_items
        self.frames = max(1, memory_items // page_items)
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.faults = 0
        self.accesses = 0
        self.evictions = 0

    def touch_range(self, start_item: int, n_items: int) -> int:
        """Sequentially access items [start, start+n); returns new faults."""
        if n_items <= 0:
            return 0
        first = start_item // self.page_items
        last = (start_item + n_items - 1) // self.page_items
        before = self.faults
        for page in range(first, last + 1):
            self._touch_page(page)
        return self.faults - before

    def _touch_page(self, page: int) -> None:
        self.accesses += 1
        if page in self._resident:
            self._resident.move_to_end(page)
            return
        self.faults += 1
        if len(self._resident) >= self.frames:
            self._resident.popitem(last=False)
            self.evictions += 1
        self._resident[page] = None

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 1.0
        return 1.0 - self.faults / self.accesses

    def io_time(self, fault_cost_s: float = 0.0131) -> float:
        """Simulated paging time: one random 4 KB access per fault.

        The default per-fault cost is the service time of a 4 KB transfer
        under the same 1998 disk constants used by
        :class:`repro.pdm.io_stats.DiskServiceModel` (seek + rotation
        dominate: ~13.1 ms).
        """
        return self.faults * fault_cost_s
