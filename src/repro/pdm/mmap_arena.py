"""Memory-mapped track storage: the out-of-core arena backend.

:class:`MmapTrackArena` keeps the exact :class:`~repro.pdm.arena.TrackArena`
contract — batch scatter/gather, side-dict fallbacks, dict-portable
``snapshot``/``restore`` — but backs each disk's track matrix with a
``numpy.memmap`` over a spill file instead of a preallocated in-memory
array.  Simulated problem size is then bounded by disk capacity, not host
memory: the OS pages track data in and out on demand, and the arena's own
resident footprint is the per-track bookkeeping (occupancy mask + byte
lengths, ~9 bytes/track) plus whatever the page cache chooses to keep.

Spill-directory lifecycle:

* every arena creates its own run-scoped directory
  (``mkdtemp(prefix="repro-arena-")``) under ``$REPRO_SPILL_DIR`` (default:
  the system temp dir), holding one ``disk<d>.bin`` file per simulated
  disk — worker processes of the multi-core backend each build their own
  arenas, so directories never collide across processes;
* growth is by doubling, implemented as ``ftruncate`` + remap — the
  extension is a sparse hole, so untouched tracks cost no physical disk
  and read back as zeros, exactly matching the RAM arena's ``np.zeros``
  rows;
* ``$REPRO_SPILL_QUOTA`` (bytes, optional) bounds the total mapped size
  per arena; growth past it raises :class:`SimulationError` instead of
  filling the volume;
* :meth:`close` unmaps and deletes the directory; a ``weakref.finalize``
  does the same at garbage collection, so abandoned arenas (a killed run)
  cannot leak spill files past interpreter exit.

Snapshots need no special handling: ``snapshot``/``restore`` are inherited
and produce/accept the reference ``dict[int, bytes]`` representation, so a
checkpoint written under ``REPRO_ARENA=mmap`` restores under ``ram`` (or
the dict-backed reference path) bit-identically, and vice versa.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from typing import IO

import numpy as np

from repro.pdm.arena import TrackArena
from repro.tune.runtime import RuntimeConfig, current
from repro.util.validation import SimulationError


def _cleanup(files: "list[IO[bytes]]", path: str) -> None:
    """Best-effort teardown shared by close() and the GC finalizer."""
    for f in files:
        try:
            f.close()
        except OSError:  # pragma: no cover - already closed
            pass
    shutil.rmtree(path, ignore_errors=True)


def spill_quota() -> int | None:
    """Per-arena spill byte limit from ``REPRO_SPILL_QUOTA`` (None = no cap).

    Parsed by the centralized knob layer: malformed values raise a named
    :class:`~repro.tune.knobs.KnobError` instead of being ignored.
    """
    return current().spill_quota


class MmapTrackArena(TrackArena):
    """Track arena whose per-disk matrices live in spill files."""

    __slots__ = ("spill_dir", "_files", "_quota", "_finalizer", "__weakref__")

    def __init__(
        self,
        D: int,
        block_bytes: int,
        spill_dir: str | None = None,
        quota: int | None = None,
        runtime: RuntimeConfig | None = None,
    ) -> None:
        super().__init__(D, block_bytes)
        rt = runtime if runtime is not None else current()
        base = spill_dir or rt.spill_dir or None
        if base is not None:
            os.makedirs(base, exist_ok=True)
        self.spill_dir = tempfile.mkdtemp(prefix="repro-arena-", dir=base)
        self._files: list[IO[bytes]] = [
            open(os.path.join(self.spill_dir, f"disk{d}.bin"), "w+b")
            for d in range(D)
        ]
        self._quota = quota if quota is not None else rt.spill_quota
        self._finalizer = weakref.finalize(
            self, _cleanup, self._files, self.spill_dir
        )

    # -- growth ------------------------------------------------------------

    def _grow_data(self, disk: int, cap: int, have: int) -> None:
        if not self._files:
            raise SimulationError("mmap arena used after close()")
        new_bytes = cap * self.block_bytes
        if self._quota is not None:
            total = sum(
                int(a.shape[0]) * self.block_bytes
                for d, a in enumerate(self._data)
                if d != disk
            )
            if total + new_bytes > self._quota:
                raise SimulationError(
                    f"spill quota exceeded: disk {disk} needs {new_bytes} "
                    f"bytes, arena already holds {total}, "
                    f"REPRO_SPILL_QUOTA={self._quota}"
                )
        f = self._files[disk]
        f.truncate(new_bytes)
        f.flush()
        # remap over the grown file; the extension is a sparse zero hole,
        # so old rows are preserved in place and new rows read as zeros.
        # A gather still holding the previous (smaller) memmap keeps a
        # valid view of the same file until it drops the reference.
        self._data[disk] = np.memmap(
            f, dtype=np.uint8, mode="r+", shape=(cap, self.block_bytes)
        )

    # -- inspection --------------------------------------------------------

    def resident_nbytes(self) -> int:
        # the track matrices are file-backed: only bookkeeping is counted
        return self._bookkeeping_nbytes()

    def spill_nbytes(self) -> int:
        return sum(int(a.shape[0]) * self.block_bytes for a in self._data)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Unmap, close and delete the spill directory (idempotent)."""
        if not self._files:
            return
        # drop the memmaps before deleting their backing files
        self._data = [
            np.zeros((0, self.block_bytes), dtype=np.uint8) for _ in range(self.D)
        ]
        self._used = [np.zeros(0, dtype=bool) for _ in range(self.D)]
        self._nbytes = [np.zeros(0, dtype=np.int64) for _ in range(self.D)]
        files, self._files = self._files, []
        self._finalizer.detach()
        _cleanup(files, self.spill_dir)


def make_arena(
    D: int, block_bytes: int, runtime: RuntimeConfig | None = None
) -> TrackArena:
    """Build the track arena selected by ``REPRO_ARENA``.

    *runtime* is the engine's per-run knob snapshot; without one the
    current environment is resolved on the spot (module-level callers).
    """
    rt = runtime if runtime is not None else current()
    if rt.arena == "mmap":
        return MmapTrackArena(D, block_bytes, runtime=rt)
    return TrackArena(D, block_bytes)
