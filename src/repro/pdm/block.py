"""Cutting byte strings into fixed-size disk blocks and back.

A track stores exactly one block of ``B`` items (``B * ITEM_BYTES`` bytes).
Objects are serialized, zero-padded to a whole number of blocks, and cut;
:func:`unpack_blocks` concatenates and the self-describing serialization
header makes the padding harmless.
"""

from __future__ import annotations

from repro.util.items import ITEM_BYTES


def pack_blocks(data: bytes, B: int) -> list[bytes]:
    """Split *data* into blocks of ``B`` items, zero-padding the last one.

    Returns an empty list for empty input: storing nothing costs nothing.
    """
    if B <= 0:
        raise ValueError(f"block size must be positive, got B={B}")
    if not data:
        return []
    bb = B * ITEM_BYTES
    nblocks = -(-len(data) // bb)
    padded = data.ljust(nblocks * bb, b"\x00")
    return [padded[i * bb : (i + 1) * bb] for i in range(nblocks)]


def blocks_for_bytes(nbytes: int, B: int) -> int:
    """Number of ``B``-item blocks :func:`pack_blocks` would produce.

    The fast path sizes runs from this without materializing the block
    list, so byte lengths — and therefore every I/O counter derived from
    them — match the reference path exactly.
    """
    if B <= 0:
        raise ValueError(f"block size must be positive, got B={B}")
    if nbytes <= 0:
        return 0
    return -(-nbytes // (B * ITEM_BYTES))


def unpack_blocks(blocks: list[bytes]) -> bytes:
    """Concatenate blocks back into one byte string (padding included)."""
    return b"".join(blocks)
