"""Preallocated per-disk track storage for the fast path.

The reference :class:`~repro.pdm.disk.Disk` stores tracks in a
``dict[int, bytes]`` — flexible, but every write allocates a ``bytes`` and
every read hands back a Python object.  The arena replaces the dict with
one 2-D ``uint8`` array per disk (rows = tracks, row stride = the block
size in bytes) plus an occupancy mask and a per-track byte length, so a
whole parallel-I/O stream scatters or gathers with a handful of NumPy
fancy-indexing operations.

Invariants that keep the arena interchangeable with the dict:

* a track is either *occupied* (mask set, ``nbytes`` valid) or free —
  reading a free track is the same ``SimulationError`` as the dict path;
* rows are zero-padded past ``nbytes``, mirroring ``pack_blocks``;
* writes that do not fit the row stride (odd-sized standalone-``Disk``
  writes) or land on far-away tracks (the fault injector's shadow region
  at ``1 << 40``) fall back to a per-disk side dict, so the arena never
  needs to allocate rows for a sparse track space.

``snapshot``/``restore`` produce and accept the reference representation
(``dict[int, bytes]``), which keeps engine checkpoints portable between
``REPRO_FASTPATH`` settings.

Storage backends: this class keeps the track matrices as preallocated
in-memory arrays (``REPRO_ARENA=ram``, the default);
:class:`repro.pdm.mmap_arena.MmapTrackArena` subclasses it to back them
with per-disk ``numpy.memmap`` spill files for out-of-core runs
(``REPRO_ARENA=mmap``).  Only :meth:`_grow_data` differs — every batch
operation, invariant and snapshot shape is shared.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

#: Tracks at or beyond this index live in the side dict: growing the arena
#: to reach them would allocate rows for the whole gap.
MAX_DIRECT_TRACK = 1 << 20

_INITIAL_ROWS = 64


class TrackArena:
    """Dense track storage for the ``D`` disks of one array."""

    __slots__ = ("D", "block_bytes", "_data", "_used", "_nbytes", "_side", "on_grow")

    def __init__(self, D: int, block_bytes: int) -> None:
        self.D = D
        self.block_bytes = block_bytes
        #: optional observer called as ``on_grow(disk, cap)`` after one
        #: disk's track matrix grew (telemetry hook; never pickled — the
        #: owner re-attaches it when rebuilding an arena)
        self.on_grow: "Callable[[int, int], None] | None" = None
        self._data: list[np.ndarray] = [
            np.zeros((0, block_bytes), dtype=np.uint8) for _ in range(D)
        ]
        self._used: list[np.ndarray] = [np.zeros(0, dtype=bool) for _ in range(D)]
        self._nbytes: list[np.ndarray] = [np.zeros(0, dtype=np.int64) for _ in range(D)]
        self._side: list[dict[int, bytes]] = [{} for _ in range(D)]

    # -- growth ------------------------------------------------------------

    def _ensure_rows(self, disk: int, rows: int) -> None:
        have = self._data[disk].shape[0]
        if rows <= have:
            return
        cap = max(_INITIAL_ROWS, have)
        while cap < rows:
            cap *= 2
        self._grow_data(disk, cap, have)
        used = np.zeros(cap, dtype=bool)
        used[:have] = self._used[disk]
        nbytes = np.zeros(cap, dtype=np.int64)
        nbytes[:have] = self._nbytes[disk]
        self._used[disk] = used
        self._nbytes[disk] = nbytes
        if self.on_grow is not None:
            self.on_grow(disk, cap)

    def _grow_data(self, disk: int, cap: int, have: int) -> None:
        """Grow one disk's track matrix to *cap* rows, preserving the
        first *have* rows and zero-filling the rest.  The storage-backend
        hook: the base class reallocates in RAM, the mmap subclass
        extends its spill file with ``ftruncate`` and remaps."""
        data = np.zeros((cap, self.block_bytes), dtype=np.uint8)
        data[:have] = self._data[disk]
        self._data[disk] = data

    # -- single-track operations (Disk delegates here) ---------------------

    def put(self, disk: int, track: int, payload: bytes) -> None:
        """Store one track (the dict-compatible slow entry point)."""
        if track >= MAX_DIRECT_TRACK or len(payload) > self.block_bytes:
            self._free_row(disk, track)
            self._side[disk][track] = payload
            return
        self._side[disk].pop(track, None)
        self._ensure_rows(disk, track + 1)
        row = self._data[disk][track]
        n = len(payload)
        row[:n] = np.frombuffer(payload, dtype=np.uint8)
        row[n:] = 0
        self._used[disk][track] = True
        self._nbytes[disk][track] = n

    def get(self, disk: int, track: int) -> bytes | None:
        """Fetch one track as ``bytes``, or ``None`` when unwritten."""
        side = self._side[disk]
        if side:
            hit = side.get(track)
            if hit is not None:
                return hit
        if track < 0 or track >= self._used[disk].shape[0]:
            return None
        if not self._used[disk][track]:
            return None
        n = int(self._nbytes[disk][track])
        return self._data[disk][track, :n].tobytes()

    def _free_row(self, disk: int, track: int) -> None:
        if 0 <= track < self._used[disk].shape[0]:
            self._used[disk][track] = False
            self._nbytes[disk][track] = 0

    def free(self, disk: int, track: int) -> None:
        self._side[disk].pop(track, None)
        self._free_row(disk, track)

    # -- bulk operations (DiskArray fast path) -----------------------------

    def scatter(self, disks: np.ndarray, tracks: np.ndarray, rows: np.ndarray) -> None:
        """Store ``rows[i]`` (full block stride each) at ``(disks[i], tracks[i])``.

        Duplicate addresses within one call resolve last-wins, matching the
        sequential reference loop.  Rows must already carry their padding;
        every stored track is marked full-stride.  Tracks at or beyond
        ``MAX_DIRECT_TRACK`` divert to the side dict exactly as
        :meth:`put` does — growing the dense matrix to reach them would
        allocate rows for the whole gap.
        """
        if tracks.size and int(tracks.max()) >= MAX_DIRECT_TRACK:
            far = tracks >= MAX_DIRECT_TRACK
            for i in np.flatnonzero(far).tolist():
                self.put(int(disks[i]), int(tracks[i]), rows[i].tobytes())
            near = ~far
            disks, tracks, rows = disks[near], tracks[near], rows[near]
        bb = self.block_bytes
        for d in range(self.D):
            idx = np.flatnonzero(disks == d)
            if idx.size == 0:
                continue
            tt = tracks[idx]
            self._ensure_rows(d, int(tt.max()) + 1)
            self._data[d][tt] = rows[idx]
            self._used[d][tt] = True
            self._nbytes[d][tt] = bb
            side = self._side[d]
            if side:
                for t in tt.tolist():
                    side.pop(t, None)

    def gather(self, disks: np.ndarray, tracks: np.ndarray, out: np.ndarray) -> bool:
        """Fill ``out[i]`` with the block at ``(disks[i], tracks[i])``.

        Returns ``False`` (without touching *out*) when any requested track
        lives in a side dict or is shorter than the full stride — callers
        fall back to the per-track reference loop, which handles those and
        raises the canonical unwritten-track error.  Returns ``True`` on a
        completed dense gather.
        """
        bb = self.block_bytes
        for d in range(self.D):
            idx = np.flatnonzero(disks == d)
            if idx.size == 0:
                continue
            if self._side[d]:
                return False
            tt = tracks[idx]
            used = self._used[d]
            if int(tt.max()) >= used.shape[0] or not used[tt].all():
                return False
            if not (self._nbytes[d][tt] == bb).all():
                return False
            out[idx] = self._data[d][tt]
        return True

    # -- inspection / checkpointing ----------------------------------------

    def tracks_in_use(self, disk: int) -> int:
        return int(self._used[disk].sum()) + len(self._side[disk])

    def resident_nbytes(self) -> int:
        """Host-memory footprint of the arena's storage.

        For the RAM backend this includes the track matrices themselves;
        the mmap backend excludes them (they are file-backed and paged by
        the OS), which is what the scale benchmarks assert stays
        O(bookkeeping), not O(N).
        """
        total = sum(int(d.nbytes) for d in self._data)
        return total + self._bookkeeping_nbytes()

    def _bookkeeping_nbytes(self) -> int:
        total = 0
        for d in range(self.D):
            total += int(self._used[d].nbytes) + int(self._nbytes[d].nbytes)
            total += sum(len(p) for p in self._side[d].values())
        return total

    def spill_nbytes(self) -> int:
        """Bytes held in spill files (0 for the in-memory backend)."""
        return 0

    def close(self) -> None:
        """Release backing storage (spill files for the mmap backend).

        The RAM arena has nothing to release; the method exists so callers
        can tear down any arena uniformly.
        """

    def max_track(self, disk: int) -> int:
        used = np.flatnonzero(self._used[disk])
        dense = int(used[-1]) if used.size else -1
        side = max(self._side[disk], default=-1)
        return max(dense, side)

    def snapshot(self, disk: int) -> dict[int, bytes]:
        """The reference ``dict[int, bytes]`` view of one disk's tracks."""
        out: dict[int, bytes] = {}
        for t in np.flatnonzero(self._used[disk]).tolist():
            n = int(self._nbytes[disk][t])
            out[t] = self._data[disk][t, :n].tobytes()
        out.update(self._side[disk])
        return out

    def restore(self, disk: int, tracks: dict[int, bytes]) -> None:
        self._used[disk][:] = False
        self._nbytes[disk][:] = 0
        self._side[disk].clear()
        for t, payload in tracks.items():
            self.put(disk, t, payload)
