"""Runtime switch and zero-copy containers for the vectorized fast path.

The simulator has two executions of the *same* logical machine:

* the **reference path** — per-:class:`~repro.pdm.disk_array.IOOp` Python
  loops over dict-backed tracks, kept as the executable specification and
  selected with ``REPRO_FASTPATH=0``;
* the **fast path** — whole parallel-I/O streams serviced as single NumPy
  gather/scatter operations over a preallocated per-disk track arena
  (:mod:`repro.pdm.arena`).

Both must produce bit-identical outputs, ``IOStats`` and traces; the
differential suite in ``tests/core/test_fastpath_differential.py`` pins
this.  This module holds the pieces shared by both sides of the split:

* :func:`enabled` / :func:`set_enabled` — the ``REPRO_FASTPATH`` switch
  (default on).  ``set_enabled`` writes the environment variable too, so
  worker processes spawned after the call agree with the parent.
* :func:`arena_kind` / :func:`set_arena_kind` — the ``REPRO_ARENA``
  storage selector for the fast path's track arena: ``ram`` (default,
  preallocated NumPy) or ``mmap`` (file-backed
  :class:`~repro.pdm.mmap_arena.MmapTrackArena` for out-of-core runs).
* :func:`prefetch_enabled` — the ``REPRO_PREFETCH`` switch (default on)
  for the double-buffered context prefetch pipeline
  (:mod:`repro.pdm.pipeline`).
* :class:`BlockRun` — a run of fixed-size blocks backed by one buffer,
  the zero-copy replacement for a ``list[bytes]`` of packed blocks.
* :class:`BufferPool` — bounded reuse of gather/scatter staging buffers,
  killing the per-track allocations of the reference path.
* :func:`shm_threshold` — payload size above which the workers backend
  ships bundles via ``multiprocessing.shared_memory`` instead of pickle.
"""

from __future__ import annotations

import numpy as np

from repro.tune import knobs as _knobs
from repro.tune.knobs import ARENA_KINDS, DEFAULT_SHM_THRESHOLD  # noqa: F401
from repro.tune.runtime import current as _current


def enabled() -> bool:
    """True when the vectorized fast path is selected (``REPRO_FASTPATH``).

    The knob accepts ``on``/``off`` spellings plus ``auto[:blocks]``
    (per-superstep dispatch); both ``on`` and ``auto`` report True here —
    arena-backed storage is shared by both.  Parsed by
    :mod:`repro.tune.knobs`; malformed values raise a named
    :class:`~repro.tune.knobs.KnobError`.  Read dynamically so tests can
    flip the environment per-run; engines snapshot a
    :class:`~repro.tune.runtime.RuntimeConfig` once per run instead.
    """
    return _current().fastpath_mode != "off"


def set_enabled(flag: bool) -> None:
    """Select the fast (True) or reference (False) path process-wide.

    Writes ``REPRO_FASTPATH`` (via the centralized knob layer) so child
    processes started afterwards (the workers backend) inherit the same
    selection.
    """
    _knobs.set_env("REPRO_FASTPATH", "1" if flag else "0")


def arena_kind() -> str:
    """The arena storage backend selected by ``REPRO_ARENA``.

    ``ram`` (the default) keeps each disk's track matrix as a
    preallocated in-memory NumPy array; ``mmap`` backs it with per-disk
    ``numpy.memmap`` files under a run-scoped spill directory, so the
    simulated problem size is bounded by disk, not host memory.  An
    unknown value fails loudly (named :class:`~repro.tune.knobs.KnobError`)
    rather than silently running in the wrong mode.
    """
    return _current().arena


def set_arena_kind(kind: str) -> None:
    """Select the arena storage backend process-wide.

    Writes ``REPRO_ARENA`` (via the centralized knob layer) so child
    processes started afterwards (the workers backend) build the same
    storage.
    """
    if kind not in ARENA_KINDS:
        from repro.util.validation import ConfigurationError

        raise ConfigurationError(
            f"unknown arena kind {kind!r}; choose from {ARENA_KINDS}"
        )
    _knobs.set_env("REPRO_ARENA", kind)


def prefetch_enabled() -> bool:
    """True when the double-buffered context prefetcher is selected.

    ``REPRO_PREFETCH`` — unset or truthy means *on*; the pipeline only
    engages on the fast path (the reference path stays a strictly
    sequential executable specification).
    """
    rt = _current()
    return rt.fastpath_mode != "off" and rt.prefetch


def shm_threshold() -> int | None:
    """Payload bytes above which worker packets use shared memory.

    ``None`` disables the shared-memory transport entirely: when the fast
    path is off (payloads are ``list[bytes]``, the reference wire format)
    or ``REPRO_SHM_BYTES`` is non-positive.
    """
    return _current().shm_threshold


class BlockRun:
    """``nblocks`` fixed-size blocks backed by a single buffer.

    The buffer may be up to one block shorter than ``nblocks *
    block_bytes``; the missing tail is implicit zero padding, exactly as
    :func:`repro.pdm.block.pack_blocks` pads the last block.  Keeping the
    padding implicit is what makes the container zero-copy: a serialized
    payload is wrapped as-is, and the scatter into the arena pads only the
    final track in place.
    """

    __slots__ = ("buf", "nblocks", "block_bytes")

    def __init__(
        self, buf: bytes | bytearray | memoryview | np.ndarray, nblocks: int, block_bytes: int
    ) -> None:
        nbytes = len(buf) if not isinstance(buf, np.ndarray) else int(buf.nbytes)
        if nbytes > nblocks * block_bytes:
            raise ValueError(
                f"buffer of {nbytes} bytes does not fit {nblocks} blocks "
                f"of {block_bytes} bytes"
            )
        self.buf = buf
        self.nblocks = nblocks
        self.block_bytes = block_bytes

    @property
    def nbytes(self) -> int:
        buf = self.buf
        return int(buf.nbytes) if isinstance(buf, np.ndarray) else len(buf)

    def to_blocks(self) -> list[bytes]:
        """Materialize the reference representation (copies; fallback only)."""
        bb = self.block_bytes
        data = bytes(self.buf).ljust(self.nblocks * bb, b"\x00")
        return [data[i * bb : (i + 1) * bb] for i in range(self.nblocks)]

    def __reduce__(self) -> tuple:
        # Pickling (Queue fallback in the workers backend) materializes the
        # buffer; shared-memory transport avoids this entirely.
        return (BlockRun, (bytes(self.buf), self.nblocks, self.block_bytes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockRun(nblocks={self.nblocks}, block_bytes={self.block_bytes}, "
            f"nbytes={self.nbytes})"
        )


class BufferPool:
    """Bounded pool of reusable ``uint8`` staging buffers.

    ``take`` hands out a buffer of at least the requested size (callers
    slice to exact length); ``give`` returns it for reuse.  The pool keeps
    at most ``max_buffers`` and grows sizes geometrically so a long run
    converges on a handful of right-sized arenas instead of allocating per
    parallel I/O.
    """

    __slots__ = ("_free", "max_buffers")

    def __init__(self, max_buffers: int = 8) -> None:
        self._free: list[np.ndarray] = []
        self.max_buffers = max_buffers

    def take(self, nbytes: int) -> np.ndarray:
        best = -1
        for i, buf in enumerate(self._free):
            if buf.size >= nbytes and (best < 0 or buf.size < self._free[best].size):
                best = i
        if best >= 0:
            return self._free.pop(best)
        cap = 256
        while cap < nbytes:
            cap *= 2
        return np.empty(cap, dtype=np.uint8)

    def give(self, buf: np.ndarray) -> None:
        if buf.base is not None:  # only whole buffers come back
            return
        if len(self._free) < self.max_buffers:
            self._free.append(buf)
