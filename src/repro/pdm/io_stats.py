"""PDM cost counters and the disk service-time model.

:class:`IOStats` counts *parallel I/O operations* — the PDM cost measure.
One operation moves up to ``D*B`` items; per the model (paper, appendix
6.2) "an operation involving fewer elements incurs the same cost", so the
counter increments by one whether the op touches 1 disk or all ``D``.

:class:`DiskServiceModel` converts block counts into simulated seconds
using the classic seek + rotational-latency + transfer decomposition.  Its
default constants are late-1990s commodity-disk values, which is what makes
the Figure 8 (Stevens) throughput-vs-blocksize curve come out with the
paper's shape: throughput rises steeply with block size and saturates near
the raw transfer rate once the fixed positioning overhead is amortized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.items import ITEM_BYTES


def _sub(a: list[int], b: list[int]) -> list[int]:
    """Element-wise a - b, treating missing entries of b as zero."""
    return [x - (b[i] if i < len(b) else 0) for i, x in enumerate(a)]


@dataclass
class IOStats:
    """Counters for one disk array (one real processor's D disks).

    Pass ``D`` at construction to size the per-disk and width counters
    eagerly; stat objects used purely as merge accumulators (e.g. in
    :class:`repro.cgm.metrics.CostReport`) may leave it ``None`` and adopt
    a size from the first :meth:`merge`.  :meth:`record` validates its
    ``D`` argument against the sized counters — a disk array that changed
    width mid-run is a bug, not something to silently mis-index over.
    """

    parallel_ios: int = 0       #: number of parallel I/O operations issued
    blocks_read: int = 0        #: total blocks moved disk -> memory
    blocks_written: int = 0     #: total blocks moved memory -> disk
    read_ops: int = 0           #: parallel I/Os that were reads
    write_ops: int = 0          #: parallel I/Os that were writes
    per_disk_blocks: list[int] = field(default_factory=list)
    #: width_histogram[w] = parallel I/Os that touched exactly w disks.
    width_histogram: list[int] = field(default_factory=list)
    D: int | None = None        #: disk count, when known at construction

    def __post_init__(self) -> None:
        if self.D is None and self.per_disk_blocks:
            self.D = len(self.per_disk_blocks)
        if self.D is not None:
            if self.D < 1:
                raise ValueError(f"need at least one disk, got D={self.D}")
            self._size_counters(self.D)

    def _size_counters(self, D: int) -> None:
        if not self.per_disk_blocks:
            self.per_disk_blocks = [0] * D
        elif len(self.per_disk_blocks) != D:
            raise ValueError(
                f"per_disk_blocks sized for {len(self.per_disk_blocks)} disks, "
                f"but D={D}"
            )
        if not self.width_histogram:
            self.width_histogram = [0] * (D + 1)
        elif len(self.width_histogram) != D + 1:
            raise ValueError(
                f"width_histogram sized for {len(self.width_histogram) - 1} "
                f"disks, but D={D}"
            )

    def record(self, n_read: int, n_written: int, touched: list[int], D: int) -> None:
        """Record one parallel I/O touching blocks on disks *touched*."""
        if self.D is None:
            self.D = D
            self._size_counters(D)
        elif D != self.D:
            raise ValueError(
                f"parallel I/O recorded with D={D} on stats sized for "
                f"D={self.D} disks"
            )
        self.parallel_ios += 1
        self.blocks_read += n_read
        self.blocks_written += n_written
        if n_read:
            self.read_ops += 1
        if n_written:
            self.write_ops += 1
        for d in touched:
            self.per_disk_blocks[d] += 1
        self.width_histogram[len(touched)] += 1

    def record_batch(
        self,
        *,
        nops: int,
        n_read: int,
        n_written: int,
        read_ops: int,
        write_ops: int,
        per_disk: list[int],
        width_counts: list[int],
        D: int,
    ) -> None:
        """Record the aggregate of *nops* parallel I/Os in one call.

        The fast path computes batch boundaries vectorially and folds the
        whole stream into the counters at once; the per-field arithmetic is
        exactly the sum of the per-op :meth:`record` calls the reference
        path would have made.  ``per_disk[d]`` is the number of blocks
        serviced by disk *d* and ``width_counts[w]`` the number of batches
        touching exactly *w* disks.
        """
        if self.D is None:
            self.D = D
            self._size_counters(D)
        elif D != self.D:
            raise ValueError(
                f"parallel I/O recorded with D={D} on stats sized for "
                f"D={self.D} disks"
            )
        self.parallel_ios += nops
        self.blocks_read += n_read
        self.blocks_written += n_written
        self.read_ops += read_ops
        self.write_ops += write_ops
        for d, c in enumerate(per_disk):
            if c:
                self.per_disk_blocks[d] += int(c)
        for w, c in enumerate(width_counts):
            if c:
                self.width_histogram[w] += int(c)

    @property
    def blocks_total(self) -> int:
        return self.blocks_read + self.blocks_written

    def utilization(self, D: int) -> float:
        """Fraction of disk-slots actually used: 1.0 means every parallel
        I/O moved a block on every disk (the paper's goal)."""
        if self.parallel_ios == 0:
            return 1.0
        return self.blocks_total / (self.parallel_ios * D)

    def io_time(self, G: float) -> float:
        """PDM I/O time: G per parallel operation."""
        return G * self.parallel_ios

    def merge(self, other: "IOStats") -> None:
        """Fold another processor's counters into this one (for totals).

        An accumulator constructed without ``D`` adopts the first merged
        stats' disk count; merging arrays of different widths sums the
        overlapping disks and keeps the wider tail (totals stay exact).
        """
        self.parallel_ios += other.parallel_ios
        self.blocks_read += other.blocks_read
        self.blocks_written += other.blocks_written
        self.read_ops += other.read_ops
        self.write_ops += other.write_ops
        if other.per_disk_blocks:
            if len(other.per_disk_blocks) > len(self.per_disk_blocks):
                self.per_disk_blocks.extend(
                    [0] * (len(other.per_disk_blocks) - len(self.per_disk_blocks))
                )
            for i, c in enumerate(other.per_disk_blocks):
                self.per_disk_blocks[i] += c
        if other.width_histogram:
            if len(other.width_histogram) > len(self.width_histogram):
                self.width_histogram.extend(
                    [0] * (len(other.width_histogram) - len(self.width_histogram))
                )
            for i, c in enumerate(other.width_histogram):
                self.width_histogram[i] += c
        if self.D is None:
            self.D = other.D
        elif other.D is not None:
            self.D = max(self.D, other.D)

    def as_dict(self) -> dict:
        """JSON-able counter dump (benchmark store, metrics snapshots)."""
        return {
            "parallel_ios": self.parallel_ios,
            "blocks_read": self.blocks_read,
            "blocks_written": self.blocks_written,
            "read_ops": self.read_ops,
            "write_ops": self.write_ops,
            "per_disk_blocks": list(self.per_disk_blocks),
            "width_histogram": list(self.width_histogram),
            "D": self.D,
        }

    def snapshot(self) -> "IOStats":
        return IOStats(
            self.parallel_ios,
            self.blocks_read,
            self.blocks_written,
            self.read_ops,
            self.write_ops,
            list(self.per_disk_blocks),
            list(self.width_histogram),
            self.D,
        )

    def delta_since(self, before: "IOStats") -> "IOStats":
        """Counters accumulated since *before* (a snapshot)."""
        return IOStats(
            self.parallel_ios - before.parallel_ios,
            self.blocks_read - before.blocks_read,
            self.blocks_written - before.blocks_written,
            self.read_ops - before.read_ops,
            self.write_ops - before.write_ops,
            _sub(self.per_disk_blocks, before.per_disk_blocks),
            _sub(self.width_histogram, before.width_histogram),
            self.D,
        )


@dataclass(frozen=True)
class DiskServiceModel:
    """Seek + rotation + transfer model of one disk access.

    Defaults approximate a 1998 commodity drive (the prototype in the paper
    ran on Pentium PCs with IDE/SCSI disks of this class):

    * average seek ~ 8.9 ms,
    * 7200 rpm -> average rotational latency ~ 4.17 ms,
    * sustained transfer rate ~ 10 MB/s.
    """

    avg_seek_s: float = 0.0089
    avg_rotational_s: float = 0.00417
    transfer_rate_bytes_per_s: float = 10e6

    def access_time(self, block_bytes: int) -> float:
        """Seconds to service one block access of *block_bytes* bytes."""
        return (
            self.avg_seek_s
            + self.avg_rotational_s
            + block_bytes / self.transfer_rate_bytes_per_s
        )

    def throughput(self, block_bytes: int) -> float:
        """Effective bytes/second when reading blocks of *block_bytes*.

        This is the Figure 8 curve: for tiny blocks the fixed positioning
        cost dominates and throughput is poor; it climbs with block size
        and asymptotes to the raw transfer rate.
        """
        return block_bytes / self.access_time(block_bytes)

    def parallel_io_time(self, B_items: int) -> float:
        """Seconds for one parallel I/O of D blocks (disks run in parallel,
        so the op takes one block-access time regardless of D)."""
        return self.access_time(B_items * ITEM_BYTES)

    def suggest_G(self, B_items: int, cpu_ops_per_s: float = 1e8) -> float:
        """The PDM parameter G (compute ops per parallel I/O) implied by
        this disk and a CPU executing *cpu_ops_per_s* basic operations/s."""
        return self.parallel_io_time(B_items) * cpu_ops_per_s
