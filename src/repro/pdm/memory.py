"""Internal (main) memory accounting for one real processor.

The PDM requires that a processor can hold at least one block per disk
(``M >= D*B``) and the simulation theorems require ``M = Theta(mu)`` where
``mu`` is the largest virtual-processor context.  The engines charge every
context, inbox and staging buffer against this budget; in strict mode an
overflow is an error (the algorithm does not fit the machine), otherwise
the high-water mark is recorded so benchmarks can report it.
"""

from __future__ import annotations

from repro.util.validation import SimulationError


class InternalMemory:
    """Capacity counter in items, with peak tracking."""

    __slots__ = ("capacity", "used", "peak", "strict")

    def __init__(self, capacity_items: int, strict: bool = False) -> None:
        self.capacity = int(capacity_items)
        self.used = 0
        self.peak = 0
        self.strict = strict

    def charge(self, n_items: int) -> None:
        """Allocate *n_items* items of internal memory."""
        if n_items < 0:
            raise ValueError("cannot charge a negative allocation")
        self.used += n_items
        if self.used > self.peak:
            self.peak = self.used
        if self.strict and self.used > self.capacity:
            raise SimulationError(
                f"internal memory overflow: {self.used} items used, "
                f"capacity M={self.capacity}"
            )

    def release(self, n_items: int) -> None:
        """Free *n_items* items."""
        if n_items < 0:
            raise ValueError("cannot release a negative allocation")
        self.used = max(0, self.used - n_items)

    def reset(self) -> None:
        self.used = 0

    @property
    def overflowed(self) -> bool:
        """Did the run ever exceed capacity (relevant in non-strict mode)?"""
        return self.peak > self.capacity
