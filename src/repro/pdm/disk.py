"""A single simulated disk: a direct-access sequence of tracks."""

from __future__ import annotations

from repro.util.validation import SimulationError


class Disk:
    """One disk drive: tracks addressed by number, one block per track.

    Tracks are materialized lazily (a dict), so a simulation can use a
    sparse track space without preallocating.  Per-disk read/write counters
    feed the load-balance assertions in the tests: the paper's layouts are
    only correct if every disk services the same number of blocks (±1).
    """

    __slots__ = ("disk_id", "_tracks", "blocks_read", "blocks_written")

    def __init__(self, disk_id: int) -> None:
        self.disk_id = disk_id
        self._tracks: dict[int, bytes] = {}
        self.blocks_read = 0
        self.blocks_written = 0

    def write(self, track: int, data: bytes) -> None:
        """Store one block at *track* (overwrites)."""
        if track < 0:
            raise SimulationError(f"negative track {track} on disk {self.disk_id}")
        self._tracks[track] = data
        self.blocks_written += 1

    def read(self, track: int) -> bytes:
        """Fetch the block at *track*; reading an unwritten track is a bug."""
        try:
            block = self._tracks[track]
        except KeyError:
            raise SimulationError(
                f"read of unwritten track {track} on disk {self.disk_id}"
            ) from None
        self.blocks_read += 1
        return block

    def free(self, track: int) -> None:
        """Discard the block at *track* (space reuse between supersteps)."""
        self._tracks.pop(track, None)

    @property
    def tracks_in_use(self) -> int:
        return len(self._tracks)

    def max_track(self) -> int:
        """Highest track currently holding data, -1 if empty."""
        return max(self._tracks, default=-1)
