"""A single simulated disk: a direct-access sequence of tracks."""

from __future__ import annotations

from repro.pdm.arena import TrackArena
from repro.util.validation import SimulationError


class Disk:
    """One disk drive: tracks addressed by number, one block per track.

    Storage has two modes with identical semantics:

    * **dict mode** (default) — tracks materialized lazily in a
      ``dict[int, bytes]``, so a simulation can use a sparse track space
      without preallocating.  This is the reference path and what a
      standalone ``Disk()`` always uses.
    * **arena mode** — when constructed by a fast-path
      :class:`~repro.pdm.disk_array.DiskArray`, reads and writes delegate
      to the shared :class:`~repro.pdm.arena.TrackArena` so bulk
      operations can bypass per-track Python entirely.

    Per-disk read/write counters feed the load-balance assertions in the
    tests: the paper's layouts are only correct if every disk services the
    same number of blocks (±1).
    """

    __slots__ = ("disk_id", "_tracks", "_arena", "blocks_read", "blocks_written")

    def __init__(self, disk_id: int, arena: TrackArena | None = None) -> None:
        self.disk_id = disk_id
        self._arena = arena
        self._tracks: dict[int, bytes] = {}
        self.blocks_read = 0
        self.blocks_written = 0

    def write(self, track: int, data: bytes) -> None:
        """Store one block at *track* (overwrites)."""
        if track < 0:
            raise SimulationError(f"negative track {track} on disk {self.disk_id}")
        if self._arena is not None:
            self._arena.put(self.disk_id, track, data)
        else:
            self._tracks[track] = data
        self.blocks_written += 1

    def read(self, track: int) -> bytes:
        """Fetch the block at *track*; reading an unwritten track is a bug."""
        if self._arena is not None:
            hit = self._arena.get(self.disk_id, track)
            if hit is None:
                raise SimulationError(
                    f"read of unwritten track {track} on disk {self.disk_id}"
                )
            self.blocks_read += 1
            return hit
        try:
            block = self._tracks[track]
        except KeyError:
            raise SimulationError(
                f"read of unwritten track {track} on disk {self.disk_id}"
            ) from None
        self.blocks_read += 1
        return block

    def free(self, track: int) -> None:
        """Discard the block at *track* (space reuse between supersteps)."""
        if self._arena is not None:
            self._arena.free(self.disk_id, track)
        else:
            self._tracks.pop(track, None)

    @property
    def tracks_in_use(self) -> int:
        if self._arena is not None:
            return self._arena.tracks_in_use(self.disk_id)
        return len(self._tracks)

    def max_track(self) -> int:
        """Highest track currently holding data, -1 if empty."""
        if self._arena is not None:
            return self._arena.max_track(self.disk_id)
        return max(self._tracks, default=-1)

    def snapshot_tracks(self) -> dict[int, bytes]:
        """Checkpoint view of the track store, identical in both modes."""
        if self._arena is not None:
            return self._arena.snapshot(self.disk_id)
        return dict(self._tracks)

    def restore_tracks(self, tracks: dict[int, bytes]) -> None:
        """Replace the track store from a :meth:`snapshot_tracks` dict."""
        if self._arena is not None:
            self._arena.restore(self.disk_id, tracks)
        else:
            self._tracks = dict(tracks)
