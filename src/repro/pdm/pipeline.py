"""Double-buffered block prefetch for the fast path.

The EM engines spend each compound superstep alternating between disk
reads (context, inbox) and compute (the program's round callback).  The
reads are fully predictable one virtual processor ahead — the context
directory names every pid's ``(disk, track)`` addresses before the loop
starts — so :class:`DoubleBufferedReader` overlaps them: a worker thread
gathers pid *k+1*'s blocks out of the arena while the main thread is still
deserializing and computing pid *k* (the pipelined-buffer scheme of
Rahn/Sanders/Singler's external sorter, scaled down to two buffers).

Determinism is non-negotiable: IOStats, per-disk counters, trace events
and raised errors must stay bit-identical to the synchronous path.  The
split that guarantees it:

* the **worker thread** only performs *speculative, unaccounted* copies
  (:meth:`~repro.pdm.disk_array.DiskArray.try_gather`) — it never touches
  a counter, never raises, and degrades to a miss on anything unusual
  (side-dict tracks, reference mode, bad addresses);
* the **consuming thread** performs all accounting at :meth:`get` time via
  :meth:`~repro.pdm.disk_array.DiskArray.finish_read` — on a miss that is
  simply the synchronous ``read_run``, canonical errors included.  Since
  consumption order equals submission order equals the synchronous loop
  order, every observable sequence is unchanged.

Why the prefetched data cannot be stale: a pid's context tracks are only
rewritten by that pid's own store, which happens strictly after its load
consumes the prefetch; all other writes during a superstep (message slots,
overflow runs, other pids' contexts) land on disjoint tracks, and an arena
growth triggered by them preserves old rows in place (RAM copy / sparse
file extension), so a concurrent gather sees either the correct bytes or
a clean miss.

Buffers come from the reader's private :class:`BufferPool`: only the
worker thread takes, only :meth:`release` gives back, so a buffer handed
to a consumer can never be reused mid-flight.  ``depth`` bounds how many
unreleased buffers the worker may fill ahead (2 = classic double
buffering); the request queue itself is unbounded, so submitting the whole
superstep schedule up front never blocks the main thread.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.pdm.fastpath import BufferPool

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.pdm.disk_array import DiskArray

#: classic double buffering: one buffer being consumed, one being filled.
DEFAULT_DEPTH = 2


class _Request:
    """One submitted read: addresses in, a filled buffer + hit flag out."""

    __slots__ = ("array", "disks", "tracks", "key", "buf", "hit", "ready", "error")

    def __init__(
        self, array: "DiskArray", disks: np.ndarray, tracks: np.ndarray, key: object
    ) -> None:
        self.array = array
        self.disks = disks
        self.tracks = tracks
        self.key = key
        self.buf: np.ndarray | None = None
        self.hit = False
        self.ready = threading.Event()
        self.error: BaseException | None = None


class DoubleBufferedReader:
    """Bounded-lookahead prefetcher over one or more disk arrays.

    Usage::

        reader = DoubleBufferedReader()
        for pid in schedule:
            reader.submit(array, disks, tracks, key=pid)   # never blocks
        ...
        flat, buf = reader.get(pid)    # FIFO; accounting happens here
        ...consume flat...
        reader.release(buf)            # buffer re-enters circulation
        ...
        reader.close()                 # graceful drain, idempotent
    """

    def __init__(self, depth: int = DEFAULT_DEPTH, max_buffers: int = 8) -> None:
        if depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth}")
        self.depth = depth
        #: consumer-side telemetry (counted in :meth:`get`, on the calling
        #: thread, so reads are race-free): a *hit* consumed a speculative
        #: gather, a *miss* fell back to the accounted synchronous read.
        self.submitted = 0
        self.hits = 0
        self.misses = 0
        self._pool = BufferPool(max_buffers=max_buffers)
        self._slots = threading.Semaphore(depth)
        self._requests: deque[_Request | None] = deque()
        self._have_work = threading.Semaphore(0)
        self._pending: deque[_Request] = deque()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-prefetch", daemon=True
        )
        self._thread.start()

    # -- worker side -------------------------------------------------------

    def _run(self) -> None:
        while True:
            self._have_work.acquire()
            req = self._requests.popleft()
            if req is None:
                return
            # wait for a free buffer slot; close() releases a permit to
            # unblock the wait, with req then finishing as a plain miss
            self._slots.acquire()
            if self._closed:
                # hand the escape permit back so every remaining queued
                # request (and the sentinel) can drain without a consumer
                self._slots.release()
                req.ready.set()
                continue
            try:
                nbytes = int(req.disks.size) * req.array.block_bytes
                buf = self._pool.take(nbytes)
                req.hit = req.array.try_gather(req.disks, req.tracks, buf)
                req.buf = buf
            except BaseException as exc:  # pragma: no cover - defensive
                req.error = exc
            req.ready.set()

    # -- consumer side -----------------------------------------------------

    def submit(
        self, array: "DiskArray", disks: np.ndarray, tracks: np.ndarray, key: object
    ) -> None:
        """Queue one read.  Never blocks; work starts when a slot frees."""
        if self._closed:
            raise RuntimeError("submit() on a closed DoubleBufferedReader")
        req = _Request(array, disks, tracks, key)
        self.submitted += 1
        self._pending.append(req)
        self._requests.append(req)
        self._have_work.release()

    def get(self, key: object) -> tuple[np.ndarray, np.ndarray | None]:
        """Consume the oldest submitted read (keys must match FIFO order).

        Returns ``(flat, buf)``: *flat* is the gathered bytes as a flat
        ``uint8`` view, *buf* the backing buffer to hand to
        :meth:`release` once *flat* has been consumed (``None`` when the
        read fell back to a synchronous allocation).  All accounting — and
        any canonical read error — happens here, on the calling thread.
        """
        if self._closed:
            raise RuntimeError("get() on a closed DoubleBufferedReader")
        if not self._pending:
            raise RuntimeError(f"get({key!r}) with no submitted reads")
        req = self._pending.popleft()
        if req.key != key:
            raise RuntimeError(
                f"out-of-order get: expected key {req.key!r}, got {key!r}"
            )
        req.ready.wait()
        if req.error is not None:  # pragma: no cover - defensive
            raise req.error
        buf = req.buf
        if buf is None:
            # cancelled by a racing close(); serve synchronously
            self.misses += 1
            flat = req.array.read_run(req.disks, req.tracks)
            return flat, None
        if req.hit:
            self.hits += 1
        else:
            self.misses += 1
        flat = req.array.finish_read(req.disks, req.tracks, buf, req.hit)
        return flat, buf

    def release(self, buf: np.ndarray | None) -> None:
        """Return a consumed buffer; frees one prefetch slot."""
        if buf is None:
            return
        self._pool.give(buf)
        self._slots.release()

    def close(self) -> None:
        """Stop the worker and drop unconsumed reads (idempotent).

        Safe to call with requests still in flight — early termination of
        a superstep must not deadlock or leak the thread.  Unconsumed
        prefetched data is simply discarded; nothing was accounted, so the
        synchronous path can re-read it later with identical counters.
        """
        if self._closed:
            return
        self._closed = True
        self._requests.append(None)
        self._have_work.release()
        # unblock a worker parked on the slot semaphore
        self._slots.release()
        self._thread.join()
        self._pending.clear()
