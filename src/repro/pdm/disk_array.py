"""A bank of D disks honoring the PDM parallel-I/O rule.

The only way to move data is :meth:`DiskArray.parallel_io`, which takes a
batch of per-disk track operations and enforces the model's invariant: **at
most one track per disk per operation**.  Everything above this layer
(consecutive layout, staggered message matrix, the DiskWrite FIFO) is
responsible for scheduling conflict-free batches; the array will refuse a
batch that violates the rule, so a mis-scheduled layout fails loudly in the
tests instead of silently undercounting I/O.

Two execution paths service bulk streams:

* :meth:`write_blocks` / :meth:`read_blocks` — the reference path: greedy
  FIFO batching into per-op :class:`IOOp` lists, one Python iteration per
  block.  This is the executable specification.
* :meth:`write_run` / :meth:`write_stream` / :meth:`read_run` — the fast
  path: the same greedy batch boundaries computed vectorially
  (:func:`greedy_batch_widths`), data moved as single NumPy scatter/gather
  operations over the shared :class:`~repro.pdm.arena.TrackArena`, and the
  aggregate recorded with :meth:`IOStats.record_batch`.  Counters, batch
  widths and stored bytes are bit-identical to the reference path.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.pdm import fastpath
from repro.pdm.arena import TrackArena
from repro.pdm.disk import Disk
from repro.pdm.fastpath import BlockRun
from repro.pdm.mmap_arena import make_arena
from repro.pdm.io_stats import IOStats
from repro.util.items import ITEM_BYTES
from repro.util.validation import SimulationError, require

if TYPE_CHECKING:  # pragma: no cover - layering: pdm stays engine-free
    from repro.obs.trace import TraceRecorder
    from repro.tune.runtime import RuntimeConfig

#: One fast-path write/read segment: parallel arrays of disk and track
#: indices plus the run of blocks addressed by them.
Segment = tuple[np.ndarray, np.ndarray, BlockRun]


@dataclass(frozen=True)
class IOOp:
    """One track access within a parallel I/O.

    ``data is None`` means *read*; otherwise the bytes are written.
    """

    disk: int
    track: int
    data: bytes | None = None

    @property
    def is_write(self) -> bool:
        return self.data is not None


def greedy_batch_widths(disks: np.ndarray, D: int) -> tuple[int, np.ndarray]:
    """Batch widths of the greedy FIFO packing over a disk-index stream.

    Replicates exactly the cut points of :meth:`DiskArray.write_blocks`:
    scan the stream in order, flush the open batch the moment a disk
    repeats within it.  Returns ``(n_batches, widths)`` where ``widths[k]``
    is the number of ops in batch ``k`` (all ``<= D``).

    The consecutive layout produces perfectly striped streams
    (``disks[i] = (disks[0] + i) % D``); that common case collapses to
    arithmetic.  General streams use the previous-occurrence trick: with
    ``prev[i]`` the index of the prior op on the same disk (-1 if none), a
    batch starting at ``b`` ends before the first ``i`` with
    ``max(prev[b..i]) >= b`` — found by binary search over the running
    maximum, which is sorted because ``prev[i] < i``.
    """
    n = int(disks.size)
    if n == 0:
        return 0, np.zeros(0, dtype=np.int64)
    if D == 1:
        return n, np.ones(n, dtype=np.int64)
    first = int(disks[0])
    striped = (first + np.arange(n, dtype=np.int64)) % D
    if np.array_equal(disks, striped):
        nbatches = -(-n // D)
        widths = np.full(nbatches, D, dtype=np.int64)
        if n % D:
            widths[-1] = n % D
        return nbatches, widths
    order = np.argsort(disks, kind="stable")
    sorted_disks = disks[order]
    prev = np.full(n, -1, dtype=np.int64)
    same = sorted_disks[1:] == sorted_disks[:-1]
    prev[order[1:][same]] = order[:-1][same]
    running_max = np.maximum.accumulate(prev).tolist()
    # bisect on a plain list beats np.searchsorted per call by ~10x at the
    # few-hundred-element sizes a stream produces
    bounds = [0]
    b = 0
    while True:
        nxt = bisect.bisect_left(running_max, b)
        if nxt >= n:
            break
        bounds.append(nxt)
        b = nxt
    bounds.append(n)
    return len(bounds) - 1, np.diff(np.asarray(bounds, dtype=np.int64))


class DiskArray:
    """D simulated disks owned by one (real) processor."""

    def __init__(
        self,
        D: int,
        B: int,
        tracer: "TraceRecorder | None" = None,
        real: int = 0,
        runtime: "RuntimeConfig | None" = None,
    ) -> None:
        require(D >= 1, f"need at least one disk, got D={D}")
        require(B >= 1, f"block size must be positive, got B={B}")
        self.D = D
        self.B = B
        self.block_bytes = B * ITEM_BYTES
        self._tracer = tracer
        self._real = int(real)
        self._runtime = runtime
        self._arena: TrackArena | None = (
            make_arena(D, self.block_bytes, runtime=runtime)
            if self._use_fastpath_storage()
            else None
        )
        if self._arena is not None and tracer is not None and tracer.enabled:
            # storage telemetry: growth happens on the engine thread only
            # (scatters/writes; speculative gathers never grow), so the
            # callback emits without synchronization
            self._arena.on_grow = self._record_arena_grow
        self.disks = [Disk(d, arena=self._arena) for d in range(D)]
        self.stats = IOStats(D=D)

    def _record_arena_grow(self, disk: int, cap: int) -> None:
        """Arena growth callback -> one ``arena_grow`` trace event."""
        arena, tracer = self._arena, self._tracer
        if arena is None or tracer is None:
            return
        tracer.emit(
            "arena_grow",
            real=self._real,
            disk=disk,
            tracks=cap,
            nbytes=cap * self.block_bytes,
            resident_nbytes=arena.resident_nbytes(),
            spill_nbytes=arena.spill_nbytes(),
            backend="mmap" if getattr(arena, "spill_dir", None) else "ram",
        )

    def _use_fastpath_storage(self) -> bool:
        """Whether to back the disks with a shared arena.

        ``FaultyDiskArray`` overrides this to ``False``: fault injection
        resolves and retries every op individually, so it always runs the
        reference path (and its shadow-track remaps live far outside any
        arena's dense range).
        """
        if self._runtime is not None:
            return self._runtime.fastpath_storage
        return fastpath.enabled()

    # -- core operation ----------------------------------------------------

    def parallel_io(self, ops: list[IOOp]) -> list[bytes]:
        """Execute one parallel I/O operation.

        *ops* may mix reads and writes (the model allows any one-track-per-
        disk access pattern).  Returns the data of the read ops, in the
        order they appear in *ops*.
        """
        if not ops:
            return []
        touched = self._check_batch(ops)

        out: list[bytes] = []
        n_read = n_written = 0
        for op in ops:
            if op.is_write:
                self.disks[op.disk].write(op.track, op.data)  # type: ignore[arg-type]
                n_written += 1
            else:
                out.append(self.disks[op.disk].read(op.track))
                n_read += 1
        self.stats.record(n_read, n_written, sorted(touched), self.D)
        return out

    def _check_batch(self, ops: list[IOOp]) -> set[int]:
        """Enforce the one-track-per-disk rule; returns the disks touched."""
        touched: set[int] = set()
        for op in ops:
            if not (0 <= op.disk < self.D):
                raise SimulationError(f"disk index {op.disk} out of range 0..{self.D - 1}")
            if op.disk in touched:
                raise SimulationError(
                    f"parallel I/O touches disk {op.disk} twice — the PDM "
                    "allows at most one track per disk per operation"
                )
            touched.add(op.disk)
        return touched

    # -- bulk helpers (each issues ceil(n/D) parallel I/Os) -----------------

    def write_blocks(self, placements: list[tuple[int, int, bytes]]) -> int:
        """Write blocks at explicit ``(disk, track)`` addresses, greedily
        packing consecutive conflict-free runs into parallel I/Os (FIFO
        order is preserved, as in the paper's DiskWrite procedure).

        Returns the number of parallel I/O operations used.
        """
        ops_used = 0
        batch: list[IOOp] = []
        used: set[int] = set()
        for disk, track, data in placements:
            if disk in used:
                self.parallel_io(batch)
                ops_used += 1
                batch, used = [], set()
            batch.append(IOOp(disk, track, data))
            used.add(disk)
        if batch:
            self.parallel_io(batch)
            ops_used += 1
        return ops_used

    def read_blocks(self, addresses: list[tuple[int, int]]) -> list[bytes]:
        """Read blocks at explicit ``(disk, track)`` addresses, batching
        conflict-free runs exactly like :meth:`write_blocks`."""
        out: list[bytes] = []
        batch: list[IOOp] = []
        used: set[int] = set()
        for disk, track in addresses:
            if disk in used:
                out.extend(self.parallel_io(batch))
                batch, used = [], set()
            batch.append(IOOp(disk, track))
            used.add(disk)
        if batch:
            out.extend(self.parallel_io(batch))
        return out

    def free_blocks(self, addresses: Iterable[tuple[int, int]]) -> None:
        """Release tracks (no I/O cost — deallocation is bookkeeping)."""
        for disk, track in addresses:
            self.disks[disk].free(track)

    # -- vectorized bulk path ----------------------------------------------

    def write_run(self, disks: np.ndarray, tracks: np.ndarray, run: BlockRun) -> int:
        """Write one :class:`BlockRun` at vectorized addresses.

        Semantically identical to :meth:`write_blocks` over the zipped
        placements; returns the number of parallel I/Os used.
        """
        return self.write_stream([(disks, tracks, run)])

    def write_stream(self, segments: Sequence[Segment]) -> int:
        """Write several runs as **one** FIFO stream.

        Greedy batching spans segment boundaries (the engine concatenates
        all bundles destined for one owner before batching), but each run
        scatters from its own buffer.  Returns parallel I/Os used.
        """
        segments = [s for s in segments if s[2].nblocks]
        if not segments:
            return 0
        if self._arena is None:
            placements: list[tuple[int, int, bytes]] = []
            for disks, tracks, run in segments:
                placements.extend(
                    zip(disks.tolist(), tracks.tolist(), run.to_blocks())
                )
            return self.write_blocks(placements)

        if len(segments) == 1:
            all_disks = np.asarray(segments[0][0], dtype=np.int64)
            all_tracks = np.asarray(segments[0][1], dtype=np.int64)
        else:
            all_disks = np.concatenate(
                [np.asarray(s[0], dtype=np.int64) for s in segments]
            )
            all_tracks = np.concatenate(
                [np.asarray(s[1], dtype=np.int64) for s in segments]
            )
        self._check_addresses(all_disks, all_tracks)

        nops, widths = greedy_batch_widths(all_disks, self.D)
        for disks, tracks, run in segments:
            self._scatter_run(
                np.asarray(disks, dtype=np.int64),
                np.asarray(tracks, dtype=np.int64),
                run,
            )
        self._account_bulk(
            all_disks, nops, widths, n_read=0, n_written=int(all_disks.size)
        )
        return nops

    def read_run(
        self, disks: np.ndarray, tracks: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Read blocks at vectorized addresses into one contiguous buffer.

        Returns a ``uint8`` array of ``n * block_bytes`` bytes (a view of
        *out* when given, so callers can pool the allocation).  Batching
        and counters match :meth:`read_blocks` exactly; sparse or odd-sized
        tracks fall back to the reference loop transparently.
        """
        disks = np.asarray(disks, dtype=np.int64)
        tracks = np.asarray(tracks, dtype=np.int64)
        n = int(disks.size)
        bb = self.block_bytes
        if out is None:
            out = np.empty(n * bb, dtype=np.uint8)
        flat = out[: n * bb]
        if n == 0:
            return flat
        if self._arena is not None:
            self._check_addresses(disks, tracks)
            rows = flat.reshape(n, bb)
            if self._arena.gather(disks, tracks, rows):
                nops, widths = greedy_batch_widths(disks, self.D)
                self._account_bulk(disks, nops, widths, n_read=n, n_written=0)
                return flat
        # Reference fallback: per-track loop (dict mode, side-dict tracks,
        # short rows, and the canonical unwritten-track error).
        blocks = self.read_blocks(list(zip(disks.tolist(), tracks.tolist())))
        pos = 0
        for block in blocks:
            chunk = np.frombuffer(block, dtype=np.uint8)
            flat[pos : pos + chunk.size] = chunk
            if chunk.size < bb:
                flat[pos + chunk.size : pos + bb] = 0
            pos += bb
        return flat

    # -- speculative reads (double-buffered prefetch) -----------------------

    def try_gather(
        self, disks: np.ndarray, tracks: np.ndarray, out: np.ndarray
    ) -> bool:
        """Speculatively gather blocks into *out* without any accounting.

        The prefetch worker thread calls this off the main thread, so it
        must never raise and never touch ``stats`` or per-disk counters —
        those are mutated by :meth:`finish_read` on the consuming thread,
        which keeps IOStats single-threaded and bit-identical to the
        synchronous path.  Returns ``True`` only when every block was
        copied out of the dense arena; any fallback condition (reference
        mode, side-dict tracks, bad addresses, unwritten tracks) returns
        ``False`` and leaves the work to :meth:`finish_read`.
        """
        if self._arena is None:
            return False
        try:
            self._check_addresses(disks, tracks)
        except SimulationError:
            return False
        n = int(disks.size)
        rows = out[: n * self.block_bytes].reshape(n, self.block_bytes)
        return self._arena.gather(disks, tracks, rows)

    def finish_read(
        self,
        disks: np.ndarray,
        tracks: np.ndarray,
        out: np.ndarray,
        hit: bool,
    ) -> np.ndarray:
        """Complete a speculative gather on the consuming thread.

        On a *hit* the data already sits in *out*; only the deferred
        accounting runs (same address checks, batch widths and counter
        updates as :meth:`read_run`).  On a miss this simply performs the
        synchronous :meth:`read_run`, which re-raises canonical errors.
        """
        if not hit:
            return self.read_run(disks, tracks, out=out)
        n = int(disks.size)
        self._check_addresses(disks, tracks)
        nops, widths = greedy_batch_widths(disks, self.D)
        self._account_bulk(disks, nops, widths, n_read=n, n_written=0)
        return out[: n * self.block_bytes]

    def _check_addresses(self, disks: np.ndarray, tracks: np.ndarray) -> None:
        if disks.size and (
            int(disks.min()) < 0 or int(disks.max()) >= self.D
        ):
            bad = int(disks[(disks < 0) | (disks >= self.D)][0])
            raise SimulationError(f"disk index {bad} out of range 0..{self.D - 1}")
        if tracks.size and int(tracks.min()) < 0:
            bad_i = int(np.flatnonzero(tracks < 0)[0])
            raise SimulationError(
                f"negative track {int(tracks[bad_i])} on disk {int(disks[bad_i])}"
            )

    def _scatter_run(
        self, disks: np.ndarray, tracks: np.ndarray, run: BlockRun
    ) -> None:
        assert self._arena is not None
        bb = self.block_bytes
        n = run.nblocks
        buf = run.buf
        view = (
            buf if isinstance(buf, np.ndarray) else np.frombuffer(buf, dtype=np.uint8)
        )
        view = view.reshape(-1)
        full = min(n, int(view.size) // bb)
        if full:
            rows = view[: full * bb].reshape(full, bb)
            self._arena.scatter(disks[:full], tracks[:full], rows)
        if n > full:
            # the (usually single, usually partial) tail block is padded out,
            # as pack_blocks does; blocks entirely past the buffer are zeros
            tail = view[full * bb :].tobytes()
            self._arena.put(int(disks[full]), int(tracks[full]), tail.ljust(bb, b"\x00"))
            for q in range(full + 1, n):
                self._arena.put(int(disks[q]), int(tracks[q]), b"\x00" * bb)
        counts = np.bincount(disks, minlength=self.D)
        for d in range(self.D):
            if counts[d]:
                self.disks[d].blocks_written += int(counts[d])

    def _account_bulk(
        self,
        disks: np.ndarray,
        nops: int,
        widths: np.ndarray,
        *,
        n_read: int,
        n_written: int,
    ) -> None:
        per_disk = np.bincount(disks, minlength=self.D)
        width_counts = np.bincount(widths, minlength=self.D + 1)[: self.D + 1]
        self.stats.record_batch(
            nops=nops,
            n_read=n_read,
            n_written=n_written,
            read_ops=nops if n_read else 0,
            write_ops=nops if n_written else 0,
            per_disk=per_disk.tolist(),
            width_counts=width_counts.tolist(),
            D=self.D,
        )
        if n_read:
            for d in range(self.D):
                if per_disk[d]:
                    self.disks[d].blocks_read += int(per_disk[d])

    # -- lifecycle / inspection ----------------------------------------------

    def close(self) -> None:
        """Release arena storage (deletes mmap spill files, if any)."""
        if self._arena is not None:
            self._arena.close()

    @property
    def tracks_in_use(self) -> int:
        return sum(d.tracks_in_use for d in self.disks)

    def max_track(self) -> int:
        return max((d.max_track() for d in self.disks), default=-1)

    def load_balance(self) -> tuple[int, int]:
        """(min, max) blocks serviced per disk over the whole run."""
        per = self.stats.per_disk_blocks or [0] * self.D
        return min(per), max(per)
