"""A bank of D disks honoring the PDM parallel-I/O rule.

The only way to move data is :meth:`DiskArray.parallel_io`, which takes a
batch of per-disk track operations and enforces the model's invariant: **at
most one track per disk per operation**.  Everything above this layer
(consecutive layout, staggered message matrix, the DiskWrite FIFO) is
responsible for scheduling conflict-free batches; the array will refuse a
batch that violates the rule, so a mis-scheduled layout fails loudly in the
tests instead of silently undercounting I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pdm.disk import Disk
from repro.pdm.io_stats import IOStats
from repro.util.validation import SimulationError, require


@dataclass(frozen=True)
class IOOp:
    """One track access within a parallel I/O.

    ``data is None`` means *read*; otherwise the bytes are written.
    """

    disk: int
    track: int
    data: bytes | None = None

    @property
    def is_write(self) -> bool:
        return self.data is not None


class DiskArray:
    """D simulated disks owned by one (real) processor."""

    def __init__(self, D: int, B: int) -> None:
        require(D >= 1, f"need at least one disk, got D={D}")
        require(B >= 1, f"block size must be positive, got B={B}")
        self.D = D
        self.B = B
        self.disks = [Disk(d) for d in range(D)]
        self.stats = IOStats(D=D)

    # -- core operation ----------------------------------------------------

    def parallel_io(self, ops: list[IOOp]) -> list[bytes]:
        """Execute one parallel I/O operation.

        *ops* may mix reads and writes (the model allows any one-track-per-
        disk access pattern).  Returns the data of the read ops, in the
        order they appear in *ops*.
        """
        if not ops:
            return []
        touched = self._check_batch(ops)

        out: list[bytes] = []
        n_read = n_written = 0
        for op in ops:
            if op.is_write:
                self.disks[op.disk].write(op.track, op.data)  # type: ignore[arg-type]
                n_written += 1
            else:
                out.append(self.disks[op.disk].read(op.track))
                n_read += 1
        self.stats.record(n_read, n_written, sorted(touched), self.D)
        return out

    def _check_batch(self, ops: list[IOOp]) -> set[int]:
        """Enforce the one-track-per-disk rule; returns the disks touched."""
        touched: set[int] = set()
        for op in ops:
            if not (0 <= op.disk < self.D):
                raise SimulationError(f"disk index {op.disk} out of range 0..{self.D - 1}")
            if op.disk in touched:
                raise SimulationError(
                    f"parallel I/O touches disk {op.disk} twice — the PDM "
                    "allows at most one track per disk per operation"
                )
            touched.add(op.disk)
        return touched

    # -- bulk helpers (each issues ceil(n/D) parallel I/Os) -----------------

    def write_blocks(self, placements: list[tuple[int, int, bytes]]) -> int:
        """Write blocks at explicit ``(disk, track)`` addresses, greedily
        packing consecutive conflict-free runs into parallel I/Os (FIFO
        order is preserved, as in the paper's DiskWrite procedure).

        Returns the number of parallel I/O operations used.
        """
        ops_used = 0
        batch: list[IOOp] = []
        used: set[int] = set()
        for disk, track, data in placements:
            if disk in used:
                self.parallel_io(batch)
                ops_used += 1
                batch, used = [], set()
            batch.append(IOOp(disk, track, data))
            used.add(disk)
        if batch:
            self.parallel_io(batch)
            ops_used += 1
        return ops_used

    def read_blocks(self, addresses: list[tuple[int, int]]) -> list[bytes]:
        """Read blocks at explicit ``(disk, track)`` addresses, batching
        conflict-free runs exactly like :meth:`write_blocks`."""
        out: list[bytes] = []
        batch: list[IOOp] = []
        used: set[int] = set()
        for disk, track in addresses:
            if disk in used:
                out.extend(self.parallel_io(batch))
                batch, used = [], set()
            batch.append(IOOp(disk, track))
            used.add(disk)
        if batch:
            out.extend(self.parallel_io(batch))
        return out

    def free_blocks(self, addresses: list[tuple[int, int]]) -> None:
        """Release tracks (no I/O cost — deallocation is bookkeeping)."""
        for disk, track in addresses:
            self.disks[disk].free(track)

    # -- inspection ----------------------------------------------------------

    @property
    def tracks_in_use(self) -> int:
        return sum(d.tracks_in_use for d in self.disks)

    def max_track(self) -> int:
        return max((d.max_track() for d in self.disks), default=-1)

    def load_balance(self) -> tuple[int, int]:
        """(min, max) blocks serviced per disk over the whole run."""
        per = self.stats.per_disk_blocks or [0] * self.D
        return min(per), max(per)
