"""BSP and BSP* cost models and the Section 5 conversions.

The paper's Corollary 1 applies to *any* algorithm whose communication is
analysed through h-relations.  This package provides the BSP-family cost
models (appendix 6.1/6.3) and the three conversion results of Section 5:

1. conforming BSP -> BSP* with b = h_min/v - (v-1)/2,
2. conforming BSP -> EM-BSP (c-optimality preserved),
3. conforming BSP* -> EM-BSP* (c-optimality preserved).
"""

from repro.bsp.conversion import (
    blockwise_io_efficient,
    bsp_star_message_floor,
    c_optimality_preserved,
    to_bsp_star,
    to_em_bsp,
    to_em_bsp_star,
)
from repro.bsp.model import BSPCost, BSPStarCost, EMBSPCost, Superstep

__all__ = [
    "BSPCost",
    "BSPStarCost",
    "EMBSPCost",
    "Superstep",
    "blockwise_io_efficient",
    "bsp_star_message_floor",
    "c_optimality_preserved",
    "to_bsp_star",
    "to_em_bsp",
    "to_em_bsp_star",
]
