"""BSP-family cost models (paper appendix 6.1 and 6.3).

A BSP algorithm is summarized, for cost purposes, by its supersteps: each
carries a computation cost ``w`` (max over processors) and an h-relation
volume ``h`` (max items sent/received by any processor).  The models
differ only in how a communication superstep is priced:

* **BSP**:   w_comm = max(L, g * h)
* **BSP***:  w_comm = max(L, g * h * penalty) where messages smaller than
  the minimum block size b are charged as if they were b-sized — the
  model that rewards *blockwise* communication;
* **EM-BSP / EM-BSP***: adds t_io = G * (parallel I/Os) per superstep.

These are analytic objects used by the Section 5 conversion theorems and
the benchmarks; the executable machinery for CGM lives in
:mod:`repro.cgm` / :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Superstep:
    """One BSP superstep's cost summary.

    ``h`` is the h-relation bound; ``min_message`` the smallest message
    any processor sends (items); ``messages_per_proc`` the max number of
    messages one processor sends.
    """

    w_comp: float
    h: int
    min_message: int = 1
    messages_per_proc: int = 1


@dataclass(frozen=True)
class BSPCost:
    """A conforming BSP algorithm's cost profile."""

    v: int                      #: processors
    supersteps: tuple[Superstep, ...] = field(default_factory=tuple)

    @property
    def lam(self) -> int:
        return len(self.supersteps)

    @property
    def h_min(self) -> int:
        return min((s.h for s in self.supersteps), default=0)

    @property
    def h_max(self) -> int:
        return max((s.h for s in self.supersteps), default=0)

    def total_time(self, g: float, L: float) -> float:
        return sum(
            s.w_comp + max(L, g * s.h) for s in self.supersteps
        )


@dataclass(frozen=True)
class BSPStarCost:
    """BSP* profile: communication charged blockwise with block size b."""

    v: int
    b: int                      #: minimum efficient message (block) size
    supersteps: tuple[Superstep, ...] = field(default_factory=tuple)

    @property
    def lam(self) -> int:
        return len(self.supersteps)

    def comm_charge(self, s: Superstep, g: float) -> float:
        """BSP* charges ceil(size/b)*b per message: sub-block messages pay
        for a full block."""
        if s.h == 0:
            return 0.0
        per_message = max(1, s.h // max(1, s.messages_per_proc))
        padded = -(-per_message // self.b) * self.b
        return g * padded * s.messages_per_proc

    def total_time(self, g: float, L: float) -> float:
        return sum(
            s.w_comp + max(L, self.comm_charge(s, g)) for s in self.supersteps
        )


@dataclass(frozen=True)
class EMBSPCost:
    """EM-BSP(*) profile: BSP plus per-superstep parallel I/O."""

    v: int
    p: int
    D: int
    B: int
    supersteps: tuple[Superstep, ...] = field(default_factory=tuple)
    io_ops: tuple[int, ...] = field(default_factory=tuple)  #: parallel I/Os per superstep

    def total_time(self, g: float, G: float, L: float) -> float:
        total = 0.0
        for s, ios in zip(self.supersteps, self.io_ops):
            total += s.w_comp + max(L, g * s.h) + G * ios
        return total

    @property
    def total_ios(self) -> int:
        return sum(self.io_ops)
