"""Section 5's conversion results, as cost-profile transformations.

The conversions rest on Corollary 1: any h-relation can be replaced by two
*balanced* h-relations with message sizes in
``[h/v - (v-1)/2, h/v + (v-1)/2]``.  "Conforming" means the algorithm's
analysis bounds every communication superstep by an h-relation — exactly
the :class:`repro.bsp.model.BSPCost` summary.

The executable counterpart (real payload chunking, not just cost
arithmetic) is :mod:`repro.core.balanced`, which the engines use; these
functions are the analytic statements the benchmarks check the engines
against.
"""

from __future__ import annotations

from repro.bsp.model import BSPCost, BSPStarCost, EMBSPCost, Superstep
from repro.util.validation import ConstraintViolation, require


def bsp_star_message_floor(h_min: int, v: int) -> int:
    """Section 5 item (1): the block size achieved by balancing,
    b = h_min/v - (v-1)/2."""
    return max(1, h_min // v - (v - 1) // 2)


def to_bsp_star(cost: BSPCost, b: int | None = None) -> BSPStarCost:
    """Convert a conforming BSP profile to BSP* by balanced routing.

    Every superstep becomes two balanced supersteps whose v messages per
    processor have sizes within (v-1)/2 of h/v; the minimum message size
    becomes the BSP* block size b.
    """
    v = cost.v
    floor = bsp_star_message_floor(cost.h_min, v)
    if b is None:
        b = floor
    require(
        b <= floor,
        f"requested block size b={b} exceeds the achievable floor {floor} "
        f"(h_min={cost.h_min}, v={v})",
        ConstraintViolation,
    )
    out: list[Superstep] = []
    for s in cost.supersteps:
        # two balanced rounds; computation is charged to the first, the
        # rebinning overhead O(h) is absorbed into w_comp of the second.
        per_msg_hi = s.h // v + (v - 1) // 2 + 1
        balanced = Superstep(
            w_comp=s.w_comp,
            h=s.h + v * ((v - 1) // 2 + 1),  # Theorem 1's additive slack
            min_message=max(1, s.h // v - (v - 1) // 2),
            messages_per_proc=v,
        )
        relay = Superstep(
            w_comp=float(s.h),  # linear-time rebinning
            h=balanced.h,
            min_message=balanced.min_message,
            messages_per_proc=v,
        )
        out.extend([balanced, relay])
        del per_msg_hi
    return BSPStarCost(v=v, b=b, supersteps=tuple(out))


def to_em_bsp(
    cost: BSPCost,
    p: int,
    D: int,
    B: int,
    mu_items: int,
) -> EMBSPCost:
    """Convert a conforming BSP profile to an EM-BSP profile (item 2).

    Each original superstep is simulated by v/p real compound supersteps;
    per simulated virtual processor the engine moves its context
    (2*ceil(mu/B) blocks) and its message traffic (2*ceil(h/B) blocks),
    all D-parallel — the same accounting Theorem 3 charges.
    """
    v = cost.v
    require(p >= 1 and v % p == 0, f"p={p} must divide v={v}")
    supersteps: list[Superstep] = []
    io_ops: list[int] = []
    vpr = v // p
    for s in cost.supersteps:
        ctx_blocks = 2 * -(-mu_items // B)
        msg_blocks = 2 * -(-s.h // B)
        per_vproc = -(-ctx_blocks // D) + -(-msg_blocks // D)
        for _ in range(vpr):
            supersteps.append(
                Superstep(
                    w_comp=s.w_comp / vpr + mu_items,  # swap overhead O(mu)
                    h=s.h,
                    min_message=s.min_message,
                    messages_per_proc=s.messages_per_proc,
                )
            )
            io_ops.append(per_vproc)
    return EMBSPCost(
        v=v, p=p, D=D, B=B, supersteps=tuple(supersteps), io_ops=tuple(io_ops)
    )


def to_em_bsp_star(
    cost: BSPStarCost,
    p: int,
    D: int,
    B: int,
    mu_items: int,
) -> EMBSPCost:
    """Convert a BSP* profile to EM-BSP* (Section 5 item 3).

    Identical accounting to :func:`to_em_bsp` — the BSP* block size b
    only matters for the *communication* charge, which carries over; the
    I/O side benefits additionally because b >= B means every message
    already fills disk blocks.
    """
    v = cost.v
    require(p >= 1 and v % p == 0, f"p={p} must divide v={v}")
    base = BSPCost(v=v, supersteps=cost.supersteps)
    em = to_em_bsp(base, p=p, D=D, B=B, mu_items=mu_items)
    return em


def blockwise_io_efficient(cost: BSPStarCost, B: int) -> bool:
    """Is every message at least one disk block (fully blocked I/O)?

    BSP* algorithms with b >= B retain blocked disk access for free
    under the simulation — the property BalancedRouting manufactures for
    algorithms that lack it.
    """
    return cost.b >= B and all(s.min_message >= B for s in cost.supersteps)


def c_optimality_preserved(
    cost: BSPCost,
    em: EMBSPCost,
    beta: float,
    mu_items: int,
    g: float,
    G: float,
) -> bool:
    """Theorem 3's side conditions for preserving c-optimality.

    beta = total computation time of the original algorithm.  Requires
    beta = omega(lambda * mu) — checked as a generous constant factor —
    and G = BD * o(beta / (lambda * mu)).
    """
    lam = cost.lam
    if lam == 0:
        return True
    overhead = lam * mu_items
    if beta < overhead:
        return False
    G_cap = em.B * em.D * (beta / overhead)
    return G <= G_cap
