"""Fault injection and checkpoint/resume for the EM simulation.

See :mod:`repro.faults.plan` (what goes wrong), :mod:`repro.faults.injector`
(how the disk layer suffers and survives it) and
:mod:`repro.faults.checkpoint` (how a run persists and resumes).
"""

from repro.faults.checkpoint import CheckpointError, CheckpointManager
from repro.faults.injector import (
    DiskFault,
    FaultInjector,
    FaultStats,
    FaultyDiskArray,
    collect_fault_stats,
    emit_fault_metrics,
)
from repro.faults.plan import (
    FAULT_KINDS,
    DiskDeath,
    FaultPlan,
    RetryPolicy,
    ScheduledFault,
)

__all__ = [
    "FAULT_KINDS",
    "CheckpointError",
    "CheckpointManager",
    "DiskDeath",
    "DiskFault",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FaultyDiskArray",
    "RetryPolicy",
    "ScheduledFault",
    "collect_fault_stats",
    "emit_fault_metrics",
]
