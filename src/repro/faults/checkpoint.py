"""Superstep-boundary checkpoints for the EM engines.

Between compound supersteps the *entire* simulation state lives on the D
disks (contexts in consecutive format, the message matrix in staggered
format) plus a small amount of engine bookkeeping — which makes round
boundaries the natural consistency point.  :class:`CheckpointManager`
persists a snapshot of that state after every round; a killed run restarts
from the newest snapshot and replays bit-identically.

On-disk format (one file per round, written atomically via ``os.replace``):

.. code-block:: text

    REPRO-CKPT v1\\n                 magic line
    {"round": ..., "sha256": ..., "payload_bytes": ..., "meta": {...}}\\n
    <pickle payload>                 the engine snapshot

The header is plain JSON so a corrupt payload can still be diagnosed; the
payload's length and SHA-256 are verified on load, so truncated or garbled
snapshots refuse to resume with a :class:`CheckpointError` instead of
silently continuing from bad state.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import Any

from repro.util.validation import SimulationError

MAGIC = b"REPRO-CKPT v1\n"

#: filenames are keyed by round + 1 so the initial (post-setup, round ``-1``)
#: checkpoint sorts first.
_NAME = "ckpt_{:06d}.bin"


class CheckpointError(SimulationError):
    """A checkpoint cannot be written, read, or safely resumed from."""


class CheckpointManager:
    """Write, prune, verify and restore round-boundary snapshots.

    ``keep`` bounds how many snapshots stay on disk (the newest survive);
    ``max_restarts`` bounds how many times the process backend may respawn
    crashed workers before giving up.
    """

    def __init__(self, directory: str, keep: int = 2, max_restarts: int = 3) -> None:
        if keep < 1:
            raise CheckpointError(f"must keep at least one checkpoint, got keep={keep}")
        self.directory = directory
        self.keep = keep
        self.max_restarts = max_restarts
        os.makedirs(directory, exist_ok=True)

    # -- writing -------------------------------------------------------------

    def path_for(self, round_no: int) -> str:
        return os.path.join(self.directory, _NAME.format(round_no + 1))

    def save(self, round_no: int, snapshot: Any, meta: dict[str, Any]) -> str:
        """Atomically persist *snapshot* for *round_no*; returns the path."""
        payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "round": round_no,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "meta": meta,
        }
        path = self.path_for(round_no)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            fh.write(json.dumps(header, sort_keys=True).encode("utf-8"))
            fh.write(b"\n")
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._prune()
        return path

    def _prune(self) -> None:
        kept = self._snapshots()
        for path in kept[: -self.keep]:
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- reading -------------------------------------------------------------

    def _snapshots(self) -> list[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            os.path.join(self.directory, n)
            for n in names
            if n.startswith("ckpt_") and n.endswith(".bin")
        )

    def latest_path(self) -> str | None:
        snaps = self._snapshots()
        return snaps[-1] if snaps else None

    @property
    def has_checkpoint(self) -> bool:
        return self.latest_path() is not None

    def load(self, meta: dict[str, Any] | None = None) -> tuple[dict[str, Any], Any]:
        """Load and verify the newest snapshot → ``(header, snapshot)``.

        When *meta* is given, the stored run fingerprint must match it
        exactly — resuming under a different program, engine, machine
        configuration or fault plan is refused.
        """
        path = self.latest_path()
        if path is None:
            raise CheckpointError(
                f"no checkpoint found in {self.directory!r} — run without "
                "--resume first to create one"
            )
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from None
        if not blob.startswith(MAGIC):
            raise CheckpointError(f"{path!r} is not a repro checkpoint (bad magic)")
        body = blob[len(MAGIC) :]
        nl = body.find(b"\n")
        if nl < 0:
            raise CheckpointError(f"checkpoint {path!r} is truncated (no header)")
        try:
            header = json.loads(body[:nl].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {path!r} has a corrupt header: {exc}"
            ) from None
        payload = body[nl + 1 :]
        if len(payload) != header.get("payload_bytes"):
            raise CheckpointError(
                f"checkpoint {path!r} is truncated: expected "
                f"{header.get('payload_bytes')} payload bytes, found {len(payload)}"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("sha256"):
            raise CheckpointError(
                f"checkpoint {path!r} is corrupt: payload SHA-256 mismatch"
            )
        if meta is not None and header.get("meta") != meta:
            raise CheckpointError(
                f"checkpoint {path!r} belongs to a different run: stored "
                f"fingerprint {header.get('meta')} != current {meta}"
            )
        try:
            snapshot = pickle.loads(payload)
        except Exception as exc:  # pickle raises many types on garbage
            raise CheckpointError(
                f"checkpoint {path!r} payload does not unpickle: {exc}"
            ) from None
        return header, snapshot
