"""Fault injection at the parallel-disk layer.

:class:`FaultyDiskArray` is a drop-in :class:`~repro.pdm.disk_array.DiskArray`
whose physical track accesses can fail according to a
:class:`~repro.faults.plan.FaultPlan`:

* **transient** read/write failures — the access fails, the retry policy
  re-attempts it (each retry may fault again, so an unlucky streak can
  still exhaust the policy and raise :class:`DiskFault`);
* **torn writes** — a corrupted prefix of the block is committed before
  the failure is reported, so a crash between the tear and the successful
  retry leaves garbage on the track (exactly the hazard checkpoint
  verification exists for);
* **disk deaths** — after a scheduled parallel-I/O count the disk stops
  answering; in *degraded mode* its blocks are migrated onto the
  survivors and all later accesses are remapped there.

Cost accounting stays honest on two separate ledgers.  The **logical**
ledger (:class:`~repro.pdm.io_stats.IOStats`) is untouched: it records the
PDM schedule the engine issued, so fault-injected runs remain bit-identical
to clean runs in every model counter, which is what lets an entire test
suite run under injection.  The **physical** ledger (:class:`FaultStats`)
records what the faults cost on top: retries, modeled backoff seconds,
degraded I/Os, migrated blocks and the parallelism width lost to remapping.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

import numpy as np

from repro.faults.plan import FaultPlan
from repro.pdm.disk_array import DiskArray, IOOp
from repro.util.validation import SimulationError

#: logical tracks remapped off a dead disk live in this shadow range on the
#: survivors, keyed uniquely by (logical disk, logical track).
SHADOW_BASE = 1 << 40


class DiskFault(SimulationError):
    """A disk access failed permanently (retries exhausted or no survivors)."""


@dataclass
class FaultStats:
    """Physical-layer fault accounting for one or more disk arrays."""

    transient_read_faults: int = 0   #: injected read failures
    transient_write_faults: int = 0  #: injected write failures
    torn_writes: int = 0             #: writes that committed a corrupt prefix
    retries: int = 0                 #: re-attempted single-track accesses
    retried_accesses: int = 0        #: accesses that needed >= 1 retry
    backoff_s: float = 0.0           #: modeled retry backoff time
    dead_disks: int = 0              #: disks declared dead
    migrated_blocks: int = 0         #: blocks evacuated from dead disks
    migration_ios: int = 0           #: modeled parallel I/Os spent migrating
    degraded_ios: int = 0            #: parallel I/Os that touched a remap
    remapped_accesses: int = 0       #: single-track accesses served by a survivor
    lost_width: int = 0              #: disk-parallelism lost to remapping

    def merge(self, other: "FaultStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def any(self) -> bool:
        return any(getattr(self, f.name) for f in fields(self))

    def summary(self) -> str:
        return (
            f"{self.retries} retries ({self.retried_accesses} accesses), "
            f"{self.torn_writes} torn writes, {self.dead_disks} dead disks, "
            f"{self.degraded_ios} degraded I/Os (width lost {self.lost_width})"
        )


class FaultInjector:
    """Per-real-processor fault decisions, deterministic and checkpointable.

    One injector belongs to exactly one :class:`FaultyDiskArray`.  All of
    its mutable state — RNG, parallel-I/O index, dead-disk set, the remap
    table of evacuated tracks and the statistics — round-trips through
    :meth:`state` / :meth:`restore` so a checkpointed run resumes the fault
    sequence bit-identically.
    """

    def __init__(self, plan: FaultPlan, real: int) -> None:
        self.plan = plan
        self.real = real
        self.retry = plan.retry
        self.stats = FaultStats()
        self.op_index = 0  #: parallel I/Os issued by the owning array
        self._rng = np.random.default_rng(np.random.SeedSequence([plan.seed, real]))
        #: (op, disk) -> kind, for this real's scheduled faults
        self._schedule = {
            (s.op, s.disk): s.kind for s in plan.schedule if s.real == real
        }
        #: disk -> after_op, deaths not yet applied
        self._pending_death = {
            d.disk: d.after_op for d in plan.dead_disks if d.real == real
        }
        self.dead: set[int] = set()
        #: (logical disk, logical track) -> (physical disk, physical track)
        self.remap: dict[tuple[int, int], tuple[int, int]] = {}

    # -- decisions -----------------------------------------------------------

    def next_op(self) -> int:
        """Advance to the next parallel I/O; returns its index."""
        idx = self.op_index
        self.op_index += 1
        return idx

    def due_deaths(self, op_idx: int) -> list[int]:
        """Disks whose scheduled death is due at *op_idx* (and clear them)."""
        due = sorted(d for d, after in self._pending_death.items() if op_idx >= after)
        for d in due:
            del self._pending_death[d]
        return due

    def draw_fault(self, op: IOOp, op_idx: int, attempt: int) -> str | None:
        """The fault (if any) striking this access attempt.

        Scheduled faults fire on the first attempt only; probabilistic
        faults are drawn independently per attempt.
        """
        if attempt == 0:
            kind = self._schedule.get((op_idx, op.disk))
            if kind is not None:
                return kind
        plan = self.plan
        if op.is_write:
            if plan.p_torn_write and self._rng.random() < plan.p_torn_write:
                return "torn_write"
            if plan.p_transient_write and self._rng.random() < plan.p_transient_write:
                return "transient_write"
        elif plan.p_transient_read and self._rng.random() < plan.p_transient_read:
            return "transient_read"
        return None

    def record_fault(self, kind: str) -> None:
        if kind == "transient_read":
            self.stats.transient_read_faults += 1
        elif kind == "transient_write":
            self.stats.transient_write_faults += 1
        else:
            self.stats.torn_writes += 1

    # -- degraded-mode remapping ---------------------------------------------

    def survivors(self, D: int) -> list[int]:
        return [d for d in range(D) if d not in self.dead]

    def shadow_track(self, disk: int, track: int, D: int) -> int:
        """Unique shadow address for logical ``(disk, track)``."""
        return SHADOW_BASE + track * D + disk

    def resolve(self, disk: int, track: int, D: int) -> tuple[int, int, bool]:
        """Physical ``(disk, track, remapped)`` serving a logical address.

        The first access to a not-yet-evacuated address on a dead disk
        assigns (and records) its shadow home on a survivor.
        """
        if disk not in self.dead:
            return disk, track, False
        key = (disk, track)
        home = self.remap.get(key)
        if home is None:
            alive = self.survivors(D)
            home = (
                alive[(disk + track) % len(alive)],
                self.shadow_track(disk, track, D),
            )
            self.remap[key] = home
        self.stats.remapped_accesses += 1
        return home[0], home[1], True

    def peek(self, disk: int, track: int, D: int) -> tuple[int, int]:
        """Like :meth:`resolve` but cost-free (used by deallocation)."""
        if disk not in self.dead:
            return disk, track
        home = self.remap.get((disk, track))
        if home is not None:
            return home
        alive = self.survivors(D)
        return alive[(disk + track) % len(alive)], self.shadow_track(disk, track, D)

    # -- checkpointing --------------------------------------------------------

    def state(self) -> dict[str, Any]:
        return {
            "rng": self._rng.bit_generator.state,
            "op_index": self.op_index,
            "pending_death": dict(self._pending_death),
            "dead": sorted(self.dead),
            "remap": dict(self.remap),
            "stats": FaultStats(**self.stats.as_dict()),
        }

    def restore(self, state: dict[str, Any]) -> None:
        self._rng.bit_generator.state = state["rng"]
        self.op_index = state["op_index"]
        self._pending_death = dict(state["pending_death"])
        self.dead = set(state["dead"])
        self.remap = dict(state["remap"])
        self.stats = FaultStats(**state["stats"].as_dict())


class FaultyDiskArray(DiskArray):
    """A disk array whose physical accesses obey a fault plan.

    The logical PDM schedule (batch validation, :class:`IOStats`) is
    inherited unchanged from :class:`DiskArray`; only the *service* of each
    single-track access goes through the injector.
    """

    def __init__(
        self, D: int, B: int, injector: FaultInjector, tracer=None, real: int = 0
    ) -> None:
        super().__init__(D, B)
        self.injector = injector
        self.tracer = tracer
        self.real = real

    def _use_fastpath_storage(self) -> bool:
        # fault injection resolves, retries and tears every track access
        # individually, and remaps shadow tracks far outside any dense
        # arena range — it always runs the per-op reference path
        return False

    # -- core operation ------------------------------------------------------

    def parallel_io(self, ops: list[IOOp]) -> list[bytes]:
        if not ops:
            return []
        touched = self._check_batch(ops)
        inj = self.injector
        op_idx = inj.next_op()
        for dead in inj.due_deaths(op_idx):
            self._kill_disk(dead, op_idx)

        out: list[bytes] = []
        n_read = n_written = 0
        physical: set[int] = set()
        remapped = False
        for op in ops:
            pdisk, ptrack, moved = inj.resolve(op.disk, op.track, self.D)
            remapped |= moved
            physical.add(pdisk)
            data = self._service(op, pdisk, ptrack, op_idx)
            if op.is_write:
                n_written += 1
            else:
                out.append(data)  # type: ignore[arg-type]
                n_read += 1
        if remapped:
            inj.stats.degraded_ios += 1
            lost = len(touched) - len(physical)
            if lost > 0:
                inj.stats.lost_width += lost
        self.stats.record(n_read, n_written, sorted(touched), self.D)
        return out

    def _service(self, op: IOOp, pdisk: int, ptrack: int, op_idx: int) -> bytes | None:
        """One single-track access with transient-fault retries."""
        inj = self.injector
        attempt = 0
        while True:
            kind = inj.draw_fault(op, op_idx, attempt)
            if kind is None:
                if attempt:
                    inj.stats.retried_accesses += 1
                if op.is_write:
                    self.disks[pdisk].write(ptrack, op.data)  # type: ignore[arg-type]
                    return None
                return self.disks[pdisk].read(ptrack)
            inj.record_fault(kind)
            if kind == "torn_write":
                # the tear commits a corrupt prefix before failing; the
                # retry (if granted) overwrites it with the full block
                assert op.data is not None
                self.disks[pdisk].write(ptrack, op.data[: max(1, len(op.data) // 2)])
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.emit(
                    "io_fault",
                    real=self.real,
                    disk=op.disk,
                    track=op.track,
                    op=op_idx,
                    fault=kind,
                    attempt=attempt,
                )
            if attempt >= inj.retry.max_retries:
                raise DiskFault(
                    f"{kind} on disk {op.disk} track {op.track} of real "
                    f"processor {self.real} persists after "
                    f"{inj.retry.max_retries} retries (parallel I/O #{op_idx})"
                )
            attempt += 1
            inj.stats.retries += 1
            inj.stats.backoff_s += inj.retry.backoff_s * attempt

    # -- degraded mode -------------------------------------------------------

    def _kill_disk(self, dead: int, op_idx: int) -> None:
        """Declare *dead* failed and evacuate its blocks onto survivors."""
        inj = self.injector
        inj.dead.add(dead)
        alive = inj.survivors(self.D)
        if not alive:
            raise DiskFault(
                f"disk {dead} of real processor {self.real} died and no "
                f"survivors remain (D={self.D})"
            )
        disk = self.disks[dead]
        # every physical block on the dead device must move: its native
        # tracks plus any shadow blocks it hosted for earlier casualties
        victims: list[tuple[tuple[int, int], int]] = []
        for key, (pd, pt) in list(inj.remap.items()):
            if pd == dead:
                victims.append((key, pt))
        for t in disk._tracks:
            if t < SHADOW_BASE:
                victims.append(((dead, t), t))
        victims.sort(key=lambda item: item[1])
        for i, (key, ptrack) in enumerate(victims):
            data = disk._tracks.pop(ptrack)
            new_disk = alive[i % len(alive)]
            new_track = inj.shadow_track(key[0], key[1], self.D)
            self.disks[new_disk]._tracks[new_track] = data
            inj.remap[key] = (new_disk, new_track)
        disk._tracks.clear()
        inj.stats.dead_disks += 1
        inj.stats.migrated_blocks += len(victims)
        inj.stats.migration_ios += -(-len(victims) // len(alive)) if victims else 0
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                "disk_dead",
                real=self.real,
                disk=dead,
                op=op_idx,
                migrated_blocks=len(victims),
                survivors=len(alive),
            )

    def free_blocks(self, addresses: list[tuple[int, int]]) -> None:
        inj = self.injector
        for disk, track in addresses:
            pdisk, ptrack = inj.peek(disk, track, self.D)
            self.disks[pdisk].free(ptrack)


def collect_fault_stats(arrays) -> FaultStats | None:
    """Merged fault statistics of the fault-injected arrays, or ``None``
    when no array carries an injector (the clean-run fast path)."""
    merged: FaultStats | None = None
    for arr in arrays:
        inj = getattr(arr, "injector", None)
        if inj is None:
            continue
        if merged is None:
            merged = FaultStats()
        merged.merge(inj.stats)
    return merged


def emit_fault_metrics(metrics, name: str, cfg, stats: FaultStats | None) -> None:
    """Publish fault counters to a metrics registry (no-op when disabled)."""
    if stats is None or not metrics.enabled:
        return
    labels = dict(engine=name, p=cfg.p, D=cfg.D, B=cfg.B)
    metrics.counter(
        "repro_io_retries_total", "single-track accesses re-attempted"
    ).labels(**labels).inc(stats.retries)
    for kind, n in (
        ("transient_read", stats.transient_read_faults),
        ("transient_write", stats.transient_write_faults),
        ("torn_write", stats.torn_writes),
    ):
        metrics.counter(
            "repro_io_faults_total", "injected disk faults"
        ).labels(**labels, kind=kind).inc(n)
    metrics.counter(
        "repro_disk_deaths_total", "disks declared dead"
    ).labels(**labels).inc(stats.dead_disks)
    metrics.counter(
        "repro_degraded_ios_total", "parallel I/Os served by remapped survivors"
    ).labels(**labels).inc(stats.degraded_ios)
    metrics.counter(
        "repro_lost_width_total", "disk-parallelism width lost to remapping"
    ).labels(**labels).inc(stats.lost_width)
    metrics.counter(
        "repro_migrated_blocks_total", "blocks evacuated from dead disks"
    ).labels(**labels).inc(stats.migrated_blocks)
