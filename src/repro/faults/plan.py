"""Deterministic fault plans for the simulated disk layer.

A :class:`FaultPlan` describes *which* physical mishaps the parallel-disk
layer should suffer during a run — transient read/write failures, torn
(partial) writes, and whole-disk deaths — plus the :class:`RetryPolicy`
used to recover from transients.  Plans are deterministic by construction:

* probabilistic faults draw from a seeded RNG that is derived **per real
  processor** (``SeedSequence([seed, real])``), so the fault sequence a
  given disk array experiences does not depend on how the real processors
  are partitioned over worker processes;
* scheduled faults name an exact ``(real, op, disk)`` coordinate, where
  ``op`` is the per-array parallel-I/O index;
* disk deaths name ``(real, disk, after_op)``.

Plans round-trip through JSON (``--faults PLAN.json`` on the CLI, or the
``REPRO_FAULTS`` environment variable for whole-suite injection in CI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.util.validation import ConfigurationError

#: fault kinds a schedule entry may request.
FAULT_KINDS = ("transient_read", "transient_write", "torn_write")


@dataclass(frozen=True)
class RetryPolicy:
    """How the disk layer recovers from transient faults.

    ``backoff_s`` is *modeled* time per retry (multiplied by the attempt
    number, i.e. linear backoff); it is accounted in the fault statistics
    rather than slept, so fault-injected runs stay fast and deterministic.
    """

    max_retries: int = 3
    backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_s < 0:
            raise ConfigurationError(f"backoff_s must be >= 0, got {self.backoff_s}")

    def to_dict(self) -> dict[str, Any]:
        return {"max_retries": self.max_retries, "backoff_s": self.backoff_s}


@dataclass(frozen=True)
class ScheduledFault:
    """One explicit fault: parallel I/O number *op* on *disk* of *real*."""

    real: int
    op: int
    disk: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.real < 0 or self.op < 0 or self.disk < 0:
            raise ConfigurationError(
                f"scheduled fault coordinates must be >= 0, got {self}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {"real": self.real, "op": self.op, "disk": self.disk, "kind": self.kind}


@dataclass(frozen=True)
class DiskDeath:
    """Disk *disk* of real processor *real* dies permanently once that
    array has issued *after_op* parallel I/Os (stuck-at failure)."""

    real: int
    disk: int
    after_op: int

    def __post_init__(self) -> None:
        if self.real < 0 or self.disk < 0 or self.after_op < 0:
            raise ConfigurationError(f"disk death coordinates must be >= 0, got {self}")

    def to_dict(self) -> dict[str, Any]:
        return {"real": self.real, "disk": self.disk, "after_op": self.after_op}


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seedable description of the faults to inject.

    Probabilities apply independently to every single-track access
    (including retry attempts, so a retry can itself fail).  All faults are
    applied per real processor by :meth:`injector_for`, which the EM
    engines call once per :class:`~repro.pdm.disk_array.DiskArray`.
    """

    seed: int = 0
    p_transient_read: float = 0.0
    p_transient_write: float = 0.0
    p_torn_write: float = 0.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    schedule: tuple[ScheduledFault, ...] = ()
    dead_disks: tuple[DiskDeath, ...] = ()

    def __post_init__(self) -> None:
        for name in ("p_transient_read", "p_transient_write", "p_torn_write"):
            prob = getattr(self, name)
            if not 0.0 <= prob <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {prob}")

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"fault plan must be a JSON object, got {type(doc).__name__}"
            )
        known = {
            "seed",
            "p_transient_read",
            "p_transient_write",
            "p_torn_write",
            "retry",
            "schedule",
            "dead_disks",
        }
        unknown = set(doc) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault-plan field(s): {', '.join(sorted(unknown))}"
            )
        try:
            retry = RetryPolicy(**doc.get("retry", {}))
            schedule = tuple(ScheduledFault(**s) for s in doc.get("schedule", []))
            dead = tuple(DiskDeath(**d) for d in doc.get("dead_disks", []))
        except TypeError as exc:
            raise ConfigurationError(f"malformed fault plan: {exc}") from None
        return cls(
            seed=int(doc.get("seed", 0)),
            p_transient_read=float(doc.get("p_transient_read", 0.0)),
            p_transient_write=float(doc.get("p_transient_write", 0.0)),
            p_torn_write=float(doc.get("p_torn_write", 0.0)),
            retry=retry,
            schedule=schedule,
            dead_disks=dead,
        )

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read fault plan {path!r}: {exc}"
            ) from None
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fault plan {path!r} is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(doc)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "p_transient_read": self.p_transient_read,
            "p_transient_write": self.p_transient_write,
            "p_torn_write": self.p_torn_write,
            "retry": self.retry.to_dict(),
            "schedule": [s.to_dict() for s in self.schedule],
            "dead_disks": [d.to_dict() for d in self.dead_disks],
        }

    def to_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    # -- derived views -------------------------------------------------------

    @property
    def probabilistic(self) -> bool:
        return bool(
            self.p_transient_read or self.p_transient_write or self.p_torn_write
        )

    def injector_for(self, real: int):
        """The per-real-processor injector this plan prescribes.

        Deterministic in *real* alone: worker partitioning, engine kind and
        execution order of the other reals never change the fault sequence
        one array sees.
        """
        from repro.faults.injector import FaultInjector

        return FaultInjector(self, real)
