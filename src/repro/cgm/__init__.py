"""The Coarse Grained Multicomputer (CGM) model.

A CGM algorithm is an alternating sequence of local-computation rounds and
communication rounds (h-relations with h = Theta(N/v)) over ``v``
processors, each holding Theta(N/v) data.  This package defines:

* :class:`MachineConfig` — the EM-CGM parameter set (N, v, p, M, D, B, g,
  G, L) with the paper's constraint checks;
* :class:`CGMProgram` / :class:`Context` / :class:`RoundEnv` — the API
  CGM algorithms are written against;
* :class:`InMemoryEngine` — the reference executor (a "real" CGM with
  unbounded memory), against which the external-memory engines in
  :mod:`repro.core` are differentially tested.
"""

from repro.cgm.config import MachineConfig
from repro.cgm.engine import Engine, InMemoryEngine, RunResult
from repro.cgm.message import Message
from repro.cgm.metrics import CostReport, RoundMetrics
from repro.cgm.program import CGMProgram, Context, RoundEnv

__all__ = [
    "MachineConfig",
    "Engine",
    "InMemoryEngine",
    "RunResult",
    "Message",
    "CostReport",
    "RoundMetrics",
    "CGMProgram",
    "Context",
    "RoundEnv",
]
